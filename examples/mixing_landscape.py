"""How game structure shapes the mixing time: a landscape survey.

For a collection of games drawn from every family in the package (coordination
games on different topologies, the paper's lower-bound constructions, a
congestion game, a dominant-strategy game) this example computes:

* the structural quantities the paper's bounds depend on — DeltaPhi, deltaPhi,
  the barrier zeta, and (for graphical games) the cutwidth of the social graph,
* the exact mixing time at a common beta,
* the tightest applicable upper bound from the paper.

Reading the table row by row reproduces the paper's qualitative message: the
mixing time is governed by the barrier zeta (and through it by the cutwidth
for graphical games), not by the raw size of the game.

Run with:  python examples/mixing_landscape.py
"""

from __future__ import annotations

import networkx as nx

from repro import (
    measure_mixing_time,
    render_table,
    structural_quantities,
    theorem38_mixing_upper,
)
from repro.games import (
    AnonymousDominantGame,
    CoordinationParams,
    GraphicalCoordinationGame,
    SingletonCongestionGame,
    Theorem35Game,
    TwoWellGame,
)
from repro.graphs import cutwidth_exact

BETA = 1.5


def build_games() -> dict[str, tuple[object, object]]:
    """Return name -> (game, social_graph_or_None)."""
    params = CoordinationParams.from_deltas(1.0, 0.5)
    ising = CoordinationParams.ising(1.0)
    return {
        "ring coordination (n=6)": (GraphicalCoordinationGame(nx.cycle_graph(6), ising), nx.cycle_graph(6)),
        "clique coordination (n=5)": (GraphicalCoordinationGame(nx.complete_graph(5), ising), nx.complete_graph(5)),
        "star coordination (n=6)": (GraphicalCoordinationGame(nx.star_graph(5), params), nx.star_graph(5)),
        "two-well (n=5)": (TwoWellGame(5, barrier=1.0), None),
        "thm 3.5 family (n=6)": (Theorem35Game(6, 2.0, 1.0), None),
        "congestion, 4 players / 2 links": (SingletonCongestionGame(4, 2), None),
        "dominant-strategy (n=4)": (AnonymousDominantGame(4, 2), None),
    }


def main() -> None:
    rows = []
    for name, (game, graph) in build_games().items():
        sq = structural_quantities(game)
        cutwidth = cutwidth_exact(graph) if graph is not None else "-"
        mixing = measure_mixing_time(game, BETA).mixing_time
        upper = theorem38_mixing_upper(
            sq.num_players, sq.max_strategies, BETA, sq.zeta, sq.delta_phi_global
        )
        rows.append(
            [
                name,
                sq.num_profiles,
                sq.delta_phi_global,
                sq.delta_phi_local,
                sq.zeta,
                cutwidth,
                mixing,
                upper,
            ]
        )
    print(f"Structural landscape vs exact mixing time at beta = {BETA}\n")
    print(
        render_table(
            ["game", "|S|", "DeltaPhi", "deltaPhi", "zeta", "cutwidth", "t_mix", "Thm 3.8 upper"],
            rows,
        )
    )
    print(
        "\nGames with a small barrier zeta (congestion, dominant-strategy, star with risk\n"
        "dominance) mix fast no matter how large DeltaPhi is; games that force the dynamics\n"
        "over a potential ridge (two-well, Theorem 3.5 family, symmetric clique) are the slow ones."
    )


if __name__ == "__main__":
    main()
