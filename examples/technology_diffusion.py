"""Technology diffusion on a social network (the paper's Section 5 motivation).

Graphical coordination games model the spread of a new technology: strategy 1
is "adopt the new technology", strategy 0 is "stay with the old one", players
prefer to match their neighbors, and the new technology is at least as good
(delta1 >= delta0), making all-adopt the risk-dominant consensus.

This example compares two social structures with the same number of players —
a tightly-knit clique and a local-interaction ring — and reports, for a range
of noise levels:

* the exact mixing time of the logit dynamics,
* the exact expected hitting time of the all-adopt profile starting from
  all-old (how long diffusion takes),
* the stationary probability that the network has fully adopted.

The qualitative story matches the paper: local interaction (ring) converges
to its stationary behaviour orders of magnitude faster than the clique, whose
mixing time blows up exponentially in beta * (Phi_max - Phi(1)).

Run with:  python examples/technology_diffusion.py
"""

from __future__ import annotations

import networkx as nx

from repro import (
    CoordinationParams,
    GraphicalCoordinationGame,
    LogitDynamics,
    measure_mixing_time,
    render_table,
)
from repro.core import expected_hitting_time_exact

NUM_PLAYERS = 6
# old technology payoff delta0 = 1, new technology payoff delta1 = 1.5
PARAMS = CoordinationParams.from_deltas(1.0, 1.5)
BETAS = (0.5, 1.0, 1.5, 2.0)


def analyse(name: str, graph: nx.Graph) -> list[list[object]]:
    game = GraphicalCoordinationGame(graph, PARAMS)
    all_old, all_new = game.consensus_profiles()
    rows = []
    for beta in BETAS:
        mixing = measure_mixing_time(game, beta).mixing_time
        hitting = expected_hitting_time_exact(
            game, beta, start_index=all_old, target_index=all_new
        )
        pi = LogitDynamics(game, beta).stationary_distribution()
        rows.append([name, beta, mixing, hitting, pi[all_new]])
    return rows


def main() -> None:
    print("Technology diffusion: new tech (strategy 1, delta1=1.5) vs old tech (strategy 0, delta0=1.0)")
    print(f"{NUM_PLAYERS} players; risk-dominant consensus = full adoption\n")
    rows = analyse("ring", nx.cycle_graph(NUM_PLAYERS)) + analyse(
        "clique", nx.complete_graph(NUM_PLAYERS)
    )
    print(
        render_table(
            ["network", "beta", "t_mix", "E[hitting time of full adoption]", "pi(full adoption)"],
            rows,
        )
    )
    print(
        "\nOn the ring the dynamics both mixes and reaches full adoption quickly; on the\n"
        "clique the same payoffs produce a much slower chain because leaving the all-old\n"
        "consensus requires climbing a Theta(n^2) potential barrier (Theorem 5.5)."
    )


if __name__ == "__main__":
    main()
