"""Why dominant strategies tame the noise: beta-independence vs exponential blow-up.

Section 3 vs Section 4 of the paper in one table: we sweep beta on

* a symmetric two-well potential game (two equally good equilibria separated
  by a potential barrier) — Theorem 3.5 says its mixing time must explode
  exponentially in beta, and
* the anonymous dominant-strategy game of Theorem 4.3 — Theorem 4.2 says its
  mixing time is bounded by a constant that does not depend on beta at all,

and we also report the coupling-based Monte-Carlo estimate of the mixing time
for the dominant game, illustrating the measurement path that scales beyond
exact transition matrices.

Run with:  python examples/dominant_vs_potential.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    estimate_mixing_time_coupling,
    measure_mixing_time,
    render_table,
    theorem34_mixing_upper,
    theorem42_mixing_upper,
)
from repro.games import AnonymousDominantGame, TwoWellGame

BETAS = (0.0, 1.0, 2.0, 4.0, 8.0)
NUM_PLAYERS = 4


def main() -> None:
    potential_game = TwoWellGame(NUM_PLAYERS, barrier=1.0)
    dominant_game = AnonymousDominantGame(NUM_PLAYERS, 2)
    delta_phi = potential_game.max_global_variation()

    rows = []
    rng = np.random.default_rng(7)
    for beta in BETAS:
        two_well_mix = measure_mixing_time(potential_game, beta).mixing_time
        dominant_mix = measure_mixing_time(dominant_game, beta).mixing_time
        coupling_estimate = estimate_mixing_time_coupling(
            dominant_game,
            beta,
            start_x=(0,) * NUM_PLAYERS,
            start_y=(1,) * NUM_PLAYERS,
            horizon=4000,
            num_runs=48,
            rng=rng,
        )
        rows.append(
            [
                beta,
                two_well_mix,
                theorem34_mixing_upper(NUM_PLAYERS, 2, beta, delta_phi),
                dominant_mix,
                coupling_estimate,
                theorem42_mixing_upper(NUM_PLAYERS, 2),
            ]
        )

    print("Two-well potential game vs dominant-strategy game, n = 4 binary players\n")
    print(
        render_table(
            [
                "beta",
                "two-well t_mix",
                "Thm 3.4 upper",
                "dominant t_mix",
                "dominant coupling est.",
                "Thm 4.2 upper (beta-free)",
            ],
            rows,
        )
    )
    print(
        "\nThe two-well column keeps growing with beta (players get stuck in whichever\n"
        "equilibrium they start near), while the dominant-strategy column saturates:\n"
        "however rational the players become, the dominant profile keeps being played\n"
        "with non-vanishing probability and the chain forgets its start in O(1) time."
    )


if __name__ == "__main__":
    main()
