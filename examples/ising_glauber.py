"""The Ising model as a logit dynamics: Glauber dynamics, magnetization, mixing.

Section 5 of the paper observes that the Ising model is exactly the graphical
coordination game without risk dominance and that its Glauber (heat-bath)
dynamics is the logit dynamics.  This example:

1. verifies numerically that the Ising game and the delta0 = delta1 = 2J
   coordination game generate the *same* Markov chain,
2. sweeps the inverse temperature beta on a ring and on a 2x3 torus-like grid
   and reports the exact mixing time next to the Gibbs expectation of the
   absolute magnetization |m| (the usual order parameter),
3. runs a Glauber trajectory and prints the empirical magnetization to show
   the simulation path agrees with the exact Gibbs expectation.

Run with:  python examples/ising_glauber.py
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro import LogitDynamics, measure_mixing_time, render_table
from repro.core import gibbs_expectation
from repro.games import IsingGame
from repro.games.ising import spins_from_profile

BETAS = (0.1, 0.3, 0.6, 1.0)


def magnetization_observable(game: IsingGame) -> np.ndarray:
    profiles = game.space.all_profiles()
    spins = spins_from_profile(profiles)
    return np.abs(spins.mean(axis=1))


def sweep(name: str, graph: nx.Graph) -> list[list[object]]:
    game = IsingGame(graph, coupling=1.0)
    observable = magnetization_observable(game)
    rows = []
    for beta in BETAS:
        mixing = measure_mixing_time(game, beta).mixing_time
        mean_abs_m = gibbs_expectation(game.potential_vector(), beta, observable)
        rows.append([name, beta, mixing, mean_abs_m])
    return rows


def main() -> None:
    # 1. Glauber dynamics == logit dynamics of the coordination game
    graph = nx.cycle_graph(5)
    ising = IsingGame(graph, coupling=1.0)
    coordination = IsingGame.as_coordination_game(graph, coupling=1.0)
    P_ising = LogitDynamics(ising, beta=0.8).transition_matrix()
    P_coord = LogitDynamics(coordination, beta=0.8).transition_matrix()
    print(
        "Glauber chain equals coordination-game logit chain:",
        bool(np.allclose(P_ising, P_coord)),
    )

    # 2. beta sweep on two topologies
    rows = sweep("ring(6)", nx.cycle_graph(6)) + sweep("grid(2x3)", nx.grid_2d_graph(2, 3))
    print()
    print(render_table(["graph", "beta", "t_mix (exact)", "E_pi |magnetization|"], rows))

    # 3. a Glauber trajectory vs the exact Gibbs expectation
    beta = 0.6
    game = IsingGame(nx.cycle_graph(6), coupling=1.0)
    dynamics = LogitDynamics(game, beta)
    rng = np.random.default_rng(0)
    trajectory = dynamics.simulate(start=(0,) * 6, num_steps=30_000, rng=rng)
    spins = spins_from_profile(trajectory[3000:])
    empirical = float(np.abs(spins.mean(axis=1)).mean())
    exact = gibbs_expectation(
        game.potential_vector(), beta, magnetization_observable(game)
    )
    print(
        f"\nbeta={beta}: empirical |m| from a Glauber trajectory = {empirical:.3f}, "
        f"exact Gibbs expectation = {exact:.3f}"
    )
    print(
        "\nLow beta (high temperature) gives fast mixing and small magnetization; raising\n"
        "beta aligns the spins (|m| -> 1) and slows the chain down, exactly the trade-off\n"
        "the paper quantifies for coordination games."
    )


if __name__ == "__main__":
    main()
