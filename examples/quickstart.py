"""Quickstart: logit dynamics on a small coordination game, end to end.

Builds the graphical coordination game on a 6-ring, runs the logit dynamics
at a few noise levels, and reports for each beta:

* the exact mixing time t_mix(1/4) of the chain,
* the relaxation time from the spectrum,
* the paper's Theorem 5.6 upper bound and Theorem 5.7 lower bound,
* the Gibbs stationary probability of the two consensus profiles.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import networkx as nx

from repro import (
    CoordinationParams,
    GraphicalCoordinationGame,
    LogitDynamics,
    measure_mixing_time,
    measure_relaxation_time,
    render_table,
    theorem56_ring_mixing_upper,
    theorem57_ring_mixing_lower,
)

NUM_PLAYERS = 6
DELTA = 1.0
BETAS = (0.0, 0.5, 1.0, 1.5, 2.0)


def main() -> None:
    # A coordination game with no risk-dominant equilibrium (delta0 = delta1):
    # both consensus profiles are equally good, which is the slow-mixing case.
    game = GraphicalCoordinationGame(
        nx.cycle_graph(NUM_PLAYERS), CoordinationParams.ising(DELTA)
    )
    all0, all1 = game.consensus_profiles()

    rows = []
    for beta in BETAS:
        mix = measure_mixing_time(game, beta)
        t_rel = measure_relaxation_time(game, beta)
        pi = LogitDynamics(game, beta).stationary_distribution()
        rows.append(
            [
                beta,
                mix.mixing_time,
                t_rel,
                theorem57_ring_mixing_lower(beta, DELTA),
                theorem56_ring_mixing_upper(NUM_PLAYERS, beta, DELTA),
                pi[all0] + pi[all1],
            ]
        )

    print(f"Logit dynamics on a {NUM_PLAYERS}-player ring coordination game (delta = {DELTA})")
    print(
        render_table(
            [
                "beta",
                "t_mix (exact)",
                "t_rel (exact)",
                "Thm 5.7 lower",
                "Thm 5.6 upper",
                "pi(consensus)",
            ],
            rows,
        )
    )
    print(
        "\nAs beta grows the chain spends more stationary mass on the two consensus\n"
        "profiles and the mixing time grows like e^{2 delta beta}, staying inside the\n"
        "paper's Theorem 5.6 / 5.7 sandwich."
    )


if __name__ == "__main__":
    main()
