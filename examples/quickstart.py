"""Quickstart: logit dynamics on a small coordination game, end to end.

Builds the graphical coordination game on a 6-ring, runs the logit dynamics
at a few noise levels, and reports for each beta:

* the exact mixing time t_mix(1/4) of the chain,
* the relaxation time from the spectrum,
* the paper's Theorem 5.6 upper bound and Theorem 5.7 lower bound,
* the Gibbs stationary probability of the two consensus profiles,

then re-measures the same chain with the batched ensemble engine (sampled
TV mixing estimate and grand-coupling coalescence), showing the two
pipelines side by side, and finishes with the adaptive estimators: an
Ising hitting time and the stationary welfare, each reported as an
anytime-valid confidence interval that stopped itself as soon as it was
tight enough.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro import (
    CoordinationParams,
    GraphicalCoordinationGame,
    IsingGame,
    LogitDynamics,
    empirical_hitting_times,
    estimate_mixing_time_ensemble,
    estimate_stationary_welfare,
    measure_mixing_time,
    measure_relaxation_time,
    render_table,
    stationary_expected_welfare,
    theorem56_ring_mixing_upper,
    theorem57_ring_mixing_lower,
)

NUM_PLAYERS = 6
DELTA = 1.0
BETAS = (0.0, 0.5, 1.0, 1.5, 2.0)


def main() -> None:
    # A coordination game with no risk-dominant equilibrium (delta0 = delta1):
    # both consensus profiles are equally good, which is the slow-mixing case.
    game = GraphicalCoordinationGame(
        nx.cycle_graph(NUM_PLAYERS), CoordinationParams.ising(DELTA)
    )
    all0, all1 = game.consensus_profiles()

    rows = []
    for beta in BETAS:
        mix = measure_mixing_time(game, beta)
        t_rel = measure_relaxation_time(game, beta)
        pi = LogitDynamics(game, beta).stationary_distribution()
        rows.append(
            [
                beta,
                mix.mixing_time,
                t_rel,
                theorem57_ring_mixing_lower(beta, DELTA),
                theorem56_ring_mixing_upper(NUM_PLAYERS, beta, DELTA),
                pi[all0] + pi[all1],
            ]
        )

    print(f"Logit dynamics on a {NUM_PLAYERS}-player ring coordination game (delta = {DELTA})")
    print(
        render_table(
            [
                "beta",
                "t_mix (exact)",
                "t_rel (exact)",
                "Thm 5.7 lower",
                "Thm 5.6 upper",
                "pi(consensus)",
            ],
            rows,
        )
    )
    print(
        "\nAs beta grows the chain spends more stationary mass on the two consensus\n"
        "profiles and the mixing time grows like e^{2 delta beta}, staying inside the\n"
        "paper's Theorem 5.6 / 5.7 sandwich."
    )

    # -- the same chain through the batched ensemble engine -----------------
    rng = np.random.default_rng(0)
    rows = []
    for beta in BETAS:
        estimate = estimate_mixing_time_ensemble(
            game, beta, num_replicas=4096, check_every=NUM_PLAYERS, rng=rng
        )
        coupling = LogitDynamics(game, beta).grand_coupling(
            start_x=(0,) * NUM_PLAYERS,
            start_y=(1,) * NUM_PLAYERS,
            horizon=20_000,
            num_runs=64,
            rng=rng,
        )
        rows.append(
            [
                beta,
                estimate.mixing_time_estimate,
                estimate.tv_curve[-1, 1],
                coupling.fraction_coalesced,
                coupling.quantile(0.75),
            ]
        )

    print("\nSame chain, measured by the batched ensemble engine (no matrices built):")
    print(
        render_table(
            [
                "beta",
                "t_mix (sampled, 4096 replicas)",
                "TV at estimate",
                "coupled pairs met",
                "coalescence q75",
            ],
            rows,
        )
    )
    print(
        "\nThe sampled estimates track the exact column above while touching only\n"
        "O(replicas) state per step — this is the pipeline that keeps working when\n"
        "the profile space outgrows the dense machinery."
    )

    # -- adaptive estimation with error bars --------------------------------
    ising = IsingGame(nx.cycle_graph(8), coupling=1.0)
    consensus = int(ising.space.encode(np.ones(8, dtype=np.int64)))
    hitting = empirical_hitting_times(
        ising, 0.7, 0, consensus, max_steps=4000, precision=0.05, seed=42
    )
    welfare = estimate_stationary_welfare(
        ising, 0.7, num_steps=2000, precision=0.75, seed=42
    )
    exact_welfare = stationary_expected_welfare(ising, 0.7)

    print(
        "\nAdaptive estimators (anytime-valid 95% confidence sequences; replica\n"
        "chunks keep coming until the interval meets the requested precision):"
    )
    print(
        render_table(
            ["quantity", "estimate [95% CS]", "replicas", "stopped early"],
            [
                ["consensus hitting time", hitting, hitting.n, hitting.stopped_early],
                ["stationary welfare", welfare, welfare.n, welfare.stopped_early],
            ],
        )
    )
    print(
        f"\nExact stationary welfare for comparison: {exact_welfare:.4g} — inside\n"
        "the interval, with the replica count chosen by the data instead of\n"
        "guessed in advance; a fixed master seed reproduces every number above\n"
        "bit-for-bit regardless of chunking."
    )


if __name__ == "__main__":
    main()
