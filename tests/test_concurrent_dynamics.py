"""Concurrent-update (probabilistic-schedule) logit dynamics, arXiv 1207.2908.

Covers the :class:`~repro.engine.kernels.ProbabilisticKernel` family and
:class:`~repro.core.variants.ConcurrentLogitDynamics` end to end:

* random-stream contracts — the scalar loop, the batched engine (both state
  backends) and the seeded per-replica kernels are bit-for-bit consistent,
  and ``p = 1`` consumes exactly the :class:`ParallelKernel` stream;
* the *parallel trap* property grid — on an even coordination ring the
  concurrent chain's empirical occupation matches its transition-matrix
  powers while both sit far from the Gibbs measure;
* the doubled-potential results of ``core.bounds`` (symmetry, detailed
  balance, the product-form stationary law, and the mixing bounds);
* adaptive (``precision=``) and sharded (``executor=``) estimation for
  concurrent dynamics — chunk-size and shard-count bit-for-bit invariance;
* the parent-side numba-fallback warning: resolved once, visibly, even
  when the run is sharded across worker processes.
"""

from __future__ import annotations

import warnings

import networkx as nx
import numpy as np
import pytest

import repro.engine.backend as backend_mod
from repro.core import (
    ConcurrentLogitDynamics,
    ParallelLogitDynamics,
    empirical_hitting_times,
    estimate_tv_convergence,
    gibbs_measure,
    lemma1207_doubled_potential,
    lemma1207_update_rate_lower,
    theorem1207_beta_threshold,
    theorem1207_mixing_lower,
    theorem1207_mixing_upper,
    theorem1207_stationary_product,
)
from repro.engine import EnsembleSimulator, ProbabilisticKernel, seeded_kernel_for
from repro.engine.kernels import (
    SeededParallelKernel,
    SeededProbabilisticKernel,
    SeededSequentialKernel,
)
from repro.games import IsingGame, LocalInteractionGame
from repro.markov.tv import total_variation
from repro.parallel import ShardedExecutor


@pytest.fixture
def ring6_game() -> IsingGame:
    return IsingGame(nx.cycle_graph(6), coupling=1.0)


@pytest.fixture
def ring4_game() -> IsingGame:
    return IsingGame(nx.cycle_graph(4), coupling=1.0)


def consensus_target(game: IsingGame) -> int:
    return int(game.space.encode(np.ones(game.space.num_players, dtype=np.int64)))


# ---------------------------------------------------------------------------
# random-stream contracts
# ---------------------------------------------------------------------------


def test_p_equal_one_matches_parallel_kernel_stream(ring6_game):
    """At p = 1 the mask draws are skipped entirely, so the probabilistic
    kernel consumes exactly the ParallelKernel stream — bit-for-bit."""
    par = ParallelLogitDynamics(ring6_game, 0.8)
    conc = ConcurrentLogitDynamics(ring6_game, 0.8, p=1.0)
    e1 = par.ensemble(5, rng=np.random.default_rng(3))
    e2 = conc.ensemble(5, rng=np.random.default_rng(3))
    e1.run(25)
    e2.run(25)
    np.testing.assert_array_equal(e1.indices, e2.indices)


def test_simulate_loop_matches_engine_both_state_backends(ring6_game):
    conc = ConcurrentLogitDynamics(ring6_game, 0.8, p=0.6)
    start = np.zeros(6, dtype=np.int64)
    traj = conc.simulate_loop(start, 15, np.random.default_rng(7))
    loop_indices = [int(ring6_game.space.encode(row)) for row in traj]
    for state in ("index", "matrix"):
        sim = conc.ensemble(1, start=start, rng=np.random.default_rng(7), state=state)
        engine_indices = [int(sim.indices[0])]
        for _ in range(15):
            sim.run(1)
            engine_indices.append(int(sim.indices[0]))
        assert loop_indices == engine_indices


def test_transition_matrix_p1_matches_parallel(ring6_game):
    P_par = ParallelLogitDynamics(ring6_game, 0.7).transition_matrix()
    P_conc = ConcurrentLogitDynamics(ring6_game, 0.7, p=1.0).transition_matrix()
    np.testing.assert_allclose(P_par, P_conc)


def test_transition_matrix_rows_are_stochastic(ring6_game):
    P = ConcurrentLogitDynamics(ring6_game, 0.7, p=0.4).transition_matrix()
    np.testing.assert_allclose(P.sum(axis=1), 1.0)
    assert (P >= 0).all()


def test_invalid_update_probability_rejected(ring6_game):
    for p in (0.0, -0.2, 1.5):
        with pytest.raises(ValueError, match="update probability"):
            ConcurrentLogitDynamics(ring6_game, 0.5, p=p)
        with pytest.raises(ValueError, match="update probability"):
            ProbabilisticKernel(ParallelLogitDynamics(ring6_game, 0.5), p=p)


def test_seeded_kernel_dispatch(ring6_game):
    seeds = np.random.SeedSequence(0).spawn(3)
    conc = ConcurrentLogitDynamics(ring6_game, 0.5, p=0.3)
    kern = seeded_kernel_for(conc.kernel(), seeds)
    assert type(kern) is SeededProbabilisticKernel
    assert kern.p == pytest.approx(0.3)
    par = ParallelLogitDynamics(ring6_game, 0.5)
    assert type(seeded_kernel_for(par.kernel(), seeds)) is SeededParallelKernel
    with pytest.raises(ValueError, match="seeded"):
        seeded_kernel_for(object(), seeds)


def test_seeded_concurrent_chunk_size_invariance(ring6_game):
    conc = ConcurrentLogitDynamics(ring6_game, 0.8, p=0.6)
    start = np.zeros(6, dtype=np.int64)

    def run_chunks(chunks):
        sim = EnsembleSimulator.seeded(
            conc, np.random.SeedSequence(99).spawn(4), start=start
        )
        assert type(sim.kernel) is SeededProbabilisticKernel
        for c in chunks:
            sim.run(c)
        return sim.indices

    whole = run_chunks([12])
    np.testing.assert_array_equal(whole, run_chunks([1] * 12))
    np.testing.assert_array_equal(whole, run_chunks([5, 7]))


def test_seeded_parallel_matches_seeded_concurrent_p1(ring6_game):
    """The seeded p = 1 kernel also skips mask rows, so it replays the
    SeededParallelKernel streams exactly."""
    start = np.zeros(6, dtype=np.int64)
    results = []
    for dyn in (
        ParallelLogitDynamics(ring6_game, 0.8),
        ConcurrentLogitDynamics(ring6_game, 0.8, p=1.0),
    ):
        sim = EnsembleSimulator.seeded(
            dyn, np.random.SeedSequence(123).spawn(5), start=start
        )
        sim.run(20)
        results.append(sim.indices)
    np.testing.assert_array_equal(results[0], results[1])


# ---------------------------------------------------------------------------
# the parallel trap (stationary law != Gibbs)
# ---------------------------------------------------------------------------


class TestParallelTrap:
    """Even coordination ring, p = 1: the concurrent chain provably settles
    away from the Gibbs measure of the sequential dynamics."""

    BETA = 2.0

    def test_empirical_occupation_matches_matrix_powers(self, ring4_game):
        conc = ConcurrentLogitDynamics(ring4_game, self.BETA, p=1.0)
        P = conc.transition_matrix()
        mu = np.zeros(ring4_game.space.size)
        mu[0] = 1.0
        steps = 50
        for _ in range(steps):
            mu = mu @ P
        sim = conc.ensemble(8192, start=0, rng=np.random.default_rng(11))
        sim.run(steps)
        emp = np.bincount(sim.indices, minlength=ring4_game.space.size) / 8192
        assert total_variation(emp, mu) < 0.03

    def test_concurrent_law_far_from_gibbs(self, ring4_game):
        conc = ConcurrentLogitDynamics(ring4_game, self.BETA, p=1.0)
        pi_conc = conc.stationary_distribution()
        pi_gibbs = gibbs_measure(ring4_game.potential_vector(), self.BETA)
        # the anti-aligned "blinking" profiles carry half the stationary mass
        assert total_variation(pi_conc, pi_gibbs) > 0.4
        P = conc.transition_matrix()
        mu = np.zeros(ring4_game.space.size)
        mu[0] = 1.0
        for _ in range(50):
            mu = mu @ P
        assert total_variation(mu, pi_gibbs) > 0.4

    def test_p_below_one_has_neither_gibbs_nor_product_form(self, ring4_game):
        beta = 1.0  # moderate temperature keeps all three laws distinct
        pi_half = ConcurrentLogitDynamics(
            ring4_game, beta, p=0.5
        ).stationary_distribution()
        pi_gibbs = gibbs_measure(ring4_game.potential_vector(), beta)
        pi_prod = theorem1207_stationary_product(ring4_game, beta)
        assert total_variation(pi_half, pi_gibbs) > 0.01
        assert total_variation(pi_half, pi_prod) > 0.1


# ---------------------------------------------------------------------------
# doubled potential and the 1207 bounds
# ---------------------------------------------------------------------------


class TestDoubledPotential:
    def test_psi_is_symmetric(self, ring6_game):
        psi = lemma1207_doubled_potential(ring6_game)
        np.testing.assert_allclose(psi, psi.T)

    def test_product_form_is_stationary_and_reversible(self, ring6_game):
        beta = 0.7
        conc = ConcurrentLogitDynamics(ring6_game, beta, p=1.0)
        pi = theorem1207_stationary_product(ring6_game, beta)
        np.testing.assert_allclose(pi, conc.stationary_distribution(), atol=1e-9)
        flow = pi[:, None] * conc.transition_matrix()
        np.testing.assert_allclose(flow, flow.T, atol=1e-12)

    def test_asymmetric_edge_payoffs_rejected(self):
        asymmetric = np.array([[0.0, 1.0], [0.0, 0.0]])
        game = LocalInteractionGame(nx.cycle_graph(4), asymmetric)
        with pytest.raises(ValueError, match="symmetric"):
            lemma1207_doubled_potential(game)

    def test_games_without_local_structure_rejected(self):
        with pytest.raises(TypeError, match="csr_arrays"):
            lemma1207_doubled_potential(object())


class TestConcurrentBounds:
    def test_mixing_upper_monotone_in_beta_and_p(self):
        lo = theorem1207_mixing_upper(64, 2, 0.1, 1.0)
        hi = theorem1207_mixing_upper(64, 2, 0.4, 1.0)
        assert np.isfinite(lo) and lo <= hi
        # lower update probability slows the contraction
        slow = theorem1207_mixing_upper(64, 2, 0.1, 1.0, p=0.25)
        assert lo <= slow < np.inf

    def test_mixing_upper_diverges_past_threshold(self):
        delta = 1.0
        beta_c = theorem1207_beta_threshold(4, delta)
        assert np.isfinite(beta_c)
        assert np.isfinite(theorem1207_mixing_upper(64, 4, 0.9 * beta_c, delta))
        assert theorem1207_mixing_upper(64, 4, 1.1 * beta_c, delta) == np.inf

    def test_beta_threshold_infinite_for_degree_at_most_one(self):
        assert theorem1207_beta_threshold(1, 1.0) == np.inf
        assert theorem1207_beta_threshold(0, 1.0) == np.inf

    def test_mixing_lower_grows_exponentially_in_beta(self):
        small = theorem1207_mixing_lower(1.0, 4.0, 8)
        large = theorem1207_mixing_lower(2.0, 4.0, 8)
        assert large > small > 0
        assert large / small == pytest.approx(np.exp(4.0))

    def test_update_rate_lower(self):
        assert lemma1207_update_rate_lower(2, 1.0) == 1.0
        # eps already above the per-player gap: zero steps needed
        assert lemma1207_update_rate_lower(2, 0.5, epsilon=0.49) > 0.0
        assert lemma1207_update_rate_lower(1, 0.5) == 0.0
        # fewer updates per step means more steps
        assert lemma1207_update_rate_lower(2, 0.1) > lemma1207_update_rate_lower(2, 0.9)


# ---------------------------------------------------------------------------
# adaptive + sharded estimation for concurrent dynamics
# ---------------------------------------------------------------------------


class TestConcurrentAdaptiveEstimation:
    def test_hitting_times_chunk_size_invariance(self, ring6_game):
        conc = ConcurrentLogitDynamics(ring6_game, 0.8, p=0.5)
        target = consensus_target(ring6_game)
        runs = [
            empirical_hitting_times(
                ring6_game, 0.8, 0, target, max_steps=500,
                precision=1e-9, seed=42, chunk_size=k, max_replicas=48,
                dynamics=conc,
            )
            for k in (1, 7, 64)
        ]
        np.testing.assert_array_equal(runs[0].samples, runs[1].samples)
        np.testing.assert_array_equal(runs[0].samples, runs[2].samples)

    def test_hitting_times_shard_count_invariance(self, ring6_game):
        conc = ConcurrentLogitDynamics(ring6_game, 0.8, p=0.5)
        target = consensus_target(ring6_game)
        serial = empirical_hitting_times(
            ring6_game, 0.8, 0, target, max_steps=500,
            precision=1e-9, seed=42, chunk_size=16, max_replicas=48,
            dynamics=conc,
        )
        for k in (1, 3, 8):
            with ShardedExecutor(k) as ex:
                sharded = empirical_hitting_times(
                    ring6_game, 0.8, 0, target, max_steps=500,
                    precision=1e-9, seed=42, chunk_size=16, max_replicas=48,
                    dynamics=conc, executor=ex,
                )
            np.testing.assert_array_equal(serial.samples, sharded.samples)

    def test_parallel_dynamics_now_supports_precision(self, ring6_game):
        """Before this change ParallelLogitDynamics was rejected outright;
        now it runs on its own seeded per-replica streams."""
        est = empirical_hitting_times(
            ring6_game, 0.8, 0, consensus_target(ring6_game), max_steps=500,
            precision=1e-9, seed=5, chunk_size=16, max_replicas=32,
            dynamics=ParallelLogitDynamics(ring6_game, 0.8),
        )
        assert est.n == 32
        assert est.samples.min() >= 0

    def test_tv_convergence_executor_shard_invariance(self, ring6_game):
        conc = ConcurrentLogitDynamics(ring6_game, 0.8, p=0.5)
        reference = conc.stationary_distribution()
        estimates = []
        for k in (1, 3, 8):
            with ShardedExecutor(k) as ex:
                estimates.append(
                    estimate_tv_convergence(
                        conc, reference, num_replicas=64, epsilon=0.1,
                        start=0, max_time=200, check_every=20, seed=7,
                        executor=ex,
                    )
                )
        for other in estimates[1:]:
            np.testing.assert_array_equal(estimates[0].tv_curve, other.tv_curve)
            np.testing.assert_array_equal(
                estimates[0].final_indices, other.final_indices
            )

    def test_tv_convergence_process_executor_matches_serial(self, ring6_game):
        conc = ConcurrentLogitDynamics(ring6_game, 0.8, p=0.5)
        reference = conc.stationary_distribution()
        with ShardedExecutor(2) as serial_ex:
            serial = estimate_tv_convergence(
                conc, reference, num_replicas=32, epsilon=0.1,
                start=0, max_time=100, check_every=25, seed=7, executor=serial_ex,
            )
        with ShardedExecutor(2, backend="process", max_workers=2) as proc_ex:
            process = estimate_tv_convergence(
                conc, reference, num_replicas=32, epsilon=0.1,
                start=0, max_time=100, check_every=25, seed=7, executor=proc_ex,
            )
        np.testing.assert_array_equal(serial.tv_curve, process.tv_curve)
        np.testing.assert_array_equal(serial.final_indices, process.final_indices)


# ---------------------------------------------------------------------------
# the numba-fallback warning is resolved once, in the parent
# ---------------------------------------------------------------------------


class TestBackendFallbackWarning:
    def _run(self, game, executor=None, backend="numba"):
        return empirical_hitting_times(
            game, 0.8, 0, consensus_target(game), max_steps=300,
            precision=1e-9, seed=3, chunk_size=8, max_replicas=16,
            backend=backend, executor=executor,
        )

    def test_fallback_warns_exactly_once_with_process_executor(
        self, ring6_game, monkeypatch
    ):
        """The backend is resolved once in the coordinator and the resolved
        instance shipped to the workers: with numba absent, exactly one
        visible parent-side warning — not one per worker process, and not
        zero because workers swallowed it."""
        monkeypatch.setattr(backend_mod, "_NUMBA", None)
        monkeypatch.setattr(backend_mod, "_warned_numba_fallback", False)
        with ShardedExecutor(2, backend="process", max_workers=2) as ex:
            with warnings.catch_warnings(record=True) as records:
                warnings.simplefilter("always")
                est = self._run(ring6_game, executor=ex)
        fallback = [
            w for w in records
            if issubclass(w.category, RuntimeWarning)
            and "falling back" in str(w.message)
        ]
        assert len(fallback) == 1
        # ... and the fallback run is the numpy run, sample for sample
        monkeypatch.setattr(backend_mod, "_warned_numba_fallback", True)
        reference = self._run(ring6_game, backend="numpy")
        np.testing.assert_array_equal(est.samples, reference.samples)

    def test_fallback_does_not_rewarn_within_process(self, ring6_game, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMBA", None)
        monkeypatch.setattr(backend_mod, "_warned_numba_fallback", False)
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            self._run(ring6_game)
            self._run(ring6_game)
        fallback = [w for w in records if "falling back" in str(w.message)]
        assert len(fallback) == 1
