"""Tests for congestion games (repro.games.congestion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.games.congestion import CongestionGame, SingletonCongestionGame, linear_delays
from repro.games.potential import potential_from_game


class TestSingletonCongestionGame:
    def test_is_exact_potential_game(self):
        game = SingletonCongestionGame(num_players=3, num_resources=2)
        assert game.verify_potential()

    def test_rosenthal_potential_matches_extraction(self):
        game = SingletonCongestionGame(num_players=2, num_resources=3)
        extracted = potential_from_game(game)
        assert extracted is not None
        declared = game.potential_vector()
        # potentials agree up to an additive constant
        diff = declared - extracted
        np.testing.assert_allclose(diff, diff[0] * np.ones_like(diff), atol=1e-9)

    def test_costs_with_linear_delays(self):
        game = SingletonCongestionGame(num_players=2, num_resources=2)
        # both on resource 0: each pays d(2) = 2, utility -2
        idx = game.space.encode((0, 0))
        assert game.utility(0, idx) == pytest.approx(-2.0)
        # split: each pays d(1) = 1
        idx_split = game.space.encode((0, 1))
        assert game.utility(0, idx_split) == pytest.approx(-1.0)
        assert game.utility(1, idx_split) == pytest.approx(-1.0)

    def test_balanced_profiles_minimise_potential(self):
        game = SingletonCongestionGame(num_players=4, num_resources=2)
        phi = game.potential_vector()
        minimisers = game.potential_minimizers()
        w = game.space.weight(np.arange(game.space.size))
        # with linear delays the balanced splits (2-2) minimise the potential
        assert np.all(w[minimisers] == 2)

    def test_wrong_delay_count_rejected(self):
        with pytest.raises(ValueError):
            SingletonCongestionGame(2, 2, delays=linear_delays(3))


class TestGeneralCongestionGame:
    def test_subset_strategies(self):
        # two players, three resources; strategies are paths {0,1} or {2}
        strategies = [
            [[0, 1], [2]],
            [[0, 1], [2]],
        ]
        game = CongestionGame(strategies, linear_delays(3))
        assert game.verify_potential()
        # both pick {0,1}: each resource has load 2, each player pays 2+2=4
        idx = game.space.encode((0, 0))
        assert game.utility(0, idx) == pytest.approx(-4.0)
        # player 0 on {0,1}, player 1 on {2}: player 0 pays 1+1, player 1 pays 1
        idx2 = game.space.encode((0, 1))
        assert game.utility(0, idx2) == pytest.approx(-2.0)
        assert game.utility(1, idx2) == pytest.approx(-1.0)

    def test_rejects_out_of_range_resource(self):
        with pytest.raises(ValueError):
            CongestionGame([[[0], [5]]], linear_delays(2))

    def test_rejects_empty_strategy_set(self):
        with pytest.raises(ValueError):
            CongestionGame([[]], linear_delays(1))

    def test_asymmetric_strategy_counts(self):
        strategies = [
            [[0], [1], [2]],
            [[0], [1]],
        ]
        game = CongestionGame(strategies, linear_delays(3))
        assert game.num_strategies == (3, 2)
        assert game.verify_potential()

    def test_nonlinear_delays(self):
        quadratic = [lambda k: float(k * k) for _ in range(2)]
        game = SingletonCongestionGame(2, 2, delays=quadratic)
        idx = game.space.encode((0, 0))
        # both on resource 0: each pays d(2) = 4
        assert game.utility(0, idx) == pytest.approx(-4.0)
        assert game.verify_potential()
