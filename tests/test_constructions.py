"""Tests for the paper's lower-bound potential constructions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.games.constructions import (
    BirthDeathPotentialGame,
    Theorem35Game,
    TwoWellGame,
    theorem35_potential,
    weight_potential_game,
)


class TestTheorem35Potential:
    def test_shape_and_extremes(self):
        n, g, l = 6, 2.0, 1.0
        phi = theorem35_potential(n, g, l)
        assert phi.shape == (2**n,)
        # maximum 0 attained on the ridge w(x) = c = 2, minimum -g at w=0
        assert np.max(phi) == pytest.approx(0.0)
        assert np.min(phi) == pytest.approx(-g)

    def test_symmetry_around_ridge(self):
        game = Theorem35Game(6, 2.0, 1.0)
        phi = game.potential_vector()
        w = game.space.weight(np.arange(game.space.size))
        c = 2
        # profiles with |w - c| equal have equal potential
        for k in range(3):
            vals_left = phi[w == c - k] if np.any(w == c - k) else None
            vals_right = phi[w == c + k] if np.any(w == c + k) else None
            if vals_left is not None and vals_right is not None:
                assert np.allclose(vals_left, vals_left[0])
                assert vals_left[0] == pytest.approx(vals_right[0])

    def test_structural_quantities_match_parameters(self):
        game = Theorem35Game(8, 3.0, 1.0)
        assert game.max_global_variation() == pytest.approx(3.0)
        assert game.max_local_variation() == pytest.approx(1.0)
        # the ridge must be crossed: zeta equals DeltaPhi for this family
        assert game.zeta() == pytest.approx(3.0)

    def test_validates_parameter_regime(self):
        with pytest.raises(ValueError):
            theorem35_potential(4, 10.0, 1.0)  # l < 2g/n violated
        with pytest.raises(ValueError):
            theorem35_potential(4, 1.0, 2.0)  # l > g violated
        with pytest.raises(ValueError):
            theorem35_potential(1, 1.0, 1.0)
        with pytest.raises(ValueError):
            theorem35_potential(4, -1.0, 1.0)

    def test_bottleneck_set_mass_below_half(self):
        from repro.core import gibbs_measure

        game = Theorem35Game(6, 2.0, 1.0)
        R = game.bottleneck_set()
        pi = gibbs_measure(game.potential_vector(), beta=2.0)
        assert pi[R].sum() <= 0.5 + 1e-12

    def test_zero_profile_in_bottleneck_set(self):
        game = Theorem35Game(6, 2.0, 1.0)
        assert 0 in game.bottleneck_set()

    def test_potential_game_property(self):
        assert Theorem35Game(5, 2.0, 1.0).verify_potential()


class TestTwoWellGame:
    def test_wells_and_barrier(self):
        game = TwoWellGame(4, barrier=1.5)
        phi = game.potential_vector()
        all0, all1 = game.well_indices
        assert phi[all0] == 0.0
        assert phi[all1] == 0.0
        mask = np.ones(game.space.size, dtype=bool)
        mask[[all0, all1]] = False
        assert np.all(phi[mask] == 1.5)

    def test_structural_quantities(self):
        game = TwoWellGame(4, barrier=2.0)
        assert game.max_global_variation() == pytest.approx(2.0)
        assert game.max_local_variation() == pytest.approx(2.0)
        assert game.zeta() == pytest.approx(2.0)

    def test_depth_ratio_validation(self):
        with pytest.raises(ValueError):
            TwoWellGame(4, barrier=1.0, depth_ratio=0.0)
        with pytest.raises(ValueError):
            TwoWellGame(4, barrier=1.0, depth_ratio=1.5)
        with pytest.raises(ValueError):
            TwoWellGame(4, barrier=-1.0)
        with pytest.raises(ValueError):
            TwoWellGame(1, barrier=1.0)

    def test_is_potential_game(self):
        assert TwoWellGame(3, barrier=1.0).verify_potential()


class TestWeightPotentialGame:
    def test_levels_applied_per_weight(self):
        levels = [0.0, 2.0, 1.0, 5.0]
        game = weight_potential_game(3, levels)
        phi = game.potential_vector()
        w = game.space.weight(np.arange(game.space.size))
        np.testing.assert_allclose(phi, np.asarray(levels)[w])

    def test_callable_form(self):
        game = weight_potential_game(4, lambda k: float(k * k))
        phi = game.potential_vector()
        w = game.space.weight(np.arange(game.space.size))
        np.testing.assert_allclose(phi, w.astype(float) ** 2)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            weight_potential_game(3, [0.0, 1.0])

    def test_birth_death_records_levels(self):
        levels = [0.0, 3.0, 1.0, 2.0, 0.5]
        game = BirthDeathPotentialGame(4, levels)
        np.testing.assert_allclose(game.weight_levels, levels)
        assert game.verify_potential()
