"""Cross-validation grid for finite opinion games (repro.games.opinion).

Four layers of evidence that the opinion game drops correctly onto every
layer of the stack:

1. **exact potential** — ``derive_edge_potential`` recovers the arXiv
   1311.1610 per-edge potential from the disagreement payoffs exactly, the
   game potential matches an independent brute-force evaluation, and
   non-potential / inconsistent edge payoffs are rejected with clear
   errors;
2. **fixed-seed equality** — scalar ``simulate_loop`` vs the batched
   engine, bit-for-bit, for the sequential / parallel / concurrent
   kernels;
3. **matrix cross-validation** — engine ensemble occupation vs dense
   transition-matrix powers at small ``n``, for all three kernels, on
   *both* the IndexState and MatrixState backends;
4. **theory targets** — measured mixing / stationary social cost checked
   against the ``theorem1311_*`` bound callables at small ``n``, plus the
   content-addressed ``store_spec`` round-trip that makes scenario-matrix
   cells cache stably.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics, gibbs_measure
from repro.core.bounds import (
    cutwidth_for_bound,
    lemma1311_social_cost_sandwich,
    theorem1311_mixing_upper,
    theorem1311_stability_upper,
    theorem1311_stationary_cost_upper,
)
from repro.core.mixing import measure_mixing_time
from repro.core.stationary import gibbs_expectation
from repro.core.variants import ConcurrentLogitDynamics, ParallelLogitDynamics
from repro.games import (
    FiniteOpinionGame,
    LocalInteractionGame,
    derive_edge_potential,
    opinion_edge_payoffs,
    opinion_edge_potential,
)
from repro.graphs import path_graph, ring_graph, star_graph
from repro.markov.tv import total_variation
from repro.parallel.store import canonical_key, describe

BELIEFS4 = (0.1, 0.8, 0.35, 0.6)
BELIEFS3 = (0.2, 0.9, 0.5)


def ring_opinion_game(num_opinions: int = 2) -> FiniteOpinionGame:
    return FiniteOpinionGame(ring_graph(4), BELIEFS4, num_opinions=num_opinions)


def kernel_factories():
    """(name, factory) pairs for the three cross-validated kernels."""
    return [
        ("sequential", lambda g: LogitDynamics(g, 1.0)),
        ("parallel", lambda g: ParallelLogitDynamics(g, 1.0)),
        ("concurrent", lambda g: ConcurrentLogitDynamics(g, 1.0, p=0.6)),
    ]


class TestOpinionPotentialExact:
    """Layer 1: the 1311.1610 potential, recovered and verified exactly."""

    @pytest.mark.parametrize("num_opinions", [2, 3, 5])
    def test_derive_edge_potential_recovers_paper_potential(self, num_opinions):
        derived = derive_edge_potential(opinion_edge_payoffs(num_opinions))
        assert derived is not None
        expected = opinion_edge_potential(num_opinions)
        np.testing.assert_allclose(derived, expected, atol=1e-12)
        assert derived[0, 0] == 0.0  # the paper's normalisation survives

    @pytest.mark.parametrize("num_opinions", [2, 3])
    def test_game_potential_matches_brute_force(self, num_opinions):
        graph = ring_graph(4)
        game = FiniteOpinionGame(graph, BELIEFS4, num_opinions=num_opinions)
        opinions = np.linspace(0.0, 1.0, num_opinions)
        beliefs = np.asarray(BELIEFS4)
        profiles = game.space.all_profiles()
        x = opinions[profiles]
        expected = ((x - beliefs[None, :]) ** 2).sum(axis=1)
        for u, v in graph.edges():
            expected += (x[:, u] - x[:, v]) ** 2
        np.testing.assert_allclose(
            game.potential_of_profiles(profiles), expected, atol=1e-12
        )

    def test_social_cost_decomposition(self):
        game = ring_opinion_game(3)
        profiles = game.space.all_profiles()
        sc = game.social_cost_of_profiles(profiles)
        # SC = 2 * disagreement + belief cost, and also Phi + disagreement
        np.testing.assert_allclose(
            sc,
            2.0 * game.disagreement_of_profiles(profiles)
            + game.belief_cost_of_profiles(profiles),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            sc,
            game.potential_of_profiles(profiles)
            + game.disagreement_of_profiles(profiles),
            atol=1e-12,
        )
        # social cost is minus the utilitarian welfare the sweeps report
        welfare = game.utility_profile_many(np.arange(game.space.size)).sum(axis=1)
        np.testing.assert_allclose(sc, -welfare, atol=1e-12)

    def test_gibbs_is_stationary_for_the_sequential_chain(self):
        game = ring_opinion_game(2)
        beta = 1.3
        pi = gibbs_measure(game.potential_vector(), beta)
        P = LogitDynamics(game, beta).transition_matrix()
        np.testing.assert_allclose(pi @ P, pi, atol=1e-12)

    def test_non_potential_edge_payoffs_rejected(self):
        # this asymmetric 3x3 matrix has no exact potential (Equation (1)
        # is unsolvable on the edge) — derivation must refuse, and a game
        # built on it must raise a clear error when the potential is needed
        bad = np.array([[0.0, 2.0, 1.0], [0.0, 0.0, 3.0], [5.0, 0.0, 0.0]])
        assert derive_edge_potential(bad) is None
        game = LocalInteractionGame(path_graph(3), bad, num_strategies=3)
        assert not game.has_potential
        with pytest.raises(ValueError, match="not a potential game"):
            game.potential_of_profiles(np.zeros((1, 3), dtype=np.int64))

    def test_inconsistent_explicit_potentials_rejected(self):
        with pytest.raises(ValueError, match=r"Equation \(1\)"):
            LocalInteractionGame(
                path_graph(3),
                opinion_edge_payoffs(2),
                edge_potentials=np.array([[0.0, 5.0], [5.0, 0.0]]),
            )

    def test_beliefs_validated(self):
        with pytest.raises(ValueError, match="shape"):
            FiniteOpinionGame(ring_graph(4), [0.5, 0.5])
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FiniteOpinionGame(ring_graph(4), [0.5, 0.5, 1.5, 0.0])
        with pytest.raises(ValueError, match="two opinions"):
            FiniteOpinionGame(ring_graph(4), BELIEFS4, num_opinions=1)


class TestStoreSpecRoundTrip:
    """The content identity that makes scenario-matrix cells cache stably."""

    def test_identical_games_share_a_canonical_key(self):
        a = FiniteOpinionGame(ring_graph(4), BELIEFS4, num_opinions=3)
        b = FiniteOpinionGame(ring_graph(4), list(BELIEFS4), num_opinions=3)
        assert canonical_key(describe(a)) == canonical_key(describe(b))

    def test_key_tracks_every_content_axis(self):
        base = FiniteOpinionGame(ring_graph(4), BELIEFS4, num_opinions=2)
        keys = {
            canonical_key(describe(base)),
            # different beliefs
            canonical_key(
                describe(FiniteOpinionGame(ring_graph(4), (0.1, 0.8, 0.35, 0.61)))
            ),
            # different discretisation
            canonical_key(
                describe(FiniteOpinionGame(ring_graph(4), BELIEFS4, num_opinions=3))
            ),
            # different social graph
            canonical_key(describe(FiniteOpinionGame(star_graph(4), BELIEFS4))),
        }
        assert len(keys) == 4

    def test_spec_is_self_describing(self):
        game = ring_opinion_game(3)
        spec = game.store_spec()
        assert spec["class"] == "FiniteOpinionGame"
        assert spec["num_opinions"] == 3
        np.testing.assert_allclose(spec["beliefs"], BELIEFS4)
        # round-trips through describe/canonical_key without error and
        # deterministically
        assert canonical_key(describe(game)) == canonical_key(describe(game))


class TestFixedSeedLoopVsEngine:
    """Layer 2: scalar reference loop vs batched engine, bit-for-bit."""

    @pytest.mark.parametrize("kernel_name,factory", kernel_factories())
    @pytest.mark.parametrize("num_opinions", [2, 3])
    def test_engine_matches_loop(self, kernel_name, factory, num_opinions):
        game = FiniteOpinionGame(path_graph(3), BELIEFS3, num_opinions=num_opinions)
        dynamics = factory(game)
        start = (0,) * game.num_players
        loop = dynamics.simulate_loop(start, 200, rng=np.random.default_rng(42))
        engine = dynamics.simulate(start, 200, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(loop, engine)


class TestEnsembleMatchesMatrixPowers:
    """Layer 3: engine occupation vs transition-matrix powers, both states."""

    @staticmethod
    def _empirical_after(dynamics, start_index, num_steps, state, seed):
        sim = dynamics.ensemble(
            6000, start=int(start_index), rng=np.random.default_rng(seed), state=state
        )
        sim.run(num_steps)
        return sim.empirical_distribution()

    @staticmethod
    def _matrix_power_distribution(P, start_index, num_steps):
        mu = np.zeros(P.shape[0])
        mu[start_index] = 1.0
        for _ in range(num_steps):
            mu = mu @ P
        return mu

    @pytest.mark.slow
    @pytest.mark.parametrize("state", ["index", "matrix"])
    @pytest.mark.parametrize("kernel_name,factory", kernel_factories())
    def test_kernel_occupation_matches_matrix_power(self, state, kernel_name, factory):
        game = ring_opinion_game(2)
        dynamics = factory(game)
        steps = 6
        emp = self._empirical_after(dynamics, 0, steps, state, seed=11)
        exact = self._matrix_power_distribution(
            dynamics.transition_matrix(), 0, steps
        )
        assert total_variation(emp, exact) < 0.03

    @pytest.mark.slow
    def test_index_and_matrix_states_agree_bit_for_bit(self):
        game = FiniteOpinionGame(path_graph(3), BELIEFS3, num_opinions=3)
        for _, factory in kernel_factories():
            dynamics = factory(game)
            runs = {}
            for state in ("index", "matrix"):
                sim = dynamics.ensemble(
                    32, start=(0,) * 3, rng=np.random.default_rng(5), state=state
                )
                runs[state] = sim.run(120, record_every=1)
            np.testing.assert_array_equal(runs["index"], runs["matrix"])


class TestTheoryTargetsAtSmallN:
    """Layer 4: measured quantities vs the theorem1311_* callables."""

    def test_sandwich_holds_pointwise_on_the_whole_space(self):
        game = ring_opinion_game(3)
        phi = game.potential_vector()
        sc = game.social_cost_vector()
        for phi_x, sc_x in zip(phi, sc):
            lower, upper = lemma1311_social_cost_sandwich(phi_x)
            assert lower - 1e-12 <= sc_x <= upper + 1e-12

    def test_measured_mixing_below_cutwidth_bound(self):
        game = ring_opinion_game(2)
        beta = 1.0
        measured = measure_mixing_time(game, beta, epsilon=0.25, max_time=10**5)
        bound = theorem1311_mixing_upper(
            game.num_players, beta, cutwidth_for_bound(ring_graph(4))
        )
        assert measured.mixing_time <= bound

    def test_potential_minimiser_certifies_the_stability_bound(self):
        game = ring_opinion_game(3)
        # the potential minimiser is a pure Nash; its social cost must obey
        # SC(x*) <= 2 SC(opt) — the price-of-stability factor
        x_star = int(np.argmin(game.potential_vector()))
        opt = game.optimal_social_cost()
        assert game.social_cost(x_star) <= theorem1311_stability_upper(opt) + 1e-12

    @pytest.mark.parametrize("beta", [0.5, 1.0, 2.0, 4.0])
    def test_exact_stationary_cost_below_bound(self, beta):
        game = ring_opinion_game(2)
        expected_cost = gibbs_expectation(
            game.potential_vector(), beta, game.social_cost_vector()
        )
        bound = theorem1311_stationary_cost_upper(
            game.optimal_social_cost(), beta, game.num_players, game.num_opinions
        )
        assert expected_cost <= bound

    @pytest.mark.slow
    def test_empirical_stationary_cost_below_bound(self):
        """An engine ensemble settled into stationarity respects the bound."""
        game = ring_opinion_game(2)
        beta = 2.0
        pi = gibbs_measure(game.potential_vector(), beta)
        rng = np.random.default_rng(17)
        starts = rng.choice(game.space.size, size=4000, p=pi)
        sim = LogitDynamics(game, beta).ensemble(4000, start_indices=starts, rng=rng)
        sim.run(60)
        profiles = game.space.decode_many(sim.indices)
        mean_cost = float(game.social_cost_of_profiles(profiles).mean())
        bound = theorem1311_stationary_cost_upper(
            game.optimal_social_cost(), beta, game.num_players, game.num_opinions
        )
        # statistical slack on top of the exact-expectation guarantee
        assert mean_cost <= bound * 1.05

    def test_consensus_indices_decode_to_consensus(self):
        game = ring_opinion_game(3)
        for s in range(3):
            profile = game.space.decode(game.consensus_index(s))
            assert set(profile) == {s}
        with pytest.raises(ValueError, match="opinion"):
            game.consensus_index(3)
