"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import LogitDynamics, gibbs_measure, logit_update_distribution
from repro.games import ExplicitPotentialGame, random_game
from repro.games.potential import zeta_barrier, zeta_barrier_bruteforce
from repro.games.space import ProfileSpace
from repro.markov.chain import is_stochastic_matrix
from repro.markov.tv import normalize_distribution, total_variation

# -- strategies -------------------------------------------------------------

strategy_shapes = st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4).filter(
    lambda ms: int(np.prod(ms)) <= 64
)

small_binary_players = st.integers(min_value=2, max_value=5)

betas = st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False)


def potentials(num_profiles: int):
    return arrays(
        dtype=np.float64,
        shape=num_profiles,
        elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False),
    )


# -- ProfileSpace invariants --------------------------------------------------


class TestProfileSpaceProperties:
    @given(shape=strategy_shapes)
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip(self, shape):
        space = ProfileSpace(shape)
        indices = np.arange(space.size)
        decoded = space.decode_many(indices)
        np.testing.assert_array_equal(space.encode_many(decoded), indices)

    @given(shape=strategy_shapes, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_replace_is_idempotent_and_local(self, shape, data):
        space = ProfileSpace(shape)
        idx = data.draw(st.integers(min_value=0, max_value=space.size - 1))
        player = data.draw(st.integers(min_value=0, max_value=space.num_players - 1))
        strategy = data.draw(st.integers(min_value=0, max_value=shape[player] - 1))
        replaced = space.replace(idx, player, strategy)
        # idempotent
        assert space.replace(replaced, player, strategy) == replaced
        # only the chosen coordinate changes
        before = space.decode(idx)
        after = space.decode(replaced)
        for j in range(space.num_players):
            if j != player:
                assert before[j] == after[j]
        assert after[player] == strategy

    @given(shape=strategy_shapes, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_neighbors_are_symmetric(self, shape, data):
        space = ProfileSpace(shape)
        idx = data.draw(st.integers(min_value=0, max_value=space.size - 1))
        for nb in space.neighbors(idx):
            assert idx in set(int(v) for v in space.neighbors(int(nb)))


# -- Gibbs / softmax invariants ----------------------------------------------


class TestGibbsProperties:
    @given(num_profiles=st.integers(min_value=2, max_value=32), beta=betas, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_gibbs_is_distribution_and_orders_by_potential(self, num_profiles, beta, data):
        phi = data.draw(potentials(num_profiles))
        pi = gibbs_measure(phi, beta)
        assert pi.shape == (num_profiles,)
        assert np.all(pi >= 0)
        assert pi.sum() == pytest.approx(1.0)
        # lower potential never gets strictly less mass
        order = np.argsort(phi)
        sorted_pi = pi[order]
        assert np.all(np.diff(sorted_pi) <= 1e-12)

    @given(
        beta=betas,
        utilities=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=6),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_is_distribution(self, beta, utilities):
        probs = logit_update_distribution(utilities, beta)
        assert np.all(probs >= 0)
        assert probs.sum() == pytest.approx(1.0)

    @given(num_profiles=st.integers(min_value=2, max_value=16), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_gibbs_shift_invariance(self, num_profiles, data):
        phi = data.draw(potentials(num_profiles))
        shift = data.draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
        np.testing.assert_allclose(
            gibbs_measure(phi, 1.0), gibbs_measure(phi + shift, 1.0), atol=1e-10
        )


# -- Total variation invariants ------------------------------------------------


class TestTVProperties:
    @given(
        weights_p=arrays(np.float64, 8, elements=st.floats(0.01, 10.0)),
        weights_q=arrays(np.float64, 8, elements=st.floats(0.01, 10.0)),
    )
    @settings(max_examples=60, deadline=None)
    def test_tv_in_unit_interval_and_symmetric(self, weights_p, weights_q):
        p = normalize_distribution(weights_p)
        q = normalize_distribution(weights_q)
        d = total_variation(p, q)
        assert 0.0 <= d <= 1.0 + 1e-12
        assert d == pytest.approx(total_variation(q, p))
        assert total_variation(p, p) == 0.0


# -- Logit dynamics invariants --------------------------------------------------


class TestLogitDynamicsProperties:
    @given(shape=strategy_shapes, beta=betas, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_transition_matrix_stochastic_for_random_games(self, shape, beta, seed):
        game = random_game(shape, rng=np.random.default_rng(seed))
        P = LogitDynamics(game, beta).transition_matrix()
        assert is_stochastic_matrix(P, tol=1e-8)

    @given(num_players=small_binary_players, beta=betas, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_gibbs_stationarity_for_random_potentials(self, num_players, beta, data):
        space_size = 2**num_players
        phi = data.draw(potentials(space_size))
        game = ExplicitPotentialGame.from_potential((2,) * num_players, phi)
        dynamics = LogitDynamics(game, beta)
        P = dynamics.transition_matrix()
        pi = gibbs_measure(phi, beta)
        np.testing.assert_allclose(pi @ P, pi, atol=1e-9)

    @given(num_players=small_binary_players, beta=betas, data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_detailed_balance_for_random_potentials(self, num_players, beta, data):
        space_size = 2**num_players
        phi = data.draw(potentials(space_size))
        game = ExplicitPotentialGame.from_potential((2,) * num_players, phi)
        dynamics = LogitDynamics(game, beta)
        P = dynamics.transition_matrix()
        pi = gibbs_measure(phi, beta)
        flow = pi[:, None] * P
        np.testing.assert_allclose(flow, flow.T, atol=1e-9)


# -- zeta barrier invariants ------------------------------------------------------


class TestZetaProperties:
    @given(num_players=st.integers(2, 4), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_union_find_matches_bruteforce(self, num_players, data):
        space = ProfileSpace((2,) * num_players)
        phi = data.draw(potentials(space.size))
        fast = zeta_barrier(phi, space)
        slow = zeta_barrier_bruteforce(phi, space)
        assert fast == pytest.approx(slow, abs=1e-9)

    @given(num_players=st.integers(2, 4), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_zeta_between_zero_and_delta_phi(self, num_players, data):
        space = ProfileSpace((2,) * num_players)
        phi = data.draw(potentials(space.size))
        z = zeta_barrier(phi, space)
        assert -1e-12 <= z <= float(np.ptp(phi)) + 1e-12
