"""Tests for coordination games (repro.games.coordination)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.games.base import pure_nash_equilibria
from repro.games.coordination import (
    CoordinationParams,
    GraphicalCoordinationGame,
    TwoPlayerCoordinationGame,
    basic_coordination_payoffs,
)


class TestCoordinationParams:
    def test_deltas(self):
        p = CoordinationParams(a=3.0, b=2.0, c=0.5, d=1.0)
        assert p.delta0 == pytest.approx(2.0)
        assert p.delta1 == pytest.approx(1.5)

    def test_risk_dominance(self):
        assert CoordinationParams.from_deltas(2.0, 1.0).risk_dominant == 0
        assert CoordinationParams.from_deltas(1.0, 2.0).risk_dominant == 1
        assert CoordinationParams.ising(1.0).risk_dominant is None

    def test_rejects_non_coordination(self):
        with pytest.raises(ValueError):
            CoordinationParams(a=0.0, b=1.0, c=0.0, d=1.0)

    def test_edge_potential_values(self):
        p = CoordinationParams.from_deltas(2.0, 1.0)
        assert p.edge_potential(0, 0) == -2.0
        assert p.edge_potential(1, 1) == -1.0
        assert p.edge_potential(0, 1) == 0.0
        assert p.edge_potential(1, 0) == 0.0

    def test_payoff_matrices(self):
        p = CoordinationParams(a=3.0, b=2.0, c=0.5, d=1.0)
        row, col = basic_coordination_payoffs(p)
        np.testing.assert_allclose(row, [[3.0, 0.5], [1.0, 2.0]])
        np.testing.assert_allclose(col, row.T)


class TestTwoPlayerCoordinationGame:
    def test_is_potential_game(self):
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))
        assert game.verify_potential()

    def test_pure_nash_equilibria(self):
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))
        eq = set(pure_nash_equilibria(game))
        assert eq == {game.space.encode((0, 0)), game.space.encode((1, 1))}

    def test_potential_values_match_paper(self):
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.5))
        phi = game.potential_vector()
        assert phi[game.space.encode((0, 0))] == pytest.approx(-2.0)
        assert phi[game.space.encode((1, 1))] == pytest.approx(-1.5)
        assert phi[game.space.encode((0, 1))] == pytest.approx(0.0)


class TestGraphicalCoordinationGame:
    def test_single_edge_matches_two_player(self):
        params = CoordinationParams.from_deltas(2.0, 1.0)
        g2 = TwoPlayerCoordinationGame(params)
        graphical = GraphicalCoordinationGame(nx.path_graph(2), params)
        np.testing.assert_allclose(
            graphical.potential_vector(), g2.potential_vector()
        )
        for i in range(2):
            np.testing.assert_allclose(
                graphical.utility_matrix(i), g2.utility_matrix(i)
            )

    def test_potential_consistency(self, ring5_ising_game, clique4_game):
        assert ring5_ising_game.verify_potential()
        assert clique4_game.verify_potential()

    def test_consensus_profiles_are_nash(self, clique4_game):
        all0, all1 = clique4_game.consensus_profiles()
        eq = set(pure_nash_equilibria(clique4_game))
        assert all0 in eq and all1 in eq

    def test_risk_dominant_profile_has_min_potential(self, clique4_game):
        rd = clique4_game.risk_dominant_profile()
        phi = clique4_game.potential_vector()
        assert rd is not None
        assert phi[rd] == pytest.approx(np.min(phi))

    def test_no_risk_dominant_on_ising(self, ring5_ising_game):
        assert ring5_ising_game.risk_dominant_profile() is None
        all0, all1 = ring5_ising_game.consensus_profiles()
        phi = ring5_ising_game.potential_vector()
        assert phi[all0] == pytest.approx(phi[all1])

    def test_utility_is_sum_over_edges(self):
        params = CoordinationParams.from_deltas(2.0, 1.0)
        graph = nx.path_graph(3)  # edges (0,1), (1,2)
        game = GraphicalCoordinationGame(graph, params)
        # profile (0, 0, 1): player 1 coordinates with 0 on edge (0,1) -> a=2
        # and miscoordinates on edge (1,2) -> c=0; total 2
        idx = game.space.encode((0, 0, 1))
        assert game.utility(1, idx) == pytest.approx(2.0)
        # player 0 only has one edge -> utility 2
        assert game.utility(0, idx) == pytest.approx(2.0)
        # player 2 miscoordinates -> d = 0
        assert game.utility(2, idx) == pytest.approx(0.0)

    def test_potential_is_sum_of_edge_potentials(self):
        params = CoordinationParams.from_deltas(2.0, 1.0)
        graph = nx.cycle_graph(4)
        game = GraphicalCoordinationGame(graph, params)
        profiles = game.space.all_profiles()
        phi = game.potential_vector()
        for x in range(game.space.size):
            expected = sum(
                params.edge_potential(profiles[x, u], profiles[x, v])
                for u, v in graph.edges()
            )
            assert phi[x] == pytest.approx(expected)

    def test_clique_potential_by_ones_count(self):
        params = CoordinationParams.from_deltas(2.0, 1.0)
        game = GraphicalCoordinationGame(nx.complete_graph(4), params)
        levels = game.potential_by_ones_count()
        assert levels is not None
        phi = game.potential_vector()
        w = game.space.weight(np.arange(game.space.size))
        np.testing.assert_allclose(phi, levels[w])

    def test_non_clique_returns_none_for_levels(self, ring5_ising_game):
        assert ring5_ising_game.potential_by_ones_count() is None

    def test_arbitrary_node_labels_are_relabelled(self):
        graph = nx.Graph()
        graph.add_edges_from([("a", "b"), ("b", "c")])
        game = GraphicalCoordinationGame(graph, CoordinationParams.ising(1.0))
        assert game.num_players == 3
        assert sorted(game.graph.nodes()) == [0, 1, 2]

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            GraphicalCoordinationGame(nx.Graph(), CoordinationParams.ising(1.0))

    def test_num_edges(self, clique4_game):
        assert clique4_game.num_edges == 6
