"""Sharded execution: shard-count invariance, seeding, process backend.

The contract under test is the tentpole guarantee of :mod:`repro.parallel`:
splitting a replica ensemble into k shards — on any backend — never
changes a single number.  Pooled samples, intervals, TV curves and final
indices must be bit-for-bit identical for k in {1, 3, 8} and identical to
the unsharded serial run, because every sample/replica is a pure function
of its own ``SeedSequence`` child.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import pytest

from repro.core.metastability import empirical_escape_times, empirical_hitting_times
from repro.core.mixing import estimate_mixing_time_ensemble, estimate_tv_convergence
from repro.analysis.welfare import estimate_stationary_welfare
from repro.core.logit import LogitDynamics
from repro.engine.kernels import SeededSequentialKernel
from repro.games import IsingGame, TwoWellGame
from repro.parallel import (
    ShardedExecutor,
    as_executor,
    merge_shard_moments,
    pool_shard_samples,
    shard_plan,
)
from repro.stats import run_until_width


def uniform_sampler(children):
    """Module-level (hence picklable) reference sampler: one U(0,1) each."""
    return np.array([np.random.default_rng(c).random() for c in children])


@dataclass
class MagnetizationAtLeast:
    """Picklable magnetization-threshold predicate for Ising wells."""

    game: IsingGame
    threshold: float

    def __call__(self, profiles):
        return self.game.magnetization_of_profiles(profiles) >= self.threshold


# ---------------------------------------------------------------------------
# seeding primitives
# ---------------------------------------------------------------------------


def test_spawn_block_matches_serial_spawn():
    root = np.random.SeedSequence(1234)
    serial = np.random.SeedSequence(1234).spawn(10)
    block = SeededSequentialKernel.spawn_block(root, 3, 4)
    for mine, reference in zip(block, serial[3:7]):
        assert mine.spawn_key == reference.spawn_key
        np.testing.assert_array_equal(
            np.random.default_rng(mine).random(8),
            np.random.default_rng(reference).random(8),
        )
    # the root's own spawn counter is untouched
    assert root.n_children_spawned == 0


def test_spawn_block_on_an_already_spawned_parent():
    parent = np.random.SeedSequence(7).spawn(3)[2]
    serial = np.random.SeedSequence(7).spawn(3)[2].spawn(5)
    block = SeededSequentialKernel.spawn_block(parent, 0, 5)
    for mine, reference in zip(block, serial):
        np.testing.assert_array_equal(
            np.random.default_rng(mine).random(4),
            np.random.default_rng(reference).random(4),
        )


def test_spawn_block_rejects_negative_positions():
    root = np.random.SeedSequence(0)
    with pytest.raises(ValueError):
        SeededSequentialKernel.spawn_block(root, -1, 2)


def test_shard_plan_partitions_exactly():
    for total in (0, 1, 2, 7, 64):
        for shards in (1, 3, 8):
            plan = shard_plan(total, shards)
            assert sum(c for _, c in plan) == total
            assert all(c > 0 for _, c in plan)
            # contiguous and ordered
            expect = 0
            for off, cnt in plan:
                assert off == expect
                expect += cnt
            if total:
                counts = [c for _, c in plan]
                assert max(counts) - min(counts) <= 1
    with pytest.raises(ValueError):
        shard_plan(4, 0)


# ---------------------------------------------------------------------------
# shard-count invariance (the acceptance criterion: k in {1, 3, 8})
# ---------------------------------------------------------------------------


def test_run_until_width_shard_count_invariance():
    serial = run_until_width(
        uniform_sampler, 0.0, max_n=48, chunk_size=16, support=(0.0, 1.0), seed=77
    )
    for k in (1, 3, 8):
        sharded = run_until_width(
            uniform_sampler,
            0.0,
            max_n=48,
            chunk_size=16,
            support=(0.0, 1.0),
            seed=77,
            executor=ShardedExecutor(num_shards=k),
        )
        np.testing.assert_array_equal(serial.samples, sharded.samples)
        assert (serial.estimate, serial.lower, serial.upper, serial.n) == (
            sharded.estimate,
            sharded.lower,
            sharded.upper,
            sharded.n,
        )


def test_hitting_time_estimator_shard_count_invariance():
    game = IsingGame(nx.cycle_graph(6), coupling=1.0)
    target = int(game.space.encode(np.ones(6, dtype=np.int64)))
    common = dict(
        max_steps=400, precision=1e-9, chunk_size=32, max_replicas=64, seed=5
    )
    serial = empirical_hitting_times(game, 0.7, 0, target, **common)
    for k in (1, 3, 8):
        sharded = empirical_hitting_times(
            game, 0.7, 0, target, executor=ShardedExecutor(k), **common
        )
        np.testing.assert_array_equal(serial.samples, sharded.samples)
        assert (serial.lower, serial.upper) == (sharded.lower, sharded.upper)


def test_escape_time_estimator_shard_count_invariance():
    game = TwoWellGame(5, barrier=1.2)
    phi = game.potential_vector()
    well = np.flatnonzero(phi <= np.quantile(phi, 0.25))
    common = dict(
        max_steps=300, precision=1e-9, chunk_size=16, max_replicas=48, seed=3
    )
    serial = empirical_escape_times(game, 1.0, well, **common)
    for k in (1, 3, 8):
        sharded = empirical_escape_times(
            game, 1.0, well, executor=ShardedExecutor(k), **common
        )
        np.testing.assert_array_equal(serial.samples, sharded.samples)


def test_welfare_estimator_shard_count_invariance():
    game = IsingGame(nx.cycle_graph(5), coupling=1.0)
    common = dict(num_steps=50, num_replicas=48, chunk_size=16, seed=9)
    serial = estimate_stationary_welfare(game, 0.5, **common)
    for k in (1, 3):
        sharded = estimate_stationary_welfare(
            game, 0.5, executor=ShardedExecutor(k), **common
        )
        assert serial.estimate == sharded.estimate
        assert (serial.lower, serial.upper) == (sharded.lower, sharded.upper)


def test_tv_convergence_shard_count_invariance():
    game = IsingGame(nx.cycle_graph(6), coupling=1.0)
    runs = {
        k: estimate_mixing_time_ensemble(
            game,
            0.3,
            num_replicas=128,
            max_time=800,
            seed=21,
            executor=ShardedExecutor(k),
        )
        for k in (1, 3, 8)
    }
    base = runs[1]
    for k in (3, 8):
        np.testing.assert_array_equal(base.tv_curve, runs[k].tv_curve)
        np.testing.assert_array_equal(base.final_indices, runs[k].final_indices)
        assert base.mixing_time_estimate == runs[k].mixing_time_estimate
        assert base.converged == runs[k].converged


def test_tv_convergence_sharded_band_invariance():
    game = IsingGame(nx.cycle_graph(5), coupling=1.0)
    dynamics = LogitDynamics(game, 0.4)
    pi = dynamics.stationary_distribution()
    runs = [
        estimate_tv_convergence(
            dynamics,
            pi,
            num_replicas=192,
            max_time=600,
            alpha=0.05,
            seed=2,
            executor=ShardedExecutor(k),
        )
        for k in (1, 3)
    ]
    np.testing.assert_array_equal(runs[0].tv_band, runs[1].tv_band)
    assert runs[0].mixing_time_estimate == runs[1].mixing_time_estimate


# ---------------------------------------------------------------------------
# the process backend
# ---------------------------------------------------------------------------


def test_process_backend_bit_for_bit_and_moment_merge():
    root = np.random.SeedSequence(55)
    with ShardedExecutor(num_shards=2, backend="process") as executor:
        shards = executor.map_chunk(uniform_sampler, root, 0, 10)
    pooled = pool_shard_samples(shards)
    serial = uniform_sampler(np.random.SeedSequence(55).spawn(10))
    np.testing.assert_array_equal(pooled, serial)
    merged = merge_shard_moments(shards)
    assert merged.count == 10
    assert np.isclose(merged.mean, pooled.mean())
    assert np.isclose(merged.variance, pooled.var(ddof=1))


def test_process_backend_runs_a_real_estimator():
    game = IsingGame(nx.cycle_graph(6), coupling=1.0)
    target = MagnetizationAtLeast(game, 0.5)
    start = np.zeros(6, dtype=np.int64)
    common = dict(
        max_steps=200, precision=1e-9, chunk_size=16, max_replicas=32, seed=13
    )
    serial = empirical_hitting_times(game, 0.6, start, target, **common)
    with ShardedExecutor(num_shards=2, backend="process") as executor:
        sharded = empirical_hitting_times(
            game, 0.6, start, target, executor=executor, **common
        )
    np.testing.assert_array_equal(serial.samples, sharded.samples)


def test_process_backend_rejects_unpicklable_samplers():
    with ShardedExecutor(num_shards=2, backend="process") as executor:
        with pytest.raises(ValueError, match="pickle"):
            run_until_width(
                lambda children: np.zeros(len(children)),
                0.0,
                max_n=8,
                chunk_size=8,
                support=(0.0, 1.0),
                seed=1,
                executor=executor,
            )


def broken_sampler(children):
    """Picklable, but raises at runtime — a sampler bug, not a pickle one."""
    raise TypeError("boom inside the worker")


def test_process_backend_does_not_mislabel_worker_bugs_as_pickle_errors():
    with ShardedExecutor(num_shards=2, backend="process") as executor:
        with pytest.raises(TypeError, match="boom inside the worker"):
            run_until_width(
                broken_sampler,
                0.0,
                max_n=8,
                chunk_size=8,
                support=(0.0, 1.0),
                seed=1,
                executor=executor,
            )


def test_hitting_sweep_executor_requires_seed():
    from repro.analysis.sweep import hitting_time_size_sweep

    with pytest.raises(ValueError, match="seed="):
        hitting_time_size_sweep(
            IsingGame,
            sizes=[5],
            beta=0.5,
            start_factory=np.zeros,
            target_factory=id,
            precision=0.5,
            executor=ShardedExecutor(2),
        )


# ---------------------------------------------------------------------------
# knob validation
# ---------------------------------------------------------------------------


def test_as_executor_normalisation():
    assert as_executor(None) is None
    ex = ShardedExecutor(2)
    assert as_executor(ex) is ex
    assert as_executor("serial").backend == "serial"
    assert as_executor("process").backend == "process"
    with pytest.raises(ValueError):
        as_executor("threads")


def test_sharded_executor_validation():
    with pytest.raises(ValueError):
        ShardedExecutor(num_shards=0)
    with pytest.raises(ValueError):
        ShardedExecutor(num_shards=1, backend="mpi")
    with pytest.raises(ValueError):
        ShardedExecutor(num_shards=1, max_workers=0)


def test_executor_requires_adaptive_mode():
    game = IsingGame(nx.cycle_graph(5), coupling=1.0)
    with pytest.raises(ValueError, match="precision"):
        empirical_hitting_times(game, 0.5, 0, 1, executor=ShardedExecutor(2))
    with pytest.raises(ValueError, match="precision"):
        empirical_escape_times(game, 0.5, [0, 1], executor=ShardedExecutor(2))


def test_tv_convergence_knob_conflicts():
    game = IsingGame(nx.cycle_graph(5), coupling=1.0)
    dynamics = LogitDynamics(game, 0.5)
    pi = dynamics.stationary_distribution()
    with pytest.raises(ValueError, match="rng"):
        estimate_tv_convergence(
            dynamics,
            pi,
            num_replicas=8,
            max_time=10,
            rng=np.random.default_rng(0),
            executor=ShardedExecutor(2),
        )
    with pytest.raises(ValueError, match="seed"):
        estimate_tv_convergence(dynamics, pi, num_replicas=8, max_time=10, seed=3)
