"""Tests for cutwidth computation (repro.graphs.cutwidth) and topologies."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs.cutwidth import (
    clique_cutwidth,
    cutwidth_exact,
    cutwidth_greedy,
    cutwidth_known,
    cutwidth_of_ordering,
)
from repro.graphs.topologies import (
    binary_tree_graph,
    clique_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
    torus_graph,
)


class TestCutwidthOfOrdering:
    def test_path_natural_ordering(self):
        g = nx.path_graph(5)
        assert cutwidth_of_ordering(g, [0, 1, 2, 3, 4]) == 1

    def test_path_bad_ordering(self):
        g = nx.path_graph(5)
        # interleaving the endpoints inflates the cut
        assert cutwidth_of_ordering(g, [0, 4, 1, 3, 2]) > 1

    def test_rejects_non_permutation(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            cutwidth_of_ordering(g, [0, 1])
        with pytest.raises(ValueError):
            cutwidth_of_ordering(g, [0, 1, 1])


class TestExactCutwidth:
    def test_path(self):
        assert cutwidth_exact(nx.path_graph(6)) == 1

    def test_ring(self):
        assert cutwidth_exact(nx.cycle_graph(6)) == 2

    def test_star(self):
        # star K_{1,4}: cutwidth = ceil(4/2) = 2
        assert cutwidth_exact(nx.star_graph(4)) == 2

    def test_clique(self):
        for n in (3, 4, 5, 6):
            assert cutwidth_exact(nx.complete_graph(n)) == clique_cutwidth(n)

    def test_edgeless(self):
        g = nx.empty_graph(4)
        assert cutwidth_exact(g) == 0

    def test_grid_2x3(self):
        # known small value; verify against brute force over all orderings
        from itertools import permutations

        g = grid_graph(2, 3)
        brute = min(cutwidth_of_ordering(g, p) for p in permutations(g.nodes()))
        assert cutwidth_exact(g) == brute

    def test_matches_bruteforce_random_graphs(self):
        from itertools import permutations

        rng = np.random.default_rng(5)
        for _ in range(3):
            g = erdos_renyi_graph(5, 0.5, rng=rng)
            brute = min(cutwidth_of_ordering(g, p) for p in permutations(g.nodes()))
            assert cutwidth_exact(g) == brute

    def test_size_guard(self):
        with pytest.raises(ValueError):
            cutwidth_exact(nx.path_graph(30))


class TestGreedyAndKnown:
    def test_greedy_upper_bounds_exact(self):
        rng = np.random.default_rng(1)
        for _ in range(3):
            g = erdos_renyi_graph(7, 0.4, rng=rng)
            assert cutwidth_greedy(g, rng=rng) >= cutwidth_exact(g)

    def test_greedy_is_tight_on_path(self):
        assert cutwidth_greedy(nx.path_graph(10)) == 1

    def test_known_closed_forms(self):
        assert cutwidth_known(nx.path_graph(7)) == 1
        assert cutwidth_known(nx.cycle_graph(8)) == 2
        assert cutwidth_known(nx.star_graph(5)) == 3  # ceil(5/2)
        assert cutwidth_known(nx.complete_graph(6)) == 9
        assert cutwidth_known(nx.empty_graph(3)) == 0

    def test_known_returns_none_for_other_graphs(self):
        assert cutwidth_known(grid_graph(2, 3)) is None

    def test_known_matches_exact_where_defined(self):
        for g in (nx.path_graph(6), nx.cycle_graph(6), nx.star_graph(4), nx.complete_graph(5)):
            assert cutwidth_known(g) == cutwidth_exact(g)

    def test_clique_cutwidth_formula(self):
        assert clique_cutwidth(4) == 4
        assert clique_cutwidth(5) == 6
        assert clique_cutwidth(6) == 9


class TestTopologies:
    def test_ring(self):
        g = ring_graph(6)
        assert g.number_of_nodes() == 6 and g.number_of_edges() == 6
        assert all(d == 2 for _, d in g.degree())

    def test_clique(self):
        g = clique_graph(5)
        assert g.number_of_edges() == 10

    def test_path_and_star(self):
        assert path_graph(5).number_of_edges() == 4
        g = star_graph(5)
        assert g.number_of_edges() == 4
        assert max(d for _, d in g.degree()) == 4

    def test_grid_and_torus(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert sorted(g.nodes()) == list(range(12))
        t = torus_graph(3, 3)
        assert all(d == 4 for _, d in t.degree())

    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert g.number_of_nodes() == 2**4 - 1

    def test_erdos_renyi_connected(self):
        g = erdos_renyi_graph(10, 0.4, rng=np.random.default_rng(2))
        assert nx.is_connected(g)

    def test_random_regular(self):
        g = random_regular_graph(8, 3, rng=np.random.default_rng(3))
        assert all(d == 3 for _, d in g.degree())

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            ring_graph(2)
        with pytest.raises(ValueError):
            clique_graph(1)
        with pytest.raises(ValueError):
            torus_graph(2, 3)
        with pytest.raises(ValueError):
            random_regular_graph(5, 5)
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.5)
