"""Cross-validation of the variant update-rule kernels (repro.engine.kernels).

Three layers of evidence that the batched kernels advance exactly the
dynamics the variant classes define:

1. **fixed-seed equivalence** — engine trajectories must reproduce each
   variant's scalar ``simulate_loop`` reference bit-for-bit;
2. **matrix cross-validation** — ensemble empirical distributions must match
   powers of the variants' dense transition matrices to statistical
   tolerance;
3. **kernel properties** (seeded grid over games and betas) — the
   sequential-logit kernel satisfies detailed balance w.r.t. the Gibbs
   measure and preserves it empirically, the parallel kernel demonstrably
   does *not* converge to Gibbs on the two-player coordination "parallel
   trap", and the best-response kernel absorbs at strict pure Nash.

Plus the dedicated regression for round-robin round bookkeeping under
``record_every`` and the annealed-schedule edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics, gibbs_measure
from repro.core.variants import (
    AnnealedLogitDynamics,
    BestResponseDynamics,
    ParallelLogitDynamics,
    RoundRobinLogitDynamics,
)
from repro.engine import EnsembleSimulator, ParallelKernel
from repro.games import (
    CoordinationParams,
    SingletonCongestionGame,
    TableGame,
    TwoPlayerCoordinationGame,
    TwoWellGame,
    pure_nash_equilibria,
)
from repro.markov.tv import total_variation


def coordination_game() -> TwoPlayerCoordinationGame:
    return TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))


def variant_factories():
    """(name, factory) pairs covering all four variants, incl. both schedule kinds."""
    return [
        ("parallel", lambda g: ParallelLogitDynamics(g, 0.8)),
        ("best_response", lambda g: BestResponseDynamics(g)),
        ("annealed_callable", lambda g: AnnealedLogitDynamics(g, lambda t: 0.1 + 0.05 * t)),
        ("annealed_sequence", lambda g: AnnealedLogitDynamics(g, np.linspace(0.0, 2.0, 600))),
        ("round_robin", lambda g: RoundRobinLogitDynamics(g, 0.8)),
    ]


def small_games():
    return [
        ("two_well", TwoWellGame(3, barrier=1.0)),
        ("coordination", coordination_game()),
        ("congestion", SingletonCongestionGame(num_players=3, num_resources=3)),
    ]


class TestFixedSeedEquivalence:
    """Engine kernels vs. the scalar reference loops, same seed, exact match."""

    @pytest.mark.parametrize("variant_name,factory", variant_factories())
    @pytest.mark.parametrize("game_name,game", small_games())
    def test_engine_matches_loop(self, variant_name, factory, game_name, game):
        dynamics = factory(game)
        start = (0,) * game.num_players
        loop = dynamics.simulate_loop(start, 250, rng=np.random.default_rng(42))
        engine = dynamics.simulate(start, 250, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(loop, engine)

    @pytest.mark.parametrize("variant_name,factory", variant_factories())
    def test_engine_matches_loop_with_record_every(self, variant_name, factory):
        game = SingletonCongestionGame(num_players=4, num_resources=3)
        dynamics = factory(game)
        loop = dynamics.simulate_loop(
            (0, 1, 2, 0), 120, rng=np.random.default_rng(7), record_every=10
        )
        engine = dynamics.simulate(
            (0, 1, 2, 0), 120, rng=np.random.default_rng(7), record_every=10
        )
        np.testing.assert_array_equal(loop, engine)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda g: ParallelLogitDynamics(g, 0.8),
            lambda g: BestResponseDynamics(g),
            lambda g: RoundRobinLogitDynamics(g, 0.8),
        ],
    )
    def test_gather_and_matrix_free_agree(self, factory, two_well_game):
        dynamics = factory(two_well_game)
        runs = {}
        for mode in ("gather", "matrix_free"):
            sim = dynamics.ensemble(
                24, start=(0,) * 4, rng=np.random.default_rng(11), mode=mode
            )
            runs[mode] = sim.run(150, record_every=1)
        np.testing.assert_array_equal(runs["gather"], runs["matrix_free"])

    def test_kernel_game_mismatch_rejected(self, two_well_game):
        other = ParallelLogitDynamics(coordination_game(), 1.0)
        with pytest.raises(ValueError, match="same game"):
            EnsembleSimulator(
                LogitDynamics(two_well_game, 1.0), 4, kernel=ParallelKernel(other)
            )


class TestEmpiricalMatchesMatrixPowers:
    """Ensemble occupation vs. dense transition-matrix powers (statistical)."""

    @staticmethod
    def _empirical_after(dynamics, game, start_index, num_steps, num_replicas, seed):
        sim = dynamics.ensemble(
            num_replicas, start=int(start_index), rng=np.random.default_rng(seed)
        )
        sim.run(num_steps)
        return sim.empirical_distribution()

    @staticmethod
    def _matrix_power_distribution(P, start_index, num_steps):
        mu = np.zeros(P.shape[0])
        mu[start_index] = 1.0
        for _ in range(num_steps):
            mu = mu @ P
        return mu

    @pytest.mark.slow
    def test_parallel_kernel(self):
        game = coordination_game()
        dynamics = ParallelLogitDynamics(game, 0.9)
        emp = self._empirical_after(dynamics, game, 0, 7, 6000, seed=1)
        exact = self._matrix_power_distribution(dynamics.transition_matrix(), 0, 7)
        assert total_variation(emp, exact) < 0.03

    @pytest.mark.slow
    def test_best_response_kernel(self):
        game = SingletonCongestionGame(num_players=3, num_resources=3)
        dynamics = BestResponseDynamics(game)
        emp = self._empirical_after(dynamics, game, 5, 6, 6000, seed=2)
        exact = self._matrix_power_distribution(dynamics.transition_matrix(), 5, 6)
        assert total_variation(emp, exact) < 0.03

    @pytest.mark.slow
    def test_round_robin_kernel_full_rounds(self):
        game = TwoWellGame(3, barrier=1.0)
        dynamics = RoundRobinLogitDynamics(game, 0.7)
        n = game.num_players
        rounds = 4
        emp = self._empirical_after(dynamics, game, 0, rounds * n, 6000, seed=3)
        exact = self._matrix_power_distribution(
            dynamics.round_transition_matrix(), 0, rounds
        )
        assert total_variation(emp, exact) < 0.03

    @pytest.mark.slow
    def test_annealed_kernel(self):
        game = TwoWellGame(3, barrier=1.0)
        betas = [0.0, 0.3, 0.6, 0.9, 1.2, 1.5]
        dynamics = AnnealedLogitDynamics(game, betas)
        emp = self._empirical_after(dynamics, game, 0, len(betas), 6000, seed=4)
        mu = np.zeros(game.space.size)
        mu[0] = 1.0
        exact = dynamics.evolve_distribution(mu, len(betas))
        assert total_variation(emp, exact) < 0.03


class TestKernelProperties:
    """Seeded grid over games/betas: the kernels' defining properties."""

    @pytest.mark.parametrize("beta", [0.0, 0.5, 1.5])
    @pytest.mark.parametrize("game_name,game", small_games()[:2])
    def test_sequential_detailed_balance_wrt_gibbs(self, beta, game_name, game):
        """pi(x) P(x, y) == pi(y) P(y, x) for the sequential logit chain."""
        P = LogitDynamics(game, beta).transition_matrix()
        pi = gibbs_measure(game.potential_vector(), beta)
        flux = pi[:, None] * P
        np.testing.assert_allclose(flux, flux.T, atol=1e-12)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed,beta", [(0, 0.4), (1, 1.0), (2, 2.0)])
    def test_sequential_kernel_preserves_gibbs_empirically(self, seed, beta):
        """An ensemble started from Gibbs stays Gibbs under the sequential kernel."""
        game = TwoWellGame(3, barrier=1.0)
        pi = gibbs_measure(game.potential_vector(), beta)
        rng = np.random.default_rng(seed)
        starts = rng.choice(game.space.size, size=6000, p=pi)
        sim = LogitDynamics(game, beta).ensemble(6000, start_indices=starts, rng=rng)
        sim.run(40)
        assert total_variation(sim.empirical_distribution(), pi) < 0.04

    @pytest.mark.slow
    @pytest.mark.parametrize("seed,beta", [(3, 1.2), (4, 1.8)])
    def test_parallel_trap_is_not_gibbs(self, seed, beta):
        """On the two-player coordination game the synchronous chain settles
        far from the Gibbs measure: simultaneous switches keep substantial
        mass on miscoordinated profiles (the "parallel trap"), which the
        sequential kernel's stationary distribution all but excludes.  The
        effect is sharpest at moderate beta (at very high beta both chains
        concentrate on the same consensus and the TV gap closes again)."""
        game = coordination_game()
        pi_gibbs = gibbs_measure(game.potential_vector(), beta)
        dynamics = ParallelLogitDynamics(game, beta)
        rng = np.random.default_rng(seed)
        sim = dynamics.ensemble(6000, start=game.space.encode((0, 1)), rng=rng)
        sim.run(80)
        emp = sim.empirical_distribution()
        # the engine's empirical stationary state is the parallel chain's ...
        assert total_variation(emp, dynamics.stationary_distribution()) < 0.05
        # ... and that is demonstrably NOT the Gibbs measure
        assert total_variation(emp, pi_gibbs) > 0.15
        # the trap itself: miscoordinated profiles carry several times the
        # mass the Gibbs measure gives them
        mis = [game.space.encode((0, 1)), game.space.encode((1, 0))]
        assert emp[mis].sum() > 3.0 * pi_gibbs[mis].sum()
        # whereas the sequential kernel, from the same start, is Gibbs-close
        seq = LogitDynamics(game, beta).ensemble(
            6000, start=game.space.encode((0, 1)), rng=np.random.default_rng(seed)
        )
        seq.run(80)
        assert total_variation(seq.empirical_distribution(), pi_gibbs) < 0.05

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_best_response_kernel_absorbs_at_strict_nash(self, seed):
        """From any start, the BR ensemble ends inside the strict-PNE set and
        stays there.  Seeded *common-interest* games are used — they are
        potential games, so best response cannot cycle, and continuous
        payoffs make every equilibrium strict almost surely."""
        rng_game = np.random.default_rng(100 + seed)
        shared = rng_game.uniform(-1.0, 1.0, size=12)  # |S| = 2 * 3 * 2
        game = TableGame((2, 3, 2), np.tile(shared, (3, 1)))
        nash = pure_nash_equilibria(game)
        assert nash, "a common-interest game always has a pure Nash"
        dynamics = BestResponseDynamics(game)
        rng = np.random.default_rng(seed)
        starts = rng.integers(0, game.space.size, size=64)
        sim = dynamics.ensemble(64, start_indices=starts, rng=rng)
        times = sim.hitting_times(np.asarray(nash), max_steps=5000)
        assert np.all(times >= 0), "some replica never reached a pure Nash"
        settled = sim.indices
        assert np.all(np.isin(settled, nash))
        sim.run(50)  # absorption: further best-response steps change nothing
        np.testing.assert_array_equal(sim.indices, settled)


class TestAnnealedScheduleEdgeCases:
    def test_beta_zero_schedule_is_valid_and_uniformises(self):
        game = TwoWellGame(3, barrier=1.0)
        dynamics = AnnealedLogitDynamics(game, lambda t: 0.0)
        assert dynamics.beta_at(0) == 0.0
        traj = dynamics.simulate((0, 0, 0), 50, rng=np.random.default_rng(0))
        assert traj.shape == (51, 3)
        # at beta = 0 a step is a uniform re-draw of one coordinate: the exact
        # evolution from a point mass must equal the beta = 0 logit chain's
        mu = np.zeros(game.space.size)
        mu[0] = 1.0
        out = dynamics.evolve_distribution(mu, 20)
        P0 = LogitDynamics(game, 0.0).transition_matrix()
        expected = mu.copy()
        for _ in range(20):
            expected = expected @ P0
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_constant_schedule_reduces_exactly_to_logit_dynamics(self):
        """Same seed, same trajectory: a constant beta_t schedule *is* the
        standard dynamics, bit-for-bit on the engine."""
        game = SingletonCongestionGame(num_players=4, num_resources=3)
        beta = 0.8
        annealed = AnnealedLogitDynamics(game, lambda t: beta)
        fixed = LogitDynamics(game, beta)
        start = (0, 1, 2, 0)
        traj_annealed = annealed.simulate(start, 300, rng=np.random.default_rng(21))
        traj_fixed = fixed.simulate(start, 300, rng=np.random.default_rng(21))
        np.testing.assert_array_equal(traj_annealed, traj_fixed)

    def test_short_schedule_raises_before_any_step(self):
        game = TwoWellGame(3, barrier=1.0)
        dynamics = AnnealedLogitDynamics(game, [0.5, 0.5, 0.5])
        with pytest.raises(ValueError, match="schedule provides 3 betas"):
            dynamics.simulate((0, 0, 0), 10, rng=np.random.default_rng(0))
        sim = dynamics.ensemble(8, start=(0, 0, 0), rng=np.random.default_rng(0))
        before = sim.indices
        with pytest.raises(ValueError, match="schedule provides 3 betas"):
            sim.run(10)
        np.testing.assert_array_equal(sim.indices, before)  # nothing moved
        sim.run(3)  # the covered horizon is fine
        with pytest.raises(ValueError, match="schedule"):
            sim.run(1)  # ... but the schedule is now exhausted

    def test_short_schedule_raises_in_exact_evolution(self):
        game = TwoWellGame(3, barrier=1.0)
        dynamics = AnnealedLogitDynamics(game, [0.5, 1.0])
        mu = np.full(game.space.size, 1.0 / game.space.size)
        with pytest.raises(ValueError, match="schedule provides 2 betas"):
            dynamics.evolve_distribution(mu, 3)
        with pytest.raises(ValueError, match="covers steps 0..1"):
            dynamics.beta_at(2)

    def test_invalid_schedule_sequences_rejected(self):
        game = TwoWellGame(3, barrier=1.0)
        with pytest.raises(ValueError, match="finite and >= 0"):
            AnnealedLogitDynamics(game, [0.5, -1.0])
        with pytest.raises(ValueError, match="non-empty"):
            AnnealedLogitDynamics(game, [])
        with pytest.raises(ValueError, match="invalid beta"):
            AnnealedLogitDynamics(game, lambda t: float("inf")).beta_at(0)

    def test_annealed_rejects_gather_mode(self):
        game = TwoWellGame(3, barrier=1.0)
        dynamics = AnnealedLogitDynamics(game, lambda t: 1.0)
        with pytest.raises(ValueError, match="time-inhomogeneous"):
            dynamics.ensemble(4, mode="gather")


class TestRoundRobinRoundBookkeeping:
    """Regression: recording / splitting runs must not desync the cursor."""

    def test_record_every_does_not_desync_the_cursor(self):
        game = TwoWellGame(5, barrier=1.0)
        dynamics = RoundRobinLogitDynamics(game, 0.8)
        start = (0,) * 5
        # recording mid-round (record_every=3 on a 5-player game) must
        # produce exactly the matching subsequence of the step-by-step run
        full = dynamics.simulate(start, 15, rng=np.random.default_rng(5), record_every=1)
        sparse = dynamics.simulate(start, 15, rng=np.random.default_rng(5), record_every=3)
        np.testing.assert_array_equal(sparse, full[::3])

    def test_split_runs_continue_the_round(self):
        game = TwoWellGame(5, barrier=1.0)
        dynamics = RoundRobinLogitDynamics(game, 0.8)
        one_shot = dynamics.ensemble(16, start=(0,) * 5, rng=np.random.default_rng(6))
        one_shot.run(12)
        split = dynamics.ensemble(16, start=(0,) * 5, rng=np.random.default_rng(6))
        split.run(4)  # stops mid-round (4 of 5 players moved)
        assert split.kernel_state["cursor"] == 4
        split.run(8)
        np.testing.assert_array_equal(split.indices, one_shot.indices)
        assert split.kernel_state["cursor"] == 12 % 5

    def test_cursor_advances_cyclically_and_resets_with_the_replicas(self):
        game = TwoWellGame(4, barrier=1.0)
        dynamics = RoundRobinLogitDynamics(game, 0.8)
        sim = dynamics.ensemble(8, start=(0,) * 4, rng=np.random.default_rng(7))
        for t in range(9):
            assert sim.kernel_state["cursor"] == t % 4
            sim.step()
        sim.reset((0,) * 4)
        assert sim.kernel_state["cursor"] == 0

    def test_every_step_updates_exactly_the_cursor_player(self):
        game = SingletonCongestionGame(num_players=4, num_resources=3)
        dynamics = RoundRobinLogitDynamics(game, 0.9)
        traj = dynamics.simulate((0, 1, 2, 0), 40, rng=np.random.default_rng(8))
        changed = traj[1:] != traj[:-1]
        for t in range(40):
            movers = np.flatnonzero(changed[t])
            # the only player allowed to change at step t is t mod n
            assert set(movers.tolist()) <= {t % 4}


class TestVariantHittingTimes:
    """The hitting-time entry points run through the engine for every variant."""

    def test_parallel_hitting_time(self):
        game = coordination_game()
        dynamics = ParallelLogitDynamics(game, 2.0)
        t = dynamics.simulate_hitting_time(
            (0, 1), game.space.encode((0, 0)), rng=np.random.default_rng(0),
            max_steps=10_000,
        )
        assert t > 0

    def test_round_robin_hitting_time(self):
        game = coordination_game()
        dynamics = RoundRobinLogitDynamics(game, 2.0)
        t = dynamics.simulate_hitting_time(
            (0, 1), game.space.encode((0, 0)), rng=np.random.default_rng(1),
            max_steps=10_000,
        )
        assert t > 0

    def test_annealed_hitting_time_clamps_to_schedule_horizon(self):
        # the target needs 3 coordinate flips but the schedule only covers 2
        # steps: the search must stop at the horizon and report -1 (not
        # reached), never raise mid-flight with mutated state
        game = TwoWellGame(3, barrier=1.0)
        dynamics = AnnealedLogitDynamics(game, [0.0, 0.0])
        t = dynamics.simulate_hitting_time(
            (0, 0, 0), game.space.encode((1, 1, 1)), rng=np.random.default_rng(2),
            max_steps=10_000,
        )
        assert t == -1

    def test_annealed_first_passage_budget_shrinks_with_use(self):
        game = TwoWellGame(3, barrier=1.0)
        dynamics = AnnealedLogitDynamics(game, [0.5] * 10)
        sim = dynamics.ensemble(4, start=(0, 0, 0), rng=np.random.default_rng(3))
        sim.run(6)  # consumes 6 of the 10 scheduled steps
        times = sim.hitting_times(game.space.encode((1, 1, 1)), max_steps=10_000)
        # only 4 schedule steps remained; nobody can report a later hit
        assert np.all(times <= 4)
