"""Tests for bottleneck-ratio lower bounds (repro.markov.bottleneck)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics, measure_mixing_time
from repro.games import Theorem35Game, TwoWellGame
from repro.markov.bottleneck import (
    best_sublevel_bottleneck,
    bottleneck_ratio,
    conductance,
    mixing_time_lower_bound,
)
from repro.markov.chain import MarkovChain


def two_state_chain(p: float = 0.3, q: float = 0.2) -> MarkovChain:
    return MarkovChain(np.array([[1 - p, p], [q, 1 - q]]))


class TestBottleneckRatio:
    def test_two_state_closed_form(self):
        p, q = 0.3, 0.2
        chain = two_state_chain(p, q)
        # R = {0}: B(R) = Q(0,1)/pi(0) = pi(0) p / pi(0) = p
        assert bottleneck_ratio(chain, [0]) == pytest.approx(p)
        assert bottleneck_ratio(chain, [1]) == pytest.approx(q)

    def test_whole_space_has_zero_escape(self):
        chain = two_state_chain()
        assert bottleneck_ratio(chain, [0, 1]) == pytest.approx(0.0)

    def test_rejects_empty_set(self):
        with pytest.raises(ValueError):
            bottleneck_ratio(two_state_chain(), [])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bottleneck_ratio(two_state_chain(), [5])

    def test_conductance_symmetric_in_complement(self):
        chain = two_state_chain(0.3, 0.2)
        # reversibility: Q(R, Rc) = Q(Rc, R) so conductance agrees on both sides
        assert conductance(chain, [0]) == pytest.approx(conductance(chain, [1]))


class TestTheorem27LowerBound:
    def test_lower_bound_below_true_mixing_time(self):
        p, q = 0.05, 0.05
        chain = two_state_chain(p, q)
        from repro.markov.mixing import mixing_time

        true_tmix = mixing_time(chain, epsilon=0.25).mixing_time
        bound = mixing_time_lower_bound(chain, [0], epsilon=0.25)
        assert bound <= true_tmix

    def test_requires_small_stationary_mass(self):
        chain = two_state_chain(0.1, 0.4)  # pi(0) = 0.8 > 1/2
        with pytest.raises(ValueError):
            mixing_time_lower_bound(chain, [0])

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            mixing_time_lower_bound(two_state_chain(), [0], epsilon=0.7)

    def test_two_well_game_lower_bound_is_valid(self):
        """The bottleneck bound around one well never exceeds the exact t_mix."""
        game = TwoWellGame(num_players=4, barrier=1.5)
        beta = 1.5
        chain = LogitDynamics(game, beta).markov_chain()
        all0, _ = game.well_indices
        lower = mixing_time_lower_bound(chain, [all0], epsilon=0.25)
        exact = measure_mixing_time(game, beta).mixing_time
        assert lower <= exact


class TestSublevelSearch:
    def test_finds_the_ridge_cut_for_theorem35(self):
        game = Theorem35Game(6, 2.0, 1.0)
        beta = 1.5
        chain = LogitDynamics(game, beta).markov_chain()
        w = game.space.weight(np.arange(game.space.size)).astype(float)
        result = best_sublevel_bottleneck(chain, w, epsilon=0.25)
        # the best cut is below the ridge weight c = 2: R = {w <= 1}
        assert np.max(w[result.states]) <= 1
        assert result.stationary_mass <= 0.5
        # it is a valid lower bound
        exact = measure_mixing_time(game, beta).mixing_time
        assert result.lower_bound <= exact

    def test_lower_bound_from_potential_ordering(self):
        game = TwoWellGame(num_players=4, barrier=2.0, depth_ratio=0.5)
        beta = 2.0
        chain = LogitDynamics(game, beta).markov_chain()
        # At this beta the deep well holds most of the mass, so the valid
        # bottleneck sets are the ones around the *shallow* well: order by
        # minus the Hamming weight so that sub-level sets grow from all-ones.
        w = game.space.weight(np.arange(game.space.size)).astype(float)
        result = best_sublevel_bottleneck(chain, -w)
        exact = measure_mixing_time(game, beta).mixing_time
        assert result.lower_bound <= exact

    def test_requires_nontrivial_ordering(self):
        chain = two_state_chain(0.1, 0.4)
        # constant ordering gives no cut with mass <= 1/2 on this asymmetric chain
        with pytest.raises(ValueError):
            best_sublevel_bottleneck(chain, np.zeros(2))

    def test_ordering_length_validation(self):
        with pytest.raises(ValueError):
            best_sublevel_bottleneck(two_state_chain(), np.zeros(3))
