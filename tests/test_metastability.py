"""Tests for the metastability / transient-phase analysis (repro.core.metastability)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics, measure_mixing_time
from repro.core.metastability import (
    conditional_stationary,
    escape_time_from,
    metastable_report,
    pseudo_mixing_time,
    quasi_stationary_distribution,
    restricted_chain,
)
from repro.games import Theorem35Game, TwoWellGame
from repro.markov.chain import MarkovChain


def two_state_chain(p: float = 0.3, q: float = 0.2) -> MarkovChain:
    return MarkovChain(np.array([[1 - p, p], [q, 1 - q]]))


def well_states(game: TwoWellGame, which: int = 0) -> np.ndarray:
    """All profiles whose Hamming weight puts them on the `which` side."""
    w = game.space.weight(np.arange(game.space.size))
    n = game.num_players
    if which == 0:
        return np.flatnonzero(w < n / 2)
    return np.flatnonzero(w > n / 2)


class TestRestrictedChain:
    def test_restriction_is_stochastic_and_reversible(self, two_well_game):
        chain = LogitDynamics(two_well_game, 2.0).markov_chain()
        R = well_states(two_well_game, 0)
        restricted = restricted_chain(chain, R)
        assert restricted.num_states == R.size
        assert restricted.is_reversible(tol=1e-9)

    def test_restricted_stationary_is_conditional_gibbs(self, two_well_game):
        chain = LogitDynamics(two_well_game, 1.5).markov_chain()
        R = well_states(two_well_game, 0)
        restricted = restricted_chain(chain, R)
        np.testing.assert_allclose(
            restricted.stationary, conditional_stationary(chain, R), atol=1e-9
        )

    def test_validation(self, two_well_game):
        chain = LogitDynamics(two_well_game, 1.0).markov_chain()
        with pytest.raises(ValueError):
            restricted_chain(chain, [])
        with pytest.raises(ValueError):
            restricted_chain(chain, [999])


class TestQuasiStationary:
    def test_two_state_closed_form(self):
        # R = {0}: P_R = [1 - p]; QSD is the point mass, survival rate 1 - p
        p = 0.3
        chain = two_state_chain(p, 0.2)
        nu, rho = quasi_stationary_distribution(chain, [0])
        np.testing.assert_allclose(nu, [1.0])
        assert rho == pytest.approx(1.0 - p)

    def test_qsd_is_distribution(self, two_well_game):
        chain = LogitDynamics(two_well_game, 2.0).markov_chain()
        R = well_states(two_well_game, 0)
        nu, rho = quasi_stationary_distribution(chain, R)
        assert nu.shape == (R.size,)
        assert nu.sum() == pytest.approx(1.0)
        assert 0 < rho < 1

    def test_survival_rate_grows_with_beta(self, two_well_game):
        """Deeper effective wells (larger beta) are harder to leave."""
        R = well_states(two_well_game, 0)
        rates = []
        for beta in (0.5, 1.5, 3.0):
            chain = LogitDynamics(two_well_game, beta).markov_chain()
            _, rho = quasi_stationary_distribution(chain, R)
            rates.append(rho)
        assert rates[0] < rates[1] < rates[2]


class TestEscapeTimes:
    def test_two_state_closed_form(self):
        p = 0.25
        chain = two_state_chain(p, 0.1)
        assert escape_time_from(chain, [0]) == pytest.approx(1.0 / p)

    def test_escape_time_grows_exponentially_with_beta(self, two_well_game):
        R = well_states(two_well_game, 0)
        escapes = []
        for beta in (1.0, 2.0, 3.0):
            chain = LogitDynamics(two_well_game, beta).markov_chain()
            escapes.append(escape_time_from(chain, R))
        assert escapes[0] < escapes[1] < escapes[2]
        # roughly exponential: successive ratios increase
        assert escapes[2] / escapes[1] > 1.5

    def test_custom_start_distribution(self, two_well_game):
        chain = LogitDynamics(two_well_game, 1.0).markov_chain()
        R = well_states(two_well_game, 0)
        start = np.zeros(R.size)
        # start exactly at the bottom of the well (profile 0 is in R)
        start[np.flatnonzero(R == 0)[0]] = 1.0
        t_bottom = escape_time_from(chain, R, start_distribution=start)
        assert t_bottom > 0

    def test_start_distribution_validation(self, two_well_game):
        chain = LogitDynamics(two_well_game, 1.0).markov_chain()
        R = well_states(two_well_game, 0)
        with pytest.raises(ValueError):
            escape_time_from(chain, R, start_distribution=np.zeros(R.size))
        with pytest.raises(ValueError):
            escape_time_from(chain, R, start_distribution=np.ones(3))


class TestMetastability:
    def test_pseudo_mixing_much_smaller_than_global_mixing(self):
        """The metastability signature: inside one well the chain equilibrates
        fast even when the global mixing time is huge."""
        game = TwoWellGame(num_players=5, barrier=1.5)
        beta = 3.0
        chain = LogitDynamics(game, beta).markov_chain()
        R = well_states(game, 0)
        pseudo = pseudo_mixing_time(chain, R)
        global_mix = measure_mixing_time(game, beta).mixing_time
        assert pseudo < global_mix / 5

    def test_metastable_report_fields(self):
        game = Theorem35Game(6, 2.0, 1.0)
        R = game.bottleneck_set()
        report = metastable_report(game, beta=2.0, states=R)
        assert set(report) == {
            "stationary_mass",
            "pseudo_mixing_time",
            "expected_escape_time",
            "qsd_survival_rate",
            "metastability_ratio",
        }
        assert 0 < report["stationary_mass"] <= 0.5 + 1e-9
        assert report["metastability_ratio"] > 1.0
        assert 0 < report["qsd_survival_rate"] < 1
