"""Tests for analysis helpers (repro.analysis.sweep, repro.analysis.report)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import format_value, render_experiment, render_table
from repro.analysis.sweep import (
    beta_sweep,
    exponential_growth_rate,
    size_sweep,
)
from repro.games import CoordinationParams, GraphicalCoordinationGame, TwoWellGame

import networkx as nx


class TestReportRendering:
    def test_format_value_variants(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(3) == "3"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(0.123456, precision=3) == "0.123"
        assert format_value("text") == "text"

    def test_render_table_alignment(self):
        table = render_table(["a", "longer"], [[1, 2.5], [33, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        # all lines have equal width
        assert len({len(line) for line in lines}) == 1
        assert "longer" in lines[0]

    def test_render_table_row_length_check(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_experiment_contains_title_and_notes(self):
        text = render_experiment("Theorem X", ["col"], [[1]], notes="shape holds")
        assert "== Theorem X ==" in text
        assert "shape holds" in text
        assert text.endswith("\n")


class TestGrowthRate:
    def test_recovers_exact_exponent(self):
        betas = np.linspace(0.0, 3.0, 7)
        values = 5.0 * np.exp(1.7 * betas)
        assert exponential_growth_rate(betas, values) == pytest.approx(1.7)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            exponential_growth_rate(np.array([0.0, 1.0]), np.array([1.0, 0.0]))

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            exponential_growth_rate(np.array([1.0]), np.array([2.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            exponential_growth_rate(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))


class TestSweeps:
    def test_beta_sweep_records(self):
        game = TwoWellGame(num_players=3, barrier=1.0)
        result = beta_sweep(game, betas=[0.0, 1.0], include_relaxation=True)
        assert result.parameter_name == "beta"
        assert len(result.records) == 2
        np.testing.assert_allclose(result.parameters(), [0.0, 1.0])
        assert np.all(result.mixing_times() > 0)
        assert np.all(result.relaxation_times() >= 1.0)

    def test_beta_sweep_extra_columns(self):
        game = TwoWellGame(num_players=3, barrier=1.0)
        result = beta_sweep(
            game,
            betas=[0.5],
            extra=lambda g, b: {"bound": 123.0},
        )
        rows = result.as_rows()
        assert rows[0][-1] == 123.0

    def test_size_sweep(self):
        def factory(n: int):
            return GraphicalCoordinationGame(
                nx.cycle_graph(n), CoordinationParams.ising(1.0)
            )

        result = size_sweep(factory, sizes=[3, 4], beta=0.5, include_relaxation=False)
        assert result.parameter_name == "n"
        np.testing.assert_allclose(result.parameters(), [3.0, 4.0])
        assert np.all(np.isnan(result.relaxation_times()))
        # mixing time grows with the ring size
        times = result.mixing_times()
        assert times[1] >= times[0]
