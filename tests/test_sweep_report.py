"""Tests for analysis helpers (repro.analysis.sweep, repro.analysis.report)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import format_value, render_experiment, render_table
from repro.analysis.sweep import (
    beta_sweep,
    dynamics_family_sweep,
    exponential_growth_rate,
    size_sweep,
)
from repro.games import CoordinationParams, GraphicalCoordinationGame, TwoWellGame

import networkx as nx


class TestReportRendering:
    def test_format_value_variants(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(3) == "3"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(0.123456, precision=3) == "0.123"
        assert format_value("text") == "text"

    def test_render_table_alignment(self):
        table = render_table(["a", "longer"], [[1, 2.5], [33, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        # all lines have equal width
        assert len({len(line) for line in lines}) == 1
        assert "longer" in lines[0]

    def test_render_table_row_length_check(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_experiment_contains_title_and_notes(self):
        text = render_experiment("Theorem X", ["col"], [[1]], notes="shape holds")
        assert "== Theorem X ==" in text
        assert "shape holds" in text
        assert text.endswith("\n")


class TestGrowthRate:
    def test_recovers_exact_exponent(self):
        betas = np.linspace(0.0, 3.0, 7)
        values = 5.0 * np.exp(1.7 * betas)
        assert exponential_growth_rate(betas, values) == pytest.approx(1.7)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            exponential_growth_rate(np.array([0.0, 1.0]), np.array([1.0, 0.0]))

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            exponential_growth_rate(np.array([1.0]), np.array([2.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            exponential_growth_rate(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))


class TestSweeps:
    def test_beta_sweep_records(self):
        game = TwoWellGame(num_players=3, barrier=1.0)
        result = beta_sweep(game, betas=[0.0, 1.0], include_relaxation=True)
        assert result.parameter_name == "beta"
        assert len(result.records) == 2
        np.testing.assert_allclose(result.parameters(), [0.0, 1.0])
        assert np.all(result.mixing_times() > 0)
        assert np.all(result.relaxation_times() >= 1.0)

    def test_beta_sweep_extra_columns(self):
        game = TwoWellGame(num_players=3, barrier=1.0)
        result = beta_sweep(
            game,
            betas=[0.5],
            extra=lambda g, b: {"bound": 123.0},
        )
        rows = result.as_rows()
        assert rows[0][-1] == 123.0

    def test_size_sweep(self):
        def factory(n: int):
            return GraphicalCoordinationGame(
                nx.cycle_graph(n), CoordinationParams.ising(1.0)
            )

        result = size_sweep(factory, sizes=[3, 4], beta=0.5, include_relaxation=False)
        assert result.parameter_name == "n"
        np.testing.assert_allclose(result.parameters(), [3.0, 4.0])
        assert np.all(np.isnan(result.relaxation_times()))
        # mixing time grows with the ring size
        times = result.mixing_times()
        assert times[1] >= times[0]


class TestDynamicsFamilySweep:
    def test_compares_families_and_reports_escape(self):
        from repro.core import LogitDynamics, gibbs_measure
        from repro.core.variants import BestResponseDynamics, RoundRobinLogitDynamics

        game = TwoWellGame(num_players=3, barrier=1.0)
        beta = 0.6
        result = dynamics_family_sweep(
            game,
            {
                "sequential": lambda g: LogitDynamics(g, beta),
                "round_robin": lambda g: RoundRobinLogitDynamics(g, beta),
                "best_response": lambda g: BestResponseDynamics(g),
            },
            reference=gibbs_measure(game.potential_vector(), beta),
            num_replicas=2048,
            epsilon=0.12,
            max_time=500,
            start=0,
            escape_states=[0],
            max_escape_steps=5000,
            rng=np.random.default_rng(0),
        )
        assert result.parameter_name == "dynamics_family"
        assert [r.extra["dynamics"] for r in result.records] == [
            "sequential", "round_robin", "best_response",
        ]
        by_name = {r.extra["dynamics"]: r for r in result.records}
        # the ergodic logit families reach the Gibbs measure ...
        assert not by_name["sequential"].extra["capped"]
        assert not by_name["round_robin"].extra["capped"]
        # ... the absorbing best-response chain does not (a result, not an error)
        assert by_name["best_response"].extra["capped"]
        # everyone escapes the single-profile "well" except best response,
        # which at a strict equilibrium never moves
        assert by_name["sequential"].extra["escape_fraction"] == 1.0
        assert by_name["best_response"].extra["escape_fraction"] == 0.0
        assert np.isnan(by_name["best_response"].extra["mean_escape_time"])
        for record in result.records:
            assert np.isfinite(record.extra["mean_welfare"])

    def test_finite_annealed_schedule_caps_instead_of_raising(self):
        """Regression: a finite schedule shorter than max_time must come back
        as a capped record, not crash the sweep mid-run."""
        from repro.core import gibbs_measure
        from repro.core.variants import AnnealedLogitDynamics

        game = TwoWellGame(num_players=3, barrier=1.0)
        pi = gibbs_measure(game.potential_vector(), 0.05)
        result = dynamics_family_sweep(
            game,
            {"annealed": lambda g: AnnealedLogitDynamics(g, np.full(50, 0.05))},
            reference=pi,
            num_replicas=64,
            epsilon=1e-9,  # unreachable: force the run to the horizon
            max_time=10**4,
            escape_states=[0],
            max_escape_steps=10**4,
            rng=np.random.default_rng(1),
        )
        record = result.records[0]
        assert record.extra["capped"]
        assert record.mixing_time <= 50  # clamped to the schedule horizon

    def test_requires_reference_for_families_without_stationary(self):
        from repro.core.variants import AnnealedLogitDynamics

        game = TwoWellGame(num_players=3, barrier=1.0)
        with pytest.raises(ValueError, match="reference"):
            dynamics_family_sweep(
                game,
                {"annealed": lambda g: AnnealedLogitDynamics(g, lambda t: 0.5)},
                num_replicas=8,
                max_time=10,
            )

    def test_rejects_empty_factory_list(self):
        game = TwoWellGame(num_players=3, barrier=1.0)
        with pytest.raises(ValueError, match="at least one"):
            dynamics_family_sweep(game, {})
