"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.games import (
    AnonymousDominantGame,
    CoordinationParams,
    GraphicalCoordinationGame,
    Theorem35Game,
    TwoWellGame,
    random_game,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def ring5_ising_game() -> GraphicalCoordinationGame:
    """Ising-style coordination game (no risk dominance) on a 5-ring."""
    return GraphicalCoordinationGame(nx.cycle_graph(5), CoordinationParams.ising(1.0))


@pytest.fixture
def clique4_game() -> GraphicalCoordinationGame:
    """Coordination game with a risk-dominant equilibrium on a 4-clique."""
    return GraphicalCoordinationGame(
        nx.complete_graph(4), CoordinationParams.from_deltas(2.0, 1.0)
    )


@pytest.fixture
def two_well_game() -> TwoWellGame:
    """Symmetric two-well potential on 4 binary players."""
    return TwoWellGame(num_players=4, barrier=1.5)


@pytest.fixture
def theorem35_game() -> Theorem35Game:
    """The Theorem 3.5 lower-bound construction on 6 players."""
    return Theorem35Game(num_players=6, global_variation=2.0, local_variation=1.0)


@pytest.fixture
def dominant_game() -> AnonymousDominantGame:
    """The Theorem 4.3 dominant-strategy game with 3 players, 2 strategies."""
    return AnonymousDominantGame(num_players=3, num_strategies_per_player=2)


@pytest.fixture
def small_random_game(rng) -> object:
    """A small random (generally non-potential) game for generic chain tests."""
    return random_game((2, 3, 2), rng=rng)
