"""Tests for the sparse chain machinery (repro.markov.sparse + LogitDynamics sparse path)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import LogitDynamics, measure_mixing_time, measure_relaxation_time
from repro.games import CoordinationParams, GraphicalCoordinationGame, TwoWellGame
from repro.markov.mixing import mixing_time_from_state
from repro.markov.sparse import (
    SparseMarkovChain,
    sparse_mixing_time_from_state,
    sparse_relaxation_time,
    sparse_spectral_gap,
    sparse_stationary_power_iteration,
)


def lazy_cycle_sparse(n: int = 6) -> SparseMarkovChain:
    rows, cols, vals = [], [], []
    for i in range(n):
        rows += [i, i, i]
        cols += [i, (i + 1) % n, (i - 1) % n]
        vals += [0.5, 0.25, 0.25]
    P = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    return SparseMarkovChain(P)


class TestSparseMarkovChain:
    def test_validation(self):
        with pytest.raises(ValueError):
            SparseMarkovChain(sp.csr_matrix(np.array([[0.5, 0.6], [0.5, 0.5]])))
        with pytest.raises(ValueError):
            SparseMarkovChain(sp.csr_matrix(np.ones((2, 3)) / 3))
        with pytest.raises(ValueError):
            SparseMarkovChain(
                sp.csr_matrix(np.array([[0.5, 0.5], [0.5, 0.5]])),
                stationary=np.array([0.5, 0.5, 0.0]),
            )

    def test_stationary_power_iteration_matches_uniform(self):
        chain = lazy_cycle_sparse(7)
        np.testing.assert_allclose(chain.stationary, np.full(7, 1 / 7), atol=1e-9)

    def test_step_distribution_preserves_mass(self):
        chain = lazy_cycle_sparse(5)
        mu = np.zeros(5)
        mu[0] = 1.0
        out = chain.step_distribution(mu, steps=10)
        assert out.sum() == pytest.approx(1.0)

    def test_power_iteration_two_state(self):
        P = sp.csr_matrix(np.array([[0.7, 0.3], [0.2, 0.8]]))
        pi = sparse_stationary_power_iteration(P)
        np.testing.assert_allclose(pi, [0.4, 0.6], atol=1e-8)

    def test_nnz_reported(self):
        assert lazy_cycle_sparse(6).nnz == 18


class TestSparseSpectral:
    def test_gap_matches_dense_on_cycle(self):
        chain = lazy_cycle_sparse(8)
        expected_lambda2 = 0.5 + 0.5 * np.cos(2 * np.pi / 8)
        assert sparse_spectral_gap(chain) == pytest.approx(1 - expected_lambda2, abs=1e-8)

    def test_relaxation_time_matches_dense_logit(self):
        game = TwoWellGame(num_players=5, barrier=1.0)
        beta = 1.0
        dense_trel = measure_relaxation_time(game, beta)
        sparse_chain = LogitDynamics(game, beta).sparse_markov_chain()
        # Theorem 3.1: lambda_2 governs, so the sparse path (which only looks
        # at the top of the spectrum) must agree with the dense relaxation time
        assert sparse_relaxation_time(sparse_chain) == pytest.approx(dense_trel, rel=1e-6)


class TestSparseLogitPath:
    def test_sparse_matrix_matches_dense(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.2)
        dense = dynamics.transition_matrix()
        sparse = dynamics.sparse_transition_matrix().toarray()
        np.testing.assert_allclose(sparse, dense, atol=1e-12)

    def test_sparse_chain_uses_gibbs_stationary(self, two_well_game):
        dynamics = LogitDynamics(two_well_game, 0.8)
        chain = dynamics.sparse_markov_chain()
        np.testing.assert_allclose(
            chain.stationary, dynamics.stationary_distribution(), atol=1e-12
        )

    def test_sparse_single_start_mixing_matches_dense(self):
        game = GraphicalCoordinationGame(nx.cycle_graph(4), CoordinationParams.ising(1.0))
        beta = 0.8
        dynamics = LogitDynamics(game, beta)
        dense_chain = dynamics.markov_chain()
        sparse_chain = dynamics.sparse_markov_chain()
        start = game.space.encode((0, 0, 0, 0))
        dense_t = mixing_time_from_state(dense_chain, start)
        sparse_t = sparse_mixing_time_from_state(sparse_chain, start)
        assert dense_t == sparse_t

    def test_worst_consensus_start_matches_full_mixing_time(self):
        """For the symmetric ring game the consensus profiles are the worst
        starting states, so the sparse single-start measurement reproduces
        the dense worst-case t_mix."""
        game = GraphicalCoordinationGame(nx.cycle_graph(5), CoordinationParams.ising(1.0))
        beta = 1.0
        full = measure_mixing_time(game, beta).mixing_time
        sparse_chain = LogitDynamics(game, beta).sparse_markov_chain()
        start = game.space.encode((1,) * 5)
        assert sparse_mixing_time_from_state(sparse_chain, start) == full

    def test_sparse_scales_to_larger_spaces(self):
        """A 12-player ring has 4096 profiles; the sparse path builds the
        chain and computes a single-start convergence time without densifying."""
        game = GraphicalCoordinationGame(nx.cycle_graph(12), CoordinationParams.ising(1.0))
        dynamics = LogitDynamics(game, beta=0.3)
        chain = dynamics.sparse_markov_chain()
        assert chain.num_states == 4096
        assert chain.nnz <= 4096 * (12 * 2)
        t = sparse_mixing_time_from_state(chain, game.space.encode((0,) * 12), epsilon=0.25)
        assert 0 < t < 2000

    def test_mixing_time_start_validation(self):
        chain = lazy_cycle_sparse(4)
        with pytest.raises(ValueError):
            sparse_mixing_time_from_state(chain, 10)
        with pytest.raises(ValueError):
            sparse_mixing_time_from_state(chain, 0, epsilon=2.0)
