"""Tests for dominant-strategy games (repro.games.dominant)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.games.base import NormalFormGame, pure_nash_equilibria, random_game
from repro.games.dominant import (
    AnonymousDominantGame,
    dominant_profile,
    dominant_strategies,
    has_dominant_profile,
    random_dominant_game,
)


def prisoners_dilemma() -> NormalFormGame:
    row = np.array([[1.0, 5.0], [0.0, 3.0]])
    return NormalFormGame(row, row.T)


class TestDetection:
    def test_pd_has_dominant_profile(self):
        game = prisoners_dilemma()
        assert has_dominant_profile(game)
        assert dominant_profile(game) == (0, 0)

    def test_dominant_strategies_per_player(self):
        game = prisoners_dilemma()
        assert dominant_strategies(game, 0) == [0]
        assert dominant_strategies(game, 1) == [0]

    def test_coordination_game_has_no_dominant_strategy(self):
        row = np.array([[2.0, 0.0], [0.0, 1.0]])
        game = NormalFormGame(row, row.T)
        assert not has_dominant_profile(game)
        assert dominant_profile(game) is None

    def test_random_game_typically_lacks_dominant_profile(self):
        game = random_game((3, 3, 3), rng=np.random.default_rng(1))
        # not guaranteed in general but true for this seed; the point is the
        # detector runs on a 3-player, 27-profile game without errors
        assert has_dominant_profile(game) in (True, False)


class TestAnonymousDominantGame:
    def test_strategy_zero_dominant_everywhere(self):
        game = AnonymousDominantGame(3, 3)
        for player in range(3):
            assert 0 in dominant_strategies(game, player)

    def test_is_potential_game(self):
        game = AnonymousDominantGame(3, 2)
        assert game.verify_potential()

    def test_potential_structure(self):
        game = AnonymousDominantGame(2, 3)
        phi = game.potential_vector()
        zero = game.space.encode((0, 0))
        assert phi[zero] == 0.0
        assert np.all(phi[np.arange(game.space.size) != zero] == 1.0)

    def test_dominant_profile_is_nash_and_near_profiles_are_not(self):
        """The all-zero profile is a PNE; profiles one deviation away are not
        (the deviating player can recover utility 0).  Profiles further away
        are weak equilibria of this game, which is fine for the theorem."""
        game = AnonymousDominantGame(3, 2)
        eq = set(pure_nash_equilibria(game))
        zero = game.space.encode((0, 0, 0))
        assert zero in eq
        for one_away in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
            assert game.space.encode(one_away) not in eq

    def test_lower_bound_formula(self):
        game = AnonymousDominantGame(3, 2)
        assert game.mixing_time_lower_bound() == pytest.approx((2**3 - 1) / 4.0)
        game_m3 = AnonymousDominantGame(2, 3)
        assert game_m3.mixing_time_lower_bound() == pytest.approx((9 - 1) / 8.0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            AnonymousDominantGame(0, 2)
        with pytest.raises(ValueError):
            AnonymousDominantGame(2, 1)


class TestRandomDominantGame:
    def test_always_has_dominant_profile(self):
        for seed in range(5):
            game = random_dominant_game((2, 3, 2), rng=np.random.default_rng(seed))
            assert has_dominant_profile(game)
            assert dominant_profile(game) == (0, 0, 0)

    def test_strictness_of_dominance(self):
        game = random_dominant_game((2, 2), rng=np.random.default_rng(0), advantage=1.0)
        space = game.space
        for player in range(2):
            devs = space.deviation_matrix(player)
            utils = game.utility_matrix(player)
            zero_util = utils[devs[:, 0]]
            other_util = utils[devs[:, 1]]
            assert np.all(zero_util > other_util)
