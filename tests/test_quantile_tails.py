"""Tests for time-uniform quantile/CDF tails and the driver's tail knobs.

Covers the gamma-exponential mixture boundary itself (closed form,
inversion, validity knobs), :class:`repro.stats.QuantileCS` coverage under
continuous peeking, the chunk- and shard-count invariance of tail
intervals riding the :class:`repro.stats.SampleDriver` stream, the P99
interval bracketing the *exact* (linear-system) truncated hitting-time
quantile on a small ring game, the end-to-end ``precision_quantile``
stopping through a process pool, and the ``n/c`` / ``P99:`` table cells.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.analysis.report import format_interval, format_value
from repro.analysis.welfare import estimate_stationary_welfare
from repro.core import LogitDynamics, empirical_escape_times, empirical_hitting_times
from repro.games import IsingGame, TwoWellGame
from repro.parallel import ShardedExecutor
from repro.stats import (
    QuantileCS,
    QuantileEstimate,
    StreamingEstimate,
    dkw_epsilon,
    gamma_exponential_boundary,
    gamma_exponential_log_mixture,
    run_until_width,
)


def uniform_sampler(children):
    """Module-level (hence picklable) reference sampler: one U(0,1) each."""
    return np.array([np.random.default_rng(c).random() for c in children])


def lower_well(game: TwoWellGame) -> np.ndarray:
    w = game.space.weight(np.arange(game.space.size))
    return np.flatnonzero(w < game.num_players / 2)


# ---------------------------------------------------------------------------
# the gamma-exponential mixture and its boundary
# ---------------------------------------------------------------------------


class TestMixtureBoundary:
    def test_mixture_is_one_at_the_origin(self):
        # m(0, 0) = 1 exactly; evaluate just off the origin (z > 0 needed)
        assert gamma_exponential_log_mixture(1e-9, 1e-9, rho=10.0) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_mixture_monotone_in_s(self):
        s = np.linspace(0.0, 50.0, 200)
        logm = gamma_exponential_log_mixture(s, 30.0, rho=20.0)
        assert np.all(np.diff(logm) > 0)

    def test_boundary_inverts_the_mixture(self):
        u = gamma_exponential_boundary(100.0, 0.05, rho=50.0)
        assert gamma_exponential_log_mixture(u, 100.0, rho=50.0) == pytest.approx(
            np.log(1 / 0.05), abs=1e-8
        )

    def test_boundary_grows_sublinearly_in_v(self):
        # sub-exponential boundaries are ~sqrt(v log ...) for large v
        u1 = gamma_exponential_boundary(100.0, 0.05, rho=50.0)
        u2 = gamma_exponential_boundary(10_000.0, 0.05, rho=50.0)
        assert u1 < u2 < 100.0 * u1

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="rho"):
            gamma_exponential_log_mixture(1.0, 1.0, rho=0.0)
        with pytest.raises(ValueError, match="c must be positive"):
            gamma_exponential_log_mixture(1.0, 1.0, rho=1.0, c=-1.0)
        with pytest.raises(ValueError, match="alpha"):
            gamma_exponential_boundary(1.0, 1.5, rho=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            gamma_exponential_boundary(-1.0, 0.05, rho=1.0)

    def test_dkw_epsilon_shrinks_and_validates(self):
        eps = [dkw_epsilon(t, 0.05) for t in (10, 100, 1000, 10_000)]
        assert all(a > b for a, b in zip(eps, eps[1:]))
        with pytest.raises(ValueError, match="positive sample count"):
            dkw_epsilon(0, 0.05)
        with pytest.raises(ValueError, match="alpha"):
            dkw_epsilon(10, 0.0)


# ---------------------------------------------------------------------------
# QuantileCS mechanics
# ---------------------------------------------------------------------------


class TestQuantileCS:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="quantile level"):
            QuantileCS(0.0)
        with pytest.raises(ValueError, match="hi > lo"):
            QuantileCS(0.5, support=(1.0, 1.0))
        with pytest.raises(ValueError, match="grid"):
            QuantileCS(0.5, grid_size=1)
        with pytest.raises(ValueError, match="rho"):
            QuantileCS(0.5, rho=-1.0)

    def test_out_of_support_observations_rejected(self):
        cs = QuantileCS(0.9, support=(0.0, 1.0))
        with pytest.raises(ValueError, match="outside the declared support"):
            cs.update(np.array([0.5, 1.5]))

    def test_non_flat_chunks_rejected(self):
        cs = QuantileCS(0.9)
        with pytest.raises(ValueError, match=r"\(c,\) observation arrays"):
            cs.update(np.zeros((4, 2)))

    def test_estimate_matches_numpy_quantile_to_grid_resolution(self):
        rng = np.random.default_rng(0)
        x = rng.random(5000)
        cs = QuantileCS(0.75, support=(0.0, 1.0), grid_size=2048)
        cs.update(x)
        grid_step = 1.0 / 2047
        assert cs.estimate() == pytest.approx(
            float(np.quantile(x, 0.75)), abs=2 * grid_step
        )
        lo, hi = cs.interval()
        assert lo <= cs.estimate() <= hi

    def test_chunking_does_not_change_the_interval(self):
        """The CS state is a pure function of (t, counts): feeding the same
        pooled samples in chunks of 1, 7 or 64 gives identical intervals."""
        rng = np.random.default_rng(3)
        x = rng.random(320)
        results = []
        for k in (1, 7, 64):
            cs = QuantileCS(0.9, support=(0.0, 1.0))
            for i in range(0, x.size, k):
                cs.update(x[i : i + k])
            results.append((cs.estimate(), *cs.interval(), cs.n))
        assert results[0] == results[1] == results[2]

    def test_coverage_under_continuous_peeking(self):
        """The acceptance criterion: peeking after every chunk, the fraction
        of replications whose interval *ever* misses the true quantile must
        stay at or below alpha (here far below — the bound is conservative)."""
        q, alpha = 0.8, 0.1
        reps, peeks, chunk = 400, 20, 50
        misses = 0
        for rep in range(reps):
            rng = np.random.default_rng(10_000 + rep)
            cs = QuantileCS(q, alpha=alpha, support=(0.0, 1.0), grid_size=256)
            ever_missed = False
            for _ in range(peeks):
                cs.update(rng.random(chunk))
                lo, hi = cs.interval()
                # uniform samples: the true q-quantile is q itself
                if not lo <= q <= hi:
                    ever_missed = True
            misses += ever_missed
        assert misses / reps <= alpha

    def test_cdf_band_covers_the_uniform_cdf(self):
        rng = np.random.default_rng(7)
        cs = QuantileCS(0.5, alpha=0.05, support=(0.0, 1.0), grid_size=512)
        for _ in range(10):
            cs.update(rng.random(200))
            thresholds, f_lo, f_hi = cs.cdf_band()
            # F(x) = x for U(0,1); the band is simultaneous over thresholds
            assert np.all(f_lo <= thresholds + 1e-12)
            assert np.all(thresholds <= f_hi + 1e-12)
        # and it is actually informative by t = 2000
        assert np.max(f_hi - f_lo) < 0.25

    def test_result_snapshot_carries_the_state(self):
        cs = QuantileCS(0.99, support=(0.0, 10.0))
        cs.update(np.linspace(0.0, 10.0, 500))
        est = cs.result(target_width=2.5)
        assert isinstance(est, QuantileEstimate)
        assert est.q == 0.99 and est.n == 500
        assert est.target_width == 2.5
        assert est.width == est.upper - est.lower
        assert float(est) == est.estimate


# ---------------------------------------------------------------------------
# tail knobs on the sample-stream driver
# ---------------------------------------------------------------------------


class TestDriverTailKnobs:
    def test_precision_quantile_requires_q(self):
        with pytest.raises(ValueError, match="precision_quantile"):
            run_until_width(
                uniform_sampler, 0.0, support=(0.0, 1.0), precision_quantile=0.1
            )

    def test_q_requires_support(self):
        with pytest.raises(ValueError, match="bounded samples"):
            run_until_width(uniform_sampler, 0.0, q=0.9)

    def test_chunk_size_invariance_with_tail(self):
        runs = [
            run_until_width(
                uniform_sampler, 0.0, max_n=48, chunk_size=k,
                support=(0.0, 1.0), seed=123, q=0.9,
            )
            for k in (1, 7, 64)
        ]
        for other in runs[1:]:
            np.testing.assert_array_equal(runs[0].samples, other.samples)
            assert (
                runs[0].quantile.estimate,
                runs[0].quantile.lower,
                runs[0].quantile.upper,
                runs[0].quantile.n,
            ) == (
                other.quantile.estimate,
                other.quantile.lower,
                other.quantile.upper,
                other.quantile.n,
            )

    def test_shard_count_invariance_with_tail(self):
        serial = run_until_width(
            uniform_sampler, 0.0, max_n=48, chunk_size=16,
            support=(0.0, 1.0), seed=77, q=0.9,
        )
        for k in (1, 3, 8):
            sharded = run_until_width(
                uniform_sampler, 0.0, max_n=48, chunk_size=16,
                support=(0.0, 1.0), seed=77, q=0.9,
                executor=ShardedExecutor(num_shards=k),
            )
            np.testing.assert_array_equal(serial.samples, sharded.samples)
            assert (
                serial.quantile.estimate,
                serial.quantile.lower,
                serial.quantile.upper,
            ) == (
                sharded.quantile.estimate,
                sharded.quantile.lower,
                sharded.quantile.upper,
            )

    def test_tail_rides_the_same_stream_as_the_mean(self):
        plain = run_until_width(
            uniform_sampler, 0.0, max_n=64, chunk_size=16,
            support=(0.0, 1.0), seed=5,
        )
        tailed = run_until_width(
            uniform_sampler, 0.0, max_n=64, chunk_size=16,
            support=(0.0, 1.0), seed=5, q=0.5,
        )
        np.testing.assert_array_equal(plain.samples, tailed.samples)
        assert (plain.estimate, plain.lower, plain.upper) == (
            tailed.estimate,
            tailed.lower,
            tailed.upper,
        )
        assert tailed.quantile is not None and plain.quantile is None

    def test_precision_quantile_stops_the_run(self):
        est = run_until_width(
            uniform_sampler, 0.0, max_n=4096, chunk_size=64,
            support=(0.0, 1.0), seed=11, q=0.9, precision_quantile=0.5,
        )
        assert est.stopped_early
        assert est.n < 4096
        assert est.quantile.width <= 0.5
        assert est.quantile.target_width == 0.5

    def test_both_targets_must_be_met(self):
        """With a mean target *and* a tail target, the driver stops only when
        both intervals are tight — never on the easier one alone."""
        est = run_until_width(
            uniform_sampler, 0.25, max_n=4096, chunk_size=64,
            support=(0.0, 1.0), seed=11, q=0.9, precision_quantile=0.5,
        )
        assert est.upper - est.lower <= 0.25
        assert est.quantile.width <= 0.5
        only_mean = run_until_width(
            uniform_sampler, 0.25, max_n=4096, chunk_size=64,
            support=(0.0, 1.0), seed=11,
        )
        assert est.n >= only_mean.n

    def test_process_pool_end_to_end(self):
        """The acceptance criterion: a quantile CS certifies stopping through
        run_until_width(executor=) with a real process pool, bit-for-bit
        identical to the serial run."""
        serial = run_until_width(
            uniform_sampler, 0.0, max_n=1024, chunk_size=64,
            support=(0.0, 1.0), seed=42, q=0.9, precision_quantile=0.4,
        )
        with ShardedExecutor(num_shards=2, backend="process") as executor:
            pooled = run_until_width(
                uniform_sampler, 0.0, max_n=1024, chunk_size=64,
                support=(0.0, 1.0), seed=42, q=0.9, precision_quantile=0.4,
                executor=executor,
            )
        assert serial.stopped_early and pooled.stopped_early
        assert serial.quantile.width <= 0.4
        np.testing.assert_array_equal(serial.samples, pooled.samples)
        assert (
            serial.n,
            serial.quantile.estimate,
            serial.quantile.lower,
            serial.quantile.upper,
        ) == (
            pooled.n,
            pooled.quantile.estimate,
            pooled.quantile.lower,
            pooled.quantile.upper,
        )


# ---------------------------------------------------------------------------
# estimator-level tails: the exact-linear-system bracket
# ---------------------------------------------------------------------------


class TestEstimatorTails:
    def test_p99_brackets_the_exact_truncated_quantile_on_a_ring(self):
        """The acceptance criterion: the P99 interval from the Monte-Carlo
        stream must bracket the exact quantile of min(tau, T), computed from
        the chain's linear system (absorbing-target iteration)."""
        game = IsingGame(nx.cycle_graph(4), coupling=1.0)
        beta = 0.8
        target = int(game.space.encode(np.ones(4, dtype=np.int64)))
        max_steps, q = 2000, 0.99

        # exact distribution of tau: make the target absorbing and iterate
        P = LogitDynamics(game, beta).markov_chain().transition_matrix.copy()
        P[target, :] = 0.0
        P[target, target] = 1.0
        p = np.zeros(P.shape[0])
        p[0] = 1.0  # start at profile index 0 (all -1 spins)
        exact_quantile = float(max_steps)
        for t in range(1, max_steps + 1):
            p = p @ P
            if p[target] >= q:  # P(tau <= t) >= q
                exact_quantile = float(t)
                break

        est = empirical_hitting_times(
            game, beta, 0, target, max_steps=max_steps,
            q=q, seed=99, chunk_size=256, max_replicas=1024,
        )
        assert isinstance(est, StreamingEstimate)
        tail = est.quantile
        assert isinstance(tail, QuantileEstimate)
        assert tail.n == 1024
        assert tail.lower <= exact_quantile <= tail.upper

    def test_p99_certifies_stopping_through_a_process_pool(self):
        """The acceptance criterion end-to-end: a P99 hitting-time CS is the
        stopping rule, the chunks run on a real process pool, and the result
        is bit-for-bit the serial one."""
        game = IsingGame(nx.cycle_graph(4), coupling=1.0)
        target = int(game.space.encode(np.ones(4, dtype=np.int64)))
        common = dict(
            max_steps=400, q=0.99, precision_quantile=0.5, seed=7,
            chunk_size=64, max_replicas=2048,
        )
        serial = empirical_hitting_times(game, 0.8, 0, target, **common)
        with ShardedExecutor(num_shards=2, backend="process") as executor:
            pooled = empirical_hitting_times(
                game, 0.8, 0, target, executor=executor, **common
            )
        assert serial.stopped_early and pooled.stopped_early
        assert serial.quantile.width <= 0.5 * 400
        np.testing.assert_array_equal(serial.samples, pooled.samples)
        assert (
            serial.n,
            serial.quantile.estimate,
            serial.quantile.lower,
            serial.quantile.upper,
        ) == (
            pooled.n,
            pooled.quantile.estimate,
            pooled.quantile.lower,
            pooled.quantile.upper,
        )

    def test_q_alone_switches_to_adaptive_mode(self):
        game = TwoWellGame(num_players=4, barrier=1.5)
        est = empirical_escape_times(
            game, 1.0, lower_well(game), max_steps=1000,
            q=0.9, seed=3, chunk_size=32, max_replicas=64,
        )
        assert isinstance(est, StreamingEstimate)
        assert est.quantile is not None and est.quantile.q == 0.9
        assert est.quantile.lower <= est.quantile.estimate <= est.quantile.upper

    def test_precision_quantile_is_a_fraction_of_the_horizon(self):
        game = TwoWellGame(num_players=4, barrier=1.5)
        est = empirical_escape_times(
            game, 1.0, lower_well(game), max_steps=1000,
            q=0.9, precision_quantile=0.5, seed=3, chunk_size=32,
            max_replicas=4096,
        )
        assert est.stopped_early
        assert est.quantile.width <= 0.5 * 1000

    def test_estimator_tail_knob_conflicts(self):
        game = IsingGame(nx.cycle_graph(4), coupling=1.0)
        with pytest.raises(ValueError, match="precision_quantile="):
            empirical_hitting_times(
                game, 1.0, 0, 0, max_steps=100, precision_quantile=0.1, seed=0,
            )
        with pytest.raises(ValueError, match="precision_quantile must be positive"):
            empirical_hitting_times(
                game, 1.0, 0, 0, max_steps=100, q=0.9, precision_quantile=0.0,
                seed=0,
            )
        with pytest.raises(ValueError, match="max_replicas"):
            empirical_hitting_times(
                game, 1.0, 0, 0, max_steps=100, q=0.9, num_replicas=32,
            )

    def test_welfare_estimator_attaches_a_tail(self):
        game = IsingGame(nx.cycle_graph(6), coupling=1.0)
        est = estimate_stationary_welfare(
            game, 0.5, num_steps=100, q=0.5, seed=8, chunk_size=32,
            max_replicas=64,
        )
        assert isinstance(est.quantile, QuantileEstimate)
        assert est.quantile.q == 0.5
        assert est.quantile.lower <= est.quantile.estimate <= est.quantile.upper

    def test_welfare_precision_quantile_is_absolute(self):
        game = IsingGame(nx.cycle_graph(6), coupling=1.0)
        with pytest.raises(ValueError, match="absolute welfare units"):
            estimate_stationary_welfare(
                game, 0.5, num_steps=50, q=0.5, precision_quantile=-1.0, seed=8,
            )


class TestSweepTailColumns:
    def test_hitting_size_sweep_quantile_extras(self):
        from repro.analysis.sweep import hitting_time_size_sweep

        result = hitting_time_size_sweep(
            lambda n: IsingGame(nx.cycle_graph(n), coupling=1.0),
            sizes=(6,),
            beta=0.8,
            start_factory=lambda g: np.zeros(g.space.num_players, dtype=np.int64),
            target_factory=lambda g: (
                lambda p: p.sum(axis=1) >= g.space.num_players - 1
            ),
            max_steps=1500,
            precision=0.2,
            q=0.9,
            seed=6,
            chunk_size=32,
            max_replicas=256,
        )
        extra = result.records[0].extra
        assert extra["quantile_q"] == 0.9
        assert extra["quantile_lower"] <= extra["quantile_estimate"]
        assert extra["quantile_estimate"] <= extra["quantile_upper"]

    def test_sweep_tail_requires_adaptive_mode(self):
        from repro.analysis.sweep import hitting_time_size_sweep

        with pytest.raises(ValueError, match="tail columns"):
            hitting_time_size_sweep(
                lambda n: IsingGame(nx.cycle_graph(n), coupling=1.0),
                sizes=(6,),
                beta=0.8,
                start_factory=lambda g: np.zeros(
                    g.space.num_players, dtype=np.int64
                ),
                target_factory=lambda g: (lambda p: p.sum(axis=1) >= 5),
                q=0.9,
            )

    def test_family_sweep_tail_requires_escape_states(self):
        from repro.analysis.sweep import dynamics_family_sweep

        game = TwoWellGame(num_players=4, barrier=1.5)
        with pytest.raises(ValueError, match="escape_states"):
            dynamics_family_sweep(
                game,
                {"sequential": lambda g: LogitDynamics(g, 0.5)},
                num_replicas=16,
                max_time=50,
                tail_q=0.9,
                rng=np.random.default_rng(0),
            )

    def test_family_sweep_escape_quantile_extras(self):
        from repro.analysis.sweep import dynamics_family_sweep

        game = TwoWellGame(num_players=4, barrier=1.5)
        result = dynamics_family_sweep(
            game,
            {"sequential": lambda g: LogitDynamics(g, 1.0)},
            num_replicas=64,
            max_time=200,
            escape_states=lower_well(game),
            max_escape_steps=500,
            tail_q=0.9,
            rng=np.random.default_rng(2),
        )
        extra = result.records[0].extra
        assert extra["escape_quantile_q"] == 0.9
        assert extra["escape_quantile_lower"] <= extra["escape_quantile"]
        assert extra["escape_quantile"] <= extra["escape_quantile_upper"]


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------


class TestTailRendering:
    def test_never_converged_sentinel_renders_nc(self):
        assert format_interval(-1, -1, -1) == "n/c"
        # a genuine interval that merely touches -1 still renders numerically
        assert format_interval(-1.0, -2.0, 0.0) == "-1 [-2, 0]"

    def test_quantile_cells_render_with_level_prefix(self):
        est = QuantileEstimate(
            q=0.99, estimate=120.0, lower=100.0, upper=150.0, n=512
        )
        assert format_value(est) == "P99: 120 [100, 150]"

    def test_sentinel_quantile_cell_renders_nc(self):
        est = QuantileEstimate(q=0.99, estimate=-1, lower=-1, upper=-1, n=0)
        assert format_value(est) == "P99: n/c"

    def test_streaming_estimate_cells_unchanged(self):
        est = StreamingEstimate(
            estimate=12.5, lower=11.0, upper=14.0, n=256, stopped_early=True
        )
        assert format_value(est) == "12.5 [11, 14]"
