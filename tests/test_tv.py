"""Tests for total-variation utilities (repro.markov.tv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.tv import (
    is_distribution,
    normalize_distribution,
    total_variation,
    total_variation_to_reference,
    uniform_distribution,
)


class TestDistributionHelpers:
    def test_is_distribution(self):
        assert is_distribution(np.array([0.5, 0.5]))
        assert is_distribution(np.array([1.0]))
        assert not is_distribution(np.array([0.5, 0.6]))
        assert not is_distribution(np.array([-0.1, 1.1]))
        assert not is_distribution(np.array([[0.5, 0.5]]))

    def test_normalize(self):
        np.testing.assert_allclose(normalize_distribution([1, 3]), [0.25, 0.75])

    def test_normalize_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_distribution([-1.0, 2.0])

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize_distribution([0.0, 0.0])

    def test_uniform(self):
        np.testing.assert_allclose(uniform_distribution(4), [0.25] * 4)
        with pytest.raises(ValueError):
            uniform_distribution(0)


class TestTotalVariation:
    def test_identical_distributions(self):
        p = np.array([0.2, 0.3, 0.5])
        assert total_variation(p, p) == 0.0

    def test_disjoint_support(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation(p, q) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        p = normalize_distribution(rng.random(6))
        q = normalize_distribution(rng.random(6))
        assert total_variation(p, q) == pytest.approx(total_variation(q, p))

    def test_triangle_inequality(self):
        rng = np.random.default_rng(1)
        p = normalize_distribution(rng.random(5))
        q = normalize_distribution(rng.random(5))
        r = normalize_distribution(rng.random(5))
        assert total_variation(p, r) <= total_variation(p, q) + total_variation(q, r) + 1e-12

    def test_known_value(self):
        p = np.array([0.5, 0.5, 0.0])
        q = np.array([0.25, 0.25, 0.5])
        assert total_variation(p, q) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation(np.array([1.0]), np.array([0.5, 0.5]))


class TestRowwiseTV:
    def test_matches_scalar(self):
        rng = np.random.default_rng(2)
        rows = np.stack([normalize_distribution(rng.random(4)) for _ in range(3)])
        ref = normalize_distribution(rng.random(4))
        batch = total_variation_to_reference(rows, ref)
        for k in range(3):
            assert batch[k] == pytest.approx(total_variation(rows[k], ref))

    def test_single_row_input(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        out = total_variation_to_reference(p, q)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_to_reference(np.ones((2, 3)) / 3, np.array([0.5, 0.5]))
