"""Tests for the mixing-time measurement drivers (repro.core.mixing)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.mixing as core_mixing
from repro.core import (
    estimate_mixing_time_coupling,
    measure_mixing_time,
    measure_mixing_with_bounds,
    measure_relaxation_time,
    measure_spectral_summary,
    mixing_time_vs_beta,
    relaxation_time_vs_beta,
)
from repro.games import CoordinationParams, GraphicalCoordinationGame, TwoWellGame

import networkx as nx


class TestExactMeasurement:
    def test_mixing_time_positive(self, ring5_ising_game):
        result = measure_mixing_time(ring5_ising_game, beta=1.0)
        assert result.mixing_time > 0
        assert not result.capped

    def test_relaxation_time_at_least_one(self, ring5_ising_game):
        assert measure_relaxation_time(ring5_ising_game, beta=1.0) >= 1.0

    def test_spectrum_nonnegative_for_potential_game(self, clique4_game):
        """Theorem 3.1: the logit chain of a potential game has a non-negative
        spectrum."""
        summary = measure_spectral_summary(clique4_game, beta=1.4)
        assert summary.all_nonnegative

    def test_measure_with_bounds_sandwich(self, two_well_game):
        m = measure_mixing_with_bounds(two_well_game, beta=1.0)
        assert m.theorem23_lower <= m.mixing_time <= m.theorem23_upper
        assert m.num_profiles == two_well_game.space.size

    def test_exact_guard_rejects_huge_spaces(self, monkeypatch):
        monkeypatch.setattr(core_mixing, "MAX_EXACT_PROFILES", 8)
        game = TwoWellGame(num_players=5, barrier=1.0)  # 32 profiles > 8
        with pytest.raises(ValueError):
            core_mixing.measure_mixing_time(game, beta=1.0)

    def test_mixing_monotone_in_beta_for_two_well(self, two_well_game):
        """For a two-well potential, raising beta raises the mixing time."""
        betas = [0.0, 1.0, 2.0]
        curve = mixing_time_vs_beta(two_well_game, betas)
        assert curve.shape == (3, 2)
        times = curve[:, 1]
        assert times[0] <= times[1] <= times[2]
        assert times[2] > times[0]

    def test_relaxation_vs_beta_shape(self, two_well_game):
        curve = relaxation_time_vs_beta(two_well_game, [0.0, 0.5])
        assert curve.shape == (2, 2)
        assert np.all(curve[:, 1] >= 1.0)


class TestCouplingEstimator:
    def test_estimate_upper_bounds_exact_on_ring(self):
        game = GraphicalCoordinationGame(nx.cycle_graph(4), CoordinationParams.ising(1.0))
        beta = 0.5
        exact = measure_mixing_time(game, beta).mixing_time
        estimate = estimate_mixing_time_coupling(
            game,
            beta,
            start_x=(0, 0, 0, 0),
            start_y=(1, 1, 1, 1),
            horizon=200 * exact,
            num_runs=64,
            rng=np.random.default_rng(11),
        )
        # coupling-time quantile is an upper bound in expectation; allow
        # Monte-Carlo slack of a factor of 2 on the lower side
        assert estimate >= exact / 2

    def test_estimate_finite_for_dominant_game(self, dominant_game):
        estimate = estimate_mixing_time_coupling(
            dominant_game,
            beta=20.0,
            start_x=(1, 1, 1),
            start_y=(0, 0, 0),
            horizon=5000,
            num_runs=16,
            rng=np.random.default_rng(2),
        )
        assert np.isfinite(estimate)
        assert estimate < 5000
