"""Tests for the pluggable engine state backends (repro.engine.state).

Three contracts:

* *backend equivalence* — on small games, trajectories produced by the
  matrix state backend are bit-for-bit identical to the index backend
  under a fixed seed, for every kernel (the matrix backend is a second
  implementation of the same dynamics, not an approximation);
* *index-free scaling* — games past the int64 profile-index ceiling
  (>= 63 binary players) run ensembles, hitting times and exit times on
  the matrix backend through every kernel, with profile-predicate targets
  and without materialising any O(|S|) array;
* *fail-fast boundaries* — the index backend (and every index-valued
  observable) rejects oversized spaces up front with an error that points
  at the matrix path, instead of dying mid-run inside numpy.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import LogitDynamics, empirical_escape_times, empirical_hitting_times
from repro.core.variants import (
    AnnealedLogitDynamics,
    BestResponseDynamics,
    ParallelLogitDynamics,
    RoundRobinLogitDynamics,
)
from repro.engine import EnsembleSimulator, IndexState, MatrixState, strategy_dtype
from repro.games import IsingGame, LocalInteractionGame, SingletonCongestionGame
from repro.games.space import ProfileSpace

BIG_N = 1000


@pytest.fixture
def ring7_game():
    return IsingGame(nx.cycle_graph(7), coupling=1.0, field=0.2)


@pytest.fixture(scope="module")
def big_ring_game():
    return IsingGame(nx.cycle_graph(BIG_N), coupling=1.0)


def _all_dynamics(game, beta=0.9):
    return [
        LogitDynamics(game, beta),
        ParallelLogitDynamics(game, beta),
        RoundRobinLogitDynamics(game, beta),
        AnnealedLogitDynamics(game, lambda t: 0.05 * t),
        BestResponseDynamics(game),
    ]


class TestBackendEquivalence:
    """MatrixState must reproduce IndexState trajectories bit-for-bit."""

    def test_all_kernels_match_index_backend(self, ring7_game):
        start = (0, 1, 0, 1, 1, 0, 0)
        for dynamics in _all_dynamics(ring7_game):
            runs = {}
            for state in ("index", "matrix"):
                sim = dynamics.ensemble(
                    16, start=start, rng=np.random.default_rng(42),
                    mode="matrix_free", state=state,
                )
                runs[state] = sim.run(250, record_every=1)
            np.testing.assert_array_equal(
                runs["index"], runs["matrix"],
                err_msg=f"backend mismatch for {type(dynamics).__name__}",
            )

    def test_matrix_backend_matches_gather_mode(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 1.0)
        gather = dynamics.ensemble(
            8, start=(0,) * 7, rng=np.random.default_rng(3), mode="gather"
        ).run(300, record_every=1)
        matrix = dynamics.ensemble(
            8, start=(0,) * 7, rng=np.random.default_rng(3), state="matrix"
        ).run(300, record_every=1)
        np.testing.assert_array_equal(gather, matrix)

    def test_multistrategy_game_matches(self):
        # non-binary strategies exercise the generic (encode-based)
        # profile-row fallback on the matrix backend
        game = SingletonCongestionGame(num_players=4, num_resources=3)
        dynamics = LogitDynamics(game, 1.2)
        a = dynamics.ensemble(
            8, start=(0, 1, 2, 0), rng=np.random.default_rng(5), state="index",
            mode="matrix_free",
        ).run(200, record_every=1)
        b = dynamics.ensemble(
            8, start=(0, 1, 2, 0), rng=np.random.default_rng(5), state="matrix"
        ).run(200, record_every=1)
        np.testing.assert_array_equal(a, b)

    def test_hitting_times_match_across_backends(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 2.0)
        target = ring7_game.space.encode((1,) * 7)
        times = {}
        for state in ("index", "matrix"):
            sim = dynamics.ensemble(
                12, start=(0,) * 7, rng=np.random.default_rng(9),
                mode="matrix_free", state=state,
            )
            times[state] = sim.hitting_times(target, max_steps=30_000)
        np.testing.assert_array_equal(times["index"], times["matrix"])

    def test_predicate_and_index_targets_agree(self, ring7_game):
        # an index target and the equivalent profile predicate must retire
        # replicas at identical times on identical random streams
        dynamics = LogitDynamics(ring7_game, 2.0)
        target = ring7_game.space.encode((1,) * 7)
        by_index = dynamics.ensemble(
            12, start=(0,) * 7, rng=np.random.default_rng(9), state="matrix"
        ).hitting_times(target, max_steps=30_000)
        by_predicate = dynamics.ensemble(
            12, start=(0,) * 7, rng=np.random.default_rng(9), state="matrix"
        ).hitting_times(lambda prof: prof.min(axis=1) == 1, max_steps=30_000)
        np.testing.assert_array_equal(by_index, by_predicate)

    def test_exit_times_predicate_matches_index_set(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 0.6)
        all0 = ring7_game.space.encode((0,) * 7)
        well = [all0] + [int(x) for x in ring7_game.space.neighbors(all0)]
        well_arr = np.asarray(well)
        by_index = dynamics.ensemble(
            16, start=(0,) * 7, rng=np.random.default_rng(4), state="matrix"
        ).exit_times(well, max_steps=20_000)
        space = ring7_game.space

        def inside(prof):
            idx = space.encode_many(np.asarray(prof, dtype=np.int64))
            return np.isin(idx, well_arr)

        by_predicate = dynamics.ensemble(
            16, start=(0,) * 7, rng=np.random.default_rng(4), state="matrix"
        ).exit_times(inside, max_steps=20_000)
        np.testing.assert_array_equal(by_index, by_predicate)


class TestKernelStateReset:
    """reset() must reinitialise kernel bookkeeping on both backends."""

    @pytest.mark.parametrize("state", ["index", "matrix"])
    def test_round_robin_cursor_resets(self, ring7_game, state):
        dynamics = RoundRobinLogitDynamics(ring7_game, 1.0)
        sim = dynamics.ensemble(4, rng=np.random.default_rng(0), state=state)
        sim.run(5)  # cursor mid-round
        assert sim.kernel_state["cursor"] == 5
        sim.reset()
        assert sim.kernel_state["cursor"] == 0

    @pytest.mark.parametrize("state", ["index", "matrix"])
    def test_annealed_step_counter_resets(self, ring7_game, state):
        dynamics = AnnealedLogitDynamics(ring7_game, np.linspace(0.0, 1.0, 40))
        sim = dynamics.ensemble(4, rng=np.random.default_rng(0), state=state)
        sim.run(7)
        assert sim.kernel_state["step"] == 7
        sim.reset()
        assert sim.kernel_state["step"] == 0
        # a fresh run after reset replays the schedule from beta_0
        sim.run(40)  # would raise if the counter had not reset (horizon 40)

    @pytest.mark.parametrize("state", ["index", "matrix"])
    def test_reset_reproduces_trajectory(self, ring7_game, state):
        dynamics = LogitDynamics(ring7_game, 1.0)
        sim = dynamics.ensemble(
            6, start=(0,) * 7, rng=np.random.default_rng(21), state=state,
            mode="matrix_free",
        )
        first = sim.run(100, record_every=1)
        sim.reset((0,) * 7)
        sim.rng = np.random.default_rng(21)
        second = sim.run(100, record_every=1)
        np.testing.assert_array_equal(first, second)


class TestMatrixStateStartForms:
    def test_start_broadcasting_forms(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 1.0)
        space = ring7_game.space
        by_index = dynamics.ensemble(4, start=7, state="matrix")
        by_profile = dynamics.ensemble(4, start=space.decode(7), state="matrix")
        by_indices = dynamics.ensemble(
            4, start_indices=np.full(4, 7), state="matrix"
        )
        by_profiles = dynamics.ensemble(
            4, start=np.tile(space.decode(7), (4, 1)), state="matrix"
        )
        for sim in (by_index, by_profile, by_indices, by_profiles):
            np.testing.assert_array_equal(sim.indices, np.full(4, 7))

    def test_start_validation(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 1.0)
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start=np.zeros((3, 7), int), state="matrix")
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start=ring7_game.space.size, state="matrix")
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start=np.full(7, 3), state="matrix")  # strategy 3
        with pytest.raises(ValueError):
            dynamics.ensemble(
                4, start=3, start_indices=np.full(4, 3), state="matrix"
            )
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start_indices=np.full(3, 1), state="matrix")
        with pytest.raises(ValueError):
            EnsembleSimulator(dynamics, 4, state="quantum")

    @pytest.mark.parametrize("state", ["index", "matrix"])
    def test_out_of_range_start_profiles_rejected_on_both_backends(
        self, ring7_game, state
    ):
        # regression: the index backend used to encode out-of-range strategy
        # values without complaint, silently aliasing them onto a different
        # valid profile — both backends must reject identically
        dynamics = LogitDynamics(ring7_game, 1.0)
        bad_row = np.array([2, 0, 0, 0, 0, 0, 0])
        with pytest.raises(ValueError, match="out of range"):
            dynamics.ensemble(4, start=bad_row, state=state)
        with pytest.raises(ValueError, match="out of range"):
            dynamics.ensemble(4, start=np.tile(bad_row, (4, 1)), state=state)
        with pytest.raises(ValueError, match="out of range"):
            dynamics.ensemble(4, start=-1, state=state)
        with pytest.raises(ValueError, match="out of range"):
            dynamics.ensemble(
                4, start_indices=np.full(4, ring7_game.space.size), state=state
            )

    def test_profiles_and_indices_observables(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 1.0)
        sim = dynamics.ensemble(5, start=(0, 1, 0, 1, 1, 0, 0), state="matrix")
        assert sim.profiles.shape == (5, 7)
        expected = ring7_game.space.encode((0, 1, 0, 1, 1, 0, 0))
        np.testing.assert_array_equal(sim.indices, np.full(5, expected))


class TestSparseOccupation:
    def test_sparse_matches_dense_histogram(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 0.5)
        for state in ("index", "matrix"):
            sim = dynamics.ensemble(
                64, rng=np.random.default_rng(2), state=state, mode="matrix_free"
            )
            sim.run(200)
            dense = sim.empirical_distribution()
            occupied, counts = sim.empirical_distribution_sparse()
            rebuilt = np.zeros_like(dense)
            rebuilt[occupied] = counts / sim.num_replicas
            np.testing.assert_allclose(rebuilt, dense)
            assert counts.sum() == sim.num_replicas

    def test_profile_counts_agree_with_sparse(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 0.5)
        sim = dynamics.ensemble(32, rng=np.random.default_rng(6), state="matrix")
        sim.run(100)
        occupied, counts = sim.empirical_distribution_sparse()
        profiles, pcounts = sim.empirical_profile_counts()
        encoded = ring7_game.space.encode_many(
            np.asarray(profiles, dtype=np.int64)
        )
        order = np.argsort(encoded)
        np.testing.assert_array_equal(encoded[order], occupied)
        np.testing.assert_array_equal(pcounts[order], counts)

    def test_sparse_tv_routing_matches_dense(self, ring7_game):
        from repro.core.mixing import _ensemble_tv
        from repro.markov.tv import total_variation
        from repro.core import gibbs_measure

        dynamics = LogitDynamics(ring7_game, 0.5)
        sim = dynamics.ensemble(64, rng=np.random.default_rng(8))
        sim.run(150)
        pi = gibbs_measure(ring7_game.potential_vector(), 0.5)
        dense = total_variation(sim.empirical_distribution(), pi)
        # force the sparse formula and compare against the dense one
        occupied, counts = sim.empirical_distribution_sparse()
        emp = counts / sim.num_replicas
        sparse = 0.5 * (np.abs(emp - pi[occupied]).sum() + (1.0 - pi[occupied].sum()))
        assert sparse == pytest.approx(dense, abs=1e-12)
        assert _ensemble_tv(sim, pi) == pytest.approx(dense, abs=1e-12)


class TestInt64Boundaries:
    def test_index_state_rejects_oversized_space_up_front(self):
        game = IsingGame(nx.cycle_graph(70), coupling=1.0)  # 2**70 profiles
        dynamics = LogitDynamics(game, 1.0)
        with pytest.raises(ValueError, match="matrix"):
            dynamics.ensemble(4, state="index")

    def test_auto_state_picks_matrix_past_int64(self):
        game = IsingGame(nx.cycle_graph(70), coupling=1.0)
        sim = LogitDynamics(game, 1.0).ensemble(4)
        assert sim.state.kind == "matrix"
        assert sim.mode == "matrix_free"

    def test_auto_state_keeps_index_below_int64(self, ring7_game):
        sim = LogitDynamics(ring7_game, 1.0).ensemble(4)
        assert sim.state.kind == "index"

    def test_gather_mode_requires_index_state(self, ring7_game):
        dynamics = LogitDynamics(ring7_game, 1.0)
        with pytest.raises(ValueError, match="gather"):
            dynamics.ensemble(4, mode="gather", state="matrix")

    def test_index_observables_raise_clearly_past_int64(self):
        game = IsingGame(nx.cycle_graph(70), coupling=1.0)
        sim = LogitDynamics(game, 1.0).ensemble(4)
        with pytest.raises(ValueError, match="profile"):
            sim.indices
        with pytest.raises(ValueError, match="profile"):
            sim.hitting_times(0)
        # profile-row observables keep working
        assert sim.profiles.shape == (4, 70)
        profiles, counts = sim.empirical_profile_counts()
        assert counts.sum() == 4

    def test_state_classes_directly(self, ring7_game):
        big = IsingGame(nx.cycle_graph(70), coupling=1.0)
        with pytest.raises(ValueError, match="matrix"):
            IndexState(big.space)
        state = MatrixState(big.space)
        state.init(3, None, None)
        assert state.profiles_at(None).shape == (3, 70)

    def test_grand_coupling_guarded_past_int64(self):
        from repro.engine import simulate_grand_coupling_ensemble

        game = IsingGame(nx.cycle_graph(70), coupling=1.0)
        dynamics = LogitDynamics(game, 1.0)
        with pytest.raises(ValueError, match="int64"):
            simulate_grand_coupling_ensemble(
                dynamics, (0,) * 70, (1,) * 70, horizon=10, num_runs=2
            )


class TestStrategyDtypeBoundaries:
    """Strategy storage must promote exactly at the signed-integer edges.

    Strategies are values ``0 .. m-1``, so ``m`` strategies fit int8 up to
    ``m == 128`` (top value 127) and int16 up to ``m == 32768`` — off-by-one
    promotion here would silently wrap the top strategy values.
    """

    @pytest.mark.parametrize(
        "num_strategies, expected",
        [
            (2, np.int8),
            (127, np.int8),
            (128, np.int8),  # top value 127 == int8 max: still fits
            (129, np.int16),  # top value 128 would wrap int8
            (32768, np.int16),  # top value 32767 == int16 max
            (32769, np.int32),
            (2**31, np.int32),
            (2**31 + 1, np.int64),
        ],
    )
    def test_promotion_boundaries(self, num_strategies, expected):
        space = ProfileSpace((num_strategies, 2))
        assert strategy_dtype(space) == np.dtype(expected)

    def test_overflow_past_int64_raises(self):
        space = ProfileSpace((2**63 + 1, 2))  # exact Python-int radices
        with pytest.raises(ValueError, match="int64"):
            strategy_dtype(space)

    @pytest.mark.parametrize("num_strategies", [128, 129, 32768, 32769])
    def test_top_strategy_survives_storage_roundtrip(self, num_strategies):
        space = ProfileSpace((num_strategies, 2))
        state = MatrixState(space)
        top = np.array([num_strategies - 1, 1], dtype=np.int64)
        state.init(3, top, None)
        profiles = state.profiles_at(None)
        assert profiles.dtype == strategy_dtype(space)
        np.testing.assert_array_equal(
            np.asarray(profiles, dtype=np.int64), np.tile(top, (3, 1))
        )


class TestLargeScaleAcceptance:
    """The ISSUE acceptance run: n = 1000 ring through every kernel."""

    def test_every_kernel_runs_at_n_1000(self, big_ring_game):
        game = big_ring_game
        assert not game.space.fits_int64
        for dynamics in _all_dynamics(game, beta=0.5):
            sim = dynamics.ensemble(8, rng=np.random.default_rng(1))
            assert sim.state.kind == "matrix"
            sim.run(60)
            assert sim.profiles.shape == (8, BIG_N)

    def test_hitting_times_magnetization_threshold(self, big_ring_game):
        game = big_ring_game
        dynamics = LogitDynamics(game, 0.5)
        # start all spins down; the predicate fires once 4 spins flipped up
        sim = dynamics.ensemble(8, rng=np.random.default_rng(2))
        threshold = -1.0 + 2.0 * 4 / BIG_N

        def reached(profiles):
            return game.magnetization_of_profiles(profiles) >= threshold

        times = sim.hitting_times(reached, max_steps=20_000)
        assert np.all(times > 0)  # not at the target initially, all reach it

    def test_exit_times_magnetization_band(self, big_ring_game):
        game = big_ring_game
        dynamics = LogitDynamics(game, 0.1)  # noisy: leaves the band quickly

        def inside(profiles):
            return game.magnetization_of_profiles(profiles) <= -0.99

        times = empirical_escape_times(
            game,
            0.1,
            inside,
            num_replicas=8,
            max_steps=20_000,
            start_profiles=np.zeros(BIG_N, dtype=np.int64),
            dynamics=dynamics,
            rng=np.random.default_rng(3),
        )
        assert np.all(times > 0)

    def test_empirical_hitting_times_predicate_entry_point(self, big_ring_game):
        game = big_ring_game
        times = empirical_hitting_times(
            game,
            beta=0.5,
            start=np.zeros(BIG_N, dtype=np.int64),
            targets=lambda prof: game.magnetization_of_profiles(prof) >= -0.99,
            num_replicas=4,
            max_steps=50_000,
            rng=np.random.default_rng(4),
        )
        assert np.all(times > 0)

    def test_hitting_time_size_sweep_is_index_free(self):
        from repro.analysis import hitting_time_size_sweep

        result = hitting_time_size_sweep(
            lambda n: IsingGame(nx.cycle_graph(n), coupling=1.0),
            sizes=[10, 100],
            beta=2.0,
            start_factory=lambda g: np.zeros(g.num_players, dtype=np.int64),
            target_factory=lambda g: (
                lambda prof: g.magnetization_of_profiles(prof)
                >= -1.0 + 4.0 / g.num_players
            ),
            num_replicas=8,
            max_steps=20_000,
            rng=np.random.default_rng(5),
        )
        assert len(result.records) == 2
        for record in result.records:
            assert record.extra["reached_fraction"] == 1.0
            assert record.extra["mean_hitting_time"] > 0
