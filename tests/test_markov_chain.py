"""Tests for the generic Markov chain wrapper (repro.markov.chain)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.chain import MarkovChain, is_stochastic_matrix, stationary_distribution


def two_state_chain(p: float = 0.3, q: float = 0.2) -> MarkovChain:
    P = np.array([[1 - p, p], [q, 1 - q]])
    return MarkovChain(P)


def random_walk_cycle(n: int = 5, lazy: float = 0.5) -> MarkovChain:
    P = np.zeros((n, n))
    for i in range(n):
        P[i, i] = lazy
        P[i, (i + 1) % n] += (1 - lazy) / 2
        P[i, (i - 1) % n] += (1 - lazy) / 2
    return MarkovChain(P)


class TestValidation:
    def test_is_stochastic(self):
        assert is_stochastic_matrix(np.array([[0.5, 0.5], [0.1, 0.9]]))
        assert not is_stochastic_matrix(np.array([[0.5, 0.6], [0.1, 0.9]]))
        assert not is_stochastic_matrix(np.array([[1.2, -0.2], [0.0, 1.0]]))
        assert not is_stochastic_matrix(np.ones((2, 3)) / 3)

    def test_constructor_rejects_bad_matrix(self):
        with pytest.raises(ValueError):
            MarkovChain(np.array([[0.5, 0.6], [0.5, 0.5]]))

    def test_constructor_rejects_bad_stationary(self):
        P = np.array([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovChain(P, stationary=np.array([0.5, 0.5, 0.0]))
        with pytest.raises(ValueError):
            MarkovChain(P, stationary=np.array([0.9, 0.5]))

    def test_transition_matrix_readonly(self):
        chain = two_state_chain()
        with pytest.raises(ValueError):
            chain.transition_matrix[0, 0] = 1.0


class TestStationary:
    def test_two_state_closed_form(self):
        p, q = 0.3, 0.2
        chain = two_state_chain(p, q)
        pi = chain.stationary
        np.testing.assert_allclose(pi, [q / (p + q), p / (p + q)], atol=1e-10)

    def test_stationary_is_invariant(self):
        chain = random_walk_cycle(6)
        pi = chain.stationary
        np.testing.assert_allclose(pi @ chain.transition_matrix, pi, atol=1e-10)

    def test_supplied_stationary_used(self):
        P = np.array([[0.5, 0.5], [0.5, 0.5]])
        chain = MarkovChain(P, stationary=np.array([0.5, 0.5]))
        np.testing.assert_allclose(chain.stationary, [0.5, 0.5])

    def test_standalone_function(self):
        P = np.array([[0.9, 0.1], [0.4, 0.6]])
        pi = stationary_distribution(P)
        np.testing.assert_allclose(pi @ P, pi, atol=1e-10)
        assert pi.sum() == pytest.approx(1.0)


class TestStructure:
    def test_irreducible_chain(self):
        assert random_walk_cycle(5).is_irreducible()

    def test_reducible_chain(self):
        P = np.array([[1.0, 0.0], [0.0, 1.0]])
        chain = MarkovChain(P)
        assert not chain.is_irreducible()

    def test_aperiodic_with_self_loops(self):
        assert random_walk_cycle(5, lazy=0.5).is_aperiodic()

    def test_periodic_two_cycle(self):
        P = np.array([[0.0, 1.0], [1.0, 0.0]])
        chain = MarkovChain(P)
        assert chain.is_irreducible()
        assert not chain.is_aperiodic()
        assert not chain.is_ergodic()

    def test_odd_cycle_without_laziness_is_aperiodic(self):
        chain = random_walk_cycle(5, lazy=0.0)
        assert chain.is_aperiodic()

    def test_even_cycle_without_laziness_is_periodic(self):
        chain = random_walk_cycle(4, lazy=0.0)
        assert not chain.is_aperiodic()

    def test_ergodic(self):
        assert two_state_chain().is_ergodic()

    def test_reversibility_of_birth_death(self):
        # birth-death chains are always reversible
        P = np.array(
            [
                [0.7, 0.3, 0.0],
                [0.2, 0.5, 0.3],
                [0.0, 0.4, 0.6],
            ]
        )
        assert MarkovChain(P).is_reversible()

    def test_nonreversible_chain(self):
        # a biased cycle walk is not reversible
        n = 4
        P = np.zeros((n, n))
        for i in range(n):
            P[i, (i + 1) % n] = 0.8
            P[i, (i - 1) % n] = 0.2
        assert not MarkovChain(P).is_reversible()


class TestDynamics:
    def test_edge_stationary_sums_to_one(self):
        chain = random_walk_cycle(5)
        assert chain.edge_stationary().sum() == pytest.approx(1.0)

    def test_step_distribution_preserves_mass(self):
        chain = two_state_chain()
        mu = np.array([1.0, 0.0])
        out = chain.step_distribution(mu, steps=7)
        assert out.sum() == pytest.approx(1.0)

    def test_t_step_matrix_matches_power(self):
        chain = two_state_chain()
        P = np.asarray(chain.transition_matrix)
        np.testing.assert_allclose(chain.t_step_matrix(5), np.linalg.matrix_power(P, 5))
        np.testing.assert_allclose(chain.t_step_matrix(0), np.eye(2))

    def test_t_step_matrix_rejects_negative(self):
        with pytest.raises(ValueError):
            two_state_chain().t_step_matrix(-1)

    def test_sample_path_shape_and_validity(self):
        chain = random_walk_cycle(5)
        rng = np.random.default_rng(0)
        path = chain.sample_path(start=2, length=100, rng=rng)
        assert path.shape == (101,)
        assert path[0] == 2
        assert np.all((path >= 0) & (path < 5))
        # consecutive states must be joined by positive-probability transitions
        P = chain.transition_matrix
        for u, v in zip(path, path[1:]):
            assert P[u, v] > 0

    def test_sample_path_rejects_bad_start(self):
        with pytest.raises(ValueError):
            two_state_chain().sample_path(start=5, length=3)

    def test_expected_hitting_time_two_state(self):
        p = 0.25
        P = np.array([[1 - p, p], [0.0, 1.0]])
        chain = MarkovChain(P)
        h = chain.expected_hitting_time(1)
        assert h[1] == 0.0
        assert h[0] == pytest.approx(1.0 / p)

    def test_expected_hitting_time_target_set(self):
        chain = random_walk_cycle(5)
        h = chain.expected_hitting_time([0, 1])
        assert h[0] == 0.0 and h[1] == 0.0
        assert np.all(h[2:] > 0)
