"""Unit tests for the telemetry layer (repro.obs)."""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import networkx as nx
import numpy as np
import pytest

from repro.core import LogitDynamics
from repro.games import IsingGame
from repro.obs import (
    JsonlTraceSink,
    MemorySink,
    NullTracer,
    RunManifest,
    Tracer,
    as_tracer,
    load_trace_files,
    read_trace,
    render_run_summary,
    summarize_runs,
)
from repro.obs.tracer import _NULL_TIMER, NULL_TRACER


class TestTracer:
    def test_manifest_opens_every_trace(self):
        tracer = Tracer(run_id="abc")
        assert tracer.events[0]["kind"] == "manifest"
        assert tracer.events[0]["name"] == "run.manifest"
        payload = tracer.events[0]["payload"]
        assert {"git_rev", "python", "numpy", "platform"} <= set(payload)

    def test_counters_accumulate_and_emit_totals(self):
        tracer = Tracer(run_id="abc")
        tracer.count("x", 3)
        tracer.count("x", 2)
        assert tracer.counters["x"] == 5
        counter_events = [e for e in tracer.events if e["kind"] == "counter"]
        assert [e["total"] for e in counter_events] == [3, 5]
        assert [e["inc"] for e in counter_events] == [3, 2]

    def test_events_have_common_fields_and_monotonic_seq(self):
        tracer = Tracer(run_id="abc")
        tracer.gauge("g", 1.5)
        tracer.event("e", foo="bar")
        with tracer.timer("t"):
            pass
        seqs = [e["seq"] for e in tracer.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for event in tracer.events:
            assert {"run", "seq", "t", "kind", "name"} <= set(event)
            assert event["run"] == "abc"

    def test_timer_aggregates(self):
        tracer = Tracer(run_id="abc")
        tracer.timing("work", 0.5)
        tracer.timing("work", 0.25)
        count, total = tracer.timers["work"]
        assert count == 2
        assert total == pytest.approx(0.75)

    def test_event_payload_merging(self):
        tracer = Tracer(run_id="abc")
        tracer.event("a", payload={"x": 1})
        tracer.event("b", y=2)
        tracer.event("c", payload={"x": 1}, y=2)
        payloads = [e["payload"] for e in tracer.events[1:]]
        assert payloads == [{"x": 1}, {"y": 2}, {"x": 1, "y": 2}]

    def test_annotate_updates_manifest_view(self):
        tracer = Tracer(run_id="abc")
        tracer.annotate(seed=7, sweep="demo")
        assert tracer.manifest.extra["seed"] == 7
        summary = summarize_runs(tracer.events)["abc"]
        assert summary.manifest["seed"] == 7
        assert summary.manifest["sweep"] == "demo"


class TestNullTracer:
    def test_disabled_and_silent(self):
        null = NullTracer()
        assert null.enabled is False
        assert null.count("x") is None
        assert null.gauge("x", 1) is None
        assert null.event("x") is None
        assert null.timing("x", 0.1) is None
        with null.timer("x"):
            pass

    def test_timer_returns_shared_singleton(self):
        assert NULL_TRACER.timer("a") is _NULL_TIMER
        assert NULL_TRACER.timer("b") is _NULL_TIMER

    def test_hot_path_methods_allocate_nothing(self):
        null = NULL_TRACER
        # warm any lazy interpreter state first
        null.count("x", 1)
        null.gauge("x", 1.0)
        null.event("x")
        null.timing("x", 0.0)
        null.timer("x")
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(100):
                null.count("x", 1)
                null.gauge("x", 1.0)
                null.event("x")
                null.timing("x", 0.0)
                null.timer("x")
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0


class TestAsTracer:
    def test_none_is_shared_null_singleton(self):
        assert as_tracer(None) is NULL_TRACER

    def test_tracer_passes_through(self):
        tracer = Tracer(run_id="abc")
        assert as_tracer(tracer) is tracer
        null = NullTracer()
        assert as_tracer(null) is null

    def test_path_becomes_jsonl_tracer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = as_tracer(path)
        try:
            assert isinstance(tracer, Tracer)
            tracer.count("x")
        finally:
            tracer.close()
        events = read_trace(path)
        assert events[0]["name"] == "run.manifest"
        assert events[-1]["name"] == "x"

    def test_rejects_junk(self):
        with pytest.raises(TypeError, match="tracer="):
            as_tracer(42)


class TestJsonlSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlTraceSink(path), run_id="abc") as tracer:
            tracer.count("hits", 2)
            tracer.event("custom", detail=[1, 2, 3])
        events = read_trace(path)
        assert [e["name"] for e in events] == ["run.manifest", "hits", "custom"]
        assert events[2]["payload"]["detail"] == [1, 2, 3]

    def test_appends_are_one_line_per_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlTraceSink(path), run_id="abc") as tracer:
            tracer.count("x")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"kind": "event"})

    def test_numpy_scalars_are_coerced(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlTraceSink(path), run_id="abc") as tracer:
            tracer.count("steps", np.int64(5))
            tracer.gauge("rate", np.float64(2.5))
            tracer.event("arr", values=np.arange(3))
        events = read_trace(path)
        assert events[1]["total"] == 5
        assert events[2]["value"] == 2.5
        assert events[3]["payload"]["values"] == [0, 1, 2]

    def test_read_trace_is_strict(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r":2: malformed"):
            read_trace(path)


class TestManifest:
    def test_collect_fields(self):
        manifest = RunManifest.collect(seed=123, custom="tag")
        payload = manifest.as_payload()
        assert payload["seed"] == 123
        assert payload["custom"] == "tag"
        assert payload["numpy"] == np.__version__
        assert isinstance(payload["git_rev"], str) and payload["git_rev"]


class TestSummary:
    def _write(self, path, events):
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")

    def test_clean_trace_has_no_anomalies(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlTraceSink(path), run_id="abc") as tracer:
            tracer.count("engine.replica_steps", 100)
            tracer.timing("engine.run", 0.5)
        events, anomalies = load_trace_files([path])
        assert anomalies == []
        summary = summarize_runs(events)["abc"]
        assert summary.replica_steps == 100
        assert summary.throughput == pytest.approx(200.0)

    def test_unknown_run_id_is_anomalous(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(
            path,
            [{"run": "ghost", "seq": 0, "t": 1.0, "kind": "counter",
              "name": "x", "inc": 1, "total": 1}],
        )
        _, anomalies = load_trace_files([path])
        assert any("unknown run id" in a for a in anomalies)

    def test_non_monotonic_seq_is_anomalous(self, tmp_path):
        path = tmp_path / "t.jsonl"
        base = {"run": "abc", "t": 1.0, "kind": "manifest", "name": "run.manifest"}
        self._write(path, [dict(base, seq=0), dict(base, seq=2, kind="counter",
                                                   name="x", total=1),
                           dict(base, seq=1, kind="counter", name="x", total=2)])
        _, anomalies = load_trace_files([path])
        assert any("non-monotonic seq" in a for a in anomalies)

    def test_backwards_wall_clock_is_anomalous(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(
            path,
            [{"run": "abc", "seq": 0, "t": 5.0, "kind": "manifest",
              "name": "run.manifest"},
             {"run": "abc", "seq": 1, "t": 4.0, "kind": "counter",
              "name": "x", "total": 1}],
        )
        _, anomalies = load_trace_files([path])
        assert any("wall-clock went backwards" in a for a in anomalies)

    def test_missing_common_fields_is_anomalous(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"run": "abc", "seq": 0}\n')
        _, anomalies = load_trace_files([path])
        assert any("missing fields" in a for a in anomalies)

    def test_counter_last_total_wins(self):
        tracer = Tracer(run_id="abc")
        tracer.count("x", 3)
        tracer.count("x", 4)
        summary = summarize_runs(tracer.events)["abc"]
        assert summary.counters["x"] == 7

    def test_store_hit_rate(self):
        tracer = Tracer(run_id="abc")
        tracer.count("store.hit", 3)
        tracer.count("store.miss", 1)
        summary = summarize_runs(tracer.events)["abc"]
        assert summary.store_hit_rate == pytest.approx(0.75)

    def test_render_contains_key_sections(self):
        tracer = Tracer(run_id="abc")
        tracer.count("engine.replica_steps", 1000)
        tracer.timing("engine.run", 0.1)
        tracer.event("shard.complete", shard=0, seconds=0.05)
        tracer.event("shard.chunk", shards=2, imbalance=1.25)
        tracer.event("sweep.cell", cell="fam", provenance="store")
        tracer.event(
            "driver.convergence", consumer="EmpiricalBernsteinCS[0]",
            n=64, lower=0.0, upper=2.0, width=2.0,
        )
        text = render_run_summary(summarize_runs(tracer.events)["abc"])
        assert "replica-steps=1000" in text
        assert "throughput=" in text
        assert "load imbalance" in text
        assert "provenance" in text
        assert "convergence EmpiricalBernsteinCS[0]" in text


class TestMemorySink:
    def test_collects_events(self):
        sink = MemorySink()
        with Tracer(sink, run_id="abc") as tracer:
            tracer.count("x")
        assert [e["name"] for e in sink.events] == ["run.manifest", "x"]


def _bare_run(sim, num_steps):
    """EnsembleSimulator.run minus the instrumentation: the untraced baseline."""
    draws = sim.kernel.begin_run(sim, num_steps)
    for t in range(num_steps):
        sim.kernel.run_step(sim, t, draws)


class TestNoOpOverhead:
    def test_default_tracer_is_the_null_singleton(self):
        game = IsingGame(nx.cycle_graph(16), coupling=1.0)
        sim = LogitDynamics(game, 1.0).ensemble(
            8, rng=np.random.default_rng(0), state="matrix"
        )
        assert sim.tracer is NULL_TRACER

    def test_run_emits_constant_events_per_call(self):
        """The per-step hot loop must stay tracer-free: event count is O(1)
        in the step count, not O(steps)."""
        game = IsingGame(nx.cycle_graph(16), coupling=1.0)
        tracer = Tracer(run_id="abc")
        sim = LogitDynamics(game, 1.0).ensemble(
            8, rng=np.random.default_rng(0), state="matrix", tracer=tracer
        )
        before = len(tracer.events)
        sim.run(10)
        per_short = len(tracer.events) - before
        before = len(tracer.events)
        sim.run(1000)
        per_long = len(tracer.events) - before
        assert per_short == per_long == 2  # one counter + one timer

    def test_noop_tracer_within_tolerance_of_untraced_baseline(self):
        """Pinned E-ENG ring smoke: replica-steps/s with the default no-op
        tracer vs the bare kernel loop (the pre-telemetry code path).  The
        claim is ~0% overhead (the hot loop is identical; instrumentation
        is two guarded calls per run()); the assertion bound is generous
        for CI jitter and overridable via OBS_OVERHEAD_TOL."""
        tolerance = float(os.environ.get("OBS_OVERHEAD_TOL", 0.10))
        game = IsingGame(nx.cycle_graph(64), coupling=1.0)
        dynamics = LogitDynamics(game, 1.0)
        steps, reps, rounds = 300, 32, 5

        def build():
            return dynamics.ensemble(
                reps, rng=np.random.default_rng(0), state="matrix"
            )

        traced_sim, bare_sim = build(), build()
        # interleave measurements so drift hits both arms equally
        traced, bare = [], []
        for _ in range(rounds):
            t0 = time.perf_counter()
            traced_sim.run(steps)
            traced.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            _bare_run(bare_sim, steps)
            bare.append(time.perf_counter() - t0)
        ratio = min(traced) / min(bare)
        assert ratio <= 1.0 + tolerance, (
            f"no-op tracer overhead {ratio - 1.0:.1%} exceeds the "
            f"{tolerance:.0%} bound (traced {min(traced):.4f}s vs bare "
            f"{min(bare):.4f}s best-of-{rounds})"
        )
