"""Tests for the dynamics variants (repro.core.variants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics, gibbs_measure
from repro.core.variants import (
    AnnealedLogitDynamics,
    BestResponseDynamics,
    ParallelLogitDynamics,
    RoundRobinLogitDynamics,
)
from repro.games import (
    AnonymousDominantGame,
    CoordinationParams,
    NormalFormGame,
    TwoPlayerCoordinationGame,
    TwoWellGame,
)
from repro.markov.chain import is_stochastic_matrix


def prisoners_dilemma() -> NormalFormGame:
    row = np.array([[1.0, 5.0], [0.0, 3.0]])
    return NormalFormGame(row, row.T)


class TestParallelLogitDynamics:
    def test_transition_matrix_is_stochastic(self, ring5_ising_game):
        P = ParallelLogitDynamics(ring5_ising_game, 0.9).transition_matrix()
        assert is_stochastic_matrix(P, tol=1e-9)

    def test_factorisation_of_entries(self):
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))
        beta = 0.7
        parallel = ParallelLogitDynamics(game, beta)
        sequential = LogitDynamics(game, beta)
        P = parallel.transition_matrix()
        space = game.space
        for x in range(space.size):
            for y in range(space.size):
                expected = 1.0
                for player in range(2):
                    probs = sequential.update_distribution_by_index(x, player)
                    expected *= probs[space.strategy_of(y, player)]
                assert P[x, y] == pytest.approx(expected)

    def test_beta_zero_is_uniform_over_profiles(self):
        game = TwoWellGame(3, barrier=1.0)
        P = ParallelLogitDynamics(game, 0.0).transition_matrix()
        np.testing.assert_allclose(P, np.full((8, 8), 1 / 8))

    def test_stationary_differs_from_gibbs_in_general(self):
        """The synchronous chain does not have the Gibbs measure as its
        stationary distribution (unlike the sequential logit dynamics)."""
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))
        beta = 2.0
        chain = ParallelLogitDynamics(game, beta).markov_chain()
        gibbs = gibbs_measure(game.potential_vector(), beta)
        assert not np.allclose(chain.stationary, gibbs, atol=1e-3)

    def test_simulation_shape(self, ring5_ising_game):
        traj = ParallelLogitDynamics(ring5_ising_game, 1.0).simulate(
            (0,) * 5, 20, rng=np.random.default_rng(0)
        )
        assert traj.shape == (21, 5)

    def test_negative_beta_rejected(self, ring5_ising_game):
        with pytest.raises(ValueError):
            ParallelLogitDynamics(ring5_ising_game, -1.0)


class TestBestResponseDynamics:
    def test_high_beta_logit_converges_to_best_response(self):
        game = prisoners_dilemma()
        assert BestResponseDynamics(game).is_limit_of_logit(beta=300.0, atol=1e-6)

    def test_strict_equilibria_are_absorbing(self):
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))
        dynamics = BestResponseDynamics(game)
        absorbing = set(int(x) for x in dynamics.absorbing_profiles())
        assert game.space.encode((0, 0)) in absorbing
        assert game.space.encode((1, 1)) in absorbing
        assert game.space.encode((0, 1)) not in absorbing

    def test_update_distribution_uniform_over_ties(self):
        # a game where both strategies are best responses
        row = np.array([[1.0, 1.0], [1.0, 1.0]])
        game = NormalFormGame(row, row)
        probs = BestResponseDynamics(game).update_distribution(0, 0)
        np.testing.assert_allclose(probs, [0.5, 0.5])

    def test_matrix_stochastic(self, clique4_game):
        P = BestResponseDynamics(clique4_game).transition_matrix()
        assert is_stochastic_matrix(P)

    def test_dominant_game_absorbs_at_dominant_profile(self):
        game = AnonymousDominantGame(3, 2)
        dynamics = BestResponseDynamics(game)
        chain = dynamics.markov_chain()
        # after many best-response rounds from anywhere, all mass is on 0
        mu = np.full(game.space.size, 1.0 / game.space.size)
        out = chain.step_distribution(mu, steps=200)
        assert out[game.space.encode((0, 0, 0))] == pytest.approx(1.0, abs=1e-6)


class TestAnnealedLogitDynamics:
    def test_schedule_validation(self):
        game = TwoWellGame(3, barrier=1.0)
        annealed = AnnealedLogitDynamics(game, lambda t: -1.0)
        with pytest.raises(ValueError):
            annealed.beta_at(0)
        with pytest.raises(ValueError):
            AnnealedLogitDynamics.logarithmic_schedule(scale=0.0)

    def test_constant_schedule_matches_fixed_beta(self):
        game = TwoWellGame(3, barrier=1.0)
        beta = 0.8
        annealed = AnnealedLogitDynamics(game, lambda t: beta)
        fixed = LogitDynamics(game, beta)
        mu = np.zeros(game.space.size)
        mu[0] = 1.0
        out_annealed = annealed.evolve_distribution(mu, 5)
        out_fixed = mu.copy()
        for _ in range(5):
            out_fixed = out_fixed @ fixed.transition_matrix()
        np.testing.assert_allclose(out_annealed, out_fixed, atol=1e-12)

    def test_logarithmic_schedule_monotone(self):
        schedule = AnnealedLogitDynamics.logarithmic_schedule(scale=1.0)
        values = [schedule(t) for t in range(0, 100, 10)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_annealing_concentrates_on_potential_minimiser(self):
        """With a logarithmic schedule the distribution drifts towards the
        potential minimisers (the deep well) as time grows."""
        game = TwoWellGame(4, barrier=1.0, depth_ratio=0.5)
        deep_well = game.well_indices[0]
        annealed = AnnealedLogitDynamics(
            game, AnnealedLogitDynamics.logarithmic_schedule(scale=0.25)
        )
        mu = np.full(game.space.size, 1.0 / game.space.size)
        out = annealed.evolve_distribution(mu, 150)
        assert out[deep_well] == pytest.approx(np.max(out))
        assert out[deep_well] > 0.5

    def test_simulation_shape(self):
        game = TwoWellGame(3, barrier=1.0)
        annealed = AnnealedLogitDynamics(game, lambda t: 0.5)
        traj = annealed.simulate((0, 0, 0), 30, rng=np.random.default_rng(1))
        assert traj.shape == (31, 3)


class TestRoundRobinLogitDynamics:
    def test_player_step_matrix_stochastic(self, ring5_ising_game):
        rr = RoundRobinLogitDynamics(ring5_ising_game, 1.0)
        for player in range(5):
            assert is_stochastic_matrix(rr.player_step_matrix(player))

    def test_round_matrix_stochastic_and_ergodic(self, clique4_game):
        rr = RoundRobinLogitDynamics(clique4_game, 0.8)
        chain = rr.markov_chain()
        assert is_stochastic_matrix(np.asarray(chain.transition_matrix))
        assert chain.is_ergodic()

    def test_gibbs_not_exactly_stationary_but_close_at_low_beta(self):
        """Round-robin scanning preserves the Gibbs measure only approximately;
        at low beta the two stationary distributions are close."""
        game = TwoWellGame(3, barrier=1.0)
        beta = 0.2
        rr_chain = RoundRobinLogitDynamics(game, beta).markov_chain()
        gibbs = gibbs_measure(game.potential_vector(), beta)
        from repro.markov import total_variation

        assert total_variation(rr_chain.stationary, gibbs) < 0.05

    def test_one_round_mixes_at_least_as_fast_as_one_uniform_step(self):
        """A full round touches every player, so the round-level chain mixes
        in fewer rounds than the uniform chain needs steps."""
        from repro.markov.mixing import mixing_time

        game = TwoWellGame(3, barrier=1.0)
        beta = 0.5
        rounds = mixing_time(RoundRobinLogitDynamics(game, beta).markov_chain()).mixing_time
        steps = mixing_time(LogitDynamics(game, beta).markov_chain()).mixing_time
        assert rounds <= steps
