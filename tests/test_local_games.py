"""Tests for local-interaction games (repro.games.local).

The load-bearing contract is *agreement with the dense constructions*: on
small graphs a :class:`LocalInteractionGame` must reproduce the tabulated
:class:`GraphicalCoordinationGame` / :class:`IsingGame` numbers exactly
(utilities, potential, logit chain), while computing everything from
neighbor strategies only — which is then exercised far past the int64
profile-index ceiling.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import LogitDynamics
from repro.games import (
    CoordinationParams,
    GraphicalCoordinationGame,
    IsingGame,
    LocalInteractionGame,
    derive_edge_potential,
)
from repro.games.ising import ising_hamiltonian, spins_from_profile


class TestAgainstDenseConstructions:
    @pytest.mark.parametrize(
        "graph", [nx.cycle_graph(5), nx.path_graph(4), nx.complete_graph(4)]
    )
    def test_matches_graphical_coordination_game(self, graph):
        params = CoordinationParams.from_deltas(2.0, 1.0)
        dense = GraphicalCoordinationGame(graph, params)
        local = LocalInteractionGame.coordination(graph, params)
        for player in range(dense.num_players):
            np.testing.assert_allclose(
                local.utility_matrix(player), dense.utility_matrix(player)
            )
        np.testing.assert_allclose(
            local.potential_vector(), dense.potential_vector()
        )
        np.testing.assert_allclose(
            LogitDynamics(local, 0.8).transition_matrix(),
            LogitDynamics(dense, 0.8).transition_matrix(),
        )

    def test_ising_potential_is_hamiltonian(self):
        graph = nx.cycle_graph(4)
        game = IsingGame(graph, coupling=1.3, field=0.4)
        for x in range(game.space.size):
            spins = spins_from_profile(np.asarray(game.space.decode(x)))
            assert game.potential(x) == pytest.approx(
                ising_hamiltonian(graph, spins, coupling=1.3, field=0.4)
            )

    def test_verify_potential_on_small_graphs(self):
        params = CoordinationParams(a=3.0, b=2.0, c=0.5, d=1.0)
        game = LocalInteractionGame.coordination(nx.cycle_graph(4), params)
        assert game.has_potential
        assert game.verify_potential()

    def test_derived_potential_defines_same_gibbs_as_explicit(self):
        # auto-derived edge potentials differ from the coordination ones by
        # an additive constant per edge — same Gibbs measure, same dynamics
        from repro.core import gibbs_measure

        params = CoordinationParams.from_deltas(1.5, 1.0)
        payoff = np.array([[params.a, params.c], [params.d, params.b]])
        derived = LocalInteractionGame(nx.cycle_graph(4), payoff)
        explicit = LocalInteractionGame.coordination(nx.cycle_graph(4), params)
        assert derived.has_potential
        np.testing.assert_allclose(
            gibbs_measure(derived.potential_vector(), 0.7),
            gibbs_measure(explicit.potential_vector(), 0.7),
            atol=1e-12,
        )


class TestUtilityPaths:
    """All utility entry points must agree with each other."""

    @pytest.fixture
    def game(self):
        return IsingGame(nx.random_regular_graph(3, 8, seed=1), coupling=1.0, field=0.3)

    def test_deviations_scalar_vs_profiles_vs_many(self, game, rng):
        idx = rng.integers(0, game.space.size, size=13)
        profiles = game.space.decode_many(idx)
        for player in range(game.num_players):
            batched = game.utility_deviations_many(player, idx)
            rows = game.utility_deviations_profiles(player, profiles)
            np.testing.assert_array_equal(batched, rows)
            for j, x in enumerate(idx):
                np.testing.assert_array_equal(
                    game.utility_deviations(player, int(x)), batched[j]
                )

    def test_rowwise_matches_per_player_rows(self, game, rng):
        k = 17
        idx = rng.integers(0, game.space.size, size=k)
        players = rng.integers(0, game.num_players, size=k)
        profiles = game.space.decode_many(idx)
        rowwise = game.utility_deviations_rowwise(players, profiles)
        for j in range(k):
            np.testing.assert_array_equal(
                rowwise[j],
                game.utility_deviations_profiles(
                    int(players[j]), profiles[j : j + 1]
                )[0],
            )

    def test_rowwise_reuses_scratch_allocation_free(self, game, rng):
        # perf regression guard: the padded-gather scratch must be hoisted
        # into a per-state buffer — repeat same-batch-size calls return the
        # same (reused) array object, with values identical to a fresh
        # compute.  Callers consume the result before the next step, so
        # aliasing is part of the documented contract.
        k = 17
        players = rng.integers(0, game.num_players, size=k)
        profiles = game.space.decode_many(rng.integers(0, game.space.size, size=k))
        first = game.utility_deviations_rowwise(players, profiles)
        expected = first.copy()
        players2 = rng.integers(0, game.num_players, size=k)
        profiles2 = game.space.decode_many(
            rng.integers(0, game.space.size, size=k)
        )
        second = game.utility_deviations_rowwise(players2, profiles2)
        assert second is first  # scratch reused, not reallocated
        third = game.utility_deviations_rowwise(players, profiles)
        np.testing.assert_array_equal(third, expected)
        # int8 strategy rows (what MatrixState stores) hit the same scratch
        fourth = game.utility_deviations_rowwise(
            players, profiles.astype(np.int8)
        )
        assert fourth is first
        np.testing.assert_array_equal(fourth, expected)

    def test_utility_profile_many_matches_scalar(self, game, rng):
        idx = rng.integers(0, game.space.size, size=9)
        bulk = game.utility_profile_many(idx)
        for j, x in enumerate(idx):
            for player in range(game.num_players):
                assert bulk[j, player] == pytest.approx(
                    game.utility(player, int(x))
                )

    def test_index_free_paths_at_large_n(self):
        # 200 players: no profile index fits; everything must still work
        game = IsingGame(nx.cycle_graph(200), coupling=1.0)
        prof = np.zeros((3, 200), dtype=np.int64)
        prof[1, ::2] = 1
        prof[2, :] = 1
        devs = game.utility_deviations_profiles(0, prof)
        assert devs.shape == (3, 2)
        # all-down consensus: playing 0 (spin -1) agrees with both neighbors
        assert devs[0, 0] == pytest.approx(2.0)
        assert devs[0, 1] == pytest.approx(-2.0)
        phi = game.potential_of_profiles(prof)
        assert phi[0] == pytest.approx(-200.0)  # ring: n agreeing edges
        assert phi[2] == pytest.approx(-200.0)
        assert phi[1] == pytest.approx(200.0)  # alternating: all disagree
        np.testing.assert_allclose(
            game.magnetization_of_profiles(prof), [-1.0, 0.0, 1.0]
        )
        assert game.energy_of_profiles(prof)[0] == pytest.approx(-200.0)
        # scalar index accessors use exact Python ints past int64
        top = game.space.size - 1
        assert game.potential(top) == pytest.approx(-200.0)
        assert game.utility(0, top) == pytest.approx(2.0)


class TestEdgeSpecifications:
    def test_per_edge_mapping_payoffs(self):
        # a two-edge path with different couplings per edge
        g = nx.path_graph(3)
        spins = np.array([-1.0, 1.0])
        mats = {
            (0, 1): 1.0 * np.outer(spins, spins),
            (2, 1): 3.0 * np.outer(spins, spins),  # reversed orientation key
        }
        game = LocalInteractionGame(g, mats)
        # middle player deviations at all-down: agreeing with both earns J1+J2
        devs = game.utility_deviations_profiles(1, np.zeros((1, 3), dtype=int))
        assert devs[0, 0] == pytest.approx(4.0)
        assert devs[0, 1] == pytest.approx(-4.0)
        # endpoint 2 only sees its own edge
        devs2 = game.utility_deviations_profiles(2, np.zeros((1, 3), dtype=int))
        assert devs2[0, 0] == pytest.approx(3.0)

    def test_missing_edge_in_mapping_raises(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError, match="missing edge"):
            LocalInteractionGame(g, {(0, 1): np.zeros((2, 2))})

    def test_shape_and_finiteness_validation(self):
        g = nx.path_graph(2)
        with pytest.raises(ValueError, match="shape"):
            LocalInteractionGame(g, np.zeros((3, 3)))
        with pytest.raises(ValueError, match="finite"):
            LocalInteractionGame(g, np.full((2, 2), np.inf))
        with pytest.raises(ValueError, match="strategies"):
            LocalInteractionGame(g, np.zeros((1, 1)), num_strategies=1)
        with pytest.raises(ValueError, match="node"):
            LocalInteractionGame(nx.Graph(), np.zeros((2, 2)))

    def test_external_field_shapes(self):
        g = nx.path_graph(3)
        M = np.outer([-1.0, 1.0], [-1.0, 1.0])
        shared = LocalInteractionGame(g, M, external_field=np.array([0.0, 1.0]))
        per_player = LocalInteractionGame(
            g, M, external_field=np.tile([0.0, 1.0], (3, 1))
        )
        for player in range(3):
            np.testing.assert_allclose(
                shared.utility_matrix(player), per_player.utility_matrix(player)
            )
        with pytest.raises(ValueError, match="external_field"):
            LocalInteractionGame(g, M, external_field=np.zeros((4, 2)))

    def test_inconsistent_explicit_potential_rejected(self):
        g = nx.path_graph(2)
        M = np.outer([-1.0, 1.0], [-1.0, 1.0])
        with pytest.raises(ValueError, match="Equation"):
            LocalInteractionGame(g, M, edge_potentials=np.array([[0.0, 5.0], [1.0, 0.0]]))


class TestNonPotentialGames:
    #: symmetric-role rock-paper-scissors: cyclic best responses, no potential
    RPS = np.array([[0.0, -1.0, 1.0], [1.0, 0.0, -1.0], [-1.0, 1.0, 0.0]])

    def test_every_symmetric_role_2x2_game_has_a_potential(self, rng):
        # classical fact the derivation must reproduce: with two strategies
        # the symmetric-role edge game always admits an exact potential
        for _ in range(20):
            M = rng.normal(size=(2, 2))
            assert derive_edge_potential(M) is not None

    def test_non_potential_payoffs_have_no_potential(self):
        game = LocalInteractionGame(
            nx.path_graph(2), self.RPS, num_strategies=3
        )
        assert not game.has_potential
        with pytest.raises(ValueError, match="potential"):
            game.potential_vector()
        with pytest.raises(ValueError, match="potential"):
            game.potential_of_profiles(np.zeros((1, 2), dtype=int))
        # utilities and the engine still work — only potential accessors go
        dynamics = LogitDynamics(game, 1.0)
        sim = dynamics.ensemble(4, rng=np.random.default_rng(0))
        sim.run(50)

    def test_derive_edge_potential_roundtrip(self):
        params = CoordinationParams(a=2.0, b=1.5, c=0.25, d=0.5)
        M = np.array([[params.a, params.c], [params.d, params.b]])
        P = derive_edge_potential(M)
        assert P is not None
        assert P[0, 0] == pytest.approx(0.0)
        np.testing.assert_allclose(P, P.T)
        # Equation (1): deviating from b to a changes utility by the
        # opposite of the potential change
        for t in range(2):
            assert M[0, t] - M[1, t] == pytest.approx(P[1, t] - P[0, t])

    def test_genuinely_non_potential_matrix(self):
        assert derive_edge_potential(self.RPS) is None


class TestEngineIntegration:
    def test_edgeless_graph_runs_on_both_backends(self):
        # regression: the row-wise fast path indexed an empty edge stack on
        # graphs with no edges and crashed with an IndexError
        game = LocalInteractionGame(
            nx.empty_graph(4),
            np.outer([-1.0, 1.0], [-1.0, 1.0]),
            external_field=np.array([0.0, 1.0]),
        )
        dynamics = LogitDynamics(game, 1.0)
        runs = {}
        for state in ("index", "matrix"):
            sim = dynamics.ensemble(
                6, rng=np.random.default_rng(0), state=state, mode="matrix_free"
            )
            runs[state] = sim.run(80, record_every=1)
        np.testing.assert_array_equal(runs["index"], runs["matrix"])

    def test_predicate_well_rejects_start_distribution(self):
        from repro.core import empirical_escape_times

        game = IsingGame(nx.cycle_graph(5), coupling=1.0)
        with pytest.raises(ValueError, match="start_profiles"):
            empirical_escape_times(
                game,
                0.5,
                lambda prof: prof.min(axis=1) == 0,
                num_replicas=4,
                start_profiles=np.zeros(5, dtype=np.int64),
                start_distribution=np.ones(3),
            )

    def test_neighbors_of_matches_graph(self):
        game = IsingGame(nx.random_regular_graph(3, 8, seed=2), coupling=1.0)
        for u in range(8):
            assert sorted(game.neighbors_of(u)) == sorted(game.graph.neighbors(u))

    def test_small_local_game_whole_pipeline(self):
        """Dense pipeline agreement: Gibbs stationarity of the logit chain."""
        game = LocalInteractionGame.coordination(
            nx.cycle_graph(4), CoordinationParams.ising(1.0)
        )
        from repro.core import gibbs_measure

        dynamics = LogitDynamics(game, 0.9)
        pi = gibbs_measure(game.potential_vector(), 0.9)
        P = dynamics.transition_matrix()
        np.testing.assert_allclose(pi @ P, pi, atol=1e-12)
