"""Tests for the exact mixing-time computation (repro.markov.mixing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.mixing import (
    mixing_time,
    mixing_time_from_state,
    tv_decay_curve,
    worst_case_tv,
)


def two_state_chain(p: float = 0.3, q: float = 0.2) -> MarkovChain:
    return MarkovChain(np.array([[1 - p, p], [q, 1 - q]]))


def lazy_cycle(n: int = 6) -> MarkovChain:
    P = np.zeros((n, n))
    for i in range(n):
        P[i, i] = 0.5
        P[i, (i + 1) % n] += 0.25
        P[i, (i - 1) % n] += 0.25
    return MarkovChain(P)


class TestWorstCaseTV:
    def test_t_zero_near_one(self):
        chain = lazy_cycle(8)
        # at t=0 the chain is a point mass, far from the uniform stationary
        assert worst_case_tv(chain, 0) == pytest.approx(1.0 - 1.0 / 8)

    def test_monotone_decay(self):
        chain = lazy_cycle(6)
        values = [worst_case_tv(chain, t) for t in (0, 2, 5, 10, 30)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_converges_to_zero(self):
        chain = two_state_chain()
        assert worst_case_tv(chain, 200) < 1e-8

    def test_decay_curve_shape(self):
        chain = lazy_cycle(5)
        curve = tv_decay_curve(chain, horizon=10, stride=2)
        assert curve.shape == (6, 2)
        np.testing.assert_array_equal(curve[:, 0], [0, 2, 4, 6, 8, 10])
        assert np.all(np.diff(curve[:, 1]) <= 1e-12)


class TestMixingTime:
    def test_two_state_exact_value(self):
        # for the two-state chain d(t) = max(pi0, pi1) * |1 - p - q|^t
        p, q = 0.3, 0.2
        chain = two_state_chain(p, q)
        result = mixing_time(chain, epsilon=0.25)
        lam = 1 - p - q
        worst_start_mass = max(q, p) / (p + q)
        expected = int(np.ceil(np.log(0.25 / worst_start_mass) / np.log(lam)))
        assert result.mixing_time == expected
        assert not result.capped
        assert result.tv_at_mixing <= 0.25 < result.tv_before_mixing

    def test_definition_minimality(self):
        chain = lazy_cycle(6)
        result = mixing_time(chain, epsilon=0.25)
        t = result.mixing_time
        assert worst_case_tv(chain, t) <= 0.25
        assert worst_case_tv(chain, t - 1) > 0.25

    def test_already_mixed_chain(self):
        # a chain that jumps straight to stationarity mixes in one step
        pi = np.array([0.2, 0.3, 0.5])
        P = np.tile(pi, (3, 1))
        result = mixing_time(MarkovChain(P))
        assert result.mixing_time == 1

    def test_trivial_single_state(self):
        result = mixing_time(MarkovChain(np.array([[1.0]])))
        assert result.mixing_time == 0

    def test_epsilon_monotonicity(self):
        chain = lazy_cycle(7)
        loose = mixing_time(chain, epsilon=0.4).mixing_time
        tight = mixing_time(chain, epsilon=0.05).mixing_time
        assert tight >= loose

    def test_cap_reported(self):
        # slow two-state chain with tiny transition probabilities
        chain = two_state_chain(1e-4, 1e-4)
        result = mixing_time(chain, epsilon=0.25, max_time=10)
        assert result.capped
        assert result.mixing_time == 10

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            mixing_time(two_state_chain(), epsilon=1.5)

    def test_log_epsilon_relation(self):
        # t_mix(eps) <= t_mix(1/4) * ceil(log2(1/eps)) (standard relation);
        # check the weaker monotone consequence on an actual chain
        chain = lazy_cycle(6)
        t_quarter = mixing_time(chain, epsilon=0.25).mixing_time
        t_small = mixing_time(chain, epsilon=0.25**3).mixing_time
        assert t_small <= 3 * t_quarter + 3


class TestMixingTimeFromState:
    def test_single_start_below_worst_case(self):
        chain = lazy_cycle(6)
        worst = mixing_time(chain, epsilon=0.25).mixing_time
        singles = [mixing_time_from_state(chain, s, epsilon=0.25) for s in range(6)]
        assert max(singles) == worst

    def test_start_validation(self):
        with pytest.raises(ValueError):
            mixing_time_from_state(two_state_chain(), 9)
