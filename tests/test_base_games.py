"""Tests for game base classes (repro.games.base)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.games.base import (
    CallableGame,
    NormalFormGame,
    TableGame,
    best_responses,
    pure_nash_equilibria,
    random_game,
)


def prisoners_dilemma() -> NormalFormGame:
    # strategy 0 = defect, 1 = cooperate; defect dominates
    row = np.array([[1.0, 5.0], [0.0, 3.0]])
    col = row.T
    return NormalFormGame(row, col)


def matching_pennies() -> NormalFormGame:
    row = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return NormalFormGame(row, -row)


class TestTableGame:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TableGame((2, 2), np.zeros((2, 5)))

    def test_rejects_nonfinite(self):
        utilities = np.zeros((2, 4))
        utilities[0, 0] = np.nan
        with pytest.raises(ValueError):
            TableGame((2, 2), utilities)

    def test_utility_lookup(self):
        utilities = np.arange(8, dtype=float).reshape(2, 4)
        game = TableGame((2, 2), utilities)
        assert game.utility(0, 3) == 3.0
        assert game.utility(1, 0) == 4.0

    def test_utility_matrix_is_copy(self):
        game = TableGame((2, 2), np.zeros((2, 4)))
        m = game.utility_matrix(0)
        m[:] = 99.0
        assert game.utility(0, 0) == 0.0

    def test_utilities_property_readonly(self):
        game = TableGame((2, 2), np.zeros((2, 4)))
        with pytest.raises(ValueError):
            game.utilities[0, 0] = 1.0

    def test_from_function(self):
        game = TableGame.from_function((2, 2), lambda i, prof: float(prof[i]))
        assert game.utility(0, game.space.encode((1, 0))) == 1.0
        assert game.utility(1, game.space.encode((1, 0))) == 0.0

    def test_utility_deviations_ordering(self):
        game = TableGame.from_function((2, 3), lambda i, prof: float(10 * i + prof[i]))
        idx = game.space.encode((1, 2))
        np.testing.assert_allclose(game.utility_deviations(1, idx), [10.0, 11.0, 12.0])

    def test_utility_profile(self):
        game = prisoners_dilemma()
        utils = game.utility_profile((1, 1))
        np.testing.assert_allclose(utils, [3.0, 3.0])

    def test_utility_profile_many_matches_scalar(self):
        game = TableGame.from_function((2, 3), lambda i, prof: float(10 * i + prof[i]))
        idx = np.arange(game.space.size, dtype=np.int64)
        batched = game.utility_profile_many(idx)
        assert batched.shape == (game.space.size, 2)
        for x in idx:
            np.testing.assert_allclose(
                batched[x], game.utility_profile(game.space.decode(int(x)))
            )
        assert game.utility_profile_many(np.empty(0, dtype=np.int64)).shape == (0, 2)

    def test_utility_profile_many_generic_fallback_agrees(self):
        table = TableGame.from_function((2, 2), lambda i, prof: float(prof[0] - 2 * prof[1] + i))
        from repro.games import CallableGame

        callable_game = CallableGame((2, 2), lambda i, prof: float(prof[0] - 2 * prof[1] + i))
        idx = np.array([0, 3, 1, 2], dtype=np.int64)
        np.testing.assert_allclose(
            table.utility_profile_many(idx), callable_game.utility_profile_many(idx)
        )


class TestNormalFormGame:
    def test_payoff_mapping(self):
        game = prisoners_dilemma()
        # row plays 0 (defect), col plays 1 (cooperate): row gets 5, col gets 0
        idx = game.space.encode((0, 1))
        assert game.utility(0, idx) == 5.0
        assert game.utility(1, idx) == 0.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            NormalFormGame(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_asymmetric_strategy_counts(self):
        row = np.arange(6, dtype=float).reshape(2, 3)
        game = NormalFormGame(row, -row)
        assert game.num_strategies == (2, 3)
        assert game.space.size == 6


class TestCallableGame:
    def test_matches_table_game(self):
        fn = lambda i, prof: float(prof[0] * 2 + prof[1] - i)
        table = TableGame.from_function((2, 2), fn)
        lazy = CallableGame((2, 2), fn)
        for x in range(4):
            for i in range(2):
                assert table.utility(i, x) == lazy.utility(i, x)


class TestEquilibria:
    def test_pd_single_equilibrium(self):
        game = prisoners_dilemma()
        eq = pure_nash_equilibria(game)
        assert eq == [game.space.encode((0, 0))]

    def test_matching_pennies_no_pure_equilibrium(self):
        assert pure_nash_equilibria(matching_pennies()) == []

    def test_coordination_two_equilibria(self):
        row = np.array([[2.0, 0.0], [0.0, 1.0]])
        game = NormalFormGame(row, row.T)
        eq = set(pure_nash_equilibria(game))
        assert eq == {game.space.encode((0, 0)), game.space.encode((1, 1))}

    def test_best_responses(self):
        game = prisoners_dilemma()
        idx = game.space.encode((1, 1))
        np.testing.assert_array_equal(best_responses(game, 0, idx), [0])

    def test_is_best_response(self):
        game = prisoners_dilemma()
        assert game.is_best_response(0, game.space.encode((0, 1)))
        assert not game.is_best_response(0, game.space.encode((1, 1)))


class TestRandomGame:
    def test_deterministic_given_rng(self):
        a = random_game((2, 2), rng=np.random.default_rng(7))
        b = random_game((2, 2), rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.utilities, b.utilities)

    def test_bounds_respected(self):
        game = random_game((2, 3), rng=np.random.default_rng(0), low=-2.0, high=2.0)
        assert np.all(game.utilities >= -2.0) and np.all(game.utilities <= 2.0)
