"""Tests for welfare analysis (repro.analysis.welfare) and max-solvable games."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.welfare import (
    logit_price_of_anarchy,
    optimal_welfare,
    social_welfare_vector,
    stationary_expected_welfare,
    welfare_vs_beta,
    worst_equilibrium_welfare,
)
from repro.games import (
    AnonymousDominantGame,
    CoordinationParams,
    NormalFormGame,
    TwoPlayerCoordinationGame,
)
from repro.games.base import random_game
from repro.games.maxsolvable import is_max_solvable, max_solve, never_best_response_strategies


def prisoners_dilemma() -> NormalFormGame:
    row = np.array([[1.0, 5.0], [0.0, 3.0]])
    return NormalFormGame(row, row.T)


def matching_pennies() -> NormalFormGame:
    row = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return NormalFormGame(row, -row)


class TestSocialWelfare:
    def test_welfare_vector(self):
        game = prisoners_dilemma()
        welfare = social_welfare_vector(game)
        assert welfare[game.space.encode((1, 1))] == pytest.approx(6.0)  # C,C
        assert welfare[game.space.encode((0, 0))] == pytest.approx(2.0)  # D,D
        assert welfare[game.space.encode((0, 1))] == pytest.approx(5.0)

    def test_optimal_welfare(self):
        assert optimal_welfare(prisoners_dilemma()) == pytest.approx(6.0)

    def test_worst_equilibrium_welfare(self):
        assert worst_equilibrium_welfare(prisoners_dilemma()) == pytest.approx(2.0)
        assert worst_equilibrium_welfare(matching_pennies()) is None

    def test_stationary_welfare_beta_zero_is_profile_average(self):
        game = prisoners_dilemma()
        expected = float(np.mean(social_welfare_vector(game)))
        assert stationary_expected_welfare(game, 0.0) == pytest.approx(expected)

    def test_pd_welfare_decreases_with_beta(self):
        """In the prisoner's dilemma rational play concentrates on the bad
        equilibrium, so the stationary welfare falls as beta grows."""
        game = prisoners_dilemma()
        w_low = stationary_expected_welfare(game, 0.0)
        w_high = stationary_expected_welfare(game, 10.0)
        assert w_high < w_low
        assert w_high == pytest.approx(2.0, abs=0.1)

    def test_coordination_welfare_increases_with_beta(self):
        """In a coordination game rationality helps: the stationary welfare
        rises towards the payoff of the better equilibrium."""
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))
        w_low = stationary_expected_welfare(game, 0.0)
        w_high = stationary_expected_welfare(game, 10.0)
        assert w_high > w_low
        assert w_high == pytest.approx(4.0, abs=0.1)  # both players get a = 2

    def test_price_of_anarchy_at_high_beta(self):
        game = prisoners_dilemma()
        ratio = logit_price_of_anarchy(game, 10.0)
        assert ratio == pytest.approx(3.0, rel=0.1)  # 6 / 2

    def test_price_of_anarchy_rejects_nonpositive_welfare(self):
        game = matching_pennies()  # zero-sum: welfare identically 0
        with pytest.raises(ValueError):
            logit_price_of_anarchy(game, 1.0)

    def test_welfare_vs_beta_shape(self):
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))
        table = welfare_vs_beta(game, [0.0, 1.0, 5.0])
        assert table.shape == (3, 4)
        assert np.all(np.diff(table[:, 1]) >= -1e-9)  # welfare non-decreasing here


class TestMaxSolvable:
    def test_prisoners_dilemma_is_max_solvable(self):
        result = max_solve(prisoners_dilemma())
        assert result.solvable
        assert result.solution_profile == (0, 0)
        assert is_max_solvable(prisoners_dilemma())

    def test_strictly_dominant_game_is_max_solvable(self):
        from repro.games import random_dominant_game

        game = random_dominant_game((2, 3, 2), rng=np.random.default_rng(3))
        result = max_solve(game)
        assert result.solvable
        assert result.solution_profile == (0, 0, 0)

    def test_weakly_dominant_game_with_ties_is_not_reduced(self):
        """The anonymous Theorem 4.3 game has massive payoff ties (every
        profile other than 0 gives -1), so weak-best-response elimination
        removes nothing — max-solvability is genuinely stronger than having
        a weakly dominant profile."""
        game = AnonymousDominantGame(3, 3)
        result = max_solve(game)
        assert not result.solvable
        assert result.elimination_order == ()

    def test_coordination_game_not_max_solvable(self):
        game = TwoPlayerCoordinationGame(CoordinationParams.from_deltas(2.0, 1.0))
        result = max_solve(game)
        assert not result.solvable
        assert result.solution_profile is None
        # nothing can be eliminated: both strategies are best responses somewhere
        assert result.surviving == ((0, 1), (0, 1))

    def test_matching_pennies_not_max_solvable(self):
        assert not is_max_solvable(matching_pennies())

    def test_iterated_elimination_two_rounds(self):
        """A 2x3 game where one column is eliminated first, which then makes a
        row strategy never-best and solvable in a second round."""
        # row player utilities
        row = np.array([[3.0, 1.0, 0.0], [2.0, 0.5, 0.1]])
        # column player: strategy 2 is strictly worse than strategy 0 always
        col = np.array([[2.0, 1.0, 0.0], [2.0, 1.0, 0.5]])
        game = NormalFormGame(row, col)
        result = max_solve(game)
        assert result.solvable
        assert result.solution_profile == (0, 0)
        eliminated_players = [player for player, _ in result.elimination_order]
        assert 0 in eliminated_players and 1 in eliminated_players

    def test_never_best_response_detection(self):
        game = prisoners_dilemma()
        surviving = [[0, 1], [0, 1]]
        # cooperating (strategy 1) is never a best response for either player
        assert never_best_response_strategies(game, surviving, 0) == [1]
        assert never_best_response_strategies(game, surviving, 1) == [1]

    def test_random_game_procedure_terminates(self):
        game = random_game((3, 3, 2), rng=np.random.default_rng(0))
        result = max_solve(game)
        assert all(len(s) >= 1 for s in result.surviving)
