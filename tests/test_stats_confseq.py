"""Tests for the anytime-valid statistics subsystem (repro.stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import (
    EmpiricalBernsteinCS,
    HedgedBettingCS,
    NormalMixtureCS,
    StreamingEstimate,
    StreamingMoments,
    checkpoint_alpha,
    fixed_n_clt_interval,
    run_until_width,
    tv_distance_band,
)


class TestStreamingMoments:
    def test_matches_numpy_moments(self, rng):
        x = rng.normal(3.0, 2.0, size=500)
        acc = StreamingMoments()
        acc.update(x)
        assert acc.count == 500
        assert acc.mean == pytest.approx(x.mean())
        assert acc.variance == pytest.approx(x.var(ddof=1))

    def test_chunked_equals_one_shot(self, rng):
        x = rng.random(301)
        one = StreamingMoments()
        one.update(x)
        chunked = StreamingMoments()
        for i in range(0, 301, 17):
            chunked.update(x[i : i + 17])
        assert chunked.count == one.count
        assert chunked.mean == pytest.approx(one.mean)
        assert chunked.variance == pytest.approx(one.variance)

    def test_merge_is_exact_parallel_combine(self, rng):
        x = rng.random(200)
        a = StreamingMoments()
        a.update(x[:80])
        b = StreamingMoments()
        b.update(x[80:])
        a.merge(b)
        assert a.count == 200
        assert a.mean == pytest.approx(x.mean())
        assert a.variance == pytest.approx(x.var(ddof=1))

    def test_vectorised_over_estimands(self, rng):
        x = rng.random((100, 3))
        acc = StreamingMoments()
        acc.update(x[:60])
        acc.update(x[60:])
        np.testing.assert_allclose(acc.mean, x.mean(axis=0))
        np.testing.assert_allclose(acc.variance, x.var(axis=0, ddof=1))

    def test_variance_nan_before_two_observations(self):
        acc = StreamingMoments()
        acc.update(np.array([1.0]))
        assert np.isnan(acc.variance)


class TestEmpiricalBernsteinCS:
    def test_contains_truth_and_shrinks(self, rng):
        cs = EmpiricalBernsteinCS(alpha=0.05)
        widths = []
        for _ in range(8):
            cs.update(rng.random(250))
            lo, hi = cs.interval()
            assert lo <= 0.5 <= hi
            widths.append(float(hi - lo))
        assert widths[-1] < widths[0] / 2

    def test_chunking_does_not_change_the_interval(self, rng):
        x = rng.random(400)
        one = EmpiricalBernsteinCS(alpha=0.05)
        one.update(x)
        chunked = EmpiricalBernsteinCS(alpha=0.05)
        for i in range(0, 400, 7):
            chunked.update(x[i : i + 7])
        np.testing.assert_allclose(one.interval(), chunked.interval())
        assert one.mean() == pytest.approx(chunked.mean())

    def test_vectorised_matches_scalar_columns(self, rng):
        x = rng.random((300, 4))
        vec = EmpiricalBernsteinCS(alpha=0.05)
        vec.update(x)
        lo, hi = vec.interval()
        for k in range(4):
            ref = EmpiricalBernsteinCS(alpha=0.05)
            ref.update(x[:, k])
            assert lo[k] == pytest.approx(float(ref.interval()[0]))
            assert hi[k] == pytest.approx(float(ref.interval()[1]))

    def test_support_scaling(self, rng):
        raw = rng.random(300)
        unit = EmpiricalBernsteinCS(alpha=0.05)
        unit.update(raw)
        scaled = EmpiricalBernsteinCS(alpha=0.05, support=(-5.0, 15.0))
        scaled.update(-5.0 + 20.0 * raw)
        lo_u, hi_u = unit.interval()
        lo_s, hi_s = scaled.interval()
        assert lo_s == pytest.approx(-5.0 + 20.0 * float(lo_u))
        assert hi_s == pytest.approx(-5.0 + 20.0 * float(hi_u))

    def test_out_of_support_rejected(self):
        cs = EmpiricalBernsteinCS(alpha=0.05, support=(0.0, 1.0))
        with pytest.raises(ValueError, match="support"):
            cs.update(np.array([0.2, 1.7]))

    def test_variance_adaptivity(self, rng):
        """Lower-variance observations give a tighter interval at equal n."""
        noisy = EmpiricalBernsteinCS(alpha=0.05)
        noisy.update((rng.random(500) > 0.5).astype(float))
        quiet = EmpiricalBernsteinCS(alpha=0.05)
        quiet.update(0.5 + 0.02 * (rng.random(500) - 0.5))
        lo_n, hi_n = noisy.interval()
        lo_q, hi_q = quiet.interval()
        assert (hi_q - lo_q) < 0.3 * (hi_n - lo_n)

    def test_coverage_under_continuous_peeking(self):
        """The satellite contract: peeked EB CS keeps >= 1 - alpha coverage
        where the naive fixed-n CLT interval measurably exceeds its nominal
        miscoverage.  K independent Bernoulli repetitions run in lock-step
        (one vectorised CS), peeking after every chunk; a repetition counts
        as a miss if the truth is EVER outside the current interval."""
        alpha = 0.05
        p = 0.3
        reps, total, chunk = 400, 1500, 50
        rng = np.random.default_rng(987)
        cs = EmpiricalBernsteinCS(alpha=alpha)
        moments = StreamingMoments()
        cs_missed = np.zeros(reps, dtype=bool)
        clt_missed = np.zeros(reps, dtype=bool)
        for _ in range(total // chunk):
            x = (rng.random((chunk, reps)) < p).astype(float)
            cs.update(x)
            moments.update(x)
            lo, hi = cs.interval()
            cs_missed |= (p < lo) | (p > hi)
            clt_lo, clt_hi = fixed_n_clt_interval(
                moments.mean, moments.variance, moments.count, alpha=alpha
            )
            clt_missed |= (p < clt_lo) | (p > clt_hi)
        cs_miss_rate = cs_missed.mean()
        clt_miss_rate = clt_missed.mean()
        # time-uniform coverage holds under peeking ...
        assert cs_miss_rate <= alpha
        # ... while the peeked CLT interval's realized miscoverage clearly
        # exceeds its nominal level (the optional-stopping failure)
        assert clt_miss_rate > 2 * alpha


class TestHedgedBettingCS:
    def test_contains_truth_and_tightens(self, rng):
        cs = HedgedBettingCS(alpha=0.05)
        cs.update(rng.random(100) * 0.2 + 0.3)  # mean 0.4
        lo1, hi1 = cs.interval()
        assert lo1 <= 0.4 <= hi1
        cs.update(rng.random(400) * 0.2 + 0.3)
        lo2, hi2 = cs.interval()
        assert lo2 <= 0.4 <= hi2
        assert (hi2 - lo2) <= (hi1 - lo1)

    def test_support_scaling(self, rng):
        cs = HedgedBettingCS(alpha=0.05, support=(10.0, 20.0))
        cs.update(10.0 + 10.0 * (rng.random(300) * 0.2 + 0.3))
        lo, hi = cs.interval()
        assert lo <= 14.0 <= hi
        assert hi - lo < 2.0

    def test_vectorised_matches_scalar_columns(self, rng):
        x = rng.random((150, 3))
        vec = HedgedBettingCS(alpha=0.1, breaks=64)
        vec.update(x)
        lo, hi = vec.interval()
        for k in range(3):
            ref = HedgedBettingCS(alpha=0.1, breaks=64)
            ref.update(x[:, k])
            assert lo[k] == pytest.approx(float(ref.interval()[0]))
            assert hi[k] == pytest.approx(float(ref.interval()[1]))

    def test_comparable_or_tighter_than_eb(self, rng):
        x = rng.random(600) * 0.4 + 0.1
        eb = EmpiricalBernsteinCS(alpha=0.05)
        eb.update(x)
        bet = HedgedBettingCS(alpha=0.05, breaks=256)
        bet.update(x)
        eb_w = float(np.diff(eb.interval())[0])
        bet_w = float(np.diff(bet.interval())[0])
        assert bet_w <= eb_w * 1.25  # same ballpark, typically tighter


class TestNormalMixtureCS:
    def test_contains_truth_for_gaussian_stream(self, rng):
        cs = NormalMixtureCS(alpha=0.05, rho2=10.0)
        for _ in range(6):
            cs.update(rng.normal(7.0, 3.0, size=200))
            lo, hi = cs.interval()
            assert lo <= 7.0 <= hi
        assert hi - lo < 1.5

    def test_infinite_until_two_observations(self):
        cs = NormalMixtureCS()
        cs.update(np.array([1.0]))
        lo, hi = cs.interval()
        assert np.isinf(lo) and np.isinf(hi)

    def test_rho2_for_target_minimises_boundary(self):
        v = 500.0
        alpha = 0.05
        best = NormalMixtureCS.rho2_for_target(v, alpha)

        def boundary(rho2):
            return np.sqrt((v + rho2) * np.log((v + rho2) / (rho2 * alpha**2)))

        assert boundary(best) <= boundary(best * 3) + 1e-9
        assert boundary(best) <= boundary(best / 3) + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            NormalMixtureCS(alpha=1.5)
        with pytest.raises(ValueError):
            NormalMixtureCS(rho2=0.0)


class TestFixedNClt:
    def test_closed_form(self):
        lo, hi = fixed_n_clt_interval(0.5, 0.25, 100, alpha=0.05)
        half = 1.959963984540054 * np.sqrt(0.25 / 100)
        assert lo == pytest.approx(0.5 - half)
        assert hi == pytest.approx(0.5 + half)


class TestTvBand:
    def test_alpha_spending_sums_below_alpha(self):
        total = sum(checkpoint_alpha(j, 0.05) for j in range(1, 10_000))
        assert total <= 0.05

    def test_band_contains_estimate_and_clips(self):
        lo, hi = tv_distance_band(0.5, num_replicas=4096, support_size=16, alpha_j=0.01)
        assert 0.0 <= lo < 0.5 < hi <= 1.0
        lo, _ = tv_distance_band(0.01, num_replicas=64, support_size=16, alpha_j=0.01)
        assert lo == 0.0

    def test_band_shrinks_with_replicas(self):
        w_small = np.diff(tv_distance_band(0.5, 256, 16, 0.01))[0]
        w_big = np.diff(tv_distance_band(0.5, 16384, 16, 0.01))[0]
        assert w_big < 0.3 * w_small


class TestRunUntilWidth:
    @staticmethod
    def _uniform_chunk(children):
        return np.array([np.random.default_rng(c).random() for c in children])

    def test_stops_early_when_target_reached(self):
        est = run_until_width(
            self._uniform_chunk, 0.2, max_n=4096, chunk_size=64,
            support=(0.0, 1.0), seed=5,
        )
        assert isinstance(est, StreamingEstimate)
        assert est.stopped_early
        assert est.n < 4096
        assert est.width <= 0.2
        assert est.lower <= est.estimate <= est.upper

    def test_budget_exhaustion_reported_honestly(self):
        est = run_until_width(
            self._uniform_chunk, 1e-6, max_n=128, chunk_size=64,
            support=(0.0, 1.0), seed=5,
        )
        assert not est.stopped_early
        assert est.n == 128
        assert est.width > 1e-6

    def test_same_seed_reproduces_everything(self):
        a = run_until_width(
            self._uniform_chunk, 0.3, support=(0.0, 1.0), seed=42
        )
        b = run_until_width(
            self._uniform_chunk, 0.3, support=(0.0, 1.0), seed=42
        )
        assert a.n == b.n and a.estimate == b.estimate
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_pooled_samples_independent_of_chunk_size(self):
        runs = [
            run_until_width(
                self._uniform_chunk, 0.0, max_n=96, chunk_size=k,
                support=(0.0, 1.0), seed=7,
            )
            for k in (1, 7, 64)
        ]
        for other in runs[1:]:
            np.testing.assert_array_equal(runs[0].samples, other.samples)

    def test_unbounded_path_uses_normal_mixture(self):
        def gaussian_chunk(children):
            return np.array(
                [np.random.default_rng(c).normal(3.0, 1.0) for c in children]
            )

        est = run_until_width(gaussian_chunk, 1.0, max_n=4096, seed=1)
        assert est.stopped_early
        assert est.lower <= 3.0 <= est.upper or abs(est.estimate - 3.0) < 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one sample per spawned child"):
            run_until_width(lambda children: np.zeros(3), 0.1, chunk_size=8, seed=0)
