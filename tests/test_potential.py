"""Tests for potential games and structural quantities (repro.games.potential)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.games.base import NormalFormGame, TableGame, random_game
from repro.games.potential import (
    ExplicitPotentialGame,
    is_potential_game,
    local_variations,
    max_global_variation,
    max_local_variation,
    minimax_barrier_matrix,
    potential_from_game,
    zeta_barrier,
    zeta_barrier_bruteforce,
)
from repro.games.space import ProfileSpace


def coordination_2x2(delta0: float = 2.0, delta1: float = 1.0) -> NormalFormGame:
    row = np.array([[delta0, 0.0], [0.0, delta1]])
    return NormalFormGame(row, row.T)


class TestExplicitPotentialGame:
    def test_from_potential_verifies(self):
        phi = np.array([0.0, 1.0, 2.0, 0.5])
        game = ExplicitPotentialGame.from_potential((2, 2), phi)
        assert game.verify_potential()
        np.testing.assert_allclose(game.potential_vector(), phi)

    def test_from_potential_callable(self):
        game = ExplicitPotentialGame.from_potential((2, 2), lambda prof: float(sum(prof)))
        assert game.potential(game.space.encode((1, 1))) == 2.0

    def test_rejects_wrong_potential_length(self):
        with pytest.raises(ValueError):
            ExplicitPotentialGame((2, 2), np.zeros((2, 4)), np.zeros(5))

    def test_potential_minimizers(self):
        phi = np.array([3.0, 1.0, 1.0, 2.0])
        game = ExplicitPotentialGame.from_potential((2, 2), phi)
        np.testing.assert_array_equal(game.potential_minimizers(), [1, 2])

    def test_verify_detects_inconsistency(self):
        # utilities that do NOT match the declared potential
        utilities = np.array([[0.0, 1.0, 2.0, 3.0], [0.0, 0.0, 0.0, 0.0]])
        bad = ExplicitPotentialGame((2, 2), utilities, np.zeros(4))
        assert not bad.verify_potential()


class TestPotentialExtraction:
    def test_coordination_game_is_potential(self):
        assert is_potential_game(coordination_2x2())

    def test_extracted_potential_satisfies_equation1(self):
        game = coordination_2x2(2.0, 1.0)
        phi = potential_from_game(game)
        assert phi is not None
        rebuilt = ExplicitPotentialGame(
            game.num_strategies,
            np.stack([game.utility_matrix(i) for i in range(2)]),
            phi,
        )
        assert rebuilt.verify_potential()

    def test_extracted_potential_differences(self):
        game = coordination_2x2(2.0, 1.0)
        phi = potential_from_game(game)
        space = game.space
        # Equation (1) on a specific deviation: player 0 moving 1 -> 0 while
        # the opponent plays 0 gains delta0 utility, so potential drops by delta0.
        x10 = space.encode((1, 0))
        x00 = space.encode((0, 0))
        assert phi[x10] - phi[x00] == pytest.approx(2.0)

    def test_random_game_usually_not_potential(self):
        game = random_game((2, 2, 2), rng=np.random.default_rng(3))
        assert potential_from_game(game) is None

    def test_identical_interest_game_is_potential(self):
        rng = np.random.default_rng(5)
        common = rng.uniform(size=8)
        utilities = np.tile(common, (3, 1))
        game = TableGame((2, 2, 2), utilities)
        phi = potential_from_game(game)
        assert phi is not None
        # the recovered potential equals -common up to an additive constant
        diff = phi + common
        np.testing.assert_allclose(diff, diff[0] * np.ones_like(diff), atol=1e-9)


class TestStructuralQuantities:
    def test_max_global_variation(self):
        assert max_global_variation(np.array([0.0, -2.0, 3.0])) == 5.0

    def test_max_local_variation_two_well(self):
        space = ProfileSpace((2, 2, 2))
        phi = np.full(space.size, 2.0)
        phi[0] = 0.0
        assert max_local_variation(phi, space) == 2.0

    def test_local_variations_edge_count(self):
        space = ProfileSpace((2, 2))
        phi = np.array([0.0, 1.0, 2.0, 3.0])
        assert local_variations(phi, space).shape == (4,)

    def test_constant_potential_zero_everything(self):
        space = ProfileSpace((2, 2, 2))
        phi = np.ones(space.size)
        assert max_global_variation(phi) == 0.0
        assert max_local_variation(phi, space) == 0.0
        assert zeta_barrier(phi, space) == 0.0


class TestZetaBarrier:
    def test_zeta_two_well_symmetric(self):
        # wells at 000 and 111 of equal depth, ridge at height 2
        space = ProfileSpace((2, 2, 2))
        phi = np.full(space.size, 2.0)
        phi[space.encode((0, 0, 0))] = 0.0
        phi[space.encode((1, 1, 1))] = 0.0
        assert zeta_barrier(phi, space) == pytest.approx(2.0)
        assert zeta_barrier_bruteforce(phi, space) == pytest.approx(2.0)

    def test_zeta_asymmetric_wells(self):
        # well depths 0 and 1, ridge 3: the barrier seen from the shallower
        # well is 3 - 1 = 2
        space = ProfileSpace((2, 2, 2))
        phi = np.full(space.size, 3.0)
        phi[space.encode((0, 0, 0))] = 0.0
        phi[space.encode((1, 1, 1))] = 1.0
        assert zeta_barrier(phi, space) == pytest.approx(2.0)

    def test_zeta_monotone_potential_is_zero(self):
        # potential = Hamming weight: every pair is joined by a monotone path
        space = ProfileSpace((2, 2, 2, 2))
        phi = space.weight(np.arange(space.size)).astype(float)
        assert zeta_barrier(phi, space) == pytest.approx(0.0)

    def test_zeta_matches_bruteforce_random(self):
        rng = np.random.default_rng(11)
        space = ProfileSpace((2, 2, 2))
        for _ in range(10):
            phi = rng.uniform(0.0, 5.0, size=space.size)
            assert zeta_barrier(phi, space) == pytest.approx(
                zeta_barrier_bruteforce(phi, space), abs=1e-12
            )

    def test_zeta_matches_bruteforce_mixed_radix(self):
        rng = np.random.default_rng(13)
        space = ProfileSpace((3, 2, 2))
        for _ in range(5):
            phi = rng.normal(size=space.size)
            assert zeta_barrier(phi, space) == pytest.approx(
                zeta_barrier_bruteforce(phi, space), abs=1e-12
            )

    def test_zeta_nonnegative(self):
        rng = np.random.default_rng(17)
        space = ProfileSpace((2, 3))
        for _ in range(20):
            phi = rng.normal(size=space.size)
            assert zeta_barrier(phi, space) >= 0.0

    def test_minimax_barrier_matrix_symmetric(self):
        rng = np.random.default_rng(23)
        space = ProfileSpace((2, 2, 2))
        phi = rng.uniform(size=space.size)
        M = minimax_barrier_matrix(phi, space)
        np.testing.assert_allclose(M, M.T)
        np.testing.assert_allclose(np.diag(M), phi)

    def test_zeta_at_most_delta_phi(self):
        # zeta can never exceed the global variation
        rng = np.random.default_rng(29)
        space = ProfileSpace((2, 2, 2, 2))
        for _ in range(10):
            phi = rng.uniform(0.0, 3.0, size=space.size)
            assert zeta_barrier(phi, space) <= max_global_variation(phi) + 1e-12


class TestGameLevelAccessors:
    def test_game_structural_methods(self, theorem35_game):
        game = theorem35_game
        assert game.max_global_variation() == pytest.approx(2.0)
        assert game.max_local_variation() == pytest.approx(1.0)
        # for the Theorem 3.5 potential the barrier equals DeltaPhi
        assert game.zeta() == pytest.approx(2.0)

    def test_two_well_zeta_with_depth_ratio(self):
        from repro.games import TwoWellGame

        game = TwoWellGame(num_players=4, barrier=2.0, depth_ratio=0.5)
        # shallow well sits at potential 1.0, ridge at 2.0 -> zeta = 1.0
        assert game.zeta() == pytest.approx(1.0)
        assert game.max_global_variation() == pytest.approx(2.0)
