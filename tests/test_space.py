"""Tests for the profile-space machinery (repro.games.space)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.games.space import ProfileSpace, hamming_distance


class TestConstruction:
    def test_basic_properties(self):
        space = ProfileSpace((2, 3, 2))
        assert space.num_players == 3
        assert space.size == 12
        assert space.max_strategies == 3
        assert space.num_strategies == (2, 3, 2)

    def test_single_player(self):
        space = ProfileSpace((4,))
        assert space.num_players == 1
        assert space.size == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ProfileSpace(())

    def test_rejects_zero_strategies(self):
        with pytest.raises(ValueError):
            ProfileSpace((2, 0, 2))

    def test_len_matches_size(self):
        space = ProfileSpace((2, 2, 2))
        assert len(space) == space.size == 8


class TestEncodeDecode:
    def test_roundtrip_all_profiles(self):
        space = ProfileSpace((2, 3, 4))
        for idx in range(space.size):
            assert space.encode(space.decode(idx)) == idx

    def test_encode_zero_profile(self):
        space = ProfileSpace((3, 3))
        assert space.encode((0, 0)) == 0

    def test_encode_rejects_wrong_length(self):
        space = ProfileSpace((2, 2))
        with pytest.raises(ValueError):
            space.encode((0, 1, 0))

    def test_encode_rejects_out_of_range_strategy(self):
        space = ProfileSpace((2, 2))
        with pytest.raises(ValueError):
            space.encode((0, 2))

    def test_decode_rejects_out_of_range_index(self):
        space = ProfileSpace((2, 2))
        with pytest.raises(ValueError):
            space.decode(4)

    def test_encode_many_matches_scalar(self):
        space = ProfileSpace((2, 3, 2))
        profiles = space.all_profiles()
        indices = space.encode_many(profiles)
        np.testing.assert_array_equal(indices, np.arange(space.size))

    def test_decode_many_matches_scalar(self):
        space = ProfileSpace((3, 2))
        many = space.decode_many(np.arange(space.size))
        for idx in range(space.size):
            np.testing.assert_array_equal(many[idx], space.decode(idx))

    def test_all_profiles_unique(self):
        space = ProfileSpace((2, 2, 3))
        profiles = space.all_profiles()
        assert len({tuple(row) for row in profiles}) == space.size

    def test_iteration_yields_all(self):
        space = ProfileSpace((2, 2))
        assert list(space) == [(0, 0), (1, 0), (0, 1), (1, 1)]


class TestCoordinateSurgery:
    def test_strategy_of_scalar(self):
        space = ProfileSpace((2, 3, 2))
        idx = space.encode((1, 2, 0))
        assert space.strategy_of(idx, 0) == 1
        assert space.strategy_of(idx, 1) == 2
        assert space.strategy_of(idx, 2) == 0

    def test_strategy_of_vectorised(self):
        space = ProfileSpace((2, 3))
        idx = np.arange(space.size)
        strategies = space.strategy_of(idx, 1)
        expected = np.array([space.decode(i)[1] for i in range(space.size)])
        np.testing.assert_array_equal(strategies, expected)

    def test_replace_changes_only_target_player(self):
        space = ProfileSpace((2, 3, 2))
        idx = space.encode((1, 1, 1))
        new = space.replace(idx, 1, 2)
        assert space.decode(new) == (1, 2, 1)

    def test_replace_identity(self):
        space = ProfileSpace((2, 2))
        idx = space.encode((1, 0))
        assert space.replace(idx, 0, 1) == idx

    def test_replace_rejects_bad_strategy(self):
        space = ProfileSpace((2, 2))
        with pytest.raises(ValueError):
            space.replace(0, 0, 5)

    def test_replace_rejects_bad_player(self):
        space = ProfileSpace((2, 2))
        with pytest.raises(ValueError):
            space.replace(0, 7, 0)

    def test_replace_many_matches_scalar(self):
        space = ProfileSpace((2, 3, 2))
        indices = np.arange(space.size)
        replaced = space.replace_many(indices, 1, 2)
        expected = np.array([space.replace(i, 1, 2) for i in range(space.size)])
        np.testing.assert_array_equal(replaced, expected)

    def test_deviations_contains_self(self):
        space = ProfileSpace((2, 3))
        idx = space.encode((1, 2))
        devs = space.deviations(idx, 1)
        assert devs.shape == (3,)
        assert devs[2] == idx

    def test_deviations_vary_only_one_player(self):
        space = ProfileSpace((2, 3, 2))
        idx = space.encode((1, 1, 0))
        devs = space.deviations(idx, 1)
        for s, d in enumerate(devs):
            prof = space.decode(int(d))
            assert prof[1] == s
            assert prof[0] == 1 and prof[2] == 0

    def test_deviation_matrix_matches_rowwise(self):
        space = ProfileSpace((2, 3))
        matrix = space.deviation_matrix(1)
        for x in range(space.size):
            np.testing.assert_array_equal(matrix[x], space.deviations(x, 1))


class TestHammingStructure:
    def test_hamming_distance_basic(self):
        assert hamming_distance((0, 1, 1), (0, 0, 1)) == 1
        assert hamming_distance((0, 0), (1, 1)) == 2
        assert hamming_distance((2, 2), (2, 2)) == 0

    def test_hamming_distance_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance((0, 1), (0, 1, 1))

    def test_neighbors_at_distance_one(self):
        space = ProfileSpace((2, 2, 2))
        idx = space.encode((0, 1, 0))
        for nb in space.neighbors(idx):
            assert space.hamming_distance_between(idx, int(nb)) == 1

    def test_neighbor_count_binary(self):
        space = ProfileSpace((2, 2, 2, 2))
        assert space.neighbors(0).size == 4

    def test_neighbor_count_mixed(self):
        space = ProfileSpace((2, 3, 4))
        # (m_i - 1) summed = 1 + 2 + 3 = 6
        assert space.neighbors(0).size == 6

    def test_hamming_edges_count(self):
        space = ProfileSpace((2, 2, 2))
        edges = space.hamming_edges()
        # hypercube Q3 has 12 edges
        assert edges.shape == (12, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_hamming_edges_are_distance_one(self):
        space = ProfileSpace((2, 3))
        for u, v in space.hamming_edges():
            assert space.hamming_distance_between(int(u), int(v)) == 1

    def test_bit_fixing_path_endpoints_and_steps(self):
        space = ProfileSpace((2, 2, 2, 2))
        a = space.encode((0, 0, 0, 0))
        b = space.encode((1, 0, 1, 1))
        path = space.bit_fixing_path(a, b)
        assert path[0] == a and path[-1] == b
        assert len(path) == 1 + space.hamming_distance_between(a, b)
        for u, v in zip(path, path[1:]):
            assert space.hamming_distance_between(u, v) == 1

    def test_bit_fixing_path_same_profile(self):
        space = ProfileSpace((2, 2))
        assert space.bit_fixing_path(3, 3) == [3]

    def test_weight_counts_ones(self):
        space = ProfileSpace((2, 2, 2))
        idx = space.encode((1, 0, 1))
        assert space.weight(idx) == 2
        weights = space.weight(np.arange(space.size))
        assert weights.sum() == 12  # each of 3 coordinates is 1 in half of 8 profiles


class TestInt64Boundary:
    """Explicit dtype behaviour at and just past the int64 index edge.

    62 binary players (2**62 profiles) is the last size whose profile
    indices all fit in int64; 63 binary players (2**63 profiles) is the
    first that does not (int64 max is 2**63 - 1) — the historical
    "63-player ceiling" of the index-based engine.
    """

    def test_fits_int64_flag_at_the_edge(self):
        assert ProfileSpace((2,) * 62).fits_int64
        assert not ProfileSpace((2,) * 63).fits_int64

    def test_deviations_dtype_is_explicit_on_both_sides(self):
        below = ProfileSpace((2,) * 62)
        devs = below.deviations(below.size - 1, 61)
        assert devs.dtype == np.int64
        assert devs[1] == below.size - 1
        above = ProfileSpace((2,) * 63)
        devs = above.deviations(above.size - 1, 62)
        assert devs.dtype == object  # exact Python ints, never wrapped
        assert devs[1] == above.size - 1
        assert devs[0] == above.size - 1 - 2**62

    def test_vectorised_surgery_works_at_62_players(self):
        space = ProfileSpace((2,) * 62)
        top = np.array([space.size - 1, space.size - 2], dtype=np.int64)
        devs = space.deviations_many(top, 0)
        assert devs.dtype == np.int64
        np.testing.assert_array_equal(
            devs[0], [space.size - 2, space.size - 1]
        )
        flipped = space.set_strategy_many(top, 0, np.array([0, 0]))
        assert flipped.dtype == np.int64
        np.testing.assert_array_equal(flipped, [space.size - 2, space.size - 2])
        np.testing.assert_array_equal(
            space.encode_many(space.decode_many(top)), top
        )

    def test_vectorised_surgery_raises_with_matrix_pointer_at_63_players(self):
        space = ProfileSpace((2,) * 63)
        idx = np.zeros(2, dtype=np.int64)
        for call in (
            lambda: space.deviations_many(idx, 0),
            lambda: space.set_strategy_many(idx, 0, np.zeros(2, dtype=np.int64)),
            lambda: space.encode_many(np.zeros((2, 63), dtype=np.int64)),
            lambda: space.decode_many(idx),
            lambda: space.replace_many(idx, 0, 1),
        ):
            with pytest.raises(ValueError, match="matrix"):
                call()

    def test_scalar_paths_are_exact_at_63_players(self):
        space = ProfileSpace((2,) * 63)
        top = space.size - 1
        profile = space.decode(top)
        assert profile == (1,) * 63
        assert space.encode(profile) == top
        assert space.strategy_of(top, 62) == 1
        assert space.replace(top, 62, 0) == top - 2**62
