"""Tests for the spectral machinery (repro.markov.spectral)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics
from repro.markov.chain import MarkovChain
from repro.markov.mixing import mixing_time
from repro.markov.spectral import (
    relaxation_mixing_bounds,
    relaxation_time,
    reversible_eigenvalues,
    spectral_gap,
    spectral_summary,
)


def two_state_chain(p: float = 0.3, q: float = 0.2) -> MarkovChain:
    return MarkovChain(np.array([[1 - p, p], [q, 1 - q]]))


def lazy_cycle(n: int = 6) -> MarkovChain:
    P = np.zeros((n, n))
    for i in range(n):
        P[i, i] = 0.5
        P[i, (i + 1) % n] += 0.25
        P[i, (i - 1) % n] += 0.25
    return MarkovChain(P)


class TestEigenvalues:
    def test_two_state_eigenvalues(self):
        p, q = 0.3, 0.2
        eigs = reversible_eigenvalues(two_state_chain(p, q))
        np.testing.assert_allclose(eigs, [1.0, 1.0 - p - q], atol=1e-10)

    def test_leading_eigenvalue_is_one(self):
        eigs = reversible_eigenvalues(lazy_cycle(7))
        assert eigs[0] == pytest.approx(1.0)
        assert np.all(np.diff(eigs) <= 1e-12)  # sorted non-increasing

    def test_lazy_cycle_eigenvalues_closed_form(self):
        n = 6
        eigs = reversible_eigenvalues(lazy_cycle(n))
        expected = np.sort(0.5 + 0.5 * np.cos(2 * np.pi * np.arange(n) / n))[::-1]
        np.testing.assert_allclose(eigs, expected, atol=1e-10)

    def test_rejects_nonreversible(self):
        n = 4
        P = np.zeros((n, n))
        for i in range(n):
            P[i, (i + 1) % n] = 0.8
            P[i, (i - 1) % n] = 0.2
        with pytest.raises(ValueError):
            reversible_eigenvalues(MarkovChain(P))


class TestRelaxation:
    def test_two_state_relaxation_time(self):
        p, q = 0.3, 0.2
        assert relaxation_time(two_state_chain(p, q)) == pytest.approx(1.0 / (p + q))

    def test_spectral_gap(self):
        assert spectral_gap(two_state_chain(0.3, 0.2)) == pytest.approx(0.5)

    def test_summary_fields_consistent(self):
        summary = spectral_summary(lazy_cycle(5))
        assert summary.lambda_2 == pytest.approx(summary.eigenvalues[1])
        assert summary.lambda_min == pytest.approx(summary.eigenvalues[-1])
        assert summary.relaxation_time == pytest.approx(
            1.0 / (1.0 - summary.lambda_star)
        )
        assert summary.all_nonnegative  # lazy chain has non-negative spectrum

    def test_negative_eigenvalue_detected(self):
        # period-ish chain (non-lazy cycle on even n) has eigenvalue -1 < lambda_2;
        # use a two-state chain with p = q = 0.9 which has eigenvalue 1 - 1.8 = -0.8
        chain = two_state_chain(0.9, 0.9)
        summary = spectral_summary(chain)
        assert summary.lambda_min == pytest.approx(-0.8)
        assert not summary.all_nonnegative
        assert summary.relaxation_time == pytest.approx(1.0 / (1.0 - 0.8))


class TestTheorem23Sandwich:
    def test_bounds_bracket_true_mixing_time(self):
        chain = lazy_cycle(6)
        lower, upper = relaxation_mixing_bounds(chain, epsilon=0.25)
        measured = mixing_time(chain, epsilon=0.25).mixing_time
        assert lower <= measured <= upper

    def test_sandwich_for_logit_chain(self, ring5_ising_game):
        chain = LogitDynamics(ring5_ising_game, beta=0.8).markov_chain()
        lower, upper = relaxation_mixing_bounds(chain, epsilon=0.25)
        measured = mixing_time(chain, epsilon=0.25).mixing_time
        assert lower <= measured <= upper

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            relaxation_mixing_bounds(two_state_chain(), epsilon=0.0)
