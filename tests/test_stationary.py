"""Tests for Gibbs measures and partition functions (repro.core.stationary)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stationary import (
    gibbs_expectation,
    gibbs_measure,
    log_partition_function,
    min_stationary_probability_bound,
    partition_function,
    stationary_mass,
)


class TestGibbsMeasure:
    def test_beta_zero_is_uniform(self):
        phi = np.array([0.0, 5.0, -2.0, 1.0])
        np.testing.assert_allclose(gibbs_measure(phi, 0.0), np.full(4, 0.25))

    def test_normalisation(self):
        rng = np.random.default_rng(0)
        phi = rng.normal(size=16)
        for beta in (0.1, 1.0, 10.0):
            assert gibbs_measure(phi, beta).sum() == pytest.approx(1.0)

    def test_low_potential_gets_high_mass(self):
        phi = np.array([0.0, 1.0, 2.0])
        pi = gibbs_measure(phi, 2.0)
        assert pi[0] > pi[1] > pi[2]

    def test_ratio_matches_boltzmann_factor(self):
        phi = np.array([0.0, 1.5])
        beta = 1.3
        pi = gibbs_measure(phi, beta)
        assert pi[1] / pi[0] == pytest.approx(np.exp(-beta * 1.5))

    def test_large_beta_no_overflow(self):
        phi = np.array([0.0, 1000.0, 2000.0])
        pi = gibbs_measure(phi, beta=100.0)
        assert np.all(np.isfinite(pi))
        assert pi[0] == pytest.approx(1.0)

    def test_shift_invariance(self):
        """Adding a constant to the potential does not change the measure."""
        rng = np.random.default_rng(1)
        phi = rng.normal(size=8)
        np.testing.assert_allclose(
            gibbs_measure(phi, 1.7), gibbs_measure(phi + 42.0, 1.7), atol=1e-12
        )

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            gibbs_measure(np.zeros(2), -0.1)

    def test_concentration_as_beta_grows(self):
        """As beta -> infinity the measure concentrates on the minimisers."""
        phi = np.array([0.0, 0.0, 1.0, 2.0])
        pi = gibbs_measure(phi, beta=50.0)
        assert pi[0] == pytest.approx(0.5, abs=1e-9)
        assert pi[1] == pytest.approx(0.5, abs=1e-9)


class TestPartitionFunction:
    def test_log_partition_closed_form(self):
        phi = np.array([0.0, 1.0])
        beta = 2.0
        expected = np.log(1.0 + np.exp(-2.0))
        assert log_partition_function(phi, beta) == pytest.approx(expected)

    def test_partition_consistent_with_log(self):
        phi = np.array([0.0, 0.5, 1.0])
        assert partition_function(phi, 1.0) == pytest.approx(
            np.exp(log_partition_function(phi, 1.0))
        )

    def test_beta_zero_counts_states(self):
        phi = np.random.default_rng(2).normal(size=7)
        assert partition_function(phi, 0.0) == pytest.approx(7.0)


class TestObservables:
    def test_gibbs_expectation_uniform_case(self):
        phi = np.zeros(4)
        obs = np.array([1.0, 2.0, 3.0, 4.0])
        assert gibbs_expectation(phi, 1.0, obs) == pytest.approx(2.5)

    def test_gibbs_expectation_shape_check(self):
        with pytest.raises(ValueError):
            gibbs_expectation(np.zeros(4), 1.0, np.zeros(3))

    def test_stationary_mass(self):
        phi = np.array([0.0, 0.0, 10.0, 10.0])
        mass = stationary_mass(phi, beta=5.0, states=np.array([0, 1]))
        assert mass == pytest.approx(1.0, abs=1e-9)

    def test_min_probability_bound_is_a_lower_bound(self):
        rng = np.random.default_rng(3)
        phi = rng.uniform(0.0, 2.0, size=16)
        beta = 1.5
        pi = gibbs_measure(phi, beta)
        bound = min_stationary_probability_bound(16, beta, float(np.ptp(phi)))
        assert np.min(pi) >= bound - 1e-15

    def test_min_probability_bound_validation(self):
        with pytest.raises(ValueError):
            min_stationary_probability_bound(0, 1.0, 1.0)
