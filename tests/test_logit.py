"""Tests for the logit dynamics chain itself (repro.core.logit)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics, gibbs_measure, logit_update_distribution
from repro.games import random_game
from repro.markov.chain import is_stochastic_matrix
from repro.markov.tv import total_variation


class TestUpdateRule:
    def test_softmax_normalisation(self):
        probs = logit_update_distribution(np.array([1.0, 2.0, -1.0]), beta=0.7)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_beta_zero_is_uniform(self):
        probs = logit_update_distribution(np.array([5.0, -3.0, 0.0]), beta=0.0)
        np.testing.assert_allclose(probs, np.full(3, 1 / 3))

    def test_large_beta_concentrates_on_best_response(self):
        probs = logit_update_distribution(np.array([1.0, 3.0, 2.0]), beta=50.0)
        assert probs[1] == pytest.approx(1.0, abs=1e-9)

    def test_overflow_safety(self):
        # huge utilities * beta must not produce NaN
        probs = logit_update_distribution(np.array([1000.0, -1000.0]), beta=100.0)
        assert np.all(np.isfinite(probs))
        assert probs[0] == pytest.approx(1.0)

    def test_batched_rows(self):
        utilities = np.array([[0.0, 1.0], [2.0, 2.0]])
        probs = logit_update_distribution(utilities, beta=1.0)
        assert probs.shape == (2, 2)
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])
        np.testing.assert_allclose(probs[1], [0.5, 0.5])

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            logit_update_distribution(np.zeros(2), beta=-1.0)

    def test_equation2_closed_form(self, ring5_ising_game):
        """sigma_i(y | x) = exp(beta u_i(y, x_-i)) / sum_z exp(beta u_i(z, x_-i))."""
        game = ring5_ising_game
        beta = 0.9
        dynamics = LogitDynamics(game, beta)
        x = game.space.encode((0, 1, 0, 1, 1))
        for player in range(game.num_players):
            utils = game.utility_deviations(player, x)
            expected = np.exp(beta * utils) / np.exp(beta * utils).sum()
            np.testing.assert_allclose(
                dynamics.update_distribution_by_index(x, player), expected, atol=1e-12
            )


class TestTransitionMatrix:
    def test_matrix_is_stochastic(self, ring5_ising_game):
        P = LogitDynamics(ring5_ising_game, 1.3).transition_matrix()
        assert is_stochastic_matrix(P)

    def test_equation3_entries(self, clique4_game):
        """Off-diagonal entries equal sigma_i(y_i | x) / n; the diagonal is
        the sum over players of re-selection probabilities / n; everything
        else is zero."""
        game = clique4_game
        beta = 0.8
        dynamics = LogitDynamics(game, beta)
        P = dynamics.transition_matrix()
        space = game.space
        n = game.num_players
        for x in range(space.size):
            diag_expected = 0.0
            for player in range(n):
                probs = dynamics.update_distribution_by_index(x, player)
                devs = space.deviations(x, player)
                current = space.strategy_of(x, player)
                diag_expected += probs[current] / n
                for s, y in enumerate(devs):
                    if int(y) != x:
                        assert P[x, int(y)] == pytest.approx(probs[s] / n)
            assert P[x, x] == pytest.approx(diag_expected)
            # transitions only along Hamming edges or self loops
            for y in range(space.size):
                if P[x, y] > 0 and y != x:
                    assert space.hamming_distance_between(x, y) == 1

    def test_beta_zero_uniform_updates(self):
        game = random_game((2, 2, 2), rng=np.random.default_rng(4))
        P = LogitDynamics(game, 0.0).transition_matrix()
        # every off-diagonal neighbor entry equals 1/(n*m_i) = 1/6
        space = game.space
        for x in range(space.size):
            for y in space.neighbors(x):
                assert P[x, int(y)] == pytest.approx(1.0 / 6.0)

    def test_matrix_cached(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        assert dynamics.transition_matrix() is dynamics.transition_matrix()

    def test_negative_beta_rejected(self, ring5_ising_game):
        with pytest.raises(ValueError):
            LogitDynamics(ring5_ising_game, -0.5)


class TestChainProperties:
    def test_ergodicity(self, ring5_ising_game):
        chain = LogitDynamics(ring5_ising_game, 2.0).markov_chain()
        assert chain.is_ergodic()

    def test_reversibility_for_potential_games(self, clique4_game):
        chain = LogitDynamics(clique4_game, 1.1).markov_chain()
        assert chain.is_reversible(tol=1e-9)

    def test_gibbs_is_stationary(self, two_well_game):
        """pi P = pi for the Gibbs measure of the potential (Equation 4)."""
        beta = 1.7
        dynamics = LogitDynamics(two_well_game, beta)
        P = dynamics.transition_matrix()
        pi = gibbs_measure(two_well_game.potential_vector(), beta)
        np.testing.assert_allclose(pi @ P, pi, atol=1e-12)

    def test_stationary_of_nonpotential_game(self, small_random_game):
        dynamics = LogitDynamics(small_random_game, 0.9)
        chain = dynamics.markov_chain()
        pi = chain.stationary
        np.testing.assert_allclose(pi @ chain.transition_matrix, pi, atol=1e-9)

    def test_stationary_distribution_method(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.2)
        pi = dynamics.stationary_distribution()
        np.testing.assert_allclose(
            pi, gibbs_measure(ring5_ising_game.potential_vector(), 1.2)
        )


class TestSimulation:
    def test_trajectory_shape(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        traj = dynamics.simulate((0, 0, 0, 0, 0), 50, rng=np.random.default_rng(0))
        assert traj.shape == (51, 5)
        assert np.all((traj >= 0) & (traj <= 1))

    def test_record_every(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        traj = dynamics.simulate((0, 0, 0, 0, 0), 50, rng=np.random.default_rng(0), record_every=10)
        assert traj.shape == (6, 5)

    def test_consecutive_profiles_differ_in_at_most_one_player(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        traj = dynamics.simulate((0, 1, 0, 1, 0), 100, rng=np.random.default_rng(1))
        diffs = np.count_nonzero(traj[1:] != traj[:-1], axis=1)
        assert np.all(diffs <= 1)

    def test_empirical_distribution_converges_to_gibbs(self, two_well_game):
        """Long-run occupation frequencies approach the Gibbs measure."""
        beta = 0.5
        dynamics = LogitDynamics(two_well_game, beta)
        rng = np.random.default_rng(5)
        traj = dynamics.simulate((0, 0, 0, 0), 40_000, rng=rng)
        indices = two_well_game.space.encode_many(traj[2000:])
        counts = np.bincount(indices, minlength=two_well_game.space.size)
        empirical = counts / counts.sum()
        pi = gibbs_measure(two_well_game.potential_vector(), beta)
        assert total_variation(empirical, pi) < 0.05

    def test_hitting_time_zero_if_already_there(self, dominant_game):
        dynamics = LogitDynamics(dominant_game, 1.0)
        target = dominant_game.space.encode((0, 0, 0))
        assert dynamics.simulate_hitting_time((0, 0, 0), target) == 0

    def test_hitting_time_reaches_dominant_profile(self, dominant_game):
        dynamics = LogitDynamics(dominant_game, 5.0)
        target = dominant_game.space.encode((0, 0, 0))
        t = dynamics.simulate_hitting_time(
            (1, 1, 1), target, rng=np.random.default_rng(2), max_steps=10_000
        )
        assert t > 0

    def test_start_length_validation(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        with pytest.raises(ValueError):
            dynamics.simulate((0, 0), 10)
