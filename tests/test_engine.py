"""Tests for the batched simulation engine (repro.engine).

The contract under test is *equivalence*: the batched paths must reproduce
the single-replica reference loop bit-for-bit under a fixed seed, the
batched coupling update must agree with the scalar maximal-overlap
construction row by row, and the ensemble mixing estimator must land in the
same ballpark as the exact dense computation.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    LogitDynamics,
    empirical_escape_times,
    empirical_hitting_times,
    escape_time_from,
    estimate_mixing_time_ensemble,
    measure_mixing_time,
)
from repro.engine import (
    EnsembleSimulator,
    maximal_coupling_update_many,
    sample_from_cumulative,
    sample_inverse_cdf,
    simulate_grand_coupling_ensemble,
)
from repro.games import (
    CallableGame,
    CoordinationParams,
    GraphicalCoordinationGame,
    IsingGame,
    SingletonCongestionGame,
    random_game,
)
from repro.markov.coupling import maximal_coupling_update


class TestSamplingHelpers:
    def test_scalar_matches_searchsorted(self):
        probs = np.array([0.25, 0.5, 0.25])
        cum = np.cumsum(probs)
        for u in np.linspace(0, 0.999, 37):
            expected = min(int(np.searchsorted(cum, u, side="right")), 2)
            assert sample_inverse_cdf(probs, float(u)) == expected

    def test_rows_match_scalar(self, rng):
        probs = rng.dirichlet(np.ones(4), size=64)
        uniforms = rng.random(64)
        batched = sample_inverse_cdf(probs, uniforms)
        for j in range(64):
            assert batched[j] == sample_inverse_cdf(probs[j], float(uniforms[j]))

    def test_clamps_roundoff_above_total_mass(self):
        # cumulative sums that fall short of 1.0 must clamp, not overflow
        probs = np.array([0.5, 0.5 - 1e-12])
        assert sample_inverse_cdf(probs, 0.9999999999999) == 1

    def test_cumulative_shape_validation(self):
        with pytest.raises(ValueError):
            sample_from_cumulative(np.zeros((2, 2, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            sample_from_cumulative(np.zeros((3, 2)), np.zeros(2))


class TestFixedSeedEquivalence:
    """Batched engine vs. the pure-Python reference loop, same seed."""

    @pytest.mark.parametrize("beta", [0.0, 0.7, 3.0])
    def test_single_replica_matches_loop(self, ring5_ising_game, beta):
        dynamics = LogitDynamics(ring5_ising_game, beta)
        start = (0, 1, 0, 1, 1)
        loop = dynamics.simulate_loop(start, 400, rng=np.random.default_rng(42))
        batched = dynamics.simulate(start, 400, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(loop, batched)

    def test_single_replica_matches_loop_multistrategy(self):
        game = SingletonCongestionGame(num_players=4, num_resources=3)
        dynamics = LogitDynamics(game, 1.2)
        start = (0, 1, 2, 0)
        loop = dynamics.simulate_loop(start, 300, rng=np.random.default_rng(7))
        batched = dynamics.simulate(start, 300, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(loop, batched)

    def test_record_every_matches_loop(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        loop = dynamics.simulate_loop(
            (0,) * 5, 100, rng=np.random.default_rng(3), record_every=10
        )
        batched = dynamics.simulate(
            (0,) * 5, 100, rng=np.random.default_rng(3), record_every=10
        )
        np.testing.assert_array_equal(loop, batched)

    def test_gather_and_matrix_free_agree(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 0.8)
        start = np.zeros(5, dtype=np.int64)
        runs = {}
        for mode in ("gather", "matrix_free"):
            sim = EnsembleSimulator(
                dynamics, 32, start=start, rng=np.random.default_rng(11), mode=mode
            )
            runs[mode] = sim.run(200, record_every=1)
        np.testing.assert_array_equal(runs["gather"], runs["matrix_free"])

    def test_generic_fallback_agrees_with_table_fast_path(self):
        # the same game expressed as a tabulated and as a callable game must
        # produce identical batched utilities and identical trajectories
        table = random_game((2, 3, 2), rng=np.random.default_rng(5))
        callable_game = CallableGame(
            (2, 3, 2), lambda i, prof: table.utility(i, table.space.encode(prof))
        )
        idx = np.random.default_rng(6).integers(0, table.space.size, size=20)
        for player in range(3):
            np.testing.assert_allclose(
                table.utility_deviations_many(player, idx),
                callable_game.utility_deviations_many(player, idx),
            )


class TestEnsembleSimulator:
    def test_every_step_is_a_single_site_update(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        sim = dynamics.ensemble(8, start=(0, 1, 0, 1, 0), rng=np.random.default_rng(0))
        traj = sim.run(50, record_every=1)  # (51, 8, 5)
        diffs = np.count_nonzero(traj[1:] != traj[:-1], axis=2)
        assert np.all(diffs <= 1)

    def test_start_broadcasting_forms(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        space = ring5_ising_game.space
        by_index = dynamics.ensemble(4, start=7)
        by_profile = dynamics.ensemble(4, start=space.decode(7))
        by_indices = dynamics.ensemble(4, start_indices=np.full(4, 7))
        by_profiles = dynamics.ensemble(4, start=np.tile(space.decode(7), (4, 1)))
        for sim in (by_index, by_profile, by_indices, by_profiles):
            np.testing.assert_array_equal(sim.indices, np.full(4, 7))

    def test_one_d_start_is_a_profile_even_when_replicas_equal_players(
        self, ring5_ising_game
    ):
        # with R == n a 1-D array could be read two ways; the contract is
        # that `start` always means a profile and indices go through
        # `start_indices`, so no silent misparse is possible
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        profile = np.array([0, 1, 0, 1, 1])
        sim = dynamics.ensemble(5, start=profile)
        expected = ring5_ising_game.space.encode(profile)
        np.testing.assert_array_equal(sim.indices, np.full(5, expected))
        by_indices = dynamics.ensemble(5, start_indices=np.array([3, 7, 31, 0, 1]))
        np.testing.assert_array_equal(by_indices.indices, [3, 7, 31, 0, 1])

    def test_start_validation(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start=np.zeros((3, 5), dtype=np.int64))
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start=ring5_ising_game.space.size)
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start_indices=np.full(4, ring5_ising_game.space.size))
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start=3, start_indices=np.full(4, 3))
        with pytest.raises(ValueError):
            dynamics.ensemble(4, start_indices=np.full(3, 1))
        with pytest.raises(ValueError):
            EnsembleSimulator(dynamics, 0)
        with pytest.raises(ValueError):
            EnsembleSimulator(dynamics, 4, mode="warp")

    def test_empirical_distribution_sums_to_one(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 0.5)
        sim = dynamics.ensemble(64, rng=np.random.default_rng(2))
        sim.run(100)
        dist = sim.empirical_distribution()
        assert dist.shape == (32,)
        assert dist.sum() == pytest.approx(1.0)

    def test_hitting_times_zero_at_target(self, dominant_game):
        dynamics = LogitDynamics(dominant_game, 1.0)
        target = dominant_game.space.encode((0, 0, 0))
        sim = dynamics.ensemble(5, start=target)
        np.testing.assert_array_equal(sim.hitting_times(target), np.zeros(5))

    def test_hitting_times_reach_dominant_profile(self, dominant_game):
        dynamics = LogitDynamics(dominant_game, 5.0)
        target = dominant_game.space.encode((0, 0, 0))
        sim = dynamics.ensemble(16, start=(1, 1, 1), rng=np.random.default_rng(4))
        times = sim.hitting_times(target, max_steps=20_000)
        assert np.all(times > 0)

    def test_exit_times_leave_shallow_well(self, two_well_game):
        all0, _ = two_well_game.well_indices
        times = empirical_escape_times(
            two_well_game,
            beta=0.1,
            states=[all0],
            num_replicas=32,
            max_steps=10_000,
            rng=np.random.default_rng(8),
        )
        assert np.all(times > 0)

    @pytest.mark.slow
    def test_ensemble_empirical_matches_gibbs(self, two_well_game):
        """Many replicas, moderate horizon: occupation ~ Gibbs measure."""
        from repro.core import gibbs_measure
        from repro.markov.tv import total_variation

        beta = 0.5
        dynamics = LogitDynamics(two_well_game, beta)
        sim = dynamics.ensemble(4000, rng=np.random.default_rng(9))
        sim.run(600)
        pi = gibbs_measure(two_well_game.potential_vector(), beta)
        assert total_variation(sim.empirical_distribution(), pi) < 0.05


class TestBatchedCoupling:
    def test_batched_update_matches_scalar_exactly(self, rng):
        m = 4
        probs_x = rng.dirichlet(np.ones(m), size=50)
        probs_y = rng.dirichlet(np.ones(m), size=50)
        uniforms = rng.random(50)
        sx, sy = maximal_coupling_update_many(probs_x, probs_y, uniforms)
        for j in range(50):
            ex, ey = maximal_coupling_update(probs_x[j], probs_y[j], float(uniforms[j]))
            assert (sx[j], sy[j]) == (ex, ey)

    def test_identical_rows_always_agree(self, rng):
        probs = rng.dirichlet(np.ones(3), size=40)
        uniforms = rng.random(40)
        sx, sy = maximal_coupling_update_many(probs, probs, uniforms)
        np.testing.assert_array_equal(sx, sy)

    @pytest.mark.slow
    def test_batched_marginals_are_correct(self):
        """A fine uniform grid through the batched coupling recovers both marginals."""
        probs_x = np.array([0.7, 0.2, 0.1])
        probs_y = np.array([0.1, 0.3, 0.6])
        k = 200_000
        grid = (np.arange(k) + 0.5) / k
        sx, sy = maximal_coupling_update_many(
            np.tile(probs_x, (k, 1)), np.tile(probs_y, (k, 1)), grid
        )
        np.testing.assert_allclose(np.bincount(sx, minlength=3) / k, probs_x, atol=2e-4)
        np.testing.assert_allclose(np.bincount(sy, minlength=3) / k, probs_y, atol=2e-4)
        overlap = np.minimum(probs_x, probs_y).sum()
        assert np.mean(sx == sy) == pytest.approx(overlap, abs=2e-4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            maximal_coupling_update_many(np.zeros((2, 2)), np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            maximal_coupling_update_many(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros(3))

    def test_equal_starts_coalesce_immediately(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        result = simulate_grand_coupling_ensemble(
            dynamics, (0,) * 5, (0,) * 5, horizon=10, num_runs=6,
            rng=np.random.default_rng(0),
        )
        assert np.all(result.coalescence_times == 0)

    def test_beta_zero_coalesces_fast(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 0.0)
        result = simulate_grand_coupling_ensemble(
            dynamics, (0,) * 5, (1,) * 5, horizon=500, num_runs=32,
            rng=np.random.default_rng(1),
        )
        # at beta = 0 both copies make identical uniform choices on every
        # selected coordinate, so coalescence is a coupon-collector event
        assert result.fraction_coalesced == 1.0
        assert result.mean_coalescence_time() < 100


class TestEnsembleMixingEstimate:
    def test_tv_convergence_clamps_to_finite_annealing_schedule(self):
        """Regression: a finite beta_t schedule shorter than max_time must
        come back as a capped estimate from the estimator itself, not raise
        mid-measurement."""
        from repro.core import estimate_tv_convergence, gibbs_measure
        from repro.core.variants import AnnealedLogitDynamics
        from repro.games import TwoWellGame

        game = TwoWellGame(num_players=3, barrier=1.0)
        pi = gibbs_measure(game.potential_vector(), 0.05)
        estimate = estimate_tv_convergence(
            AnnealedLogitDynamics(game, np.full(50, 0.05)),
            pi,
            num_replicas=64,
            epsilon=1e-9,  # unreachable: force the run to the horizon
            max_time=10**4,
            rng=np.random.default_rng(0),
        )
        assert estimate.capped
        assert estimate.mixing_time_estimate <= 50

    def test_simulator_dynamics_is_the_kernel_rule(self, two_well_game):
        """An explicit kernel carries its own rule; the simulator must report
        the rule it actually advances, not the constructor argument."""
        from repro.engine import SequentialKernel

        slow = LogitDynamics(two_well_game, 0.5)
        fast = LogitDynamics(two_well_game, 5.0)
        sim = EnsembleSimulator(slow, 4, kernel=SequentialKernel(fast))
        assert sim.dynamics is fast
        assert EnsembleSimulator(slow, 4).dynamics is slow

    @pytest.mark.slow
    def test_brackets_exact_mixing_time(self):
        """Sampled mixing estimate lands around the dense exact t_mix."""
        game = GraphicalCoordinationGame(nx.cycle_graph(4), CoordinationParams.ising(1.0))
        beta = 0.5
        exact = measure_mixing_time(game, beta).mixing_time
        estimate = estimate_mixing_time_ensemble(
            game,
            beta,
            num_replicas=4096,
            check_every=1,
            rng=np.random.default_rng(10),
        )
        assert not estimate.capped
        # single-start sampled estimate vs worst-case exact quantity, with
        # sampling bias pushing the estimate up: bracket generously.
        assert 0.25 * exact <= estimate.mixing_time_estimate <= 4.0 * exact

    def test_tv_curve_is_recorded_and_decreasing_overall(self):
        game = IsingGame(nx.cycle_graph(5))
        estimate = estimate_mixing_time_ensemble(
            game, 0.3, num_replicas=512, rng=np.random.default_rng(3), max_time=500
        )
        curve = estimate.tv_curve
        assert curve.ndim == 2 and curve.shape[1] == 2
        assert curve[0, 1] > curve[-1, 1]
        assert curve[-1, 1] <= 0.25 or estimate.capped

    def test_epsilon_validation(self, ring5_ising_game):
        with pytest.raises(ValueError):
            estimate_mixing_time_ensemble(ring5_ising_game, 1.0, epsilon=0.0)

    def test_non_potential_game_guarded_beyond_dense_cap(self):
        # without a Gibbs closed form pi needs the dense eigen-solve, which
        # must be refused (not attempted) beyond the exact-measurement cap
        big = CallableGame((2,) * 20, lambda i, prof: float(prof[i]))
        with pytest.raises(ValueError, match="cap"):
            estimate_mixing_time_ensemble(big, 0.5, num_replicas=8, max_time=10)


class TestEnsembleMetastability:
    @pytest.mark.slow
    def test_empirical_escape_matches_exact_scale(self, two_well_game):
        """Ensemble escape-time samples agree with the linear-system solve."""
        beta = 1.0
        all0, _ = two_well_game.well_indices
        well = [all0] + [int(x) for x in two_well_game.space.neighbors(all0)]
        chain = LogitDynamics(two_well_game, beta).markov_chain()
        exact = escape_time_from(chain, well)
        samples = empirical_escape_times(
            two_well_game,
            beta,
            well,
            num_replicas=400,
            max_steps=200_000,
            rng=np.random.default_rng(12),
        )
        assert np.all(samples > 0)
        assert samples.mean() == pytest.approx(exact, rel=0.35)

    def test_empirical_hitting_times_from_well_to_well(self, two_well_game):
        all0, all1 = two_well_game.well_indices
        samples = empirical_hitting_times(
            two_well_game,
            beta=0.5,
            start=all0,
            targets=all1,
            num_replicas=32,
            max_steps=100_000,
            rng=np.random.default_rng(13),
        )
        assert np.all(samples > 0)


class TestProfileSpaceBatchSurgery:
    def test_deviations_many_matches_scalar(self, rng):
        from repro.games import ProfileSpace

        space = ProfileSpace((2, 3, 4))
        idx = rng.integers(0, space.size, size=17)
        for player in range(3):
            batched = space.deviations_many(idx, player)
            for j, x in enumerate(idx):
                np.testing.assert_array_equal(batched[j], space.deviations(int(x), player))

    def test_set_strategy_many(self, rng):
        from repro.games import ProfileSpace

        space = ProfileSpace((2, 3, 4))
        idx = rng.integers(0, space.size, size=23)
        for player in range(3):
            strategies = rng.integers(0, space.num_strategies[player], size=23)
            new = space.set_strategy_many(idx, player, strategies)
            for j in range(23):
                assert new[j] == space.replace(int(idx[j]), player, int(strategies[j]))

    def test_set_strategy_many_validation(self):
        from repro.games import ProfileSpace

        space = ProfileSpace((2, 2))
        with pytest.raises(ValueError):
            space.set_strategy_many(np.zeros(3, dtype=np.int64), 0, np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            space.set_strategy_many(np.zeros(2, dtype=np.int64), 0, np.full(2, 5))


class TestProfileSpaceSizeOverflow:
    def test_size_is_exact_python_int(self):
        from repro.games import ProfileSpace

        space = ProfileSpace((3,) * 50)
        assert space.size == 3**50  # would wrap around under int64 np.prod
        assert isinstance(space.size, int)

    def test_scalar_encode_decode_beyond_int64(self):
        from repro.games import ProfileSpace

        space = ProfileSpace((3,) * 50)
        profile = tuple([2] * 50)
        idx = space.encode(profile)
        assert idx == 3**50 - 1
        assert space.decode(idx) == profile
        assert space.strategy_of(idx, 49) == 2

    def test_vectorised_paths_raise_clearly_beyond_int64(self):
        from repro.games import ProfileSpace

        space = ProfileSpace((3,) * 50)
        with pytest.raises(ValueError, match="int64"):
            space.decode_many(np.array([0, 1]))
        with pytest.raises(ValueError, match="int64"):
            space.encode_many(np.zeros((2, 50), dtype=np.int64))

    def test_dense_paths_raise_clearly_above_cap(self):
        from repro.games import ProfileSpace

        space = ProfileSpace((2,) * 40)  # ~10^12 profiles: int64-fine, dense-impossible
        with pytest.raises(ValueError, match="profiles"):
            space.all_profiles()
        with pytest.raises(ValueError, match="profiles"):
            space.deviation_matrix(0)


class TestSparseCache:
    def test_sparse_transition_matrix_cached(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        assert dynamics.sparse_transition_matrix() is dynamics.sparse_transition_matrix()
