"""Tests for the theorem-level bound formulas (repro.core.bounds)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bounds import (
    clique_delta_phi,
    clique_potential_barrier,
    cutwidth_for_bound,
    lemma32_relaxation_upper,
    lemma33_relaxation_upper,
    lemma37_relaxation_upper,
    relaxation_to_mixing_upper,
    structural_quantities,
    theorem34_log_mixing_upper,
    theorem34_mixing_upper,
    theorem35_mixing_lower,
    theorem36_beta_threshold,
    theorem36_mixing_upper,
    theorem38_mixing_upper,
    theorem39_mixing_lower,
    theorem42_mixing_upper,
    theorem43_mixing_lower,
    theorem51_mixing_upper,
    theorem55_clique_bounds,
    theorem56_ring_mixing_upper,
    theorem57_ring_mixing_lower,
)
from repro.games import Theorem35Game
from repro.graphs.topologies import grid_graph, ring_graph


class TestStructuralQuantities:
    def test_theorem35_game_quantities(self):
        game = Theorem35Game(6, 2.0, 1.0)
        sq = structural_quantities(game)
        assert sq.num_players == 6
        assert sq.max_strategies == 2
        assert sq.num_profiles == 64
        assert sq.delta_phi_global == pytest.approx(2.0)
        assert sq.delta_phi_local == pytest.approx(1.0)
        assert sq.zeta == pytest.approx(2.0)


class TestSection3Formulas:
    def test_lemma32(self):
        assert lemma32_relaxation_upper(7) == 7.0
        with pytest.raises(ValueError):
            lemma32_relaxation_upper(0)

    def test_lemma33_formula(self):
        assert lemma33_relaxation_upper(3, 2, 1.0, 2.0) == pytest.approx(
            2 * 2 * 3 * math.exp(2.0)
        )

    def test_lemma33_beta_zero_matches_2mn(self):
        assert lemma33_relaxation_upper(4, 3, 0.0, 5.0) == pytest.approx(24.0)

    def test_theorem34_formula(self):
        n, m, beta, dphi, eps = 3, 2, 1.5, 2.0, 0.25
        expected = 2 * m * n * math.exp(beta * dphi) * (
            math.log(1 / eps) + beta * dphi + n * math.log(m)
        )
        assert theorem34_mixing_upper(n, m, beta, dphi, eps) == pytest.approx(expected)

    def test_theorem34_log_version_consistent(self):
        n, m, beta, dphi = 4, 3, 2.0, 1.5
        assert theorem34_log_mixing_upper(n, m, beta, dphi) == pytest.approx(
            math.log(theorem34_mixing_upper(n, m, beta, dphi))
        )

    def test_theorem34_monotone_in_beta(self):
        values = [theorem34_mixing_upper(4, 2, b, 1.0) for b in (0.0, 1.0, 2.0)]
        assert values[0] < values[1] < values[2]

    def test_theorem35_lower_grows_exponentially(self):
        lows = [theorem35_mixing_lower(8, 2, b, 2.0, 1.0) for b in (1.0, 2.0, 4.0)]
        assert lows[0] < lows[1] < lows[2]
        # slope in beta is DeltaPhi
        assert math.log(lows[2] / lows[1]) == pytest.approx(2.0 * 2.0)

    def test_theorem36_threshold(self):
        assert theorem36_beta_threshold(10, 2.0, c=0.5) == pytest.approx(0.025)
        with pytest.raises(ValueError):
            theorem36_beta_threshold(10, 2.0, c=1.5)

    def test_theorem36_bound_is_n_log_n(self):
        n = 50
        bound = theorem36_mixing_upper(n, c=0.5, epsilon=0.25)
        assert bound == pytest.approx(n * (math.log(n) + math.log(4)) / 0.5)

    def test_lemma37_formula(self):
        assert lemma37_relaxation_upper(2, 2, 1.0, 0.5) == pytest.approx(
            2 * 2**5 * math.exp(0.5)
        )

    def test_theorem38_reduces_to_relaxation_times_log_term(self):
        n, m, beta, zeta, dphi = 3, 2, 1.0, 0.5, 2.0
        expected = lemma37_relaxation_upper(n, m, beta, zeta) * (
            math.log(4) + beta * dphi + n * math.log(m)
        )
        assert theorem38_mixing_upper(n, m, beta, zeta, dphi) == pytest.approx(expected)

    def test_theorem39_formula(self):
        got = theorem39_mixing_lower(2.0, 1.5, 2, boundary_size=3, epsilon=0.25)
        assert got == pytest.approx((0.5 / (2 * 1 * 3)) * math.exp(3.0))

    def test_relaxation_to_mixing_conversion(self):
        assert relaxation_to_mixing_upper(10.0, 0.01, 0.25) == pytest.approx(
            10.0 * math.log(400.0)
        )
        with pytest.raises(ValueError):
            relaxation_to_mixing_upper(10.0, 0.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            theorem34_mixing_upper(0, 2, 1.0, 1.0)
        with pytest.raises(ValueError):
            theorem34_mixing_upper(2, 2, -1.0, 1.0)
        with pytest.raises(ValueError):
            theorem34_mixing_upper(2, 2, 1.0, 1.0, epsilon=0.9)
        with pytest.raises(ValueError):
            theorem39_mixing_lower(1.0, 1.0, 1, 1)
        with pytest.raises(ValueError):
            theorem35_mixing_lower(4, 2, 1.0, 1.0, 0.0)


class TestSection4Formulas:
    def test_theorem42_is_beta_free_and_finite(self):
        bound = theorem42_mixing_upper(3, 2)
        assert np.isfinite(bound) and bound > 0

    def test_theorem42_scales_like_mn(self):
        b2 = theorem42_mixing_upper(3, 2)
        b3 = theorem42_mixing_upper(3, 3)
        # ratio should roughly track (3/2)^3
        assert b3 / b2 == pytest.approx((3 / 2) ** 3, rel=0.05)

    def test_theorem43_formula(self):
        assert theorem43_mixing_lower(3, 2) == pytest.approx((8 - 1) / 4)
        assert theorem43_mixing_lower(2, 3) == pytest.approx((9 - 1) / 8)

    def test_theorem43_below_theorem42(self):
        """The lower-bound family never contradicts the general upper bound."""
        for n in (2, 3, 4):
            for m in (2, 3):
                assert theorem43_mixing_lower(n, m) <= theorem42_mixing_upper(n, m)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem42_mixing_upper(0, 2)
        with pytest.raises(ValueError):
            theorem43_mixing_lower(2, 1)


class TestSection5Formulas:
    def test_theorem51_formula(self):
        n, beta, d0, d1, chi = 4, 0.5, 2.0, 1.0, 2
        expected = 2 * n**3 * math.exp(chi * 3.0 * beta) * (n * d0 * beta + 1)
        assert theorem51_mixing_upper(n, beta, d0, d1, chi) == pytest.approx(expected)

    def test_theorem51_monotone_in_cutwidth(self):
        a = theorem51_mixing_upper(5, 1.0, 1.0, 1.0, 1)
        b = theorem51_mixing_upper(5, 1.0, 1.0, 1.0, 3)
        assert b > a

    def test_clique_barrier_symmetric_case(self):
        """No risk dominance: Phi_max - Phi(1) = Theta(n^2 delta) as the paper notes."""
        n, delta = 6, 1.0
        barrier = clique_potential_barrier(n, delta, delta)
        # Phi(all ones) = -C(6,2) = -15; Phi_max at k*=3: -(C(3,2)+C(3,2)) = -6
        assert barrier == pytest.approx(15.0 - 6.0)

    def test_clique_barrier_risk_dominant_case(self):
        # strong risk dominance shrinks the barrier measured from all-ones
        strong = clique_potential_barrier(6, 5.0, 1.0)
        weak = clique_potential_barrier(6, 1.2, 1.0)
        # with delta0 >> delta1 the max over k is attained near k = n (ridge
        # close to the all-ones well), so the barrier is smaller relative to
        # the symmetric case scaled by delta
        assert strong / 5.0 < weak / 1.2

    def test_clique_delta_phi(self):
        n, delta = 4, 1.0
        # min potential = -C(4,2) = -6 (consensus), max = Phi at k*=2 = -2
        assert clique_delta_phi(n, delta, delta) == pytest.approx(4.0)

    def test_theorem55_bounds_ordered(self):
        lower, upper = theorem55_clique_bounds(5, beta=1.0, delta0=1.0, delta1=1.0)
        assert lower < upper

    def test_theorem56_formula(self):
        n, beta, delta = 6, 1.0, 1.0
        expected = 0.5 * n * (1 + math.exp(2.0)) * (math.log(n) + math.log(4))
        assert theorem56_ring_mixing_upper(n, beta, delta) == pytest.approx(expected)

    def test_theorem57_formula(self):
        assert theorem57_ring_mixing_lower(1.0, 1.0) == pytest.approx(
            0.25 * (1 + math.exp(2.0))
        )

    def test_ring_lower_below_upper(self):
        for beta in (0.0, 0.5, 1.0, 2.0):
            lower = theorem57_ring_mixing_lower(beta, 1.0)
            upper = theorem56_ring_mixing_upper(8, beta, 1.0)
            assert lower <= upper

    def test_cutwidth_for_bound_uses_closed_forms(self):
        assert cutwidth_for_bound(ring_graph(10)) == 2
        assert cutwidth_for_bound(grid_graph(2, 3)) == cutwidth_for_bound(grid_graph(2, 3))

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem51_mixing_upper(3, 1.0, 0.0, 1.0, 2)
        with pytest.raises(ValueError):
            theorem56_ring_mixing_upper(2, 1.0, 1.0)
        with pytest.raises(ValueError):
            theorem57_ring_mixing_lower(1.0, -1.0)
        with pytest.raises(ValueError):
            clique_potential_barrier(1, 1.0, 1.0)


class Test1311OpinionFormulas:
    """Formula tests for the finite-opinion-game bounds (arXiv 1311.1610)."""

    def test_mixing_upper_formula(self):
        from repro.core.bounds import theorem1311_mixing_upper

        n, beta, chi = 5, 0.7, 3
        expected = 2.0 * n**3 * math.exp(beta * (2 * chi + 1)) * (n * beta + 1.0)
        assert theorem1311_mixing_upper(n, beta, chi) == pytest.approx(expected)

    def test_mixing_upper_matches_theorem51_with_unit_deltas(self):
        # the opinion bound is the Theorem 5.1 schema at delta0 = 2, delta1
        # accounting: exponent chi*(delta0+delta1) = 2*chi ... plus the
        # belief term; check the exact relation exp(beta) * thm51(d0=d1=1)
        from repro.core.bounds import theorem1311_mixing_upper

        n, beta, chi = 4, 0.5, 2
        base = theorem51_mixing_upper(n, beta, 1.0, 1.0, chi)
        assert theorem1311_mixing_upper(n, beta, chi) == pytest.approx(
            base * math.exp(beta) * (n * beta + 1.0) / (n * 1.0 * beta + 1.0)
        )

    def test_mixing_upper_monotone_in_cutwidth_and_beta(self):
        from repro.core.bounds import theorem1311_mixing_upper

        assert theorem1311_mixing_upper(6, 1.0, 2) < theorem1311_mixing_upper(6, 1.0, 3)
        assert theorem1311_mixing_upper(6, 0.5, 2) < theorem1311_mixing_upper(6, 1.5, 2)

    def test_sandwich_pair(self):
        from repro.core.bounds import lemma1311_social_cost_sandwich

        lower, upper = lemma1311_social_cost_sandwich(3.5)
        assert lower == pytest.approx(3.5)
        assert upper == pytest.approx(7.0)
        assert lemma1311_social_cost_sandwich(0.0) == (0.0, 0.0)

    def test_stability_is_twice_optimum(self):
        from repro.core.bounds import theorem1311_stability_upper

        assert theorem1311_stability_upper(1.25) == pytest.approx(2.5)

    def test_stationary_cost_formula_and_limits(self):
        from repro.core.bounds import theorem1311_stationary_cost_upper

        opt, beta, n, m = 2.0, 4.0, 6, 3
        expected = 2.0 * opt + 2.0 * n * math.log(m) / beta
        assert theorem1311_stationary_cost_upper(opt, beta, n, m) == pytest.approx(expected)
        # beta -> inf recovers the price-of-stability bound
        assert theorem1311_stationary_cost_upper(opt, 1e12, n, m) == pytest.approx(
            2.0 * opt, abs=1e-9
        )
        assert theorem1311_stationary_cost_upper(opt, 0.0, n, m) == math.inf

    def test_validation(self):
        from repro.core.bounds import (
            lemma1311_social_cost_sandwich,
            theorem1311_mixing_upper,
            theorem1311_stability_upper,
            theorem1311_stationary_cost_upper,
        )

        with pytest.raises(ValueError):
            theorem1311_mixing_upper(0, 1.0, 2)
        with pytest.raises(ValueError):
            theorem1311_mixing_upper(3, -1.0, 2)
        with pytest.raises(ValueError):
            theorem1311_mixing_upper(3, 1.0, -1)
        with pytest.raises(ValueError):
            lemma1311_social_cost_sandwich(-0.1)
        with pytest.raises(ValueError):
            theorem1311_stability_upper(-1.0)
        with pytest.raises(ValueError):
            theorem1311_stationary_cost_upper(-1.0, 1.0, 3)
        with pytest.raises(ValueError):
            theorem1311_stationary_cost_upper(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            theorem1311_stationary_cost_upper(1.0, 1.0, 3, 1)
