"""Tests for the pluggable array backends (repro.engine.backend).

Four contracts:

* *resolution* — ``backend=`` knob values resolve predictably: instances
  pass through, ``"numpy"``/``None`` hit the shared default, unknown
  names fail fast, and ``"numba"`` degrades gracefully (one-line warning,
  once per process) when numba is not installed;
* *fusing* — fused kernels are offered exactly for CSR-structured games
  under softmax move rules, and the numpy backend never fuses (so the
  default engine path is byte-identical to the pre-backend engine);
* *kernel-grid equivalence* — for every kernel family (Sequential /
  Parallel / RoundRobin / Annealed), fixed-seed trajectories on the
  ``backend="numba"`` path agree exactly with the numpy matrix path *and*
  with the index-state path on small games (when numba is absent this
  degrades to a fallback regression, which is itself part of the
  contract);
* *statistical certification* — at n = 10^4 (where bit-for-bit agreement
  is no longer guaranteed by the float-identity contract), independently
  seeded runs on both backends produce overlapping anytime-valid
  confidence intervals for the stationary magnetization.
"""

from __future__ import annotations

import warnings

import networkx as nx
import numpy as np
import pytest

import repro.engine.backend as backend_mod
from repro.core import LogitDynamics
from repro.core.variants import (
    AnnealedLogitDynamics,
    BestResponseDynamics,
    ParallelLogitDynamics,
    RoundRobinLogitDynamics,
)
from repro.engine import (
    ArrayBackend,
    NumbaBackend,
    NumpyBackend,
    numba_available,
    resolve_backend,
)
from repro.games import IsingGame, LocalInteractionGame, TwoWellGame
from repro.graphs import torus_graph
from repro.stats import EmpiricalBernsteinCS


@pytest.fixture
def ring12_ising():
    return IsingGame(nx.cycle_graph(12), coupling=1.0, field=0.1)


@pytest.fixture
def torus_m3():
    """3-strategy local-interaction game on a 3x3 torus (random payoffs)."""
    rng = np.random.default_rng(7)
    payoff = rng.normal(size=(3, 3))
    payoff = (payoff + payoff.T) / 2.0  # symmetric => exact potential game
    return LocalInteractionGame(torus_graph(3, 3), payoff, num_strategies=3)


def _softmax_dynamics(game, beta=0.8):
    """One dynamics instance per softmax kernel family."""
    return [
        LogitDynamics(game, beta),
        ParallelLogitDynamics(game, beta),
        RoundRobinLogitDynamics(game, beta),
        AnnealedLogitDynamics(game, lambda t: 0.02 * t),
    ]


def _quiet_ensemble(dynamics, *args, **kwargs):
    """Build an ensemble, swallowing the numba-fallback RuntimeWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return dynamics.ensemble(*args, **kwargs)


class TestBackendResolution:
    def test_instance_passes_through(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_default_is_shared_numpy_backend(self):
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("numpy") is resolve_backend(None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="'numpy'.*'numba'"):
            resolve_backend("cupy")

    def test_auto_resolves_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # "auto" must never warn
            backend = resolve_backend("auto")
        expected = "numba" if numba_available() else "numpy"
        assert backend.name == expected

    def test_simulator_exposes_resolved_backend(self, ring12_ising):
        sim = LogitDynamics(ring12_ising, 1.0).ensemble(4, state="matrix")
        assert isinstance(sim.backend, ArrayBackend)
        assert sim.backend.name == "numpy"


class TestNumbaFallback:
    @pytest.fixture
    def no_numba(self, monkeypatch):
        """Simulate an environment where numba cannot be imported."""
        monkeypatch.setattr(backend_mod, "_NUMBA", None)
        monkeypatch.setattr(backend_mod, "_warned_numba_fallback", False)

    def test_fallback_warns_once_then_stays_quiet(self, no_numba):
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = resolve_backend("numba")
        assert backend.name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second request: no re-warning
            assert resolve_backend("numba").name == "numpy"

    def test_auto_picks_numpy_silently(self, no_numba):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("auto").name == "numpy"

    def test_fallback_trajectories_match_numpy(self, no_numba, ring12_ising):
        dynamics = LogitDynamics(ring12_ising, 1.0)
        reference = dynamics.ensemble(
            8, rng=np.random.default_rng(13), state="matrix", backend="numpy"
        ).run(200, record_every=1)
        with pytest.warns(RuntimeWarning, match="falling back"):
            fallback_sim = dynamics.ensemble(
                8, rng=np.random.default_rng(13), state="matrix", backend="numba"
            )
        assert fallback_sim.backend.name == "numpy"
        np.testing.assert_array_equal(
            reference, fallback_sim.run(200, record_every=1)
        )


class TestFusingContract:
    def test_numpy_backend_never_fuses(self, ring12_ising):
        sim = LogitDynamics(ring12_ising, 1.0).ensemble(
            4, state="matrix", backend="numpy"
        )
        assert not sim.backend.can_fuse(sim.game, sim.kernel.rule)
        assert sim._fused_rowwise is None
        assert sim._fused_parallel is None

    def test_numba_backend_fuses_softmax_csr_pairs(self, ring12_ising, torus_m3):
        # can_fuse is plain Python: decidable without numba installed
        backend = NumbaBackend()
        for game in (ring12_ising, torus_m3):
            sim = LogitDynamics(game, 1.0).ensemble(2, state="matrix")
            assert backend.can_fuse(game, sim.kernel.rule)

    def test_annealed_rule_is_fusable(self, ring12_ising):
        sim = AnnealedLogitDynamics(ring12_ising, lambda t: 0.1 * t).ensemble(
            2, state="matrix"
        )
        assert NumbaBackend().can_fuse(ring12_ising, sim.kernel.rule)

    def test_best_response_rule_is_not_fusable(self, ring12_ising):
        # best response is a hard argmax, not a softmax: never routed
        # through the fused logit kernels
        sim = BestResponseDynamics(ring12_ising).ensemble(2, state="matrix")
        assert not NumbaBackend().can_fuse(ring12_ising, sim.kernel.rule)

    def test_dense_game_is_not_fusable(self):
        # no csr_arrays => no fused kernels, whatever the rule
        game = TwoWellGame(num_players=4, barrier=1.5)
        sim = LogitDynamics(game, 1.0).ensemble(2, state="matrix")
        assert not NumbaBackend().can_fuse(game, sim.kernel.rule)

    def test_steppers_none_for_unfusable_pairs(self, ring12_ising):
        backend = NumbaBackend()
        sim = BestResponseDynamics(ring12_ising).ensemble(2, state="matrix")
        assert backend.fused_rowwise_stepper(ring12_ising, sim.kernel.rule) is None
        assert backend.fused_parallel_stepper(ring12_ising, sim.kernel.rule) is None


class TestKernelGridEquivalence:
    """backend="numba" must walk numpy's exact fixed-seed trajectories.

    On these small-degree games the float-identity contract of the fused
    kernels makes agreement bit-for-bit; without numba the comparison
    still pins the fallback path to the default engine.
    """

    @pytest.mark.parametrize("game_fixture", ["ring12_ising", "torus_m3"])
    def test_numba_matches_numpy_matrix_all_kernels(self, game_fixture, request):
        game = request.getfixturevalue(game_fixture)
        start = tuple(i % game.space.max_strategies for i in range(game.num_players))
        for dynamics in _softmax_dynamics(game):
            label = type(dynamics).__name__
            numpy_run = dynamics.ensemble(
                16, start=start, rng=np.random.default_rng(11),
                state="matrix", backend="numpy",
            ).run(250, record_every=1)
            numba_run = _quiet_ensemble(
                dynamics, 16, start=start, rng=np.random.default_rng(11),
                state="matrix", backend="numba",
            ).run(250, record_every=1)
            np.testing.assert_array_equal(
                numpy_run, numba_run, err_msg=f"backend mismatch for {label}"
            )

    @pytest.mark.parametrize("game_fixture", ["ring12_ising", "torus_m3"])
    def test_numba_matrix_matches_numpy_index(self, game_fixture, request):
        game = request.getfixturevalue(game_fixture)
        start = tuple(i % game.space.max_strategies for i in range(game.num_players))
        for dynamics in _softmax_dynamics(game):
            label = type(dynamics).__name__
            index_run = dynamics.ensemble(
                16, start=start, rng=np.random.default_rng(29),
                state="index", mode="matrix_free", backend="numpy",
            ).run(250, record_every=1)
            numba_run = _quiet_ensemble(
                dynamics, 16, start=start, rng=np.random.default_rng(29),
                state="matrix", backend="numba",
            ).run(250, record_every=1)
            np.testing.assert_array_equal(
                index_run, numba_run, err_msg=f"index/numba mismatch for {label}"
            )

    def test_hitting_times_match_across_backends(self, ring12_ising):
        dynamics = LogitDynamics(ring12_ising, 2.0)
        times = {}
        for backend in ("numpy", "numba"):
            sim = _quiet_ensemble(
                dynamics, 12, start=(0,) * 12, rng=np.random.default_rng(9),
                state="matrix", backend=backend,
            )
            times[backend] = sim.hitting_times(
                lambda prof: prof.min(axis=1) == 1, max_steps=30_000
            )
        np.testing.assert_array_equal(times["numpy"], times["numba"])


class TestStatisticalCertification:
    @pytest.mark.slow
    def test_certified_interval_agreement_at_n_1e4(self):
        """Independently seeded runs on both backends must produce
        overlapping anytime-valid intervals for the magnetization at
        n = 10^4 — the regime where only statistical (not bit-for-bit)
        agreement is promised."""
        n = 10_000
        game = IsingGame(nx.cycle_graph(n), coupling=1.0)
        dynamics = LogitDynamics(game, 0.3)  # the fused rowwise hot path
        start = np.zeros(n, dtype=np.int64)
        intervals = {}
        for backend, seed in (("numpy", 101), ("numba", 202)):
            sim = _quiet_ensemble(
                dynamics, 32, start=start, rng=np.random.default_rng(seed),
                state="matrix", backend=backend,
            )
            sim.run(3000)
            # both runs stop at the same step count, so their replica
            # magnetizations share a distribution whatever the burn-in
            magnetizations = game.magnetization_of_profiles(sim.profiles)
            cs = EmpiricalBernsteinCS(alpha=0.05, support=(-1.0, 1.0))
            cs.update(magnetizations)
            intervals[backend] = tuple(float(b) for b in cs.interval())
        (lo_a, hi_a), (lo_b, hi_b) = intervals["numpy"], intervals["numba"]
        assert lo_a <= hi_b and lo_b <= hi_a, (
            f"certified intervals disagree: numpy {intervals['numpy']} vs "
            f"numba {intervals['numba']}"
        )
