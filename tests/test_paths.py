"""Tests for canonical paths and the comparison method (repro.markov.paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics
from repro.games import CoordinationParams, GraphicalCoordinationGame
from repro.markov.chain import MarkovChain
from repro.markov.paths import (
    PathFamily,
    canonical_paths_congestion,
    canonical_paths_relaxation_bound,
    comparison_congestion_ratio,
    path_edges,
)
from repro.markov.spectral import spectral_summary

import networkx as nx


def lazy_cycle(n: int = 5) -> MarkovChain:
    P = np.zeros((n, n))
    for i in range(n):
        P[i, i] = 0.5
        P[i, (i + 1) % n] += 0.25
        P[i, (i - 1) % n] += 0.25
    return MarkovChain(P)


def cycle_path_family(n: int) -> PathFamily:
    """Clockwise paths between every ordered pair of cycle states."""
    paths = {}
    for x in range(n):
        for y in range(n):
            if x == y:
                continue
            path = [x]
            cur = x
            while cur != y:
                cur = (cur + 1) % n
                path.append(cur)
            paths[(x, y)] = path
    return PathFamily(paths)


class TestPathEdges:
    def test_edges_of_path(self):
        assert path_edges([1, 2, 5]) == [(1, 2), (2, 5)]

    def test_single_state_path_has_no_edges(self):
        assert path_edges([3]) == []

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            path_edges([])


class TestPathFamilyValidation:
    def test_valid_family_passes(self):
        chain = lazy_cycle(5)
        family = cycle_path_family(5)
        family.validate(chain)

    def test_wrong_endpoints_rejected(self):
        chain = lazy_cycle(4)
        family = PathFamily({(0, 2): [0, 1, 3]})
        with pytest.raises(ValueError):
            family.validate(chain)

    def test_non_transition_edge_rejected(self):
        chain = lazy_cycle(5)
        family = PathFamily({(0, 2): [0, 2]})  # 0 -> 2 is not a cycle transition
        with pytest.raises(ValueError):
            family.validate(chain)


class TestCanonicalPaths:
    def test_congestion_bounds_relaxation_time(self):
        chain = lazy_cycle(5)
        family = cycle_path_family(5)
        rho = canonical_paths_congestion(chain, family)
        trel_from_lambda2 = 1.0 / (1.0 - spectral_summary(chain).lambda_2)
        assert trel_from_lambda2 <= rho + 1e-9

    def test_relaxation_bound_alias(self):
        chain = lazy_cycle(6)
        family = cycle_path_family(6)
        assert canonical_paths_relaxation_bound(chain, family) == pytest.approx(
            canonical_paths_congestion(chain, family)
        )

    def test_congestion_on_logit_chain(self, two_well_game):
        """Bit-fixing canonical paths certify the relaxation time of the
        two-well logit chain (Theorem 2.6 applied as in Lemma 3.7)."""
        beta = 0.7
        dynamics = LogitDynamics(two_well_game, beta)
        chain = dynamics.markov_chain()
        space = two_well_game.space
        paths = {}
        for x in range(space.size):
            for y in range(space.size):
                if x != y:
                    paths[(x, y)] = space.bit_fixing_path(x, y)
        family = PathFamily(paths)
        family.validate(chain)
        rho = canonical_paths_congestion(chain, family)
        trel_from_lambda2 = 1.0 / (1.0 - spectral_summary(chain).lambda_2)
        assert trel_from_lambda2 <= rho + 1e-9


class TestComparisonTheorem:
    def test_lemma33_style_comparison(self):
        """Compare the logit chain at beta > 0 against beta = 0 using the
        single-edge path family (every edge of M^0 is also an edge of M^beta),
        and check the Theorem 2.5 inequality on relaxation times."""
        game = GraphicalCoordinationGame(
            nx.path_graph(3), CoordinationParams.from_deltas(1.0, 0.5)
        )
        beta = 0.6
        chain_beta = LogitDynamics(game, beta).markov_chain()
        chain_zero = LogitDynamics(game, 0.0).markov_chain()
        space = game.space
        paths = {}
        P0 = chain_zero.transition_matrix
        for x in range(space.size):
            for y in range(space.size):
                if x != y and P0[x, y] > 0:
                    paths[(x, y)] = [x, y]
        family = PathFamily(paths)
        family.validate(chain_beta)
        alpha, gamma = comparison_congestion_ratio(chain_beta, chain_zero, family)
        trel_beta = 1.0 / (1.0 - spectral_summary(chain_beta).lambda_2)
        trel_zero = 1.0 / (1.0 - spectral_summary(chain_zero).lambda_2)
        assert trel_beta <= alpha * gamma * trel_zero + 1e-9

    def test_missing_reference_edge_rejected(self):
        chain = lazy_cycle(4)
        reference = lazy_cycle(4)
        family = PathFamily({(0, 1): [0, 1]})  # missing most edges
        with pytest.raises(ValueError):
            comparison_congestion_ratio(chain, reference, family)
