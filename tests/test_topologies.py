"""Property grid over every topology generator (repro.graphs.topologies).

Every generator — the original ten and the zoo additions — is checked for
the contract the rest of the stack relies on: 0..n-1 sorted integer
labelling (``LocalInteractionGame`` relabels by sorted node order, so the
generators must agree), seed determinism for the random families,
connectivity where promised, the exact degree/edge-count invariants of
the structured families, and loud rejection of degenerate sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    binary_tree_graph,
    caterpillar_graph,
    clique_graph,
    erdos_renyi_graph,
    grid_graph,
    load_graph,
    path_graph,
    preferential_attachment_graph,
    random_regular_graph,
    ring_graph,
    small_world_graph,
    star_graph,
    stochastic_block_model_graph,
    torus_graph,
)

import networkx as nx


def deterministic_generators():
    """(name, factory, num_nodes, num_edges) for the structured families."""
    return [
        ("ring", lambda: ring_graph(7), 7, 7),
        ("clique", lambda: clique_graph(6), 6, 15),
        ("path", lambda: path_graph(5), 5, 4),
        ("star", lambda: star_graph(6), 6, 5),
        ("grid", lambda: grid_graph(3, 4), 12, 17),
        ("torus", lambda: torus_graph(3, 4), 12, 24),
        ("binary_tree", lambda: binary_tree_graph(3), 15, 14),
        ("caterpillar", lambda: caterpillar_graph(4, 2), 12, 11),
    ]


def random_generators():
    """(name, rng -> graph, num_nodes) for the seeded families."""
    return [
        ("erdos_renyi", lambda rng: erdos_renyi_graph(12, 0.35, rng=rng), 12),
        ("random_regular", lambda rng: random_regular_graph(10, 3, rng=rng), 10),
        (
            "preferential_attachment",
            lambda rng: preferential_attachment_graph(12, 2, rng=rng),
            12,
        ),
        ("small_world", lambda rng: small_world_graph(12, 4, 0.2, rng=rng), 12),
        (
            "stochastic_block_model",
            lambda rng: stochastic_block_model_graph([5, 4, 3], 0.8, 0.15, rng=rng),
            12,
        ),
    ]


class TestLabellingContract:
    """Every generator yields integer nodes 0..n-1 (sorted order = identity)."""

    @pytest.mark.parametrize("name,factory,n,_m", deterministic_generators())
    def test_deterministic_generators(self, name, factory, n, _m):
        g = factory()
        assert sorted(g.nodes()) == list(range(n))

    @pytest.mark.parametrize("name,factory,n", random_generators())
    def test_random_generators(self, name, factory, n):
        g = factory(np.random.default_rng(0))
        assert sorted(g.nodes()) == list(range(n))

    def test_load_graph_relabels_sorted(self):
        g = load_graph(["10 30", "30 20"])
        # labels 10 < 20 < 30 map to 0 < 1 < 2
        assert sorted(g.nodes()) == [0, 1, 2]
        assert g.has_edge(0, 2) and g.has_edge(1, 2) and not g.has_edge(0, 1)


class TestSeedDeterminism:
    """Same seed, same graph — twice; the scenario-matrix cache relies on it."""

    @pytest.mark.parametrize("name,factory,_n", random_generators())
    def test_same_seed_same_edges(self, name, factory, _n):
        a = factory(np.random.default_rng(1234))
        b = factory(np.random.default_rng(1234))
        assert sorted(a.edges()) == sorted(b.edges())

    @pytest.mark.parametrize("name,factory,_n", random_generators())
    def test_generator_consumes_the_stream(self, name, factory, _n):
        """Two draws from one rng differ (almost surely) — no hidden reseed."""
        rng = np.random.default_rng(99)
        draws = [sorted(factory(rng).edges()) for _ in range(4)]
        assert any(d != draws[0] for d in draws[1:])


class TestConnectivity:
    @pytest.mark.parametrize("name,factory,_n,_m", deterministic_generators())
    def test_structured_families_connected(self, name, factory, _n, _m):
        assert nx.is_connected(factory())

    @pytest.mark.parametrize(
        "name,factory,_n",
        [g for g in random_generators() if g[0] != "random_regular"],
    )
    def test_guaranteed_connected_families(self, name, factory, _n):
        # ER/SBM resample until connected; PA and connected-WS are
        # connected by construction (random_regular makes no such promise)
        for seed in range(5):
            assert nx.is_connected(factory(np.random.default_rng(seed)))

    def test_er_connectivity_can_be_disabled(self):
        g = erdos_renyi_graph(
            30, 0.02, rng=np.random.default_rng(3), ensure_connected=False
        )
        assert g.number_of_nodes() == 30  # may or may not be connected

    def test_sbm_resample_exhaustion_raises(self):
        with pytest.raises(RuntimeError, match="connected"):
            stochastic_block_model_graph(
                [4, 4], 0.0, 0.0, rng=np.random.default_rng(0)
            )


class TestDegreeAndEdgeInvariants:
    @pytest.mark.parametrize("name,factory,n,m", deterministic_generators())
    def test_node_and_edge_counts(self, name, factory, n, m):
        g = factory()
        assert g.number_of_nodes() == n
        assert g.number_of_edges() == m

    def test_ring_is_2_regular(self):
        degrees = dict(ring_graph(9).degree())
        assert set(degrees.values()) == {2}

    def test_torus_is_4_regular(self):
        degrees = dict(torus_graph(3, 5).degree())
        assert set(degrees.values()) == {4}

    def test_random_regular_is_regular(self):
        g = random_regular_graph(10, 3, rng=np.random.default_rng(2))
        assert set(dict(g.degree()).values()) == {3}

    def test_small_world_preserves_lattice_edge_count(self):
        # Watts-Strogatz rewires edges but never changes their number
        g = small_world_graph(14, 4, 0.3, rng=np.random.default_rng(4))
        assert g.number_of_edges() == 14 * 4 // 2

    def test_caterpillar_structure(self):
        spine, legs = 5, 3
        g = caterpillar_graph(spine, legs)
        degrees = dict(g.degree())
        # leaves have degree 1; interior spine nodes legs + 2; ends legs + 1
        assert sum(1 for d in degrees.values() if d == 1) == spine * legs
        assert degrees[0] == legs + 1 and degrees[spine - 1] == legs + 1
        for i in range(1, spine - 1):
            assert degrees[i] == legs + 2

    def test_star_hub_degree(self):
        degrees = dict(star_graph(8).degree())
        assert sorted(degrees.values()) == [1] * 7 + [7]

    def test_sbm_block_sizes_add_up(self):
        sizes = [6, 5, 4]
        g = stochastic_block_model_graph(
            sizes, 0.9, 0.2, rng=np.random.default_rng(5)
        )
        assert g.number_of_nodes() == sum(sizes)

    @pytest.mark.slow
    def test_sbm_is_assortative_on_average(self):
        """With p_in >> p_out most edges must land inside blocks."""
        sizes = [10, 10]
        block = np.repeat([0, 1], 10)
        inside = outside = 0
        for seed in range(20):
            g = stochastic_block_model_graph(
                sizes, 0.8, 0.05, rng=np.random.default_rng(seed)
            )
            for u, v in g.edges():
                if block[u] == block[v]:
                    inside += 1
                else:
                    outside += 1
        assert inside > 3 * outside


class TestDegenerateSizesRejected:
    @pytest.mark.parametrize(
        "call",
        [
            lambda: ring_graph(2),
            lambda: clique_graph(1),
            lambda: path_graph(1),
            lambda: star_graph(1),
            lambda: grid_graph(0, 3),
            lambda: torus_graph(2, 3),
            lambda: binary_tree_graph(0),
            lambda: caterpillar_graph(1, 2),
            lambda: caterpillar_graph(3, 0),
            lambda: erdos_renyi_graph(5, 1.5),
            lambda: random_regular_graph(5, 5),
            lambda: random_regular_graph(5, 3),  # odd n * degree
            lambda: preferential_attachment_graph(1),
            lambda: preferential_attachment_graph(5, 5),
            lambda: small_world_graph(2, 2, 0.1),
            lambda: small_world_graph(10, 3, 0.1),  # odd k
            lambda: small_world_graph(10, 12, 0.1),  # k >= n
            lambda: small_world_graph(10, 4, 1.5),
            lambda: stochastic_block_model_graph([], 0.5, 0.1),
            lambda: stochastic_block_model_graph([3, 0], 0.5, 0.1),
            lambda: stochastic_block_model_graph([3, 3], 1.5, 0.1),
        ],
    )
    def test_rejected(self, call):
        with pytest.raises(ValueError):
            call()


class TestLoadGraph:
    def test_reads_from_a_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# a comment line\n0 1\n1 2  # trailing comment\n\n2 3\n")
        g = load_graph(path)
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_string_labels_sort_stably(self):
        g = load_graph(["alice bob", "bob carol"])
        # alice < bob < carol alphabetically -> 0, 1, 2
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_integer_labels_sort_numerically(self):
        g = load_graph(["2 10", "10 1"])
        # numeric order 1 < 2 < 10, NOT the lexicographic "1" < "10" < "2"
        assert g.has_edge(1, 2) and g.has_edge(0, 2)

    def test_duplicate_edges_collapse(self):
        g = load_graph(["0 1", "1 0", "0 1"])
        assert g.number_of_edges() == 1

    def test_self_loops_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            load_graph(["0 0"])

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError, match="two labels"):
            load_graph(["0 1 2"])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            load_graph(["# nothing but comments"])
