"""Tests for the standing scenario matrix (repro.analysis.scenario_matrix).

The matrix is the repo's standing CI artifact, so the tests pin its three
operational guarantees — bit-for-bit shard-count invariance, resume-after-
kill from the ExperimentStore, and name-keyed seeds that survive grid
growth — plus the end-to-end ≥3-family x ≥4-topology run whose opinion
cells are checked against the arXiv 1311.1610 bound callables.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import (
    render_scenario_matrix,
    scenario_matrix,
    scenario_matrix_payload,
)
from repro.core import LogitDynamics
from repro.core.bounds import (
    cutwidth_for_bound,
    theorem1311_mixing_upper,
    theorem1311_stationary_cost_upper,
)
from repro.core.variants import ParallelLogitDynamics
from repro.games import (
    CoordinationParams,
    FiniteOpinionGame,
    GraphicalCoordinationGame,
    IsingGame,
)
from repro.graphs import caterpillar_graph, path_graph, ring_graph, star_graph
from repro.obs import JsonlTraceSink, Tracer
from repro.parallel.sharding import ShardedExecutor

BETA = 1.0


def opinion_family(graph):
    # beliefs derived deterministically from the graph size so every
    # topology gets the same game content on every run
    n = graph.number_of_nodes()
    beliefs = (np.arange(n) % 3) / 3.0 + 0.1
    return FiniteOpinionGame(graph, beliefs)


def game_families():
    return {
        "opinion": opinion_family,
        "ising": lambda g: IsingGame(g, coupling=0.5),
        "coordination": lambda g: GraphicalCoordinationGame(
            g, CoordinationParams.from_deltas(2.0, 1.0)
        ),
    }


def topologies():
    return {
        "ring4": lambda: ring_graph(4),
        "path4": lambda: path_graph(4),
        "star4": lambda: star_graph(4),
        "caterpillar4": lambda: caterpillar_graph(2, 1),
    }


def dynamics_factories():
    return {
        "logit": lambda g: LogitDynamics(g, BETA),
        "parallel": lambda g: ParallelLogitDynamics(g, BETA),
    }


def small_matrix(**kwargs):
    """A 2x2 sub-grid with CI-sized parameters; kwargs override knobs."""
    defaults = dict(
        num_replicas=96,
        epsilon=0.25,
        max_time=300,
        seed=2024,
    )
    defaults.update(kwargs)
    return scenario_matrix(
        {k: v for k, v in game_families().items() if k in ("opinion", "ising")},
        {k: v for k, v in topologies().items() if k in ("ring4", "path4")},
        dynamics_factories(),
        **defaults,
    )


def comparable(result):
    """Payload with provenance stripped — equal iff the numbers are equal."""
    payload = scenario_matrix_payload(result)
    for cell in payload["cells"]:
        for record in cell["records"]:
            record.pop("provenance", None)
    return payload


class TestMatrixShape:
    def test_row_major_cells_and_metadata(self):
        result = small_matrix()
        assert result.game_families == ("opinion", "ising")
        assert result.topologies == ("ring4", "path4")
        assert result.dynamics == ("logit", "parallel")
        assert [(c.game_family, c.topology) for c in result.cells] == [
            ("opinion", "ring4"),
            ("opinion", "path4"),
            ("ising", "ring4"),
            ("ising", "path4"),
        ]
        for cell in result.cells:
            assert cell.num_players == 4
            assert len(cell.sweep.records) == 2

    def test_cells_carry_cs_certified_welfare(self):
        result = small_matrix()
        for cell in result.cells:
            for record in cell.sweep.records:
                extra = record.extra
                assert extra["welfare_lower"] <= extra["mean_welfare"]
                assert extra["mean_welfare"] <= extra["welfare_upper"]
                assert isinstance(extra["converged"], (bool, np.bool_))

    def test_cell_lookup(self):
        result = small_matrix()
        cell = result.cell("ising", "path4")
        assert cell.game_family == "ising" and cell.topology == "path4"
        with pytest.raises(KeyError):
            result.cell("opinion", "torus")

    def test_render_and_payload(self):
        result = small_matrix()
        text = render_scenario_matrix(result)
        for token in ("opinion", "ising", "ring4", "path4", "logit", "parallel"):
            assert token in text
        payload = scenario_matrix_payload(result)
        json.dumps(payload)  # strictly JSON-serialisable
        assert payload["game_families"] == ["opinion", "ising"]
        assert len(payload["cells"]) == 4
        assert all(len(c["records"]) == 2 for c in payload["cells"])


class TestShardInvarianceAndResume:
    def test_shard_count_invariant_bit_for_bit(self):
        """2 shards vs 3 shards, same seed: identical records."""
        with ShardedExecutor(num_shards=2) as two:
            a = small_matrix(executor=two)
        with ShardedExecutor(num_shards=3) as three:
            b = small_matrix(executor=three)
        assert comparable(a) == comparable(b)

    def test_resume_after_kill_from_the_store(self, tmp_path):
        """A killed run's completed cells are reloaded, not recomputed."""
        store = tmp_path / "cells"
        # the "killed" run completed only the opinion row
        partial = scenario_matrix(
            {"opinion": opinion_family},
            {k: v for k, v in topologies().items() if k in ("ring4", "path4")},
            dynamics_factories(),
            num_replicas=96,
            max_time=300,
            seed=2024,
            store=str(store),
        )
        # the restarted full run resumes: opinion cells come from the store
        full = small_matrix(store=str(store))
        for cell in full.cells:
            for record in cell.sweep.records:
                expected = "store" if cell.game_family == "opinion" else "computed"
                assert record.extra["provenance"] == expected
        # and the resumed numbers equal the killed run's bit for bit
        assert comparable(partial)["cells"] == comparable(full)["cells"][:2]
        # a third run is a full cache hit
        rerun = small_matrix(store=str(store))
        assert all(
            r.extra["provenance"] == "store"
            for c in rerun.cells
            for r in c.sweep.records
        )
        assert comparable(rerun) == comparable(full)

    def test_store_resume_is_shard_count_invariant(self, tmp_path):
        """Cells computed on 2 shards are valid hits for a 3-shard run."""
        store = tmp_path / "cells"
        with ShardedExecutor(num_shards=2) as two:
            a = small_matrix(executor=two, store=str(store))
        with ShardedExecutor(num_shards=3) as three:
            b = small_matrix(executor=three, store=str(store))
        assert all(
            r.extra["provenance"] == "store"
            for c in b.cells
            for r in c.sweep.records
        )
        assert comparable(a) == comparable(b)

    def test_serial_and_sharded_cells_do_not_collide(self, tmp_path):
        """The sharded driver draws different samples; specs must differ."""
        store = tmp_path / "cells"
        serial = small_matrix(store=str(store))
        with ShardedExecutor(num_shards=2) as two:
            sharded = small_matrix(executor=two, store=str(store))
        assert all(
            r.extra["provenance"] == "computed"
            for c in sharded.cells
            for r in c.sweep.records
        ), "a sharded run must never hit a serial run's cells"
        del serial


class TestSeedFollowsCellName:
    def test_growing_the_grid_keeps_existing_cells(self):
        """Adding a topology must not reseed (or renumber) existing cells."""
        base = scenario_matrix(
            {"opinion": opinion_family},
            {"ring4": lambda: ring_graph(4), "path4": lambda: path_graph(4)},
            dynamics_factories(),
            num_replicas=96,
            max_time=300,
            seed=77,
        )
        grown = scenario_matrix(
            {"opinion": opinion_family},
            {
                "star4": lambda: star_graph(4),  # new column, listed first
                "ring4": lambda: ring_graph(4),
                "path4": lambda: path_graph(4),
            },
            dynamics_factories(),
            num_replicas=96,
            max_time=300,
            seed=77,
        )
        base_cells = {
            (c["game_family"], c["topology"]): c for c in comparable(base)["cells"]
        }
        grown_cells = {
            (c["game_family"], c["topology"]): c for c in comparable(grown)["cells"]
        }
        for key, cell in base_cells.items():
            assert grown_cells[key] == cell

    def test_different_seeds_differ(self):
        a = small_matrix(seed=1)
        b = small_matrix(seed=2)
        assert comparable(a) != comparable(b)


class TestTracing:
    def test_matrix_events_bracket_the_sweeps(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(JsonlTraceSink(path)) as tracer:
            small_matrix(tracer=tracer)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        events = [r for r in records if r["kind"] == "event"]
        names = [e["name"] for e in events]
        assert names[0] == "matrix.begin"
        assert names[-1] == "matrix.end"
        cells = [e for e in events if e["name"] == "matrix.cell"]
        assert [c["payload"]["cell"] for c in cells] == [
            "opinion::ring4",
            "opinion::path4",
            "ising::ring4",
            "ising::path4",
        ]
        assert "sweep.begin" in names

    def test_tracing_does_not_change_the_samples(self, tmp_path):
        traced_path = tmp_path / "trace.jsonl"
        with Tracer(JsonlTraceSink(traced_path)) as tracer:
            traced = small_matrix(tracer=tracer)
        untraced = small_matrix()
        assert comparable(traced) == comparable(untraced)


class TestValidation:
    def test_empty_grids_rejected(self):
        with pytest.raises(ValueError, match="game family"):
            scenario_matrix({}, topologies(), dynamics_factories(), seed=1)
        with pytest.raises(ValueError, match="topology"):
            scenario_matrix(game_families(), {}, dynamics_factories(), seed=1)

    def test_bad_topology_type_rejected(self):
        with pytest.raises(TypeError, match="nx.Graph"):
            scenario_matrix(
                {"opinion": opinion_family},
                {"bad": lambda: 42},
                dynamics_factories(),
                seed=1,
            )

    def test_store_requires_seed(self, tmp_path):
        with pytest.raises(ValueError, match="seed"):
            scenario_matrix(
                {"opinion": opinion_family},
                {"ring4": lambda: ring_graph(4)},
                dynamics_factories(),
                store=str(tmp_path / "cells"),
            )

    def test_callable_knobs_receive_the_game(self):
        seen = []

        def start(game):
            seen.append(game.num_players)
            return 0

        result = scenario_matrix(
            {"opinion": opinion_family},
            {"ring4": lambda: ring_graph(4), "path4": lambda: path_graph(4)},
            {"logit": lambda g: LogitDynamics(g, BETA)},
            num_replicas=64,
            max_time=200,
            seed=5,
            start=start,
            escape_states=lambda g: np.array([g.consensus_index(0)]),
        )
        assert seen == [4, 4]
        for cell in result.cells:
            assert "escape_fraction" in cell.sweep.records[0].extra


@pytest.mark.slow
class TestFullGridEndToEnd:
    """The acceptance grid: 3 families x 4 topologies, verified cells."""

    def test_full_grid_with_store_executor_and_theory_checks(self, tmp_path):
        with ShardedExecutor(num_shards=2) as executor:
            result = scenario_matrix(
                game_families(),
                topologies(),
                dynamics_factories(),
                num_replicas=192,
                epsilon=0.25,
                max_time=600,
                seed=31337,
                executor=executor,
                store=str(tmp_path / "cells"),
            )
        assert len(result.cells) == 12
        payload = scenario_matrix_payload(result)
        json.dumps(payload)
        # every cell is CS-certified
        for cell in result.cells:
            for record in cell.sweep.records:
                extra = record.extra
                assert extra["welfare_lower"] <= extra["welfare_upper"]
                assert "converged" in extra and "capped" in extra
        # opinion cells verified against the arXiv 1311.1610 callables:
        # measured TV-mixing below the cutwidth bound, and the settled
        # ensemble's social cost below the stationary-welfare bound
        topo_builders = topologies()
        for topo_name, build in topo_builders.items():
            graph = build()
            game = opinion_family(graph)
            cell = result.cell("opinion", topo_name)
            mixing_bound = theorem1311_mixing_upper(
                game.num_players, BETA, cutwidth_for_bound(graph)
            )
            cost_bound = theorem1311_stationary_cost_upper(
                game.optimal_social_cost(), BETA, game.num_players, game.num_opinions
            )
            for record in cell.sweep.records:
                extra = record.extra
                if extra["dynamics"] == "logit" and extra["converged"]:
                    assert 0 <= record.mixing_time <= mixing_bound
                    # welfare = -social cost; allow CS width + the TV-0.25
                    # settling slack on top of the exact-stationary bound
                    measured_cost = -extra["welfare_lower"]
                    assert measured_cost <= cost_bound + 1.0
        # the sequential family must have converged somewhere
        assert any(
            r.extra["dynamics"] == "logit" and r.extra["converged"]
            for c in result.cells
            for r in c.sweep.records
        )
