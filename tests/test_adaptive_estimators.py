"""Tests for adaptive (chunked, interval-returning) Monte-Carlo estimators.

Covers the engine's per-replica seeded streams
(:class:`repro.engine.SeededSequentialKernel`), the deterministic-chunking
contract of the adaptive estimators, the ``precision=None`` backward-
compatibility guarantee, and the ``converged`` / ``-1`` sentinel semantics
of the ensemble mixing estimators.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.analysis.welfare import (
    estimate_stationary_welfare,
    stationary_expected_welfare,
    welfare_of_profiles,
)
from repro.core import (
    LogitDynamics,
    empirical_escape_times,
    empirical_hitting_times,
    estimate_mixing_time_ensemble,
    estimate_tv_convergence,
)
from repro.core.variants import RoundRobinLogitDynamics
from repro.engine import EnsembleSimulator, SeededSequentialKernel
from repro.games import IsingGame, TwoWellGame
from repro.stats import StreamingEstimate


@pytest.fixture
def ring6_game() -> IsingGame:
    return IsingGame(nx.cycle_graph(6), coupling=1.0)


def consensus_target(game: IsingGame) -> int:
    return int(game.space.encode(np.ones(game.space.num_players, dtype=np.int64)))


def lower_well(game: TwoWellGame) -> np.ndarray:
    w = game.space.weight(np.arange(game.space.size))
    return np.flatnonzero(w < game.num_players / 2)


class TestSeededKernel:
    def test_chunked_pooled_hitting_times_identical(self, ring6_game):
        """The satellite regression: a fixed master seed gives identical
        pooled hitting-time samples for chunk sizes 1, 7 and 64."""
        dynamics = LogitDynamics(ring6_game, 1.0)
        target = consensus_target(ring6_game)

        def pooled(chunk_size, total=21):
            root = np.random.SeedSequence(2024)
            out = []
            remaining = total
            while remaining:
                k = min(chunk_size, remaining)
                sim = EnsembleSimulator.seeded(
                    dynamics, root.spawn(k), start=(0,) * 6
                )
                out.append(sim.hitting_times(target, max_steps=5000))
                remaining -= k
            return np.concatenate(out)

        reference = pooled(64)
        np.testing.assert_array_equal(pooled(1), reference)
        np.testing.assert_array_equal(pooled(7), reference)

    def test_runs_are_resumable(self, ring6_game):
        dynamics = LogitDynamics(ring6_game, 0.8)
        seeds = np.random.SeedSequence(3).spawn(8)
        one_shot = EnsembleSimulator.seeded(dynamics, seeds, start=(0,) * 6)
        one_shot.run(120)
        split = EnsembleSimulator.seeded(
            dynamics, np.random.SeedSequence(3).spawn(8), start=(0,) * 6
        )
        split.run(40)
        split.run(80)
        np.testing.assert_array_equal(one_shot.profiles, split.profiles)

    def test_resume_after_first_passage_keeps_per_replica_streams(self, ring6_game):
        """A replica retired early by a first-passage call must continue its
        own stream — not jump to the other replicas' global offset — when
        the simulator is advanced again afterwards."""
        dynamics = LogitDynamics(ring6_game, 1.0)
        target = consensus_target(ring6_game)
        seeds = np.random.SeedSequence(77).spawn(8)
        mixed = EnsembleSimulator.seeded(dynamics, seeds, start=(0,) * 6)
        times = mixed.hitting_times(target, max_steps=400)
        mixed.run(300)  # documented resumable usage after retirement
        for r, seed in enumerate(np.random.SeedSequence(77).spawn(8)):
            solo = EnsembleSimulator.seeded(dynamics, [seed], start=(0,) * 6)
            solo_time = solo.hitting_times(target, max_steps=400)[0]
            solo.run(300)
            assert solo_time == times[r]
            np.testing.assert_array_equal(
                solo.profiles[0], mixed.profiles[r],
                err_msg=f"replica {r} desynced from its own stream",
            )

    def test_reset_replays_seed_sequences(self, ring6_game):
        dynamics = LogitDynamics(ring6_game, 0.8)
        sim = EnsembleSimulator.seeded(
            dynamics, np.random.SeedSequence(11).spawn(4), start=(0,) * 6
        )
        sim.run(60)
        first = sim.profiles
        sim.reset((0,) * 6)
        sim.run(60)
        np.testing.assert_array_equal(first, sim.profiles)

    def test_matrix_backend_past_int64(self):
        """Per-replica streams work index-free on 100-player games."""
        game = IsingGame(nx.cycle_graph(100), coupling=1.0)
        dynamics = LogitDynamics(game, 0.7)
        sim = EnsembleSimulator.seeded(
            dynamics,
            np.random.SeedSequence(5).spawn(4),
            start=np.zeros(100, dtype=np.int64),
        )
        assert sim.state.kind == "matrix"
        times = sim.hitting_times(lambda p: p.sum(axis=1) >= 8, max_steps=2000)
        assert times.shape == (4,)
        assert np.all(times > 0)

    def test_replica_count_mismatch_rejected(self, ring6_game):
        dynamics = LogitDynamics(ring6_game, 1.0)
        kernel = SeededSequentialKernel(dynamics, np.random.SeedSequence(0).spawn(3))
        with pytest.raises(ValueError, match="per-replica streams"):
            EnsembleSimulator(dynamics, 5, kernel=kernel)


class TestAdaptiveHittingTimes:
    def test_precision_none_is_bit_for_bit_legacy(self, ring6_game):
        """precision=None must reproduce the fixed-replica engine path
        exactly — same rng consumption, same samples."""
        target = consensus_target(ring6_game)
        got = empirical_hitting_times(
            ring6_game, 1.0, 0, target, num_replicas=32, max_steps=3000,
            rng=np.random.default_rng(77),
        )
        sim = LogitDynamics(ring6_game, 1.0).ensemble(
            32, start=0, rng=np.random.default_rng(77)
        )
        expected = sim.hitting_times(target, max_steps=3000)
        assert isinstance(got, np.ndarray)
        np.testing.assert_array_equal(got, expected)

    def test_adaptive_returns_interval_carrying_estimate(self, ring6_game):
        target = consensus_target(ring6_game)
        est = empirical_hitting_times(
            ring6_game, 1.0, 0, target, max_steps=5000,
            precision=0.1, seed=17, chunk_size=64, max_replicas=2048,
        )
        assert isinstance(est, StreamingEstimate)
        assert est.lower <= est.estimate <= est.upper
        assert est.stopped_early
        assert est.width <= 0.1 * 5000
        assert est.n % 64 == 0
        # truncated samples live on [0, max_steps]
        assert est.samples.min() >= 0 and est.samples.max() <= 5000

    def test_adaptive_chunk_size_invariance(self, ring6_game):
        target = consensus_target(ring6_game)
        runs = [
            empirical_hitting_times(
                ring6_game, 1.0, 0, target, max_steps=2000,
                precision=1e-9, seed=99, chunk_size=k, max_replicas=40,
            )
            for k in (1, 7, 64)
        ]
        np.testing.assert_array_equal(runs[0].samples, runs[1].samples)
        np.testing.assert_array_equal(runs[0].samples, runs[2].samples)
        assert runs[0].estimate == pytest.approx(runs[2].estimate)

    def test_non_seedable_dynamics_rejected(self, ring6_game):
        # round-robin has no seeded per-replica counterpart (parallel and
        # probabilistic schedules now do); the error names the supported ones
        with pytest.raises(ValueError, match="seeded streams"):
            empirical_hitting_times(
                ring6_game, 1.0, 0, consensus_target(ring6_game),
                precision=0.1, dynamics=RoundRobinLogitDynamics(ring6_game, 1.0),
            )

    def test_per_replica_starts_rejected_in_adaptive_mode(self, ring6_game):
        with pytest.raises(ValueError, match="single start"):
            empirical_hitting_times(
                ring6_game, 1.0, np.zeros((8, 6), dtype=np.int64),
                consensus_target(ring6_game), precision=0.1,
            )

    def test_fixed_mode_knobs_rejected_in_adaptive_mode(self, ring6_game):
        """num_replicas / rng belong to the fixed path; accepting and
        silently ignoring them next to precision= would change what the
        caller asked for."""
        target = consensus_target(ring6_game)
        with pytest.raises(ValueError, match="max_replicas"):
            empirical_hitting_times(
                ring6_game, 1.0, 0, target, num_replicas=20_000, precision=0.1,
            )
        with pytest.raises(ValueError, match="seed"):
            empirical_hitting_times(
                ring6_game, 1.0, 0, target, precision=0.1,
                rng=np.random.default_rng(0),
            )
        game = TwoWellGame(num_players=4, barrier=1.5)
        with pytest.raises(ValueError, match="max_replicas"):
            empirical_escape_times(
                game, 1.0, lower_well(game), num_replicas=512, precision=0.1,
            )

    def test_profile_start_and_predicate_target(self):
        game = IsingGame(nx.cycle_graph(80), coupling=1.0)
        est = empirical_hitting_times(
            game, 0.7, np.zeros(80, dtype=np.int64),
            lambda p: p.sum(axis=1) >= 8,
            max_steps=1500, precision=0.2, seed=1, chunk_size=32,
            max_replicas=256,
        )
        assert isinstance(est, StreamingEstimate)
        assert est.n >= 32


class TestAdaptiveEscapeTimes:
    def test_precision_none_is_bit_for_bit_legacy(self):
        game = TwoWellGame(num_players=4, barrier=1.5)
        well = lower_well(game)
        got = empirical_escape_times(
            game, 1.2, well, num_replicas=24, max_steps=4000,
            rng=np.random.default_rng(13),
        )
        # the legacy path: conditional-Gibbs starts then a bulk exit-time run
        rng = np.random.default_rng(13)
        phi = game.potential_vector()[well]
        weights = np.exp(-1.2 * (phi - phi.min()))
        weights /= weights.sum()
        starts = rng.choice(well, size=24, p=weights)
        sim = LogitDynamics(game, 1.2).ensemble(24, start_indices=starts, rng=rng)
        expected = sim.exit_times(well, max_steps=4000)
        np.testing.assert_array_equal(got, expected)

    def test_adaptive_interval_and_chunk_invariance(self):
        game = TwoWellGame(num_players=4, barrier=1.5)
        well = lower_well(game)
        runs = [
            empirical_escape_times(
                game, 1.0, well, max_steps=2000,
                precision=1e-9, seed=31, chunk_size=k, max_replicas=28,
            )
            for k in (1, 7, 64)
        ]
        np.testing.assert_array_equal(runs[0].samples, runs[1].samples)
        np.testing.assert_array_equal(runs[0].samples, runs[2].samples)
        est = runs[0]
        assert isinstance(est, StreamingEstimate)
        assert est.lower <= est.estimate <= est.upper

    def test_adaptive_tracks_exact_escape_scale(self):
        """The adaptive interval for E[min(tau, T)] must be consistent with
        the exact linear-system escape time when T dwarfs it."""
        from repro.core.metastability import escape_time_from

        game = TwoWellGame(num_players=4, barrier=1.5)
        well = lower_well(game)
        beta = 1.0
        exact = escape_time_from(LogitDynamics(game, beta).markov_chain(), well)
        est = empirical_escape_times(
            game, beta, well, max_steps=50_000,
            precision=0.0005, seed=7, chunk_size=256, max_replicas=4096,
        )
        assert est.lower <= exact <= est.upper

    def test_predicate_well_adaptive_requires_single_profile(self):
        game = TwoWellGame(num_players=4, barrier=1.5)
        inside = lambda p: p.sum(axis=1) < 2  # noqa: E731
        with pytest.raises(ValueError, match="single"):
            empirical_escape_times(
                game, 1.0, inside,
                start_profiles=np.zeros((8, 4), dtype=np.int64),
                precision=0.1,
            )
        est = empirical_escape_times(
            game, 1.0, inside, start_profiles=np.zeros(4, dtype=np.int64),
            max_steps=1000, precision=0.2, seed=2, chunk_size=32,
            max_replicas=128,
        )
        assert isinstance(est, StreamingEstimate)


class TestConvergedSentinel:
    def test_capped_run_reports_minus_one_and_not_converged(self, ring6_game):
        """The fixed-horizon footgun: running out of time must be
        distinguishable from genuine convergence at the last checkpoint."""
        estimate = estimate_mixing_time_ensemble(
            ring6_game, 2.5, num_replicas=64, max_time=30,
            rng=np.random.default_rng(0),
        )
        assert not estimate.converged
        assert estimate.capped
        assert estimate.mixing_time_estimate == -1

    def test_converged_run_reports_time_and_flag(self, ring6_game):
        estimate = estimate_mixing_time_ensemble(
            ring6_game, 0.2, num_replicas=512, max_time=5000,
            rng=np.random.default_rng(1),
        )
        assert estimate.converged
        assert not estimate.capped
        assert estimate.mixing_time_estimate >= 0

    def test_certified_stopping_with_alpha(self, ring6_game):
        """With alpha, stopping requires the band's upper endpoint (not the
        point estimate) to clear epsilon, and the band is recorded."""
        pi = LogitDynamics(ring6_game, 0.2).stationary_distribution()
        certified = estimate_tv_convergence(
            LogitDynamics(ring6_game, 0.2), pi, num_replicas=4096,
            epsilon=0.25, max_time=2000, rng=np.random.default_rng(3),
            alpha=0.05,
        )
        assert certified.alpha == 0.05
        assert certified.tv_band is not None
        assert certified.tv_band.shape == (certified.tv_curve.shape[0], 2)
        band_lo, band_hi = certified.tv_band[-1]
        tv_final = certified.tv_curve[-1, 1]
        assert band_lo <= tv_final <= band_hi
        if certified.converged:
            assert band_hi <= 0.25
            # certification is stricter than the point-estimate rule
            point = estimate_tv_convergence(
                LogitDynamics(ring6_game, 0.2), pi, num_replicas=4096,
                epsilon=0.25, max_time=2000, rng=np.random.default_rng(3),
            )
            assert certified.mixing_time_estimate >= point.mixing_time_estimate

    def test_alpha_none_matches_legacy_stopping(self, ring6_game):
        """alpha=None keeps the legacy point-estimate rule bit-for-bit."""
        pi = LogitDynamics(ring6_game, 0.3).stationary_distribution()
        a = estimate_tv_convergence(
            LogitDynamics(ring6_game, 0.3), pi, num_replicas=256,
            max_time=1000, rng=np.random.default_rng(5),
        )
        assert a.tv_band is None and a.alpha is None
        assert a.converged == (not a.capped)
        assert a.tv_curve[-1, 1] <= 0.25 or a.mixing_time_estimate == -1


class TestStationaryWelfareEstimator:
    def test_interval_contains_exact_value(self, ring6_game):
        beta = 0.4
        exact = stationary_expected_welfare(ring6_game, beta)
        est = estimate_stationary_welfare(
            ring6_game, beta, num_steps=600, precision=0.8, seed=21,
            max_replicas=8192,
        )
        assert isinstance(est, StreamingEstimate)
        assert est.lower <= exact <= est.upper

    def test_fixed_replica_mode_and_chunk_invariance(self, ring6_game):
        a = estimate_stationary_welfare(
            ring6_game, 0.5, num_steps=100, seed=4, num_replicas=60,
            chunk_size=7,
        )
        b = estimate_stationary_welfare(
            ring6_game, 0.5, num_steps=100, seed=4, num_replicas=60,
            chunk_size=64,
        )
        assert a.n == b.n == 60
        assert not a.stopped_early
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_index_free_welfare_matches_gather(self, ring6_game):
        sim = LogitDynamics(ring6_game, 0.5).ensemble(
            32, rng=np.random.default_rng(0)
        )
        sim.run(50)
        np.testing.assert_allclose(
            welfare_of_profiles(ring6_game, sim.profiles),
            ring6_game.utility_profile_many(sim.indices).sum(axis=1),
        )

    def test_runs_index_free_past_int64(self):
        game = IsingGame(nx.cycle_graph(80), coupling=1.0)
        est = estimate_stationary_welfare(
            game, 0.4, num_steps=400, seed=2, num_replicas=32, support=None,
        )
        assert isinstance(est, StreamingEstimate)
        assert np.isfinite(est.lower) and np.isfinite(est.upper)

    def test_non_seedable_dynamics_rejected(self, ring6_game):
        with pytest.raises(ValueError, match="seeded streams"):
            estimate_stationary_welfare(
                ring6_game, 0.5, num_steps=50,
                dynamics=RoundRobinLogitDynamics(ring6_game, 0.5),
            )

    def test_non_positive_precision_rejected(self, ring6_game):
        with pytest.raises(ValueError, match="precision"):
            estimate_stationary_welfare(ring6_game, 0.5, precision=0.0)


class TestSweepPropagation:
    def test_hitting_size_sweep_adaptive_extras(self):
        from repro.analysis.sweep import hitting_time_size_sweep

        result = hitting_time_size_sweep(
            lambda n: IsingGame(nx.cycle_graph(n), coupling=1.0),
            sizes=(6, 8),
            beta=0.8,
            start_factory=lambda g: np.zeros(g.space.num_players, dtype=np.int64),
            target_factory=lambda g: (
                lambda p: p.sum(axis=1) >= g.space.num_players - 1
            ),
            max_steps=1500,
            precision=0.2,
            seed=6,
            chunk_size=32,
            max_replicas=256,
        )
        assert len(result.records) == 2
        for record in result.records:
            extra = record.extra
            assert extra["hitting_lower"] <= extra["mean_hitting_time"]
            assert extra["mean_hitting_time"] <= extra["hitting_upper"]
            assert extra["num_replicas_used"] % 32 == 0
            assert 0.0 <= extra["truncated_fraction"] <= 1.0

    def test_hitting_size_sweep_adaptive_is_seed_reproducible(self):
        from repro.analysis.sweep import hitting_time_size_sweep

        def run():
            return hitting_time_size_sweep(
                lambda n: IsingGame(nx.cycle_graph(n), coupling=1.0),
                sizes=(6,),
                beta=0.8,
                start_factory=lambda g: np.zeros(
                    g.space.num_players, dtype=np.int64
                ),
                target_factory=lambda g: (
                    lambda p: p.sum(axis=1) >= g.space.num_players - 1
                ),
                max_steps=1000,
                precision=0.25,
                seed=40,
                chunk_size=16,
                max_replicas=128,
            )

        a, b = run(), run()
        assert a.records[0].extra == b.records[0].extra

    def test_dynamics_family_sweep_welfare_bars(self, ring6_game):
        from repro.analysis.sweep import dynamics_family_sweep

        result = dynamics_family_sweep(
            ring6_game,
            {"sequential": lambda g: LogitDynamics(g, 0.3)},
            num_replicas=256,
            max_time=2000,
            rng=np.random.default_rng(8),
        )
        extra = result.records[0].extra
        assert extra["welfare_lower"] <= extra["mean_welfare"]
        assert extra["mean_welfare"] <= extra["welfare_upper"]
        assert extra["converged"] == (not extra["capped"])

    def test_interval_cells_render_in_tables(self):
        from repro.analysis.report import render_table

        est = StreamingEstimate(
            estimate=12.5, lower=11.0, upper=14.0, n=256, stopped_early=True
        )
        table = render_table(["n", "hitting time"], [[6, est]])
        assert "12.5 [11, 14]" in table
