"""End-to-end telemetry tests: traced sweeps, trace-summary CLI, fallback.

Covers the observability acceptance path: a sharded, store-backed
``dynamics_family_sweep`` run with ``tracer=`` produces one JSONL trace
from which the summary layer reconstructs replica-steps, shard balance,
store hit/miss counts that agree with ``provenance_summary()``, and a
CS-width-vs-n convergence curve — while the traced run's estimates stay
bit-for-bit identical to the untraced run on the same seed.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.engine.backend as backend_module
from repro.analysis.report import provenance_summary
from repro.analysis.sweep import dynamics_family_sweep
from repro.core import LogitDynamics, empirical_hitting_times
from repro.core.stationary import gibbs_measure
from repro.games import TwoWellGame
from repro.obs import (
    JsonlTraceSink,
    MemorySink,
    Tracer,
    load_trace_files,
    read_trace,
    render_run_summary,
    summarize_runs,
)
from repro.parallel import ShardedExecutor

REPO_ROOT = Path(__file__).resolve().parent.parent
TRACE_SUMMARY = REPO_ROOT / "tools" / "trace_summary.py"


def _families():
    return {
        "cold": lambda g: LogitDynamics(g, 0.5),
        "hot": lambda g: LogitDynamics(g, 1.5),
    }


def _run_family_sweep(game, tmp_path, label, tracer=None, executor=None,
                      families=None):
    return dynamics_family_sweep(
        game,
        families if families is not None else _families(),
        reference=gibbs_measure(game.potential_vector(), 0.5),
        num_replicas=64,
        max_time=150,
        escape_states=[0],
        max_escape_steps=300,
        seed=20260808,
        store=str(tmp_path / label),
        executor=executor,
        tracer=tracer,
    )


class TestTracedShardedSweepAcceptance:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        """One sharded, store-backed, traced sweep plus its untraced twin."""
        tmp_path = tmp_path_factory.mktemp("obs-acceptance")
        game = TwoWellGame(num_players=3, barrier=1.0)
        trace_path = tmp_path / "TRACE_sweep.jsonl"
        with ShardedExecutor(num_shards=2, backend="process") as executor:
            with Tracer(JsonlTraceSink(trace_path)) as tracer:
                traced = _run_family_sweep(
                    game, tmp_path, "store-traced", tracer=tracer,
                    executor=executor,
                )
            untraced = _run_family_sweep(
                game, tmp_path, "store-untraced", executor=executor,
            )
        events, anomalies = load_trace_files([trace_path])
        assert anomalies == []
        (summary,) = summarize_runs(events).values()
        return {
            "traced": traced,
            "untraced": untraced,
            "trace_path": trace_path,
            "summary": summary,
        }

    def test_pooled_estimates_bit_for_bit_identical(self, traced_run):
        traced, untraced = traced_run["traced"], traced_run["untraced"]
        assert len(traced.records) == len(untraced.records)
        for a, b in zip(traced.records, untraced.records):
            assert a.parameter == b.parameter
            assert a.mixing_time == b.mixing_time
            assert a.extra == b.extra

    def test_reconstructs_total_replica_steps(self, traced_run):
        summary = traced_run["summary"]
        assert summary.replica_steps > 0
        # sharded TV measurement: steps * replicas per checkpoint, plus the
        # serial escape ensembles — all counted through one counter
        assert summary.counters["engine.replica_steps"] == summary.replica_steps

    def test_reconstructs_shard_balance(self, traced_run):
        summary = traced_run["summary"]
        assert set(summary.shard_seconds) == {"0", "1"}
        for _, total_seconds in summary.shard_seconds.values():
            assert total_seconds > 0
        assert summary.imbalance, "shard.chunk events must carry imbalance"
        for ratio in summary.imbalance:
            assert ratio >= 1.0

    def test_store_counts_match_provenance_summary(self, traced_run):
        summary = traced_run["summary"]
        records = traced_run["traced"].records
        computed = sum(1 for r in records if r.extra["provenance"] == "computed")
        loaded = sum(1 for r in records if r.extra["provenance"] == "store")
        assert summary.counters.get("store.miss", 0) == computed == 2
        assert summary.counters.get("store.hit", 0) == loaded == 0
        assert "0 of 2 cells loaded" in provenance_summary(traced_run["traced"])

    def test_reconstructs_convergence_curve(self, traced_run):
        summary = traced_run["summary"]
        welfare_curves = {
            consumer: curve
            for consumer, curve in summary.convergence.items()
            if consumer.startswith("NormalMixtureCS[welfare:")
        }
        assert len(welfare_curves) == 2  # one per family
        for curve in welfare_curves.values():
            assert len(curve) > 1
            ns = [point[0] for point in curve]
            widths = [point[3] for point in curve]
            assert ns == sorted(ns)
            assert widths[-1] < widths[0]  # the interval tightens with n

    def test_cell_lifecycle_events(self, traced_run):
        summary = traced_run["summary"]
        assert summary.cells == [("cold", "computed"), ("hot", "computed")]

    def test_trace_summary_cli_renders_and_exits_zero(self, traced_run):
        result = subprocess.run(
            [sys.executable, str(TRACE_SUMMARY), str(traced_run["trace_path"])],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert "replica-steps=" in result.stdout
        assert "load imbalance" in result.stdout
        assert "convergence NormalMixtureCS[welfare:cold]" in result.stdout
        assert "structurally clean" in result.stdout

    def test_trace_summary_cli_flags_corruption(self, traced_run, tmp_path):
        corrupted = tmp_path / "corrupt.jsonl"
        corrupted.write_text(
            traced_run["trace_path"].read_text() + "{broken\n"
        )
        result = subprocess.run(
            [sys.executable, str(TRACE_SUMMARY), "--lint-only", str(corrupted)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 1
        assert "malformed JSON" in result.stderr


class TestResumeHitMissCrossCheck:
    def test_resume_counters_agree_with_provenance(self, tmp_path):
        """Satellite: traced resume-run hit/miss counters must agree exactly
        with provenance_summary() on the same records."""
        game = TwoWellGame(num_players=3, barrier=1.0)
        # first run computes and stores both cells (untraced)
        _run_family_sweep(game, tmp_path, "store")
        # resume with one extra family: 2 hits, 1 miss
        families = dict(_families())
        families["best"] = lambda g: LogitDynamics(g, 2.5)
        sink = MemorySink()
        with Tracer(sink) as tracer:
            result = _run_family_sweep(
                game, tmp_path, "store", tracer=tracer, families=families
            )
        loaded = sum(1 for r in result.records if r.extra["provenance"] == "store")
        computed = sum(
            1 for r in result.records if r.extra["provenance"] == "computed"
        )
        assert (loaded, computed) == (2, 1)
        assert tracer.counters["store.hit"] == loaded
        assert tracer.counters["store.miss"] == computed
        assert provenance_summary(result) == (
            "2 of 3 cells loaded from the experiment store, 1 computed this run."
        )
        # the store-level get counters tell the same story
        assert tracer.counters["store.get.hit"] == loaded
        assert tracer.counters["store.get.miss"] == computed
        # and a fully warm re-run is all hits
        sink2 = MemorySink()
        with Tracer(sink2) as tracer2:
            warm = _run_family_sweep(
                game, tmp_path, "store", tracer=tracer2, families=families
            )
        assert tracer2.counters["store.hit"] == 3
        assert "store.miss" not in tracer2.counters
        assert "3 of 3 cells loaded" in provenance_summary(warm)

    def test_traced_and_untraced_records_identical(self, tmp_path):
        game = TwoWellGame(num_players=3, barrier=1.0)
        plain = _run_family_sweep(game, tmp_path, "a")
        with Tracer(MemorySink()) as tracer:
            traced = _run_family_sweep(game, tmp_path, "b", tracer=tracer)
        for a, b in zip(plain.records, traced.records):
            assert a.parameter == b.parameter
            assert a.mixing_time == b.mixing_time
            assert a.extra.keys() == b.extra.keys()
            for key in a.extra:
                x, y = a.extra[key], b.extra[key]
                if isinstance(x, float) and np.isnan(x):
                    assert np.isnan(y)
                else:
                    assert x == y


class TestNumbaFallbackEvent:
    def test_exactly_one_event_under_process_executor(self, monkeypatch, tmp_path):
        """Satellite: the numba fallback must land in the trace exactly once
        even when the estimator fans out over a 2-worker process executor."""
        monkeypatch.setattr(backend_module, "_NUMBA", None)
        monkeypatch.setattr(backend_module, "_warned_numba_fallback", False)
        monkeypatch.setattr(backend_module, "_FALLBACK_EVENT_RUNS", set())
        game = TwoWellGame(num_players=3, barrier=1.0)
        trace_path = tmp_path / "TRACE_fallback.jsonl"
        with ShardedExecutor(num_shards=2, backend="process") as executor:
            with pytest.warns(RuntimeWarning, match="falling back"):
                with Tracer(JsonlTraceSink(trace_path)) as tracer:
                    empirical_hitting_times(
                        game,
                        0.8,
                        0,
                        game.space.size - 1,
                        max_steps=200,
                        precision=1e-12,
                        chunk_size=32,
                        max_replicas=64,
                        seed=3,
                        executor=executor,
                        backend="numba",
                        tracer=tracer,
                    )
        events = read_trace(trace_path)
        fallbacks = [
            e for e in events if e["name"] == "engine.backend_fallback"
        ]
        assert len(fallbacks) == 1
        payload = fallbacks[0]["payload"]
        assert payload["backend"] == "numba"
        assert payload["fallback"] == "numpy"
        assert "reason" in payload

    def test_event_fires_once_per_run_id(self, monkeypatch):
        monkeypatch.setattr(backend_module, "_NUMBA", None)
        monkeypatch.setattr(backend_module, "_warned_numba_fallback", True)
        monkeypatch.setattr(backend_module, "_FALLBACK_EVENT_RUNS", set())
        tracer = Tracer(run_id="one")
        backend_module.resolve_backend("numba", tracer=tracer)
        backend_module.resolve_backend("numba", tracer=tracer)
        events = [
            e for e in tracer.events if e["name"] == "engine.backend_fallback"
        ]
        assert len(events) == 1
        # a different run id records its own event
        other = Tracer(run_id="two")
        backend_module.resolve_backend("numba", tracer=other)
        assert any(
            e["name"] == "engine.backend_fallback" for e in other.events
        )
