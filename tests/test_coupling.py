"""Tests for the coupling machinery (repro.markov.coupling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogitDynamics
from repro.games import AnonymousDominantGame, CoordinationParams, GraphicalCoordinationGame
from repro.markov.coupling import (
    CouplingResult,
    coalescence_time_bound,
    maximal_coupling_update,
    simulate_grand_coupling,
)


class TestMaximalCouplingUpdate:
    def test_identical_distributions_always_agree(self):
        probs = np.array([0.2, 0.5, 0.3])
        for u in np.linspace(0, 0.999, 25):
            s_x, s_y = maximal_coupling_update(probs, probs, float(u))
            assert s_x == s_y

    def test_marginals_are_correct(self):
        """Pushing a fine uniform grid through the coupling recovers both marginals."""
        probs_x = np.array([0.7, 0.2, 0.1])
        probs_y = np.array([0.1, 0.3, 0.6])
        grid = np.linspace(0, 1, 200_001)[:-1] + 0.5 / 200_000
        outcomes_x = np.zeros(3)
        outcomes_y = np.zeros(3)
        for u in grid:
            s_x, s_y = maximal_coupling_update(probs_x, probs_y, float(u))
            outcomes_x[s_x] += 1
            outcomes_y[s_y] += 1
        np.testing.assert_allclose(outcomes_x / grid.size, probs_x, atol=2e-4)
        np.testing.assert_allclose(outcomes_y / grid.size, probs_y, atol=2e-4)

    def test_agreement_probability_is_overlap(self):
        """P(same outcome) equals sum_s min(p(s), q(s)) — the maximal coupling."""
        probs_x = np.array([0.6, 0.4])
        probs_y = np.array([0.3, 0.7])
        grid = np.linspace(0, 1, 100_001)[:-1] + 0.5 / 100_000
        agree = sum(
            1
            for u in grid
            if maximal_coupling_update(probs_x, probs_y, float(u))[0]
            == maximal_coupling_update(probs_x, probs_y, float(u))[1]
        )
        overlap = np.minimum(probs_x, probs_y).sum()
        assert agree / grid.size == pytest.approx(overlap, abs=2e-4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            maximal_coupling_update(np.array([0.5, 0.5]), np.array([1.0]), 0.3)


class TestGrandCouplingSimulation:
    def _uniform_update(self, profile, player):
        return np.array([0.5, 0.5])

    def test_equal_starts_coalesce_immediately(self):
        result = simulate_grand_coupling(
            num_players=3,
            num_strategies=(2, 2, 2),
            update_distribution=self._uniform_update,
            start_x=np.array([0, 1, 0]),
            start_y=np.array([0, 1, 0]),
            horizon=10,
            num_runs=4,
            rng=np.random.default_rng(0),
        )
        assert np.all(result.coalescence_times == 0)
        assert result.fraction_coalesced == 1.0

    def test_uniform_updates_coalesce_fast(self):
        result = simulate_grand_coupling(
            num_players=3,
            num_strategies=(2, 2, 2),
            update_distribution=self._uniform_update,
            start_x=np.array([0, 0, 0]),
            start_y=np.array([1, 1, 1]),
            horizon=500,
            num_runs=16,
            rng=np.random.default_rng(1),
        )
        # identical update distributions mean the chains agree on every
        # touched coordinate; a coupon-collector number of steps suffices
        assert result.fraction_coalesced == 1.0
        assert result.mean_coalescence_time() < 100

    def test_start_shape_validation(self):
        with pytest.raises(ValueError):
            simulate_grand_coupling(
                num_players=3,
                num_strategies=(2, 2, 2),
                update_distribution=self._uniform_update,
                start_x=np.array([0, 0]),
                start_y=np.array([1, 1, 1]),
                horizon=10,
            )

    def test_result_quantile_counts_unmet_as_horizon(self):
        result = CouplingResult(
            coalescence_times=np.array([5, -1, 7, -1]), horizon=100, num_coalesced=2
        )
        assert result.quantile(1.0) == 100
        assert result.fraction_coalesced == 0.5
        assert result.mean_coalescence_time() == pytest.approx(6.0)


class TestCouplingAgainstLogitDynamics:
    def test_coalescence_bound_upper_bounds_true_mixing(self, ring5_ising_game):
        """Theorem 2.1: the coupling-time quantile dominates the exact t_mix
        for the simulated starting pair (here the two consensus profiles,
        which are the hardest pair for a coordination game)."""
        from repro.core import measure_mixing_time

        beta = 0.5
        game = ring5_ising_game
        exact = measure_mixing_time(game, beta).mixing_time
        dynamics = LogitDynamics(game, beta)
        n = game.num_players
        result = dynamics.grand_coupling(
            start_x=(0,) * n,
            start_y=(1,) * n,
            horizon=50 * exact,
            num_runs=48,
            rng=np.random.default_rng(7),
        )
        bound = coalescence_time_bound(result, epsilon=0.25)
        assert bound >= exact * 0.5  # sanity: same order of magnitude or larger

    def test_dominant_game_couples_within_theorem42_budget(self):
        game = AnonymousDominantGame(3, 2)
        dynamics = LogitDynamics(game, beta=10.0)
        result = dynamics.grand_coupling(
            start_x=(1, 1, 1),
            start_y=(0, 0, 0),
            horizon=2000,
            num_runs=24,
            rng=np.random.default_rng(3),
        )
        assert result.fraction_coalesced == 1.0

    def test_epsilon_validation(self):
        result = CouplingResult(np.array([1, 2]), horizon=10, num_coalesced=2)
        with pytest.raises(ValueError):
            coalescence_time_bound(result, epsilon=0.0)
