"""Tests for the Ising/Glauber correspondence (repro.games.ising)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import LogitDynamics, gibbs_measure
from repro.games.ising import (
    IsingGame,
    glauber_update_probability,
    ising_hamiltonian,
    profile_from_spins,
    spins_from_profile,
)


class TestSpinMapping:
    def test_roundtrip(self):
        profile = np.array([0, 1, 1, 0])
        spins = spins_from_profile(profile)
        np.testing.assert_array_equal(spins, [-1, 1, 1, -1])
        np.testing.assert_array_equal(profile_from_spins(spins), profile)

    def test_hamiltonian_ferromagnetic_ground_states(self):
        graph = nx.cycle_graph(4)
        aligned_up = np.ones(4)
        aligned_down = -np.ones(4)
        mixed = np.array([1, -1, 1, -1])
        e_up = ising_hamiltonian(graph, aligned_up, coupling=1.0)
        e_down = ising_hamiltonian(graph, aligned_down, coupling=1.0)
        e_mixed = ising_hamiltonian(graph, mixed, coupling=1.0)
        assert e_up == pytest.approx(-4.0)
        assert e_down == pytest.approx(-4.0)
        assert e_mixed > e_up

    def test_field_breaks_symmetry(self):
        graph = nx.path_graph(3)
        up = np.ones(3)
        down = -np.ones(3)
        assert ising_hamiltonian(graph, up, field=0.5) < ising_hamiltonian(
            graph, down, field=0.5
        )


class TestIsingGame:
    def test_potential_equals_hamiltonian(self):
        graph = nx.cycle_graph(4)
        game = IsingGame(graph, coupling=1.0)
        for x in range(game.space.size):
            spins = spins_from_profile(np.asarray(game.space.decode(x)))
            assert game.potential(x) == pytest.approx(
                ising_hamiltonian(graph, spins, coupling=1.0)
            )

    def test_is_potential_game(self):
        game = IsingGame(nx.path_graph(4), coupling=1.0, field=0.3)
        assert game.verify_potential()

    def test_gibbs_measure_symmetric_without_field(self):
        game = IsingGame(nx.cycle_graph(4), coupling=1.0)
        pi = gibbs_measure(game.potential_vector(), beta=1.0)
        all_up = game.space.encode((1, 1, 1, 1))
        all_down = game.space.encode((0, 0, 0, 0))
        assert pi[all_up] == pytest.approx(pi[all_down])
        assert pi[all_up] == pytest.approx(np.max(pi))

    def test_field_favours_up_consensus(self):
        game = IsingGame(nx.cycle_graph(4), coupling=1.0, field=0.5)
        pi = gibbs_measure(game.potential_vector(), beta=1.0)
        all_up = game.space.encode((1, 1, 1, 1))
        all_down = game.space.encode((0, 0, 0, 0))
        assert pi[all_up] > pi[all_down]

    def test_magnetization(self):
        game = IsingGame(nx.path_graph(3), coupling=1.0)
        assert game.magnetization(game.space.encode((1, 1, 1))) == pytest.approx(1.0)
        assert game.magnetization(game.space.encode((0, 0, 0))) == pytest.approx(-1.0)
        assert game.magnetization(game.space.encode((1, 0, 1))) == pytest.approx(1.0 / 3.0)

    def test_rejects_nonpositive_coupling(self):
        with pytest.raises(ValueError):
            IsingGame(nx.path_graph(3), coupling=0.0)

    def test_coordination_game_equivalence(self):
        """The Ising game and the delta0=delta1=2J coordination game define the
        same Gibbs measure and the same logit dynamics."""
        graph = nx.cycle_graph(4)
        ising = IsingGame(graph, coupling=1.0)
        coord = IsingGame.as_coordination_game(graph, coupling=1.0)
        beta = 0.7
        pi_ising = gibbs_measure(ising.potential_vector(), beta)
        pi_coord = gibbs_measure(coord.potential_vector(), beta)
        np.testing.assert_allclose(pi_ising, pi_coord, atol=1e-12)
        P_ising = LogitDynamics(ising, beta).transition_matrix()
        P_coord = LogitDynamics(coord, beta).transition_matrix()
        np.testing.assert_allclose(P_ising, P_coord, atol=1e-12)


class TestGlauberRule:
    def test_matches_logit_update(self):
        """The heat-bath probability equals the logit update probability of
        playing strategy 1 given the neighbors' spins."""
        graph = nx.path_graph(3)
        game = IsingGame(graph, coupling=1.0)
        beta = 0.9
        dynamics = LogitDynamics(game, beta)
        # middle player, neighbors both up (profile (1, ?, 1))
        profile = np.array([1, 0, 1])
        probs = dynamics.update_distribution(profile, player=1)
        local_field = 1.0 * (1 + 1)  # both neighbor spins +1
        assert probs[1] == pytest.approx(glauber_update_probability(local_field, beta))

    def test_zero_field_is_half(self):
        assert glauber_update_probability(0.0, beta=2.0) == pytest.approx(0.5)

    def test_strong_field_saturates(self):
        assert glauber_update_probability(10.0, beta=5.0) == pytest.approx(1.0, abs=1e-9)
        assert glauber_update_probability(-10.0, beta=5.0) == pytest.approx(0.0, abs=1e-9)
