"""Tests for trajectory observables (repro.core.trajectories)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LogitDynamics,
    empirical_distribution,
    empirical_tv_to_stationary,
    expected_hitting_time_exact,
    fraction_of_time_in,
    gibbs_measure,
    hitting_time_samples,
)
from repro.games import AnonymousDominantGame, CoordinationParams, GraphicalCoordinationGame

import networkx as nx


class TestEmpiricalDistribution:
    def test_counts_normalised(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        traj = dynamics.simulate((0,) * 5, 200, rng=np.random.default_rng(0))
        dist = empirical_distribution(ring5_ising_game, traj)
        assert dist.shape == (32,)
        assert dist.sum() == pytest.approx(1.0)

    def test_burn_in_validation(self, ring5_ising_game):
        dynamics = LogitDynamics(ring5_ising_game, 1.0)
        traj = dynamics.simulate((0,) * 5, 10, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            empirical_distribution(ring5_ising_game, traj, burn_in=100)

    def test_shape_validation(self, ring5_ising_game):
        with pytest.raises(ValueError):
            empirical_distribution(ring5_ising_game, np.zeros((10, 3), dtype=np.int64))

    def test_tv_to_stationary_small_after_long_run(self):
        game = GraphicalCoordinationGame(nx.cycle_graph(4), CoordinationParams.ising(1.0))
        tv = empirical_tv_to_stationary(
            game, beta=0.5, num_steps=30_000, rng=np.random.default_rng(1)
        )
        assert tv < 0.08


class TestHittingTimes:
    def test_exact_hitting_time_positive(self, dominant_game):
        target = dominant_game.space.encode((0, 0, 0))
        start = dominant_game.space.encode((1, 1, 1))
        h = expected_hitting_time_exact(dominant_game, beta=2.0, start_index=start, target_index=target)
        assert h > 0

    def test_exact_hitting_time_zero_at_target(self, dominant_game):
        target = dominant_game.space.encode((0, 0, 0))
        assert expected_hitting_time_exact(
            dominant_game, beta=2.0, start_index=target, target_index=target
        ) == 0.0

    def test_sampled_hitting_times_match_exact_scale(self):
        game = AnonymousDominantGame(3, 2)
        beta = 3.0
        target = game.space.encode((0, 0, 0))
        start = (1, 1, 1)
        exact = expected_hitting_time_exact(
            game, beta, start_index=game.space.encode(start), target_index=target
        )
        samples = hitting_time_samples(
            game, beta, start, target, num_samples=200, rng=np.random.default_rng(4)
        )
        assert np.all(samples >= 0)
        mean = samples.mean()
        assert mean == pytest.approx(exact, rel=0.35)

    def test_unreached_target_reports_minus_one(self, two_well_game):
        # with a huge barrier and very few steps the opposite well is not hit
        all0, all1 = two_well_game.well_indices
        samples = hitting_time_samples(
            two_well_game,
            beta=30.0,
            start=(0, 0, 0, 0),
            target_index=all1,
            num_samples=3,
            max_steps=20,
            rng=np.random.default_rng(5),
        )
        assert np.all(samples == -1)


class TestOccupation:
    def test_fraction_of_time_in_dominant_profile(self):
        game = AnonymousDominantGame(3, 2)
        frac = fraction_of_time_in(
            game,
            beta=4.0,
            states=[game.space.encode((0, 0, 0))],
            num_steps=20_000,
            rng=np.random.default_rng(6),
        )
        pi = gibbs_measure(game.potential_vector(), 4.0)
        expected = pi[game.space.encode((0, 0, 0))]
        assert frac == pytest.approx(expected, abs=0.05)

    def test_fraction_sums_to_one_over_partition(self, ring5_ising_game):
        states_a = list(range(16))
        states_b = list(range(16, 32))
        kwargs = dict(beta=0.3, num_steps=5000, rng=np.random.default_rng(7))
        frac_a = fraction_of_time_in(ring5_ising_game, states=states_a, **kwargs)
        kwargs = dict(beta=0.3, num_steps=5000, rng=np.random.default_rng(7))
        frac_b = fraction_of_time_in(ring5_ising_game, states=states_b, **kwargs)
        assert frac_a + frac_b == pytest.approx(1.0)
