"""Integration tests: every theorem's bound checked against exact measurements.

These are small-instance versions of the benchmark harness: for each of the
paper's results we build the relevant game, measure the exact mixing or
relaxation time of the logit chain, and assert that the paper's bound holds
(upper bounds dominate the measurement, lower bounds are dominated by it).
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    LogitDynamics,
    lemma32_relaxation_upper,
    lemma33_relaxation_upper,
    lemma37_relaxation_upper,
    measure_mixing_time,
    measure_relaxation_time,
    measure_spectral_summary,
    theorem34_mixing_upper,
    theorem36_beta_threshold,
    theorem36_mixing_upper,
    theorem38_mixing_upper,
    theorem42_mixing_upper,
    theorem51_mixing_upper,
    theorem56_ring_mixing_upper,
    theorem57_ring_mixing_lower,
)
from repro.games import (
    AnonymousDominantGame,
    CoordinationParams,
    GraphicalCoordinationGame,
    Theorem35Game,
    TwoWellGame,
    random_dominant_game,
    random_game,
)
from repro.games.potential import ExplicitPotentialGame, potential_from_game
from repro.graphs.cutwidth import cutwidth_exact
from repro.markov.bottleneck import mixing_time_lower_bound


class TestTheorem31Spectrum:
    """Theorem 3.1: the logit chain of a potential game has no negative eigenvalues."""

    @pytest.mark.parametrize("beta", [0.0, 0.5, 2.0, 10.0])
    def test_random_potential_games(self, beta):
        rng = np.random.default_rng(int(beta * 10) + 1)
        phi = rng.normal(size=16)
        game = ExplicitPotentialGame.from_potential((2, 2, 2, 2), phi)
        summary = measure_spectral_summary(game, beta)
        assert summary.lambda_min >= -1e-9
        assert summary.relaxation_time == pytest.approx(
            1.0 / (1.0 - summary.lambda_2), rel=1e-9
        )

    def test_nonpotential_game_may_fail_hypothesis(self):
        """Sanity: the statement is specific to potential games — a generic
        game's logit chain need not even be reversible, so we only check that
        the potential-game guarantee is not vacuous (chain differs)."""
        game = random_game((2, 2, 2), rng=np.random.default_rng(9))
        assert potential_from_game(game) is None


class TestLemma32BetaZero:
    @pytest.mark.parametrize("shape", [(2, 2, 2), (3, 2), (2, 3, 2)])
    def test_relaxation_at_most_n(self, shape):
        game = random_game(shape, rng=np.random.default_rng(sum(shape)))
        # at beta = 0 the chain does not depend on utilities at all
        t_rel = measure_relaxation_time(game, beta=0.0)
        assert t_rel <= lemma32_relaxation_upper(len(shape)) + 1e-9


class TestTheorem34PotentialUpper:
    @pytest.mark.parametrize("beta", [0.0, 0.5, 1.0, 2.0])
    def test_two_well_respects_bound(self, beta):
        game = TwoWellGame(num_players=4, barrier=1.0)
        measured = measure_mixing_time(game, beta).mixing_time
        bound = theorem34_mixing_upper(4, 2, beta, game.max_global_variation())
        assert measured <= bound

    @pytest.mark.parametrize("beta", [0.5, 1.5])
    def test_lemma33_relaxation_bound(self, beta):
        game = TwoWellGame(num_players=4, barrier=1.0)
        t_rel = measure_relaxation_time(game, beta)
        assert t_rel <= lemma33_relaxation_upper(4, 2, beta, game.max_global_variation())

    def test_clique_coordination_respects_bound(self):
        game = GraphicalCoordinationGame(
            nx.complete_graph(4), CoordinationParams.from_deltas(1.0, 0.5)
        )
        beta = 1.0
        measured = measure_mixing_time(game, beta).mixing_time
        bound = theorem34_mixing_upper(4, 2, beta, game.max_global_variation())
        assert measured <= bound


class TestTheorem35LowerBound:
    def test_bottleneck_lower_bound_below_measured(self):
        game = Theorem35Game(num_players=6, global_variation=2.0, local_variation=1.0)
        beta = 2.0
        chain = LogitDynamics(game, beta).markov_chain()
        R = game.bottleneck_set()
        lower = mixing_time_lower_bound(chain, R, epsilon=0.25)
        measured = measure_mixing_time(game, beta).mixing_time
        assert lower <= measured

    def test_mixing_grows_with_beta(self):
        game = Theorem35Game(num_players=6, global_variation=2.0, local_variation=1.0)
        t1 = measure_mixing_time(game, 1.0).mixing_time
        t2 = measure_mixing_time(game, 2.5).mixing_time
        assert t2 > t1


class TestTheorem36SmallBeta:
    def test_nlogn_mixing_below_threshold(self):
        game = GraphicalCoordinationGame(
            nx.cycle_graph(6), CoordinationParams.ising(1.0)
        )
        delta_local = game.max_local_variation()
        beta = theorem36_beta_threshold(6, delta_local, c=0.5)
        measured = measure_mixing_time(game, beta).mixing_time
        assert measured <= theorem36_mixing_upper(6, c=0.5)

    def test_bound_also_holds_at_beta_zero(self):
        game = TwoWellGame(num_players=5, barrier=1.0)
        measured = measure_mixing_time(game, 0.0).mixing_time
        assert measured <= theorem36_mixing_upper(5, c=0.5)


class TestTheorem38And39Zeta:
    @pytest.mark.parametrize("beta", [0.5, 1.0, 2.0])
    def test_upper_bound_with_zeta(self, beta):
        game = TwoWellGame(num_players=4, barrier=1.5, depth_ratio=0.5)
        zeta = game.zeta()
        measured = measure_mixing_time(game, beta).mixing_time
        bound = theorem38_mixing_upper(4, 2, beta, zeta, game.max_global_variation())
        assert measured <= bound

    def test_lemma37_relaxation_bound(self):
        game = TwoWellGame(num_players=4, barrier=1.5, depth_ratio=0.5)
        beta = 1.0
        t_rel = measure_relaxation_time(game, beta)
        assert t_rel <= lemma37_relaxation_upper(4, 2, beta, game.zeta())

    def test_growth_rate_tracks_zeta_not_delta_phi(self):
        """For an asymmetric two-well game with zeta < DeltaPhi, the mixing
        time's exponential growth rate in beta stays near zeta."""
        from repro.analysis import exponential_growth_rate

        game = TwoWellGame(num_players=4, barrier=2.0, depth_ratio=0.5)
        zeta = game.zeta()  # = 1.0
        delta_phi = game.max_global_variation()  # = 2.0
        betas = np.array([2.0, 2.5, 3.0, 3.5])
        times = np.array(
            [measure_mixing_time(game, float(b)).mixing_time for b in betas], dtype=float
        )
        rate = exponential_growth_rate(betas, times)
        assert abs(rate - zeta) < abs(rate - delta_phi)


class TestTheorem42DominantStrategies:
    @pytest.mark.parametrize("beta", [0.0, 1.0, 5.0, 50.0])
    def test_bound_independent_of_beta(self, beta):
        game = AnonymousDominantGame(3, 2)
        measured = measure_mixing_time(game, beta).mixing_time
        assert measured <= theorem42_mixing_upper(3, 2)

    def test_mixing_time_saturates_in_beta(self):
        """Unlike potential barriers, a dominant profile caps the mixing time:
        it stops growing once beta is large."""
        game = AnonymousDominantGame(3, 2)
        t_moderate = measure_mixing_time(game, 5.0).mixing_time
        t_huge = measure_mixing_time(game, 100.0).mixing_time
        assert t_huge <= 2 * t_moderate

    def test_random_dominant_games_respect_bound(self):
        for seed in range(3):
            game = random_dominant_game((2, 2, 2), rng=np.random.default_rng(seed))
            measured = measure_mixing_time(game, 10.0).mixing_time
            assert measured <= theorem42_mixing_upper(3, 2)


class TestTheorem43DominantLower:
    @pytest.mark.parametrize("n,m", [(3, 2), (2, 3)])
    def test_lower_bound_holds_for_large_beta(self, n, m):
        game = AnonymousDominantGame(n, m)
        beta = 3.0 * np.log(m**n)  # comfortably above log(m^n - 1)
        measured = measure_mixing_time(game, beta).mixing_time
        assert measured >= game.mixing_time_lower_bound()

    def test_bottleneck_certificate(self):
        game = AnonymousDominantGame(3, 2)
        beta = 10.0
        chain = LogitDynamics(game, beta).markov_chain()
        zero = game.space.encode((0, 0, 0))
        R = [x for x in range(game.space.size) if x != zero]
        lower = mixing_time_lower_bound(chain, R, epsilon=0.25)
        measured = measure_mixing_time(game, beta).mixing_time
        assert lower <= measured


class TestTheorem51Cutwidth:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: nx.path_graph(4),
            lambda: nx.cycle_graph(4),
            lambda: nx.star_graph(3),
            lambda: nx.complete_graph(4),
        ],
    )
    def test_bound_holds_on_standard_topologies(self, graph_builder):
        graph = graph_builder()
        params = CoordinationParams.from_deltas(1.0, 0.5)
        game = GraphicalCoordinationGame(graph, params)
        beta = 0.8
        measured = measure_mixing_time(game, beta).mixing_time
        chi = cutwidth_exact(graph)
        bound = theorem51_mixing_upper(
            game.num_players, beta, params.delta0, params.delta1, chi
        )
        assert measured <= bound


class TestTheorems56And57Ring:
    @pytest.mark.parametrize("beta", [0.0, 0.5, 1.0])
    def test_ring_sandwich(self, beta):
        n, delta = 6, 1.0
        game = GraphicalCoordinationGame(nx.cycle_graph(n), CoordinationParams.ising(delta))
        measured = measure_mixing_time(game, beta).mixing_time
        upper = theorem56_ring_mixing_upper(n, beta, delta)
        lower = theorem57_ring_mixing_lower(beta, delta)
        assert measured <= upper
        assert measured >= lower * 0.99  # allow tiny rounding at beta = 0

    def test_ring_bottleneck_set_certificate(self):
        n, delta, beta = 5, 1.0, 1.5
        game = GraphicalCoordinationGame(nx.cycle_graph(n), CoordinationParams.ising(delta))
        chain = LogitDynamics(game, beta).markov_chain()
        all1 = game.space.encode((1,) * n)
        lower = mixing_time_lower_bound(chain, [all1], epsilon=0.25)
        measured = measure_mixing_time(game, beta).mixing_time
        assert lower <= measured
        # the paper's closed form for B({1}) gives the same order
        assert lower == pytest.approx(
            0.5 * (1 - 0.5) * (1 + np.exp(2 * delta * beta)) / 1.0, rel=0.35
        )
