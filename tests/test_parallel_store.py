"""Experiment store: content addressing, round-trips, resume semantics.

Pins the contracts the sweeps' ``store=`` knob relies on: keys are stable
across runs and insensitive to spec-dict representation, records survive a
JSON/NPZ round-trip exactly, corrupted or partial records read as misses
(recompute, never crash), cache hits skip *all* ensemble work, and an
interrupted sweep resumes from its last completed cell.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass

import networkx as nx
import numpy as np
import pytest

import repro.core.metastability as metastability
from repro.analysis.sweep import dynamics_family_sweep, hitting_time_size_sweep
from repro.core.logit import LogitDynamics
from repro.games import IsingGame
from repro.parallel import ExperimentStore, as_store, canonical_key, describe
from repro.stats import StreamingEstimate


def make_ring_game(n: int) -> IsingGame:
    return IsingGame(nx.cycle_graph(int(n)), coupling=1.0)


def zeros_start(game) -> np.ndarray:
    return np.zeros(game.num_players, dtype=np.int64)


@dataclass
class MagnetizationAtLeast:
    game: IsingGame
    threshold: float

    def __call__(self, profiles):
        return self.game.magnetization_of_profiles(profiles) >= self.threshold


def mag_target(game) -> MagnetizationAtLeast:
    return MagnetizationAtLeast(game, 0.5)


SWEEP_KWARGS = dict(
    sizes=[5, 6],
    beta=0.7,
    start_factory=zeros_start,
    target_factory=mag_target,
    precision=0.25,
    seed=42,
    max_steps=200,
    chunk_size=16,
    max_replicas=64,
)


# ---------------------------------------------------------------------------
# content addressing
# ---------------------------------------------------------------------------


def test_canonical_key_is_stable_across_runs():
    # hard-coded digest: a changed canonicalisation would silently orphan
    # every existing store, so it must fail loudly here instead
    spec = {"sweep": "demo", "n": 8, "beta": 0.5, "seed": 7}
    assert canonical_key(spec) == (
        "08eff6cb956c19e7a9d7c48c77abbbb48fdd41b93048a79197e608cb3b03a6b0"
    )


def test_canonical_key_ignores_representation_details():
    seed_a = np.random.SeedSequence(3).spawn(2)[1]
    seed_b = np.random.SeedSequence(3).spawn(2)[1]
    spec_a = {"b": np.float64(1.5), "a": 3, "arr": np.arange(4), "seed": seed_a}
    spec_b = {"a": np.int64(3), "arr": np.arange(4), "b": 1.5, "seed": seed_b}
    assert canonical_key(spec_a) == canonical_key(spec_b)
    # different content, different key
    spec_c = dict(spec_b, a=4)
    assert canonical_key(spec_c) != canonical_key(spec_b)


def test_describe_rejects_lambdas_but_accepts_named_callables():
    assert describe(make_ring_game)["__callable__"].endswith("make_ring_game")
    partial = functools.partial(make_ring_game, 6)
    assert "__partial__" in describe(partial)
    with pytest.raises(ValueError, match="store_tag"):
        describe(lambda n: n)


def test_describe_normalises_special_floats_and_arrays():
    assert describe(float("nan")) == {"__float__": "nan"}
    assert describe(float("inf")) == {"__float__": "inf"}
    described = describe(np.arange(3, dtype=np.int16))
    assert described == {"__ndarray__": [0, 1, 2], "dtype": "int16"}
    # large arrays are content-digested, not inlined — and the digest is
    # still a content address
    big_a, big_b = np.arange(1000.0), np.arange(1000.0)
    big_c = np.arange(1000.0) + 1e-9
    assert "__ndarray_digest__" in describe(big_a)
    assert describe(big_a) == describe(big_b)
    assert describe(big_a) != describe(big_c)


def test_games_are_identified_by_content_not_repr():
    """Same sizes, different game -> different key (reprs are cosmetic)."""
    ring = make_ring_game(8)
    stronger = IsingGame(nx.cycle_graph(8), coupling=2.0)
    other_graph = IsingGame(nx.path_graph(9), coupling=1.0)  # also 8 edges
    assert repr(ring) == repr(stronger)  # the trap: reprs under-identify
    keys = {canonical_key(describe(g)) for g in (ring, stronger, other_graph)}
    assert len(keys) == 3
    assert canonical_key(describe(ring)) == canonical_key(describe(make_ring_game(8)))


def test_tabulated_games_are_identified_by_utilities():
    from repro.games import TableGame

    a = TableGame((2, 2), np.ones((2, 4)))
    b = TableGame((2, 2), 2.0 * np.ones((2, 4)))
    assert canonical_key(describe(a)) != canonical_key(describe(b))
    assert canonical_key(describe(a)) == canonical_key(
        describe(TableGame((2, 2), np.ones((2, 4))))
    )


# ---------------------------------------------------------------------------
# record round-trips and corruption fallback
# ---------------------------------------------------------------------------


def test_round_trip_preserves_streaming_estimates_and_arrays(tmp_path):
    store = ExperimentStore(tmp_path)
    estimate = StreamingEstimate(
        estimate=1.5,
        lower=1.0,
        upper=2.0,
        n=32,
        stopped_early=True,
        alpha=0.05,
        target_width=0.5,
        samples=np.linspace(0.0, 3.0, 32),
    )
    result = {
        "estimate": estimate,
        "curve": np.arange(6, dtype=float).reshape(3, 2),
        "nan": float("nan"),
        "neg_inf": float("-inf"),
        "flags": [True, None, "text", 7],
    }
    spec = {"cell": 1}
    store.put(spec, result)
    loaded = store.get(spec)
    np.testing.assert_array_equal(loaded["estimate"].samples, estimate.samples)
    assert loaded["estimate"].estimate == estimate.estimate
    assert loaded["estimate"].stopped_early is True
    np.testing.assert_array_equal(loaded["curve"], result["curve"])
    assert np.isnan(loaded["nan"])
    assert loaded["neg_inf"] == float("-inf")
    assert loaded["flags"] == [True, None, "text", 7]


def test_get_or_compute_hits_skip_computation(tmp_path):
    store = ExperimentStore(tmp_path)
    calls = {"n": 0}

    def compute():
        calls["n"] += 1
        return {"value": 3.5}

    first, cached_first = store.get_or_compute({"k": 1}, compute)
    second, cached_second = store.get_or_compute({"k": 1}, compute)
    assert calls["n"] == 1
    assert (cached_first, cached_second) == (False, True)
    assert first == second == {"value": 3.5}


def test_corrupted_manifest_reads_as_miss(tmp_path):
    store = ExperimentStore(tmp_path)
    spec = {"cell": "corrupt-me"}
    key = store.put(spec, {"value": 1.0})
    (tmp_path / f"{key}.json").write_text("{ truncated mid-write")
    assert store.get(spec) is None
    # recompute path: put overwrites the broken record
    store.put(spec, {"value": 2.0})
    assert store.get(spec) == {"value": 2.0}


def test_missing_or_garbled_npz_payload_reads_as_miss(tmp_path):
    store = ExperimentStore(tmp_path)
    spec = {"cell": "payload"}
    key = store.put(spec, {"arr": np.arange(4)})
    (tmp_path / f"{key}.npz").unlink()
    assert store.get(spec) is None
    store.put(spec, {"arr": np.arange(4)})
    (tmp_path / f"{key}.npz").write_bytes(b"not a zip archive")
    assert store.get(spec) is None


def test_format_version_mismatch_reads_as_miss(tmp_path):
    store = ExperimentStore(tmp_path)
    spec = {"cell": "versioned"}
    key = store.put(spec, {"value": 1.0})
    manifest = json.loads((tmp_path / f"{key}.json").read_text())
    manifest["format_version"] = 999
    (tmp_path / f"{key}.json").write_text(json.dumps(manifest))
    assert store.get(spec) is None


def test_as_store_accepts_paths(tmp_path):
    store = as_store(tmp_path / "cells")
    assert isinstance(store, ExperimentStore)
    assert as_store(store) is store
    assert as_store(None) is None
    with pytest.raises(ValueError):
        as_store(42)


# ---------------------------------------------------------------------------
# sweep integration: zero ensemble steps on re-run, resume after kill
# ---------------------------------------------------------------------------


def test_completed_sweep_reruns_with_zero_ensemble_steps(tmp_path, monkeypatch):
    store = ExperimentStore(tmp_path)
    first = hitting_time_size_sweep(make_ring_game, store=store, **SWEEP_KWARGS)

    calls = {"estimator": 0, "factory": 0}
    real_estimator = metastability.empirical_hitting_times

    def counting_estimator(*args, **kwargs):
        calls["estimator"] += 1
        return real_estimator(*args, **kwargs)

    def counting_factory(n):
        calls["factory"] += 1
        return make_ring_game(n)

    counting_factory.__qualname__ = make_ring_game.__qualname__
    counting_factory.__module__ = make_ring_game.__module__
    monkeypatch.setattr(metastability, "empirical_hitting_times", counting_estimator)

    second = hitting_time_size_sweep(counting_factory, store=store, **SWEEP_KWARGS)
    assert calls == {"estimator": 0, "factory": 0}, (
        "a fully cached sweep must run zero ensemble steps and build no games"
    )
    for a, b in zip(first.records, second.records):
        assert a.parameter == b.parameter
        assert a.extra["mean_hitting_time"] == b.extra["mean_hitting_time"]
        assert a.extra["hitting_lower"] == b.extra["hitting_lower"]
        assert a.extra["provenance"] == "computed"
        assert b.extra["provenance"] == "store"


def test_interrupted_sweep_resumes_from_last_completed_cell(tmp_path):
    store = ExperimentStore(tmp_path)
    kwargs = dict(SWEEP_KWARGS, sizes=[5, 6, 7])
    built: list[int] = []

    def failing_factory(n):
        if len(built) >= 2:
            raise KeyboardInterrupt("killed mid-grid")
        built.append(n)
        return make_ring_game(n)

    failing_factory.__qualname__ = make_ring_game.__qualname__
    failing_factory.__module__ = make_ring_game.__module__

    with pytest.raises(KeyboardInterrupt):
        hitting_time_size_sweep(failing_factory, store=store, **kwargs)
    assert built == [5, 6]  # two cells completed and were stored

    resumed: list[int] = []

    def resuming_factory(n):
        resumed.append(n)
        return make_ring_game(n)

    resuming_factory.__qualname__ = make_ring_game.__qualname__
    resuming_factory.__module__ = make_ring_game.__module__

    result = hitting_time_size_sweep(resuming_factory, store=store, **kwargs)
    assert resumed == [7], "only the interrupted cell should be recomputed"
    assert [r.extra["provenance"] for r in result.records] == [
        "store",
        "store",
        "computed",
    ]


def test_store_requires_seed_and_adaptive_mode():
    game_factory = make_ring_game
    with pytest.raises(ValueError, match="seed"):
        hitting_time_size_sweep(
            game_factory,
            sizes=[5],
            beta=0.5,
            start_factory=zeros_start,
            target_factory=mag_target,
            precision=0.25,
            store="unused-path",
        )
    with pytest.raises(ValueError, match="precision"):
        hitting_time_size_sweep(
            game_factory,
            sizes=[5],
            beta=0.5,
            start_factory=zeros_start,
            target_factory=mag_target,
            seed=1,
            store="unused-path",
        )


def test_store_tag_is_the_lambda_escape_hatch(tmp_path):
    with pytest.raises(ValueError, match="store_tag"):
        hitting_time_size_sweep(
            lambda n: make_ring_game(n),
            store=ExperimentStore(tmp_path),
            **SWEEP_KWARGS,
        )
    result = hitting_time_size_sweep(
        lambda n: make_ring_game(n),
        store=ExperimentStore(tmp_path),
        store_tag="ring-ising-mag0.5",
        **SWEEP_KWARGS,
    )
    assert all(r.extra["provenance"] == "computed" for r in result.records)


def test_serial_and_sharded_cells_do_not_share_a_cache_key(tmp_path):
    """The randomness contract is part of the spec: a serial-rng run and a
    sharded per-replica-stream run draw different samples from the same
    seed, so one must never be served from the other's cached cell (the
    shard *count*, by contrast, never changes results and never splits
    the cache)."""
    from repro.analysis.sweep import ensemble_beta_sweep
    from repro.parallel import ShardedExecutor

    game = make_ring_game(6)
    store = ExperimentStore(tmp_path)
    common = dict(betas=[0.3], num_replicas=64, max_time=200, seed=1, store=store)
    serial = ensemble_beta_sweep(game, **common)
    sharded = ensemble_beta_sweep(game, executor=ShardedExecutor(2), **common)
    assert serial.records[0].extra["provenance"] == "computed"
    assert sharded.records[0].extra["provenance"] == "computed"
    resharded = ensemble_beta_sweep(game, executor=ShardedExecutor(5), **common)
    assert resharded.records[0].extra["provenance"] == "store"
    assert resharded.records[0].mixing_time == sharded.records[0].mixing_time


def test_sweep_executor_requires_seed():
    from repro.analysis.sweep import dynamics_family_sweep, ensemble_beta_sweep
    from repro.core.logit import LogitDynamics

    game = make_ring_game(5)
    with pytest.raises(ValueError, match="seed="):
        ensemble_beta_sweep(game, [0.3], num_replicas=8, max_time=20, executor="serial")
    with pytest.raises(ValueError, match="seed="):
        dynamics_family_sweep(
            game,
            {"seq": lambda g: LogitDynamics(g, 0.5)},
            reference=LogitDynamics(game, 0.5).stationary_distribution(),
            num_replicas=8,
            max_time=20,
            executor="serial",
        )


def test_store_tag_reuse_across_games_cannot_collide_caches(tmp_path):
    """store_tag labels the cell; the game identifies itself by content."""
    from repro.analysis.sweep import ensemble_beta_sweep

    store = ExperimentStore(tmp_path)
    common = dict(
        betas=[0.3], num_replicas=32, max_time=100, seed=2,
        store=store, store_tag="same-tag-for-both",
    )
    first = ensemble_beta_sweep(make_ring_game(6), **common)
    second = ensemble_beta_sweep(
        IsingGame(nx.cycle_graph(6), coupling=2.0), **common
    )
    assert first.records[0].extra["provenance"] == "computed"
    assert second.records[0].extra["provenance"] == "computed", (
        "a reused tag must not serve one game's cells to another game"
    )


def test_family_sweep_cache_is_keyed_by_name_not_position(tmp_path):
    game = IsingGame(nx.cycle_graph(5), coupling=1.0)
    families = {
        "beta-0.4": lambda g: LogitDynamics(g, 0.4),
        "beta-0.8": lambda g: LogitDynamics(g, 0.8),
    }
    store = ExperimentStore(tmp_path)
    common = dict(num_replicas=64, max_time=300, seed=6, store=store, store_tag="ring5")
    first = dynamics_family_sweep(game, families, **common)
    reordered = dynamics_family_sweep(
        game, dict(reversed(list(families.items()))), **common
    )
    assert all(r.extra["provenance"] == "store" for r in reordered.records)
    by_name_first = {r.extra["dynamics"]: r for r in first.records}
    for record in reordered.records:
        original = by_name_first[record.extra["dynamics"]]
        assert record.mixing_time == original.mixing_time
        assert record.extra["mean_welfare"] == original.extra["mean_welfare"]
    # parameter reflects the *current* sweep order, not the cached one
    assert [r.parameter for r in reordered.records] == [0.0, 1.0]
