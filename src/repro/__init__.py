"""repro — Logit dynamics for strategic games, reproduced.

A production-quality reproduction of *"Convergence to Equilibrium of Logit
Dynamics for Strategic Games"* (Auletta, Ferraioli, Pasquale, Penna,
Persiano — SPAA 2011 / arXiv:1212.1884).  The package provides:

* :mod:`repro.games` — strategic games, potential games, the paper's
  coordination / dominant-strategy / lower-bound constructions, congestion
  games and the Ising model;
* :mod:`repro.markov` — a generic finite-Markov-chain toolkit (stationary
  distributions, exact mixing time, spectral gaps, couplings, canonical
  paths, bottleneck ratios);
* :mod:`repro.graphs` — social-network topologies and cutwidth computation;
* :mod:`repro.core` — the logit dynamics itself, the Gibbs stationary
  measure, mixing-time measurement drivers, and every theorem-level bound
  of the paper as an explicit callable;
* :mod:`repro.engine` — the batched, matrix-free simulation engine:
  replica ensembles and coupled-pair ensembles advanced as flat numpy
  arrays, which is what all Monte-Carlo entry points run on;
* :mod:`repro.analysis` — parameter sweeps and experiment report tables;
* :mod:`repro.stats` — anytime-valid streaming statistics: confidence
  sequences that survive peeking after every replica chunk, Welford
  accumulators, and the chunked adaptive-stopping driver behind every
  ``precision=`` / ``alpha=`` knob in the Monte-Carlo estimators;
* :mod:`repro.parallel` — sharded multi-process execution
  (:class:`~repro.parallel.ShardedExecutor`, bit-for-bit invariant to the
  shard count) and the resumable content-addressed experiment store
  (:class:`~repro.parallel.ExperimentStore`) behind the estimators' and
  sweeps' ``executor=`` / ``store=`` knobs;
* :mod:`repro.obs` — structured run telemetry behind the same entry
  points' ``tracer=`` knob: counters, timers and JSONL trace events
  across engine, sample driver, shards and store, a no-op default with
  zero hot-path cost, and the ``tools/trace_summary.py`` renderer.

Quickstart::

    import networkx as nx
    from repro import CoordinationParams, GraphicalCoordinationGame, LogitDynamics
    from repro import measure_mixing_time, theorem56_ring_mixing_upper

    game = GraphicalCoordinationGame(nx.cycle_graph(6), CoordinationParams.ising(1.0))
    result = measure_mixing_time(game, beta=1.0)
    bound = theorem56_ring_mixing_upper(num_players=6, beta=1.0, delta=1.0)
    assert result.mixing_time <= bound
"""

from .analysis import (
    SweepRecord,
    SweepResult,
    beta_sweep,
    dynamics_family_sweep,
    ensemble_beta_sweep,
    estimate_stationary_welfare,
    exponential_growth_rate,
    format_interval,
    hitting_time_size_sweep,
    provenance_summary,
    render_experiment,
    render_scenario_matrix,
    render_table,
    scenario_matrix,
    scenario_matrix_payload,
    size_sweep,
    stationary_expected_welfare,
    welfare_of_profiles,
)
from .core import (
    AnnealedLogitDynamics,
    BestResponseDynamics,
    ConcurrentLogitDynamics,
    EnsembleMixingEstimate,
    LogitDynamics,
    ParallelLogitDynamics,
    RoundRobinLogitDynamics,
    MixingMeasurement,
    StructuralQuantities,
    clique_potential_barrier,
    empirical_escape_times,
    empirical_hitting_times,
    estimate_mixing_time_coupling,
    estimate_mixing_time_ensemble,
    estimate_tv_convergence,
    gibbs_measure,
    lemma32_relaxation_upper,
    lemma33_relaxation_upper,
    lemma37_relaxation_upper,
    lemma1207_doubled_potential,
    lemma1207_update_rate_lower,
    lemma1311_social_cost_sandwich,
    logit_update_distribution,
    measure_mixing_time,
    measure_mixing_with_bounds,
    measure_relaxation_time,
    measure_spectral_summary,
    mixing_time_vs_beta,
    relaxation_time_vs_beta,
    structural_quantities,
    theorem34_mixing_upper,
    theorem35_mixing_lower,
    theorem36_beta_threshold,
    theorem36_mixing_upper,
    theorem38_mixing_upper,
    theorem39_mixing_lower,
    theorem42_mixing_upper,
    theorem43_mixing_lower,
    theorem51_mixing_upper,
    theorem55_clique_bounds,
    theorem56_ring_mixing_upper,
    theorem57_ring_mixing_lower,
    theorem1207_beta_threshold,
    theorem1207_mixing_lower,
    theorem1207_mixing_upper,
    theorem1207_stationary_product,
    theorem1311_mixing_upper,
    theorem1311_stability_upper,
    theorem1311_stationary_cost_upper,
)
from .games import (
    AnonymousDominantGame,
    CoordinationParams,
    ExplicitPotentialGame,
    FiniteOpinionGame,
    Game,
    GraphicalCoordinationGame,
    IsingGame,
    LocalInteractionGame,
    NormalFormGame,
    PotentialGame,
    ProfileSpace,
    SingletonCongestionGame,
    TableGame,
    Theorem35Game,
    TwoPlayerCoordinationGame,
    TwoWellGame,
    random_dominant_game,
    random_game,
)
from .engine import (
    AnnealedKernel,
    ArrayBackend,
    EnsembleSimulator,
    NumbaBackend,
    NumpyBackend,
    ParallelKernel,
    RoundRobinKernel,
    SeededSequentialKernel,
    SequentialKernel,
    UpdateKernel,
    maximal_coupling_update_many,
    numba_available,
    resolve_backend,
    simulate_grand_coupling_ensemble,
    strategy_dtype,
)
from .graphs import (
    clique_graph,
    cutwidth_exact,
    cutwidth_greedy,
    cutwidth_known,
    cutwidth_of_ordering,
    ring_graph,
)
from .obs import (
    JsonlTraceSink,
    NullTracer,
    RunManifest,
    Tracer,
    as_tracer,
    read_trace,
)
from .parallel import (
    ExperimentStore,
    ShardedExecutor,
    canonical_key,
)
from .markov import (
    MarkovChain,
    bottleneck_ratio,
    mixing_time,
    mixing_time_lower_bound,
    relaxation_time,
    spectral_summary,
    total_variation,
)
from .stats import (
    EmpiricalBernsteinCS,
    HedgedBettingCS,
    NormalMixtureCS,
    QuantileCS,
    QuantileEstimate,
    SampleDriver,
    StreamingEstimate,
    StreamingMoments,
    fixed_n_clt_interval,
    run_until_width,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "SweepRecord",
    "SweepResult",
    "beta_sweep",
    "dynamics_family_sweep",
    "ensemble_beta_sweep",
    "estimate_stationary_welfare",
    "exponential_growth_rate",
    "format_interval",
    "hitting_time_size_sweep",
    "provenance_summary",
    "render_experiment",
    "render_scenario_matrix",
    "render_table",
    "scenario_matrix",
    "scenario_matrix_payload",
    "size_sweep",
    "stationary_expected_welfare",
    "welfare_of_profiles",
    # core
    "AnnealedLogitDynamics",
    "BestResponseDynamics",
    "ConcurrentLogitDynamics",
    "EnsembleMixingEstimate",
    "LogitDynamics",
    "ParallelLogitDynamics",
    "RoundRobinLogitDynamics",
    "MixingMeasurement",
    "StructuralQuantities",
    "clique_potential_barrier",
    "empirical_escape_times",
    "empirical_hitting_times",
    "estimate_mixing_time_coupling",
    "estimate_mixing_time_ensemble",
    "estimate_tv_convergence",
    "gibbs_measure",
    "lemma32_relaxation_upper",
    "lemma33_relaxation_upper",
    "lemma37_relaxation_upper",
    "lemma1207_doubled_potential",
    "lemma1207_update_rate_lower",
    "lemma1311_social_cost_sandwich",
    "logit_update_distribution",
    "measure_mixing_time",
    "measure_mixing_with_bounds",
    "measure_relaxation_time",
    "measure_spectral_summary",
    "mixing_time_vs_beta",
    "relaxation_time_vs_beta",
    "structural_quantities",
    "theorem34_mixing_upper",
    "theorem35_mixing_lower",
    "theorem36_beta_threshold",
    "theorem36_mixing_upper",
    "theorem38_mixing_upper",
    "theorem39_mixing_lower",
    "theorem42_mixing_upper",
    "theorem43_mixing_lower",
    "theorem51_mixing_upper",
    "theorem55_clique_bounds",
    "theorem56_ring_mixing_upper",
    "theorem57_ring_mixing_lower",
    "theorem1207_beta_threshold",
    "theorem1207_mixing_lower",
    "theorem1207_mixing_upper",
    "theorem1207_stationary_product",
    "theorem1311_mixing_upper",
    "theorem1311_stability_upper",
    "theorem1311_stationary_cost_upper",
    # games
    "AnonymousDominantGame",
    "CoordinationParams",
    "ExplicitPotentialGame",
    "FiniteOpinionGame",
    "Game",
    "GraphicalCoordinationGame",
    "IsingGame",
    "LocalInteractionGame",
    "NormalFormGame",
    "PotentialGame",
    "ProfileSpace",
    "SingletonCongestionGame",
    "TableGame",
    "Theorem35Game",
    "TwoPlayerCoordinationGame",
    "TwoWellGame",
    "random_dominant_game",
    "random_game",
    # engine
    "AnnealedKernel",
    "ArrayBackend",
    "EnsembleSimulator",
    "NumbaBackend",
    "NumpyBackend",
    "ParallelKernel",
    "RoundRobinKernel",
    "SeededSequentialKernel",
    "SequentialKernel",
    "UpdateKernel",
    "maximal_coupling_update_many",
    "numba_available",
    "resolve_backend",
    "simulate_grand_coupling_ensemble",
    "strategy_dtype",
    # graphs
    "clique_graph",
    "cutwidth_exact",
    "cutwidth_greedy",
    "cutwidth_known",
    "cutwidth_of_ordering",
    "ring_graph",
    # obs
    "JsonlTraceSink",
    "NullTracer",
    "RunManifest",
    "Tracer",
    "as_tracer",
    "read_trace",
    # parallel
    "ExperimentStore",
    "ShardedExecutor",
    "canonical_key",
    # markov
    "MarkovChain",
    "bottleneck_ratio",
    "mixing_time",
    "mixing_time_lower_bound",
    "relaxation_time",
    "spectral_summary",
    "total_variation",
    # stats
    "EmpiricalBernsteinCS",
    "HedgedBettingCS",
    "NormalMixtureCS",
    "QuantileCS",
    "QuantileEstimate",
    "SampleDriver",
    "StreamingEstimate",
    "StreamingMoments",
    "fixed_n_clt_interval",
    "run_until_width",
]
