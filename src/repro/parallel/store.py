"""Resumable, content-addressed experiment store.

Every sweep cell in the package is (by construction of the seeded
estimators) a pure function of its *spec* — game, dynamics, estimator
parameters and master seed.  :class:`ExperimentStore` caches cell results
on disk under a canonical hash of that spec, which buys two things:

* **skip-on-re-run** — re-running a sweep whose cells are all stored
  performs zero ensemble steps (the sweeps check the store before building
  the game or touching the engine);
* **resume-after-kill** — each cell is written the moment it completes
  (atomically: payload first, manifest last), so a sweep killed mid-grid
  resumes from its last completed cell on the next run.

Record layout: ``<key>.json`` holds the spec and the JSON-encoded result;
array payloads (samples, curves) live in a ``<key>.npz`` sidecar that the
manifest references by name — the "JSON/NPZ" record format.  A corrupted
or partially written record (truncated JSON, missing/unreadable NPZ,
wrong format version) is treated as a *miss*, never an error: the cell is
recomputed and the record rewritten.

Keys are content addresses: :func:`canonical_key` serialises the spec to
canonical JSON (sorted keys, normalised scalars, ndarray/SeedSequence/
callable descriptors from :func:`describe`) and hashes it with SHA-256,
so the same experiment hashes identically across processes, Python
versions and ``PYTHONHASHSEED`` values.  Callables are described by their
``module.qualname`` — lambdas and local closures have no stable name and
are rejected with a pointer to the sweeps' ``store_tag=`` escape hatch.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Callable

import numpy as np

from ..obs import as_tracer
from ..stats.accumulators import StreamingEstimate

__all__ = [
    "ExperimentStore",
    "as_store",
    "canonical_json",
    "canonical_key",
    "describe",
]

#: Bump when the record encoding changes; mismatching records read as misses.
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Canonical spec description and hashing
# ---------------------------------------------------------------------------


#: Arrays larger than this are described by a SHA-256 content digest
#: instead of inline values — same content addressing, bounded manifests.
ARRAY_DIGEST_THRESHOLD = 64


def describe(obj) -> object:
    """Canonical, JSON-able description of one spec component.

    Parameters
    ----------
    obj:
        A spec component: ``None``/bool/int/float/str pass through
        (NaN/inf to tagged strings); sequences and dicts recurse;
        ``numpy`` scalars and arrays, ``SeedSequence`` objects,
        ``functools.partial`` and named callables get tagged descriptor
        dicts; arrays beyond ``ARRAY_DIGEST_THRESHOLD`` elements are
        content-digested (dtype + shape + bytes) rather than inlined.
        Objects exposing ``store_spec()`` — the games do — are described
        by that spec, recursively; any other object falls back to its
        class name and ``repr``, which is a *weak* identity (reprs are
        cosmetic) — prefer ``store_spec()`` or the sweeps' ``store_tag=``.

    Returns
    -------
    object
        A composition of dicts/lists/scalars whose canonical JSON (and
        hence :func:`canonical_key`) is stable across runs.

    Raises
    ------
    ValueError
        For callables without a stable name (lambdas, locally defined
        functions): their description would change between runs, silently
        splitting the cache.  Pass a module-level function or use the
        sweeps' ``store_tag=`` override instead.
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        v = float(obj)
        if np.isnan(v):
            return {"__float__": "nan"}
        if np.isinf(v):
            return {"__float__": "inf" if v > 0 else "-inf"}
        return v
    if isinstance(obj, np.ndarray):
        if obj.size > ARRAY_DIGEST_THRESHOLD:
            payload = np.ascontiguousarray(obj)
            digest = hashlib.sha256()
            digest.update(str(payload.dtype).encode("utf-8"))
            digest.update(str(payload.shape).encode("utf-8"))
            digest.update(payload.tobytes())
            return {
                "__ndarray_digest__": digest.hexdigest(),
                "dtype": str(payload.dtype),
                "shape": list(payload.shape),
            }
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.random.SeedSequence):
        return {
            "__seedseq__": {
                "entropy": int(obj.entropy) if obj.entropy is not None else None,
                "spawn_key": [int(k) for k in obj.spawn_key],
            }
        }
    if isinstance(obj, dict):
        described = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ValueError(f"spec dict keys must be strings, got {key!r}")
            described[key] = describe(value)
        return described
    if isinstance(obj, (list, tuple)):
        return [describe(v) for v in obj]
    if isinstance(obj, functools.partial):
        return {
            "__partial__": describe(obj.func),
            "args": describe(list(obj.args)),
            "keywords": describe(dict(obj.keywords)),
        }
    store_spec = getattr(obj, "store_spec", None)
    if callable(store_spec):
        return {"__spec__": describe(store_spec())}
    if callable(obj):
        qualname = getattr(obj, "__qualname__", None) or getattr(obj, "__name__", None)
        module = getattr(obj, "__module__", None)
        if not qualname or not module or "<" in qualname:
            raise ValueError(
                f"cannot build a stable store key for {obj!r}: lambdas and "
                f"locally defined callables have no run-to-run-stable name; "
                f"pass a module-level function/class or set store_tag="
            )
        return {"__callable__": f"{module}.{qualname}"}
    return {"__object__": type(obj).__qualname__, "repr": repr(obj)}


def canonical_json(spec) -> str:
    """Canonical JSON of a spec: described, sorted keys, minimal separators."""
    return json.dumps(describe(spec), sort_keys=True, separators=(",", ":"))


def canonical_key(spec) -> str:
    """SHA-256 content address of a spec's canonical JSON (hex digest)."""
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Result encoding (JSON manifest + NPZ array sidecar)
# ---------------------------------------------------------------------------


def _encode(value, arrays: dict[str, np.ndarray]):
    """JSON-able encoding of a result; arrays are hoisted into ``arrays``."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        v = float(value)
        if np.isnan(v):
            return {"__float__": "nan"}
        if np.isinf(v):
            return {"__float__": "inf" if v > 0 else "-inf"}
        return v
    if isinstance(value, np.ndarray):
        name = f"arr_{len(arrays)}"
        arrays[name] = value
        return {"__npz__": name}
    if isinstance(value, dict):
        return {str(k): _encode(v, arrays) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v, arrays) for v in value]
    if isinstance(value, StreamingEstimate):
        fields = {
            "estimate": value.estimate,
            "lower": value.lower,
            "upper": value.upper,
            "n": value.n,
            "stopped_early": value.stopped_early,
            "alpha": value.alpha,
            "target_width": value.target_width,
            "samples": value.samples,
        }
        return {"__streaming_estimate__": _encode(fields, arrays)}
    raise TypeError(
        f"cannot store values of type {type(value).__qualname__}; supported: "
        f"scalars, strings, dicts, lists, numpy arrays, StreamingEstimate"
    )


def _decode(value, arrays):
    """Inverse of :func:`_encode`; ``arrays`` is the loaded NPZ (or None)."""
    if isinstance(value, list):
        return [_decode(v, arrays) for v in value]
    if isinstance(value, dict):
        if "__float__" in value:
            return float(value["__float__"])
        if "__npz__" in value:
            if arrays is None:
                raise KeyError("record references an NPZ payload that is missing")
            return np.asarray(arrays[value["__npz__"]])
        if "__streaming_estimate__" in value:
            fields = _decode(value["__streaming_estimate__"], arrays)
            return StreamingEstimate(
                estimate=fields["estimate"],
                lower=fields["lower"],
                upper=fields["upper"],
                n=fields["n"],
                stopped_early=fields["stopped_early"],
                alpha=fields["alpha"],
                target_width=fields["target_width"],
                samples=fields["samples"],
            )
        return {k: _decode(v, arrays) for k, v in value.items()}
    return value


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class ExperimentStore:
    """Content-addressed on-disk cache of experiment-cell results.

    Parameters
    ----------
    root:
        Directory the records live in (created if missing).  One record is
        a ``<key>.json`` manifest plus, when the result carries arrays, a
        ``<key>.npz`` sidecar; ``key = canonical_key(spec)``.

    The store is safe to share between a sweep and its re-runs: writes are
    atomic (temp file + ``os.replace``, payload before manifest), reads
    treat any malformed record as a miss, and keys depend only on the
    spec's content — never on dict ordering, ``PYTHONHASHSEED`` or the
    process that computed them.

    ``tracer`` (:mod:`repro.obs`) makes cache traffic observable: every
    :meth:`get` counts ``store.get.hit`` / ``store.get.miss`` (hits also
    count ``store.bytes_read``), every :meth:`put` counts ``store.put``
    and ``store.bytes_written``.  The default is the no-op tracer.
    """

    def __init__(self, root: str | os.PathLike, tracer=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.tracer = as_tracer(tracer)

    # -- paths -------------------------------------------------------------

    def _manifest_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _payload_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    # -- core API ----------------------------------------------------------

    def get(self, spec) -> object | None:
        """The stored result for ``spec``, or ``None`` on miss.

        Corrupted or partial records (unparsable JSON, missing or
        unreadable NPZ payload, format-version mismatch) read as misses —
        the caller recomputes and :meth:`put` overwrites the record.
        """
        key = canonical_key(spec)
        manifest_path = self._manifest_path(key)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            if manifest.get("format_version") != FORMAT_VERSION:
                self._count_miss(key)
                return None
            arrays = None
            bytes_read = manifest_path.stat().st_size
            if manifest.get("has_arrays"):
                payload_path = self._payload_path(key)
                with np.load(payload_path, allow_pickle=False) as npz:
                    arrays = {name: np.asarray(npz[name]) for name in npz.files}
                bytes_read += payload_path.stat().st_size
            result = _decode(manifest["result"], arrays)
        except (
            OSError,
            ValueError,
            KeyError,
            TypeError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
        ):
            self._count_miss(key)
            return None
        if self.tracer.enabled:
            self.tracer.count("store.get.hit", 1)
            self.tracer.count("store.bytes_read", int(bytes_read))
        return result

    def _count_miss(self, key: str) -> None:
        if self.tracer.enabled:
            self.tracer.count("store.get.miss", 1)

    def put(self, spec, result) -> str:
        """Store ``result`` under ``spec``'s content address; returns the key.

        The NPZ payload (if any) is written and atomically renamed first,
        the JSON manifest last — a record is visible only once complete,
        so a kill mid-write can leave at worst an orphan payload, never a
        half-readable record.
        """
        key = canonical_key(spec)
        arrays: dict[str, np.ndarray] = {}
        encoded = _encode(result, arrays)
        manifest = {
            "format_version": FORMAT_VERSION,
            "key": key,
            "spec": describe(spec),
            "has_arrays": bool(arrays),
            "result": encoded,
        }
        if arrays:
            self._atomic_write(
                self._payload_path(key),
                lambda fh: np.savez(fh, **arrays),
                binary=True,
            )
        self._atomic_write(
            self._manifest_path(key),
            lambda fh: fh.write(json.dumps(manifest, sort_keys=True, indent=1)),
            binary=False,
        )
        if self.tracer.enabled:
            bytes_written = self._manifest_path(key).stat().st_size
            if arrays:
                bytes_written += self._payload_path(key).stat().st_size
            self.tracer.count("store.put", 1)
            self.tracer.count("store.bytes_written", int(bytes_written))
        return key

    def get_or_compute(self, spec, compute: Callable[[], object]) -> tuple[object, bool]:
        """``(result, was_cached)`` — load on hit, else compute and store."""
        cached = self.get(spec)
        if cached is not None:
            return cached, True
        result = compute()
        self.put(spec, result)
        return result, False

    def __contains__(self, spec) -> bool:
        return self.get(spec) is not None

    def keys(self) -> list[str]:
        """Content-address keys of every (complete) record in the store."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def _atomic_write(self, path: Path, write, binary: bool) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-", suffix=path.suffix)
        try:
            with os.fdopen(fd, "wb" if binary else "w") as fh:
                write(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentStore({str(self.root)!r}, records={len(self.keys())})"


def as_store(store, tracer=None) -> ExperimentStore | None:
    """Normalise the ``store=`` knob: ``None``, a path, or a live store.

    ``tracer`` is attached only when this call *constructs* the store
    from a path; a caller-supplied :class:`ExperimentStore` instance is
    returned untouched (its tracer belongs to the caller).
    """
    if store is None or isinstance(store, ExperimentStore):
        return store
    if isinstance(store, (str, os.PathLike)):
        return ExperimentStore(store, tracer=tracer)
    raise ValueError(
        f"unknown store {store!r}; pass None, a directory path, or an "
        f"ExperimentStore instance"
    )
