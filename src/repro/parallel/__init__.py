"""Sharded multi-process execution and the resumable experiment store.

The scaling layer on top of the batched engine and the anytime-valid
statistics: where :mod:`repro.engine` vectorises *within* one process,
this package distributes *across* processes — without ever changing a
number.

* :mod:`repro.parallel.sharding` — :class:`ShardedExecutor` splits a
  chunk of per-sample ``SeedSequence`` children into contiguous shards
  and runs them serially or on a process pool.  Because sample ``i`` is a
  pure function of seed child ``i`` (the
  :meth:`~repro.engine.SeededSequentialKernel.spawn_block` contract),
  pooled samples — and every estimate and confidence sequence built from
  them — are bit-for-bit identical for any shard count.  Plugs into
  :func:`repro.stats.run_until_width` and every ``precision=`` estimator
  via their ``executor=`` knob.
* :mod:`repro.parallel.store` — :class:`ExperimentStore`, a
  content-addressed JSON/NPZ cache keyed by a canonical hash of the cell
  spec (game, dynamics, estimator, parameters, seed).  The sweeps'
  ``store=`` knob makes completed cells free on re-run and lets a killed
  sweep resume from its last completed cell.
"""

from .sharding import (
    ShardSample,
    ShardedExecutor,
    as_executor,
    claim_executor,
    merge_shard_moments,
    pool_shard_samples,
    shard_plan,
)
from .store import (
    ExperimentStore,
    as_store,
    canonical_json,
    canonical_key,
    describe,
)

__all__ = [
    "ExperimentStore",
    "ShardSample",
    "ShardedExecutor",
    "as_executor",
    "as_store",
    "canonical_json",
    "canonical_key",
    "claim_executor",
    "describe",
    "merge_shard_moments",
    "pool_shard_samples",
    "shard_plan",
]
