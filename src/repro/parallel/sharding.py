"""Sharded execution of per-sample ``SeedSequence`` chunks.

The adaptive driver :func:`repro.stats.adaptive.run_until_width` already
derives sample ``i`` from ``SeedSequence`` child ``i`` alone, which makes
the pooled sample stream a pure function of the master seed — independent
of how the budget is chunked.  This module extends that purity to *process
boundaries*: a chunk of children is split into contiguous shards
(:func:`shard_plan`), each shard reconstructs its own seed block with
:meth:`repro.engine.SeededSequentialKernel.spawn_block` (no shared spawn
cursor, so shards need no coordination), evaluates the caller's sampler on
it, and the coordinator pools the per-shard sample arrays back **in sample
order**.  Pooled samples — and therefore every downstream estimate and
confidence sequence — are bit-for-bit identical to the single-process run
for *any* shard count (``tests/test_sharded_execution.py`` pins
``k in {1, 3, 8}``).

Two executor backends are provided behind one interface:

* ``backend="serial"`` — shards run one after another in-process (the
  reference semantics, and the zero-dependency default);
* ``backend="process"`` — shards run on a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Samplers and their
  payloads (game, dynamics, start profiles, targets) must then be
  *picklable*: module-level functions or classes, not lambdas or closures
  — the estimators in :mod:`repro.core.metastability` and
  :mod:`repro.analysis.welfare` ship picklable sampler objects for exactly
  this reason.

Per-shard moment statistics travel back as
:class:`~repro.stats.accumulators.StreamingMoments` and are merged through
the accumulator's exact Chan fold (:func:`merge_shard_moments`); the
confidence-sequence state is order-sensitive, so it is *folded* — each
shard's samples are applied to the coordinator's CS in sample order via
the existing chunk ``update`` — rather than merged commutatively.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from ..engine.kernels import SeededSequentialKernel
from ..obs import as_tracer
from ..stats.accumulators import StreamingMoments

__all__ = [
    "ShardSample",
    "ShardedExecutor",
    "as_executor",
    "claim_executor",
    "merge_shard_moments",
    "pool_shard_samples",
    "shard_plan",
]

#: A chunk sampler: receives one spawned ``SeedSequence`` child per
#: requested sample and returns that many float samples, sample ``i``
#: derived from child ``i`` only.  Identical to the
#: :data:`repro.stats.adaptive.ChunkSampler` contract — the same object is
#: used for serial chunks and for shards.
ChunkSampler = Callable[[Sequence[np.random.SeedSequence]], np.ndarray]


@dataclass(frozen=True)
class ShardSample:
    """One shard's contribution to a chunk of samples.

    Parameters/attributes
    ---------------------
    offset:
        Absolute index (within the run's sample stream) of this shard's
        first sample; the coordinator pools shards sorted by offset.
    samples:
        ``(count,)`` float array, sample ``j`` derived from seed child
        ``offset + j`` only.
    moments:
        :class:`~repro.stats.accumulators.StreamingMoments` over
        ``samples`` — the shard-local Welford state merged downstream via
        :func:`merge_shard_moments`.
    seconds:
        Worker-side wall-clock spent inside the sampler for this shard —
        the telemetry layer's per-shard load signal.  Carries no
        randomness and never influences pooling.
    """

    offset: int
    samples: np.ndarray
    moments: StreamingMoments
    seconds: float = field(default=0.0, compare=False)


def shard_plan(total: int, num_shards: int) -> list[tuple[int, int]]:
    """Split ``total`` samples into at most ``num_shards`` contiguous blocks.

    Parameters
    ----------
    total:
        Number of samples in the chunk (non-negative).
    num_shards:
        Requested shard count (positive).

    Returns
    -------
    list[tuple[int, int]]
        ``(offset, count)`` pairs with positive counts, offsets relative
        to the chunk start, counts differing by at most one (the first
        ``total % num_shards`` shards get the extra sample).  Fewer than
        ``num_shards`` pairs come back when ``total < num_shards`` —
        empty shards are never scheduled.

    Example
    -------
    >>> shard_plan(10, 3)
    [(0, 4), (4, 3), (7, 3)]
    >>> shard_plan(2, 8)
    [(0, 1), (1, 1)]
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if total < 0:
        raise ValueError("total must be non-negative")
    shards = min(num_shards, total)
    plan: list[tuple[int, int]] = []
    offset = 0
    for j in range(shards):
        count = total // shards + (1 if j < total % shards else 0)
        plan.append((offset, count))
        offset += count
    return plan


def _sample_shard(
    sampler: ChunkSampler,
    root: np.random.SeedSequence,
    start: int,
    count: int,
) -> ShardSample:
    """Evaluate one shard: reconstruct its seed block, sample, accumulate.

    Module-level (not a closure) so the process backend can pickle it; the
    shard needs only ``(root, start, count)`` to rebuild exactly the
    children a serial ``root.spawn`` would have produced at those
    positions.
    """
    tic = perf_counter()
    children = SeededSequentialKernel.spawn_block(root, start, count)
    samples = np.asarray(sampler(children), dtype=float)
    seconds = perf_counter() - tic
    if samples.shape != (count,):
        raise ValueError(
            f"sampler returned shape {samples.shape} for {count} children; "
            f"sharded execution needs exactly one sample per spawned child"
        )
    moments = StreamingMoments()
    moments.update(samples)
    return ShardSample(
        offset=start, samples=samples, moments=moments, seconds=seconds
    )


def pool_shard_samples(shards: Sequence[ShardSample]) -> np.ndarray:
    """Concatenate shard samples back into sample order.

    Parameters
    ----------
    shards:
        The :class:`ShardSample` results of one chunk, in any order.

    Returns
    -------
    numpy.ndarray
        The chunk's samples sorted by shard offset — bit-for-bit the array
        a single-process evaluation of the whole chunk would have produced.
    """
    ordered = sorted(shards, key=lambda s: s.offset)
    return np.concatenate([s.samples for s in ordered])


def merge_shard_moments(shards: Sequence[ShardSample]) -> StreamingMoments:
    """Merge per-shard Welford accumulators with the exact Chan combine.

    The merge is order-independent and algebraically exact (the
    :meth:`~repro.stats.accumulators.StreamingMoments.merge` fold), so the
    merged count always matches the pooled sample count and the merged
    mean/variance agree with a direct computation up to floating-point
    accumulation order.
    """
    merged = StreamingMoments()
    for shard in sorted(shards, key=lambda s: s.offset):
        merged.merge(shard.moments)
    return merged


def _payload_pickles(fn, tasks) -> bool:
    """Whether a task batch would survive the worker-queue round trip."""
    try:
        pickle.dumps((fn, tasks))
        return True
    except Exception:
        return False


class ShardedExecutor:
    """Splits sample chunks into shards and runs them on a pluggable backend.

    Parameters
    ----------
    num_shards:
        Number of shards a chunk is split into (``shard_plan``); also the
        default worker count of the process backend.  Sharding never
        changes results — pooled samples are bit-for-bit identical for
        every ``num_shards`` — so this is purely a throughput knob.
    backend:
        ``"serial"`` (shards run in-process, one after another) or
        ``"process"`` (a ``concurrent.futures.ProcessPoolExecutor``;
        samplers must be picklable).
    max_workers:
        Process-pool size for ``backend="process"``; defaults to
        ``num_shards``.

    The executor plugs into :func:`repro.stats.adaptive.run_until_width`
    (and through it into every ``precision=`` estimator) via their
    ``executor=`` argument, and is reusable across calls — the process
    pool is created lazily on first use and kept warm until
    :meth:`close` (also a context manager).

    Example
    -------
    >>> import numpy as np
    >>> def one_uniform(children):
    ...     return np.array([np.random.default_rng(c).random() for c in children])
    >>> root = np.random.SeedSequence(11)
    >>> serial = pool_shard_samples(
    ...     ShardedExecutor(num_shards=1).map_chunk(one_uniform, root, 0, 12)
    ... )
    >>> with ShardedExecutor(num_shards=3) as ex:
    ...     sharded = pool_shard_samples(ex.map_chunk(one_uniform, root, 0, 12))
    >>> bool(np.array_equal(serial, sharded))
    True
    """

    def __init__(
        self,
        num_shards: int = 1,
        backend: str = "serial",
        max_workers: int | None = None,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if backend not in ("serial", "process"):
            raise ValueError(f"unknown backend {backend!r}; use 'serial' or 'process'")
        self.num_shards = int(num_shards)
        self.backend = backend
        self.max_workers = int(max_workers) if max_workers is not None else self.num_shards
        if self.max_workers < 1:
            raise ValueError("max_workers must be positive")
        self._pool = None

    # -- backend plumbing --------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def map_tasks(self, fn, tasks: list[tuple], tracer=None) -> list:
        """Apply ``fn(*task)`` to every task, preserving task order.

        The raw fan-out primitive under :meth:`map_chunk`, also used
        directly by drivers whose shard payload is not a sample chunk
        (the sharded ensemble advance of
        :func:`repro.core.mixing.estimate_tv_convergence`).  ``fn`` and
        every task element must be picklable on the process backend.
        An enabled ``tracer`` (:mod:`repro.obs`) counts ``shard.tasks``
        and emits one ``shard.dispatch`` event per batch with the
        dispatch-to-completion wall-clock; the tracer itself is never
        shipped to workers.
        """
        tracer = as_tracer(tracer)
        tic = perf_counter() if tracer.enabled else 0.0
        if self.backend == "serial":
            results = [fn(*task) for task in tasks]
        else:
            pool = self._ensure_pool()
            try:
                futures = [pool.submit(fn, *task) for task in tasks]
                results = [f.result() for f in futures]
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                # f.result() re-raises both submit-time pickling failures and
                # genuine runtime errors from inside workers; only blame
                # pickling when the payload actually fails to pickle
                if _payload_pickles(fn, tasks):
                    raise
                raise ValueError(
                    "the process backend must pickle the sampler and its payload "
                    "(game, dynamics, start, targets) to ship them to workers; "
                    "use module-level functions/classes instead of lambdas or "
                    f"closures, or backend='serial' — pickling failed with: {exc}"
                ) from exc
        if tracer.enabled:
            tracer.count("shard.tasks", len(tasks))
            tracer.event(
                "shard.dispatch",
                tasks=len(tasks),
                backend=self.backend,
                seconds=perf_counter() - tic,
            )
        return results

    def map_chunk(
        self,
        sampler: ChunkSampler,
        root: np.random.SeedSequence,
        start: int,
        count: int,
        tracer=None,
    ) -> list[ShardSample]:
        """Evaluate samples ``start .. start + count - 1`` across the shards.

        Parameters
        ----------
        sampler:
            The chunk sampler (one sample per ``SeedSequence`` child).
        root:
            Master seed; never mutated — shards rebuild their own child
            blocks from ``(root, absolute offset, count)``.
        start:
            Absolute index of the chunk's first sample in the run's
            sample stream (the spawn position of its seed child).
        count:
            Chunk size.
        tracer:
            Telemetry sink (:mod:`repro.obs`).  When enabled, each shard's
            worker wall-clock (:attr:`ShardSample.seconds`) is emitted as
            a ``shard.complete`` event and the chunk closes with a
            ``shard.chunk`` event carrying the load-imbalance ratio
            (max/mean shard seconds).

        Returns
        -------
        list[ShardSample]
            One entry per scheduled shard, in offset order; pool with
            :func:`pool_shard_samples` / :func:`merge_shard_moments`.
        """
        tracer = as_tracer(tracer)
        plan = shard_plan(count, self.num_shards)
        tasks = [(sampler, root, start + off, cnt) for off, cnt in plan]
        shards = self.map_tasks(_sample_shard, tasks, tracer=tracer)
        if tracer.enabled and shards:
            seconds = [float(s.seconds) for s in shards]
            for index, shard in enumerate(shards):
                tracer.event(
                    "shard.complete",
                    shard=index,
                    offset=int(shard.offset),
                    samples=int(shard.samples.size),
                    seconds=float(shard.seconds),
                )
            mean = sum(seconds) / len(seconds)
            tracer.count("shard.chunks", 1)
            tracer.count("shard.worker_seconds", sum(seconds))
            tracer.event(
                "shard.chunk",
                shards=len(shards),
                samples=int(count),
                max_seconds=max(seconds),
                mean_seconds=mean,
                imbalance=(max(seconds) / mean) if mean > 0 else 1.0,
            )
        return shards

    def close(self) -> None:
        """Shut the process pool down (no-op for the serial backend)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedExecutor(num_shards={self.num_shards}, "
            f"backend={self.backend!r}, max_workers={self.max_workers})"
        )


def as_executor(executor) -> ShardedExecutor | None:
    """Normalise the ``executor=`` knob of the estimators and sweeps.

    Accepts ``None`` (no sharding — the caller's serial fast path), an
    existing :class:`ShardedExecutor` (returned as-is), or a string:
    ``"serial"`` (one in-process shard — the reference semantics) and
    ``"process"`` (a process pool with one shard per available CPU, as
    reported by ``os.cpu_count``).
    """
    if executor is None or isinstance(executor, ShardedExecutor):
        return executor
    if executor == "serial":
        return ShardedExecutor(num_shards=1, backend="serial")
    if executor == "process":
        workers = max(os.cpu_count() or 1, 1)
        return ShardedExecutor(num_shards=workers, backend="process")
    raise ValueError(
        f"unknown executor {executor!r}; pass None, 'serial', 'process', "
        f"or a ShardedExecutor instance"
    )


def claim_executor(executor) -> tuple[ShardedExecutor | None, bool]:
    """:func:`as_executor` plus ownership of the normalised instance.

    Returns ``(sharder, owned)`` with ``owned`` true exactly when the
    call *created* the executor (i.e. the caller passed a string, not a
    live :class:`ShardedExecutor`).  Drivers and sweeps that claim an
    executor must ``close()`` it when they own it — otherwise every cell
    of a ``executor="process"`` sweep would spawn (and leak) its own
    process pool.  Caller-supplied instances are never closed: their
    lifetime — and the pool-warming it buys across calls — belongs to
    the caller.
    """
    sharder = as_executor(executor)
    return sharder, sharder is not None and sharder is not executor
