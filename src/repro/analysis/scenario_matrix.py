"""Standing scenario matrix: {game family} x {topology} x {dynamics family}.

The paper's experiments (and the per-experiment benchmarks that reproduce
them) each run one hand-picked game on one hand-picked topology.  The
scenario matrix is the cheap generalisation the ROADMAP's scenario-library
item asks for: :func:`scenario_matrix` crosses a named set of *game
families* (graph -> game constructors) with a named set of *topologies*
(social graphs from :mod:`repro.graphs`) and runs the full
:func:`~repro.analysis.sweep.dynamics_family_sweep` in every cell — so one
call checks every dynamics kernel against dozens of scenarios instead of
two, with the same CS-certified intervals, ``converged`` flags and
store/executor/tracer plumbing as the underlying sweep.

Cells are content-addressed through the
:class:`~repro.parallel.ExperimentStore` (the game identifies itself via
``store_spec()``, the cell's randomness via name-derived seed children),
so a matrix run survives kills: re-running resumes from the completed
cells with ``provenance = "store"``.  Randomness follows the *cell name*
``family::topology`` — adding a row or column never reseeds existing
cells, which keeps the standing CI artifact append-only.

:func:`render_scenario_matrix` renders the per-cell report table and
:func:`scenario_matrix_payload` flattens a result into the JSON document
CI uploads as ``SCENARIO_MATRIX.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Mapping, Sequence

import networkx as nx
import numpy as np

from ..games.base import Game
from ..obs import as_tracer
from ..parallel.sharding import claim_executor
from ..parallel.store import as_store
from ..stats.knobs import require_executor_seed, require_store_seed
from .report import format_interval, format_value, render_table
from .sweep import SweepResult, _named_seed_children, dynamics_family_sweep

__all__ = [
    "ScenarioCell",
    "ScenarioMatrixResult",
    "scenario_matrix",
    "render_scenario_matrix",
    "scenario_matrix_payload",
]


@dataclass(frozen=True)
class ScenarioCell:
    """One (game family, topology) cell: the instantiated scenario's sweep."""

    game_family: str
    topology: str
    num_players: int
    num_edges: int
    sweep: SweepResult


@dataclass(frozen=True)
class ScenarioMatrixResult:
    """A full scenario-matrix run, in row-major (family, topology) order."""

    game_families: tuple[str, ...]
    topologies: tuple[str, ...]
    dynamics: tuple[str, ...]
    cells: tuple[ScenarioCell, ...]

    def cell(self, game_family: str, topology: str) -> ScenarioCell:
        """The cell of one family/topology pair (KeyError if absent)."""
        for cell in self.cells:
            if cell.game_family == game_family and cell.topology == topology:
                return cell
        raise KeyError(f"no cell ({game_family!r}, {topology!r}) in the matrix")


def _materialise_topologies(
    topologies: Mapping[str, nx.Graph | Callable[[], nx.Graph]],
) -> dict[str, nx.Graph]:
    """Build each topology once so every game family shares the instance."""
    graphs: dict[str, nx.Graph] = {}
    for name, topo in topologies.items():
        graph = topo() if callable(topo) else topo
        if not isinstance(graph, nx.Graph):
            raise TypeError(
                f"topology {name!r} must be an nx.Graph or a zero-argument "
                f"callable returning one, got {type(graph).__name__}"
            )
        graphs[str(name)] = graph
    return graphs


def scenario_matrix(
    game_families: Mapping[str, Callable[[nx.Graph], Game]],
    topologies: Mapping[str, nx.Graph | Callable[[], nx.Graph]],
    dynamics_factories: Mapping[str, Callable[[Game], object]]
    | Sequence[tuple[str, Callable[[Game], object]]],
    reference: Callable[[Game], np.ndarray] | None = None,
    num_replicas: int = 512,
    epsilon: float = 0.25,
    max_time: int = 10**4,
    check_every: int | None = None,
    start: Sequence[int] | int | Callable[[Game], object] | None = None,
    escape_states: Callable[[Game], np.ndarray] | None = None,
    max_escape_steps: int = 10**5,
    welfare_alpha: float = 0.05,
    seed: int | np.random.SeedSequence | None = None,
    executor=None,
    store=None,
    store_tag: str | None = None,
    tail_q: float | None = None,
    tracer=None,
) -> ScenarioMatrixResult:
    """Run ``dynamics_family_sweep`` over every (game family, topology) cell.

    ``game_families`` maps a family name to a constructor taking the
    social graph (e.g. ``lambda g: FiniteOpinionGame.random(g, rng=...)``
    — lambdas are fine because the game identifies itself to the store by
    *content* via ``store_spec()``, never by the factory).  ``topologies``
    maps a topology name to a graph or a zero-argument graph factory;
    each topology is built exactly once and shared across families.
    ``dynamics_factories`` is forwarded verbatim to
    :func:`~repro.analysis.sweep.dynamics_family_sweep` in every cell.

    Per-game knobs (``reference``, ``start``, ``escape_states``) may be
    callables taking the instantiated game, because a fixed distribution
    or profile cannot fit games of different sizes; plain values are
    forwarded as-is.

    ``seed`` makes the whole matrix reproducible: every cell derives its
    own master seed from the *cell name* ``family::topology`` (via the
    same name-hashed spawn keys as the sweep's per-family seeds), so
    reordering, adding or removing rows/columns never reseeds the other
    cells — the property that keeps store-cached cells valid as the matrix
    grows.  ``store`` caches every sweep cell content-addressed;
    ``executor`` shards every TV measurement (claimed once here and
    shared across cells, so an ``executor="process"`` matrix spawns one
    pool, not one per cell); ``tracer`` records ``matrix.begin`` /
    ``matrix.cell`` / ``matrix.end`` around the sweeps' own events.

    Returns the cells in row-major order: families in mapping order, each
    crossed with every topology in mapping order.
    """
    families = {str(k): v for k, v in dict(game_families).items()}
    if not families:
        raise ValueError("need at least one game family")
    if isinstance(dynamics_factories, Mapping):
        dynamics_names = tuple(str(k) for k in dynamics_factories)
    else:
        dynamics_names = tuple(str(k) for k, _ in dynamics_factories)
    graphs = _materialise_topologies(topologies)
    if not graphs:
        raise ValueError("need at least one topology")
    tracer = as_tracer(tracer)
    store = as_store(store, tracer=tracer)
    require_store_seed(store, seed)
    require_executor_seed(executor, seed)
    executor, owned_executor = claim_executor(executor)
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence) or seed is None
        else np.random.SeedSequence(seed)
    )
    if tracer.enabled:
        tracer.event(
            "matrix.begin",
            families=len(families),
            topologies=len(graphs),
            cells=len(families) * len(graphs),
            store=store is not None,
            sharded=executor is not None,
        )
    cells: list[ScenarioCell] = []
    try:
        for family_name, make_game in families.items():
            for topo_name, graph in graphs.items():
                cell_name = f"{family_name}::{topo_name}"
                tic = perf_counter() if tracer.enabled else 0.0
                game = make_game(graph)
                cell_seed = (
                    _named_seed_children(root, cell_name, 1)[0]
                    if root is not None
                    else None
                )
                sweep = dynamics_family_sweep(
                    game,
                    dynamics_factories,
                    reference=reference(game) if callable(reference) else reference,
                    num_replicas=num_replicas,
                    epsilon=epsilon,
                    max_time=max_time,
                    check_every=check_every,
                    start=start(game) if callable(start) else start,
                    escape_states=(
                        escape_states(game)
                        if callable(escape_states)
                        else escape_states
                    ),
                    max_escape_steps=max_escape_steps,
                    welfare_alpha=welfare_alpha,
                    seed=cell_seed,
                    executor=executor,
                    store=store,
                    store_tag=(
                        f"{store_tag}::{cell_name}"
                        if store_tag is not None
                        else cell_name
                    ),
                    tail_q=tail_q,
                    tracer=tracer,
                )
                cells.append(
                    ScenarioCell(
                        game_family=family_name,
                        topology=topo_name,
                        num_players=int(game.num_players),
                        num_edges=int(graph.number_of_edges()),
                        sweep=sweep,
                    )
                )
                if tracer.enabled:
                    tracer.event(
                        "matrix.cell",
                        cell=cell_name,
                        num_players=int(game.num_players),
                        seconds=perf_counter() - tic,
                    )
        if tracer.enabled:
            tracer.event("matrix.end", cells=len(cells))
    finally:
        if owned_executor:
            executor.close()
    return ScenarioMatrixResult(
        game_families=tuple(families),
        topologies=tuple(graphs),
        dynamics=dynamics_names,
        cells=tuple(cells),
    )


def render_scenario_matrix(result: ScenarioMatrixResult) -> str:
    """Text report of a matrix: one row per (family, topology, dynamics).

    Columns mirror the family-sweep tables — the TV mixing estimate with
    its ``converged`` flag, the mean-welfare CS interval and the cell
    provenance — so the standing CI artifact is diffable by eye.
    """
    header = [
        "game family",
        "topology",
        "n",
        "dynamics",
        "t_mix(TV)",
        "converged",
        "mean welfare [CS]",
        "provenance",
    ]
    rows: list[list[object]] = []
    for cell in result.cells:
        for record in cell.sweep.records:
            extra = record.extra
            rows.append(
                [
                    cell.game_family,
                    cell.topology,
                    cell.num_players,
                    str(extra.get("dynamics", "?")),
                    format_value(record.mixing_time),
                    "yes" if extra.get("converged") else "no",
                    format_interval(
                        extra.get("mean_welfare", float("nan")),
                        extra.get("welfare_lower", float("nan")),
                        extra.get("welfare_upper", float("nan")),
                    ),
                    str(extra.get("provenance", "computed")),
                ]
            )
    title = (
        f"scenario matrix: {len(result.game_families)} families x "
        f"{len(result.topologies)} topologies x "
        f"{len(result.dynamics)} dynamics"
    )
    return title + "\n" + render_table(header, rows)


def scenario_matrix_payload(result: ScenarioMatrixResult) -> dict:
    """Flatten a matrix result into the ``SCENARIO_MATRIX.json`` document.

    Pure JSON types only (floats become ``None`` when non-finite), one
    entry per cell with the full per-dynamics records — the machine-
    readable twin of :func:`render_scenario_matrix` that CI uploads as the
    standing artifact.
    """

    def _num(value) -> float | None:
        value = float(value)
        return value if np.isfinite(value) else None

    cells = []
    for cell in result.cells:
        records = []
        for record in cell.sweep.records:
            entry = {"mixing_time": _num(record.mixing_time)}
            for key, value in record.extra.items():
                if isinstance(value, (bool, str)) or value is None:
                    entry[key] = value
                elif isinstance(value, (int, np.integer)):
                    entry[key] = int(value)
                else:
                    entry[key] = _num(value)
            records.append(entry)
        cells.append(
            {
                "game_family": cell.game_family,
                "topology": cell.topology,
                "num_players": cell.num_players,
                "num_edges": cell.num_edges,
                "records": records,
            }
        )
    return {
        "game_families": list(result.game_families),
        "topologies": list(result.topologies),
        "dynamics": list(result.dynamics),
        "cells": cells,
    }
