"""Analysis helpers: sweeps, the scenario matrix and report rendering."""

from .welfare import (
    estimate_stationary_welfare,
    logit_price_of_anarchy,
    optimal_welfare,
    social_welfare_vector,
    stationary_expected_welfare,
    welfare_of_profiles,
    welfare_vs_beta,
    worst_equilibrium_welfare,
)
from .report import (
    format_interval,
    format_value,
    provenance_summary,
    render_experiment,
    render_table,
)
from .scenario_matrix import (
    ScenarioCell,
    ScenarioMatrixResult,
    render_scenario_matrix,
    scenario_matrix,
    scenario_matrix_payload,
)
from .sweep import (
    SweepRecord,
    SweepResult,
    beta_sweep,
    dynamics_family_sweep,
    ensemble_beta_sweep,
    exponential_growth_rate,
    hitting_time_size_sweep,
    size_sweep,
)

__all__ = [
    "estimate_stationary_welfare",
    "logit_price_of_anarchy",
    "optimal_welfare",
    "social_welfare_vector",
    "stationary_expected_welfare",
    "welfare_of_profiles",
    "welfare_vs_beta",
    "worst_equilibrium_welfare",
    "format_interval",
    "format_value",
    "provenance_summary",
    "render_experiment",
    "render_table",
    "ScenarioCell",
    "ScenarioMatrixResult",
    "render_scenario_matrix",
    "scenario_matrix",
    "scenario_matrix_payload",
    "SweepRecord",
    "SweepResult",
    "beta_sweep",
    "dynamics_family_sweep",
    "ensemble_beta_sweep",
    "exponential_growth_rate",
    "hitting_time_size_sweep",
    "size_sweep",
]
