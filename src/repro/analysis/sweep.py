"""Parameter sweeps over beta, system size and graph topology.

The paper's qualitative claims are about *scaling*: mixing time exponential
in ``beta * DeltaPhi`` (Theorem 3.4/3.5), polynomial for small ``beta``
(Theorem 3.6), beta-independent for dominant-strategy games (Theorem 4.2),
and exponential in ``2 delta beta`` on the ring (Theorems 5.6/5.7).  The
sweep helpers here run a game family over a grid of parameters, collect the
measured mixing/relaxation times next to the paper's bounds, and extract
the empirical exponential growth rate so the benchmarks can check slopes as
well as sandwich inequalities.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.mixing import (
    estimate_mixing_time_ensemble,
    estimate_tv_convergence,
    measure_mixing_time,
    measure_relaxation_time,
)
from ..games.base import Game
from ..obs import as_tracer
from ..parallel.sharding import claim_executor
from ..parallel.store import as_store, describe
from ..stats.confseq import NormalMixtureCS
from ..stats.knobs import (
    reject_executor_without_precision,
    reject_seed_rng_conflict,
    require_executor_seed,
    require_store_seed,
)
from ..stats.quantile import QuantileCS

__all__ = [
    "SweepRecord",
    "SweepResult",
    "beta_sweep",
    "dynamics_family_sweep",
    "ensemble_beta_sweep",
    "hitting_time_size_sweep",
    "size_sweep",
    "exponential_growth_rate",
]


def _described_factories(store_tag: str | None, **factories) -> object:
    """Spec component naming the sweep's callables (or the explicit tag).

    ``store_tag`` short-circuits the description — the escape hatch for
    lambdas and closures, which have no run-to-run-stable name; the caller
    then owns uniqueness of the tag per (game family, factory bundle).
    """
    if store_tag is not None:
        return {"store_tag": str(store_tag)}
    return {
        name: (describe(fn) if fn is not None else None)
        for name, fn in factories.items()
    }


def _named_seed_children(
    root: np.random.SeedSequence, name: str, count: int
) -> list[np.random.SeedSequence]:
    """Per-name deterministic seed children, independent of sweep position.

    The family sweeps key their cells by *name*, so the randomness must
    follow the name too — otherwise reordering the families would hand
    every family a different seed and silently invalidate its cached
    cell.  The name is hashed into four ``uint32`` spawn-key words
    appended to the root's spawn key, giving a ``SeedSequence`` child
    that depends only on (master seed, name); its first ``count`` spawned
    children are returned.
    """
    digest = hashlib.sha256(str(name).encode("utf-8")).digest()
    words = tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + words
    )
    return child.spawn(count)


def _cached_record(store, spec) -> SweepRecord | None:
    """Rebuild a :class:`SweepRecord` from a stored cell, or ``None`` on miss.

    The cached cell carries everything but provenance; the rebuilt record
    is tagged ``extra["provenance"] = "store"`` so report tables show
    which cells were loaded rather than computed.
    """
    if store is None:
        return None
    cell = store.get(spec)
    if cell is None:
        return None
    extra = dict(cell.get("extra", {}))
    extra["provenance"] = "store"
    return SweepRecord(
        parameter=float(cell["parameter"]),
        mixing_time=float(cell.get("mixing_time", float("nan"))),
        relaxation_time=float(cell.get("relaxation_time", float("nan"))),
        extra=extra,
    )


def _store_record(store, spec, record: SweepRecord) -> SweepRecord:
    """Persist a freshly computed cell; returns it tagged as computed.

    Cells are written the moment they complete, so a sweep killed
    mid-grid resumes from its last completed cell on the next run.
    """
    if store is None:
        return record
    store.put(
        spec,
        {
            "parameter": record.parameter,
            "mixing_time": record.mixing_time,
            "relaxation_time": record.relaxation_time,
            "extra": dict(record.extra),
        },
    )
    extra = dict(record.extra)
    extra["provenance"] = "computed"
    return SweepRecord(
        parameter=record.parameter,
        mixing_time=record.mixing_time,
        relaxation_time=record.relaxation_time,
        extra=extra,
    )


def _trace_welfare_curve(
    tracer, family: str, samples: np.ndarray, alpha: float, chunks: int = 12
) -> None:
    """Emit a CS-width-vs-n curve for the welfare samples, trace only.

    The reported welfare interval is a one-shot evaluation over the full
    ensemble; this replays the same samples through a *fresh*
    :class:`~repro.stats.confseq.NormalMixtureCS` in prefix blocks so the
    trace carries a ``driver.convergence`` curve without perturbing the
    reported numbers (the final replayed interval coincides with the
    reported one — the mixture boundary depends only on the pooled
    sufficient statistics).
    """
    if not tracer.enabled:
        return
    samples = np.asarray(samples, dtype=float)
    cs = NormalMixtureCS(alpha=alpha)
    n = 0
    for block in np.array_split(samples, min(chunks, max(samples.size, 1))):
        if block.size == 0:
            continue
        cs.update(block)
        n += block.size
        try:
            lower, upper = (float(bound) for bound in cs.interval())
        except Exception:
            continue
        tracer.event(
            "driver.convergence",
            consumer=f"NormalMixtureCS[welfare:{family}]",
            n=int(n),
            lower=lower,
            upper=upper,
            width=upper - lower,
        )


@dataclass(frozen=True)
class SweepRecord:
    """One point of a sweep: the parameters and the measured quantities."""

    parameter: float
    mixing_time: float
    relaxation_time: float
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SweepResult:
    """A full sweep: records plus the name of the swept parameter."""

    parameter_name: str
    records: tuple[SweepRecord, ...]

    def parameters(self) -> np.ndarray:
        """Swept parameter values, in sweep order."""
        return np.array([r.parameter for r in self.records], dtype=float)

    def mixing_times(self) -> np.ndarray:
        """Measured mixing times, in sweep order."""
        return np.array([r.mixing_time for r in self.records], dtype=float)

    def relaxation_times(self) -> np.ndarray:
        """Measured relaxation times, in sweep order."""
        return np.array([r.relaxation_time for r in self.records], dtype=float)

    def as_rows(self) -> list[list[object]]:
        """Rows suitable for :func:`repro.analysis.report.render_table`."""
        rows: list[list[object]] = []
        for r in self.records:
            row: list[object] = [r.parameter, r.mixing_time, r.relaxation_time]
            row.extend(r.extra.values())
            rows.append(row)
        return rows


def beta_sweep(
    game: Game,
    betas: Sequence[float],
    epsilon: float = 0.25,
    max_time: int = 10**7,
    include_relaxation: bool = True,
    extra: Callable[[Game, float], dict] | None = None,
) -> SweepResult:
    """Measure mixing (and optionally relaxation) time over a grid of betas."""
    records = []
    for beta in betas:
        beta = float(beta)
        mix = measure_mixing_time(game, beta, epsilon=epsilon, max_time=max_time)
        relax = measure_relaxation_time(game, beta) if include_relaxation else float("nan")
        extras = extra(game, beta) if extra is not None else {}
        records.append(
            SweepRecord(
                parameter=beta,
                mixing_time=float(mix.mixing_time),
                relaxation_time=float(relax),
                extra=extras,
            )
        )
    return SweepResult(parameter_name="beta", records=tuple(records))


def ensemble_beta_sweep(
    game: Game,
    betas: Sequence[float],
    num_replicas: int = 1024,
    epsilon: float = 0.25,
    max_time: int = 10**5,
    rng: np.random.Generator | None = None,
    extra: Callable[[Game, float], dict] | None = None,
    alpha: float | None = None,
    seed: int | np.random.SeedSequence | None = None,
    executor=None,
    store=None,
    store_tag: str | None = None,
    tracer=None,
) -> SweepResult:
    """Sampled mixing-time sweep via the batched replica ensemble.

    Drop-in companion to :func:`beta_sweep` for games whose profile space is
    beyond the dense/spectral pipeline: each grid point runs
    :func:`~repro.core.mixing.estimate_mixing_time_ensemble` instead of the
    exact computation.  Relaxation times are not available in this regime
    and are reported as NaN; each record's ``extra`` carries the TV value at
    the reported estimate, an explicit ``converged`` flag (grid points that
    never crossed ``epsilon`` report the ``-1`` sentinel as their mixing
    time, not the horizon), and — when ``alpha`` is given — the endpoints
    of the anytime-valid TV sampling band at the stopping checkpoint
    (certified stopping; see
    :func:`~repro.core.mixing.estimate_tv_convergence`).

    ``seed`` makes the whole sweep reproducible (one spawned master-seed
    child per grid point; mutually exclusive with ``rng``), ``executor``
    runs every grid point on the sharded multi-process TV driver
    (shard-count-invariant results; see
    :func:`~repro.core.mixing.estimate_tv_convergence`), and ``store``
    (an :class:`~repro.parallel.ExperimentStore` or a directory path)
    caches each grid point under a content address of its spec — cells
    already in the store are loaded instead of re-simulated (their
    ``extra`` carries ``provenance = "store"``), so a completed sweep
    re-runs for free and a killed sweep resumes from its last completed
    cell.  ``store`` requires ``seed``.  The game identifies itself in
    the spec by content (``store_spec()``); ``store_tag`` *adds* a
    caller-owned label to the spec and replaces the ``extra`` callable's
    description when it has no stable name (a lambda) — it never
    replaces the game identity, so reusing a tag across games cannot
    collide their caches.

    ``tracer`` (:mod:`repro.obs`) records the sweep's cell lifecycle —
    ``sweep.begin`` / ``sweep.cell`` / ``sweep.end`` events plus
    sweep-level ``store.hit`` / ``store.miss`` counters that agree with
    :func:`~repro.analysis.report.provenance_summary` — and is threaded
    through to the per-cell estimator; tracing never changes the sample
    stream.
    """
    reject_seed_rng_conflict(seed, rng)
    tracer = as_tracer(tracer)
    store = as_store(store, tracer=tracer)
    require_store_seed(store, seed)
    require_executor_seed(executor, seed)
    executor, owned_executor = claim_executor(executor)
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence) or seed is None
        else np.random.SeedSequence(seed)
    )
    betas = [float(beta) for beta in betas]
    if tracer.enabled:
        tracer.event(
            "sweep.begin",
            sweep="ensemble_beta_sweep",
            cells=len(betas),
            store=store is not None,
            sharded=executor is not None,
        )
    records = []
    try:
        for beta in betas:
            cell_seed = root.spawn(1)[0] if root is not None else None
            spec = None
            if store is not None:
                spec = {
                    "sweep": "ensemble_beta_sweep",
                    "game": describe(game),
                    "tag": store_tag,
                    "beta": beta,
                    "num_replicas": int(num_replicas),
                    "epsilon": float(epsilon),
                    "max_time": int(max_time),
                    "alpha": alpha,
                    "extra": _described_factories(store_tag, extra=extra),
                    # serial (one shared generator) and sharded (one stream
                    # per replica) runs draw different samples from the same
                    # seed; the contract is part of the cell's identity
                    "randomness": "sharded" if executor is not None else "serial",
                    "seed": describe(cell_seed),
                }
                cached = _cached_record(store, spec)
                if cached is not None:
                    if tracer.enabled:
                        tracer.count("store.hit")
                        tracer.event(
                            "sweep.cell",
                            sweep="ensemble_beta_sweep",
                            cell=beta,
                            provenance="store",
                        )
                    records.append(cached)
                    continue
            if store is not None and tracer.enabled:
                tracer.count("store.miss")
            tic = perf_counter() if tracer.enabled else 0.0
            estimate = estimate_mixing_time_ensemble(
                game,
                beta,
                num_replicas=num_replicas,
                epsilon=epsilon,
                max_time=max_time,
                rng=(
                    np.random.default_rng(cell_seed)
                    if cell_seed is not None and executor is None
                    else rng
                ),
                alpha=alpha,
                executor=executor,
                seed=cell_seed if executor is not None else None,
                tracer=tracer,
            )
            extras = {
                "tv_at_estimate": float(estimate.tv_curve[-1, 1]),
                "capped": estimate.capped,
                "converged": estimate.converged,
            }
            if estimate.tv_band is not None:
                extras["tv_lower"] = float(estimate.tv_band[-1, 0])
                extras["tv_upper"] = float(estimate.tv_band[-1, 1])
            if extra is not None:
                extras.update(extra(game, beta))
            record = SweepRecord(
                parameter=beta,
                mixing_time=float(estimate.mixing_time_estimate),
                relaxation_time=float("nan"),
                extra=extras,
            )
            records.append(
                _store_record(store, spec, record) if store is not None else record
            )
            if tracer.enabled:
                tracer.event(
                    "sweep.cell",
                    sweep="ensemble_beta_sweep",
                    cell=beta,
                    provenance="computed",
                    seconds=perf_counter() - tic,
                )
        if tracer.enabled:
            tracer.event(
                "sweep.end", sweep="ensemble_beta_sweep", cells=len(records)
            )
    finally:
        if owned_executor:
            executor.close()
    return SweepResult(parameter_name="beta", records=tuple(records))


def dynamics_family_sweep(
    game: Game,
    dynamics_factories: Mapping[str, Callable[[Game], object]]
    | Sequence[tuple[str, Callable[[Game], object]]],
    reference: np.ndarray | None = None,
    num_replicas: int = 1024,
    epsilon: float = 0.25,
    max_time: int = 10**4,
    check_every: int | None = None,
    start: Sequence[int] | int | None = None,
    escape_states: Sequence[int] | np.ndarray | None = None,
    max_escape_steps: int = 10**5,
    rng: np.random.Generator | None = None,
    welfare_alpha: float = 0.05,
    seed: int | np.random.SeedSequence | None = None,
    executor=None,
    store=None,
    store_tag: str | None = None,
    tail_q: float | None = None,
    tracer=None,
) -> SweepResult:
    """Compare dynamics families on one game via the batched engine.

    The sweep axis is a *dynamics factory*: each entry maps the game to a
    dynamics object exposing ``ensemble`` — the standard
    :class:`~repro.core.LogitDynamics` or any Section 6 variant (parallel,
    best response, annealed schedules, round-robin), at any ``beta`` or
    ``beta_t`` schedule.  For every family the sweep measures, on one
    engine-backed replica ensemble each:

    * the time for the ensemble's empirical distribution to come within
      ``epsilon`` TV of ``reference`` (per family when ``reference`` is
      ``None``: the family's own ``stationary_distribution()``; pass the
      Gibbs measure explicitly to diagnose *which* families do **not**
      converge to Gibbs — e.g. the parallel trap), reported as the record's
      ``mixing_time``;
    * when ``escape_states`` is given, the empirical escape time from that
      well (mean over escaped replicas, plus the escaped fraction), which
      is the metastability comparison across families.

    Every record's ``extra`` also carries ``welfare_lower`` /
    ``welfare_upper`` — a level-``welfare_alpha`` confidence interval for
    the settled ensemble's mean welfare (CLT-style normal-mixture
    boundary) — and an explicit ``converged`` flag next to the legacy
    ``capped`` one, so the sweep tables render error bars and
    non-convergence honestly.

    Records carry ``parameter = position in the sweep`` and the family name
    in ``extra["dynamics"]``; non-convergent families come back with
    ``extra["capped"] = True`` rather than an error (a best-response chain
    pinned at a Nash equilibrium is a result, not a failure).  Annealed
    families with a finite schedule are clamped to their horizon by the
    estimator and the engine's first-passage machinery, so running out of
    schedule is likewise reported as ``capped``, not raised.

    ``seed`` makes the sweep reproducible — every family gets its own
    spawned master-seed children (one for the TV measurement, one for the
    escape ensemble; mutually exclusive with ``rng``).  ``executor`` runs
    each family's TV measurement on the sharded multi-process driver
    (sequential families only — the per-replica-stream contract; see
    :func:`~repro.core.mixing.estimate_tv_convergence`).  ``store`` caches
    each family's cell under a content address of (game, family *name*,
    parameters, seed): the name — the mapping key — identifies the
    factory in the spec, so renaming a family recomputes it while
    reordering families does not.  ``store`` requires ``seed``.  The game
    identifies itself by content (``store_spec()``); ``store_tag`` *adds*
    a caller-owned label to every cell spec (useful to disambiguate games
    without a ``store_spec``) — it never replaces the game identity.

    ``tail_q`` (requires ``escape_states``) adds a certified quantile of
    the horizon-truncated escape time per family: a
    :class:`~repro.stats.quantile.QuantileCS` evaluated once over the
    fixed escape ensemble (one-shot use of the time-uniform boundary —
    conservative, never invalid, same caveat as the welfare interval),
    reported in ``extra`` as ``escape_quantile_q`` /
    ``escape_quantile`` / ``escape_quantile_lower`` /
    ``escape_quantile_upper``.

    ``tracer`` (:mod:`repro.obs`) records the sweep's cell lifecycle —
    ``sweep.begin`` / ``sweep.cell`` / ``sweep.end`` events plus
    sweep-level ``store.hit`` / ``store.miss`` counters that agree with
    :func:`~repro.analysis.report.provenance_summary` — threads through
    to the TV estimator and the escape ensemble, and replays each
    family's welfare samples as a ``driver.convergence`` CS-width curve.
    Tracing never changes the sample stream: traced and untraced runs of
    the same seed produce bit-for-bit identical records.
    """
    if tail_q is not None and escape_states is None:
        raise ValueError(
            "tail_q certifies a quantile of the escape time; pass "
            "escape_states to say which well the escapes are measured from"
        )
    if isinstance(dynamics_factories, Mapping):
        entries = list(dynamics_factories.items())
    else:
        entries = list(dynamics_factories)
    if not entries:
        raise ValueError("need at least one dynamics factory to sweep")
    reject_seed_rng_conflict(seed, rng)
    tracer = as_tracer(tracer)
    store = as_store(store, tracer=tracer)
    require_store_seed(store, seed)
    require_executor_seed(executor, seed)
    executor, owned_executor = claim_executor(executor)
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence) or seed is None
        else np.random.SeedSequence(seed)
    )
    rng = np.random.default_rng() if rng is None and root is None else rng
    if tracer.enabled:
        tracer.event(
            "sweep.begin",
            sweep="dynamics_family_sweep",
            cells=len(entries),
            store=store is not None,
            sharded=executor is not None,
        )
    records = []
    try:
        for position, (name, factory) in enumerate(entries):
            tv_seed, escape_seed = (
                _named_seed_children(root, name, 2)
                if root is not None
                else (None, None)
            )
            spec = None
            if store is not None:
                spec = {
                    "sweep": "dynamics_family_sweep",
                    "game": describe(game),
                    "tag": store_tag,
                    "family": str(name),
                    "reference": describe(
                        None if reference is None else np.asarray(reference, dtype=float)
                    ),
                    "num_replicas": int(num_replicas),
                    "epsilon": float(epsilon),
                    "max_time": int(max_time),
                    "check_every": check_every,
                    "start": describe(start),
                    "escape_states": describe(
                        None
                        if escape_states is None
                        else np.asarray(escape_states, dtype=np.int64)
                    ),
                    "max_escape_steps": int(max_escape_steps),
                    "welfare_alpha": float(welfare_alpha),
                    # serial and sharded TV drivers draw different samples
                    # from the same seed; the contract is part of the spec
                    "randomness": "sharded" if executor is not None else "serial",
                    "seed": [describe(tv_seed), describe(escape_seed)],
                }
                # joins the spec only when set — pre-tail cells keep their
                # content addresses
                if tail_q is not None:
                    spec["tail_q"] = float(tail_q)
                cached = _cached_record(store, spec)
                if cached is not None:
                    if tracer.enabled:
                        tracer.count("store.hit")
                        tracer.event(
                            "sweep.cell",
                            sweep="dynamics_family_sweep",
                            cell=str(name),
                            provenance="store",
                        )
                    # parameter is the *current* position in the sweep order,
                    # not whatever position the cell was computed at
                    records.append(
                        SweepRecord(
                            parameter=float(position),
                            mixing_time=cached.mixing_time,
                            relaxation_time=cached.relaxation_time,
                            extra=cached.extra,
                        )
                    )
                    continue
            if store is not None and tracer.enabled:
                tracer.count("store.miss")
            tic = perf_counter() if tracer.enabled else 0.0
            dynamics = factory(game)
            if reference is None:
                if not hasattr(dynamics, "stationary_distribution"):
                    raise ValueError(
                        f"dynamics family {name!r} exposes no stationary_"
                        f"distribution(); pass an explicit reference distribution"
                    )
                target = np.asarray(dynamics.stationary_distribution(), dtype=float)
            else:
                target = np.asarray(reference, dtype=float)
            estimate = estimate_tv_convergence(
                dynamics,
                target,
                num_replicas=num_replicas,
                epsilon=epsilon,
                start=start,
                max_time=max_time,
                check_every=check_every,
                rng=(
                    np.random.default_rng(tv_seed)
                    if tv_seed is not None and executor is None
                    else rng
                ),
                executor=executor,
                seed=tv_seed if executor is not None else None,
                tracer=tracer,
            )
            # utilitarian welfare of the settled ensemble: one batched
            # all-player utility gather over the final replica states, with a
            # CLT-style confidence interval for the mean (one-shot evaluation
            # of the time-uniform boundary — conservative, never invalid)
            welfare_samples = game.utility_profile_many(
                estimate.final_indices
            ).sum(axis=1)
            welfare_cs = NormalMixtureCS(alpha=welfare_alpha)
            welfare_cs.update(welfare_samples)
            welfare_lower, welfare_upper = welfare_cs.interval()
            _trace_welfare_curve(tracer, str(name), welfare_samples, welfare_alpha)
            extras: dict = {
                "dynamics": name,
                "tv_at_estimate": float(estimate.tv_curve[-1, 1]),
                "capped": estimate.capped,
                "converged": estimate.converged,
                "mean_welfare": float(welfare_samples.mean()),
                "welfare_lower": float(welfare_lower),
                "welfare_upper": float(welfare_upper),
            }
            if escape_states is not None:
                well = np.unique(np.asarray(escape_states, dtype=np.int64))
                escape_rng = (
                    np.random.default_rng(escape_seed) if escape_seed is not None else rng
                )
                sim = dynamics.ensemble(
                    num_replicas,
                    start_indices=escape_rng.choice(well, size=num_replicas),
                    rng=escape_rng,
                    tracer=tracer,
                )
                times = sim.exit_times(well, max_steps=max_escape_steps)
                escaped = times[times >= 0]
                extras["escape_fraction"] = float(escaped.size / times.size)
                extras["mean_escape_time"] = (
                    float(escaped.mean()) if escaped.size else float("nan")
                )
                if tail_q is not None:
                    # quantile of the *truncated* escape time min(tau, horizon):
                    # one-shot evaluation of the time-uniform quantile CS over
                    # the fixed ensemble (conservative, never invalid)
                    truncated = np.where(
                        times < 0, max_escape_steps, times
                    ).astype(float)
                    tail_cs = QuantileCS(
                        float(tail_q),
                        alpha=welfare_alpha,
                        support=(0.0, float(max_escape_steps)),
                    )
                    tail_cs.update(truncated)
                    tail = tail_cs.result()
                    extras["escape_quantile_q"] = float(tail.q)
                    extras["escape_quantile"] = float(tail.estimate)
                    extras["escape_quantile_lower"] = float(tail.lower)
                    extras["escape_quantile_upper"] = float(tail.upper)
            record = SweepRecord(
                parameter=float(position),
                mixing_time=float(estimate.mixing_time_estimate),
                relaxation_time=float("nan"),
                extra=extras,
            )
            records.append(_store_record(store, spec, record) if store is not None else record)
            if tracer.enabled:
                tracer.event(
                    "sweep.cell",
                    sweep="dynamics_family_sweep",
                    cell=str(name),
                    provenance="computed",
                    seconds=perf_counter() - tic,
                )
        if tracer.enabled:
            tracer.event(
                "sweep.end", sweep="dynamics_family_sweep", cells=len(records)
            )
    finally:
        if owned_executor:
            executor.close()
    return SweepResult(parameter_name="dynamics_family", records=tuple(records))


def size_sweep(
    game_factory: Callable[[int], Game],
    sizes: Sequence[int],
    beta: float,
    epsilon: float = 0.25,
    max_time: int = 10**7,
    include_relaxation: bool = True,
    extra: Callable[[Game, int], dict] | None = None,
) -> SweepResult:
    """Measure mixing time of ``game_factory(n)`` over a grid of sizes ``n``."""
    records = []
    for n in sizes:
        game = game_factory(int(n))
        mix = measure_mixing_time(game, beta, epsilon=epsilon, max_time=max_time)
        relax = measure_relaxation_time(game, beta) if include_relaxation else float("nan")
        extras = extra(game, int(n)) if extra is not None else {}
        records.append(
            SweepRecord(
                parameter=float(n),
                mixing_time=float(mix.mixing_time),
                relaxation_time=float(relax),
                extra=extras,
            )
        )
    return SweepResult(parameter_name="n", records=tuple(records))


def hitting_time_size_sweep(
    game_factory: Callable[[int], Game],
    sizes: Sequence[int],
    beta: float,
    start_factory: Callable[[Game], np.ndarray],
    target_factory: Callable[[Game], Callable[[np.ndarray], np.ndarray]],
    num_replicas: int = 64,
    max_steps: int = 10**5,
    rng: np.random.Generator | None = None,
    dynamics_factory: Callable[[Game, float], object] | None = None,
    precision: float | None = None,
    alpha: float = 0.05,
    seed: int | np.random.SeedSequence | None = None,
    chunk_size: int = 64,
    max_replicas: int = 4096,
    executor=None,
    store=None,
    store_tag: str | None = None,
    q: float | None = None,
    precision_quantile: float | None = None,
    tracer=None,
) -> SweepResult:
    """Monte-Carlo hitting-time scaling over system size, fully index-free.

    The size-scaling companion of :func:`size_sweep` for the regime where
    neither the dense pipeline nor profile indices exist: each grid point
    builds ``game_factory(n)`` (typically a
    :class:`~repro.games.local.LocalInteractionGame` on an ``n``-node
    graph), starts ``num_replicas`` engine replicas at
    ``start_factory(game)`` (an ``(n,)`` or ``(R, n)`` profile array) and
    measures first-hitting times of the *profile predicate* returned by
    ``target_factory(game)`` — e.g. a magnetization threshold.  Because
    targets are predicates and the engine auto-selects the matrix state
    backend past int64, the sweep runs unchanged from ``n = 10`` to
    ``n = 1000+``.

    Records carry ``parameter = n``; the hitting statistics live in
    ``extra`` (``mean_hitting_time`` over reached replicas,
    ``median_hitting_time``, ``reached_fraction``), and the mixing /
    relaxation columns are NaN (they are not measured here).  Replicas
    that never reach the target within ``max_steps`` are excluded from the
    mean — a ``reached_fraction`` well below 1 flags that the estimate is
    censored.

    ``precision`` switches every grid point to the adaptive chunked
    estimator (:func:`~repro.core.metastability.empirical_hitting_times`
    with ``precision=``): per size, replica chunks keep coming until the
    anytime-valid interval for the truncated mean ``E[min(tau,
    max_steps)]`` is at most ``precision * max_steps`` wide, and the
    ``extra`` dict instead carries the interval (``mean_hitting_time``,
    ``hitting_lower``, ``hitting_upper``), the replica count the point
    actually needed (``num_replicas_used``) and ``stopped_early``; instead
    of the legacy ``reached_fraction`` it reports ``truncated_fraction``
    — the fraction of samples clamped at the horizon, under whose
    convention a replica hitting exactly *at* ``max_steps`` is
    indistinguishable from a censored one (their contribution to the
    truncated mean is identical).  Grid points are seeded from one master
    ``seed`` (a spawned child per size), so the whole sweep is
    reproducible end to end.

    ``executor`` (adaptive mode only) shards every grid point's replica
    chunks across processes via :class:`repro.parallel.ShardedExecutor`;
    pooled samples per cell are bit-for-bit identical to the serial run
    for any shard count.  ``store`` (an
    :class:`~repro.parallel.ExperimentStore` or directory path; adaptive
    mode with an explicit ``seed`` only) caches every grid point under a
    content address of its spec: cells found in the store are loaded with
    zero ensemble steps (``extra["provenance"] = "store"``) and cells are
    written the moment they complete, so a killed sweep resumes from its
    last completed cell.  The spec names the factories by
    ``module.qualname``; for lambdas pass ``store_tag=`` — a caller-owned
    stable name for the (game, start, target, dynamics) factory bundle.

    ``q`` / ``precision_quantile`` (adaptive mode only; fractions of
    ``max_steps``, like ``precision``) certify — and, with
    ``precision_quantile``, stop on — a quantile of the truncated hitting
    time per grid point, on the same sample stream as the mean; the
    ``extra`` dict then also carries ``quantile_q``, ``quantile_estimate``,
    ``quantile_lower`` and ``quantile_upper``.

    ``tracer`` (:mod:`repro.obs`) records the sweep's cell lifecycle —
    ``sweep.begin`` / ``sweep.cell`` / ``sweep.end`` events plus
    sweep-level ``store.hit`` / ``store.miss`` counters that agree with
    :func:`~repro.analysis.report.provenance_summary` — and threads
    through to the adaptive estimator's sample driver; tracing never
    changes the sample stream.
    """
    rng = np.random.default_rng() if rng is None else rng
    tracer = as_tracer(tracer)
    if q is None and precision_quantile is not None:
        raise ValueError(
            "precision_quantile= sets the tail interval's target width; pass "
            "q= (the quantile level, e.g. 0.99) to say which quantile to "
            "certify"
        )
    if q is not None and precision is None:
        raise ValueError(
            "the sweep's tail columns ride the adaptive estimator; pass "
            "precision= (and seed=) together with q="
        )
    store = as_store(store, tracer=tracer)
    if store is not None and precision is None:
        raise ValueError(
            "store= caches adaptive (precision=) cells, which are pure "
            "functions of their spec; the fixed-replica path draws from a "
            "shared rng stream and cannot be cached coherently — pass "
            "precision= (and seed=)"
        )
    reject_executor_without_precision(
        precision, executor, fixed_path="runs one shared-rng ensemble per size"
    )
    require_store_seed(store, seed)
    require_executor_seed(executor, seed)
    executor, owned_executor = claim_executor(executor)
    sizes = [int(n) for n in sizes]
    if tracer.enabled:
        tracer.event(
            "sweep.begin",
            sweep="hitting_time_size_sweep",
            cells=len(sizes),
            store=store is not None,
            sharded=executor is not None,
        )
    records = []
    if precision is not None:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
    try:
        for n in sizes:
            if precision is not None:
                # spawned unconditionally — cache hits must not shift the
                # seeds of the cells that still need computing
                cell_seed = root.spawn(1)[0]
                spec = None
                if store is not None:
                    spec = {
                        "sweep": "hitting_time_size_sweep",
                        "factories": _described_factories(
                            store_tag,
                            game_factory=game_factory,
                            start_factory=start_factory,
                            target_factory=target_factory,
                            dynamics_factory=dynamics_factory,
                        ),
                        "n": int(n),
                        "beta": float(beta),
                        "max_steps": int(max_steps),
                        "precision": float(precision),
                        "alpha": float(alpha),
                        "chunk_size": int(chunk_size),
                        "max_replicas": int(max_replicas),
                        "seed": describe(cell_seed),
                    }
                    # tail knobs join the spec only when set, so pre-tail
                    # cells keep their content addresses (cache stability)
                    if q is not None:
                        spec["q"] = float(q)
                    if precision_quantile is not None:
                        spec["precision_quantile"] = float(precision_quantile)
                    cached = _cached_record(store, spec)
                    if cached is not None:
                        if tracer.enabled:
                            tracer.count("store.hit")
                            tracer.event(
                                "sweep.cell",
                                sweep="hitting_time_size_sweep",
                                cell=int(n),
                                provenance="store",
                            )
                        records.append(cached)
                        continue
                if store is not None and tracer.enabled:
                    tracer.count("store.miss")
            tic = perf_counter() if tracer.enabled else 0.0
            game = game_factory(int(n))
            if dynamics_factory is None:
                from ..core.logit import LogitDynamics

                dynamics = LogitDynamics(game, float(beta))
            else:
                dynamics = dynamics_factory(game, float(beta))
            if precision is not None:
                from ..core.metastability import empirical_hitting_times

                estimate = empirical_hitting_times(
                    game,
                    float(beta),
                    np.asarray(start_factory(game)),
                    target_factory(game),
                    max_steps=max_steps,
                    dynamics=dynamics,
                    precision=precision,
                    alpha=alpha,
                    chunk_size=chunk_size,
                    max_replicas=max_replicas,
                    seed=cell_seed,
                    keep_samples=True,
                    executor=executor,
                    q=q,
                    precision_quantile=precision_quantile,
                    tracer=tracer,
                )
                times = estimate.samples
                extras = {
                    "mean_hitting_time": float(estimate.estimate),
                    "hitting_lower": float(estimate.lower),
                    "hitting_upper": float(estimate.upper),
                    "num_replicas_used": int(estimate.n),
                    "stopped_early": bool(estimate.stopped_early),
                    "truncated_fraction": float(
                        np.count_nonzero(times >= max_steps) / times.size
                    ),
                }
                if estimate.quantile is not None:
                    extras["quantile_q"] = float(estimate.quantile.q)
                    extras["quantile_estimate"] = float(estimate.quantile.estimate)
                    extras["quantile_lower"] = float(estimate.quantile.lower)
                    extras["quantile_upper"] = float(estimate.quantile.upper)
                record = SweepRecord(
                    parameter=float(n),
                    mixing_time=float("nan"),
                    relaxation_time=float("nan"),
                    extra=extras,
                )
                records.append(
                    _store_record(store, spec, record) if store is not None else record
                )
                if tracer.enabled:
                    tracer.event(
                        "sweep.cell",
                        sweep="hitting_time_size_sweep",
                        cell=int(n),
                        provenance="computed",
                        seconds=perf_counter() - tic,
                    )
                continue
            sim = dynamics.ensemble(
                num_replicas,
                start=np.asarray(start_factory(game)),
                rng=rng,
                tracer=tracer,
            )
            times = sim.hitting_times(target_factory(game), max_steps=max_steps)
            reached = times[times >= 0]
            records.append(
                SweepRecord(
                    parameter=float(n),
                    mixing_time=float("nan"),
                    relaxation_time=float("nan"),
                    extra={
                        "mean_hitting_time": (
                            float(reached.mean()) if reached.size else float("nan")
                        ),
                        "median_hitting_time": (
                            float(np.median(reached)) if reached.size else float("nan")
                        ),
                        "reached_fraction": float(reached.size / times.size),
                    },
                )
            )
            if tracer.enabled:
                tracer.event(
                    "sweep.cell",
                    sweep="hitting_time_size_sweep",
                    cell=int(n),
                    provenance="computed",
                    seconds=perf_counter() - tic,
                )
        if tracer.enabled:
            tracer.event(
                "sweep.end", sweep="hitting_time_size_sweep", cells=len(records)
            )
    finally:
        if owned_executor:
            executor.close()
    return SweepResult(parameter_name="n", records=tuple(records))


def exponential_growth_rate(parameters: np.ndarray, values: np.ndarray) -> float:
    """Least-squares slope of ``log(values)`` against ``parameters``.

    For a quantity growing like ``C * exp(rate * p)`` this recovers
    ``rate``; the benchmarks compare the fitted rate against the paper's
    predicted exponent (``DeltaPhi`` for Theorem 3.4/3.5, ``zeta`` for
    Theorem 3.8/3.9, ``2 delta`` for the ring).  Non-positive values are
    rejected because they have no logarithm.
    """
    p = np.asarray(parameters, dtype=float)
    v = np.asarray(values, dtype=float)
    if p.shape != v.shape or p.ndim != 1:
        raise ValueError("parameters and values must be 1-D arrays of equal length")
    if p.size < 2:
        raise ValueError("need at least two points to fit a growth rate")
    if np.any(v <= 0):
        raise ValueError("values must be positive to fit an exponential growth rate")
    slope, _intercept = np.polyfit(p, np.log(v), deg=1)
    return float(slope)
