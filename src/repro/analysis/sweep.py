"""Parameter sweeps over beta, system size and graph topology.

The paper's qualitative claims are about *scaling*: mixing time exponential
in ``beta * DeltaPhi`` (Theorem 3.4/3.5), polynomial for small ``beta``
(Theorem 3.6), beta-independent for dominant-strategy games (Theorem 4.2),
and exponential in ``2 delta beta`` on the ring (Theorems 5.6/5.7).  The
sweep helpers here run a game family over a grid of parameters, collect the
measured mixing/relaxation times next to the paper's bounds, and extract
the empirical exponential growth rate so the benchmarks can check slopes as
well as sandwich inequalities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.mixing import (
    estimate_mixing_time_ensemble,
    estimate_tv_convergence,
    measure_mixing_time,
    measure_relaxation_time,
)
from ..games.base import Game
from ..stats.confseq import NormalMixtureCS

__all__ = [
    "SweepRecord",
    "SweepResult",
    "beta_sweep",
    "dynamics_family_sweep",
    "ensemble_beta_sweep",
    "hitting_time_size_sweep",
    "size_sweep",
    "exponential_growth_rate",
]


@dataclass(frozen=True)
class SweepRecord:
    """One point of a sweep: the parameters and the measured quantities."""

    parameter: float
    mixing_time: float
    relaxation_time: float
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SweepResult:
    """A full sweep: records plus the name of the swept parameter."""

    parameter_name: str
    records: tuple[SweepRecord, ...]

    def parameters(self) -> np.ndarray:
        """Swept parameter values, in sweep order."""
        return np.array([r.parameter for r in self.records], dtype=float)

    def mixing_times(self) -> np.ndarray:
        """Measured mixing times, in sweep order."""
        return np.array([r.mixing_time for r in self.records], dtype=float)

    def relaxation_times(self) -> np.ndarray:
        """Measured relaxation times, in sweep order."""
        return np.array([r.relaxation_time for r in self.records], dtype=float)

    def as_rows(self) -> list[list[object]]:
        """Rows suitable for :func:`repro.analysis.report.render_table`."""
        rows: list[list[object]] = []
        for r in self.records:
            row: list[object] = [r.parameter, r.mixing_time, r.relaxation_time]
            row.extend(r.extra.values())
            rows.append(row)
        return rows


def beta_sweep(
    game: Game,
    betas: Sequence[float],
    epsilon: float = 0.25,
    max_time: int = 10**7,
    include_relaxation: bool = True,
    extra: Callable[[Game, float], dict] | None = None,
) -> SweepResult:
    """Measure mixing (and optionally relaxation) time over a grid of betas."""
    records = []
    for beta in betas:
        beta = float(beta)
        mix = measure_mixing_time(game, beta, epsilon=epsilon, max_time=max_time)
        relax = measure_relaxation_time(game, beta) if include_relaxation else float("nan")
        extras = extra(game, beta) if extra is not None else {}
        records.append(
            SweepRecord(
                parameter=beta,
                mixing_time=float(mix.mixing_time),
                relaxation_time=float(relax),
                extra=extras,
            )
        )
    return SweepResult(parameter_name="beta", records=tuple(records))


def ensemble_beta_sweep(
    game: Game,
    betas: Sequence[float],
    num_replicas: int = 1024,
    epsilon: float = 0.25,
    max_time: int = 10**5,
    rng: np.random.Generator | None = None,
    extra: Callable[[Game, float], dict] | None = None,
    alpha: float | None = None,
) -> SweepResult:
    """Sampled mixing-time sweep via the batched replica ensemble.

    Drop-in companion to :func:`beta_sweep` for games whose profile space is
    beyond the dense/spectral pipeline: each grid point runs
    :func:`~repro.core.mixing.estimate_mixing_time_ensemble` instead of the
    exact computation.  Relaxation times are not available in this regime
    and are reported as NaN; each record's ``extra`` carries the TV value at
    the reported estimate, an explicit ``converged`` flag (grid points that
    never crossed ``epsilon`` report the ``-1`` sentinel as their mixing
    time, not the horizon), and — when ``alpha`` is given — the endpoints
    of the anytime-valid TV sampling band at the stopping checkpoint
    (certified stopping; see
    :func:`~repro.core.mixing.estimate_tv_convergence`).
    """
    records = []
    for beta in betas:
        beta = float(beta)
        estimate = estimate_mixing_time_ensemble(
            game,
            beta,
            num_replicas=num_replicas,
            epsilon=epsilon,
            max_time=max_time,
            rng=rng,
            alpha=alpha,
        )
        extras = {
            "tv_at_estimate": float(estimate.tv_curve[-1, 1]),
            "capped": estimate.capped,
            "converged": estimate.converged,
        }
        if estimate.tv_band is not None:
            extras["tv_lower"] = float(estimate.tv_band[-1, 0])
            extras["tv_upper"] = float(estimate.tv_band[-1, 1])
        if extra is not None:
            extras.update(extra(game, beta))
        records.append(
            SweepRecord(
                parameter=beta,
                mixing_time=float(estimate.mixing_time_estimate),
                relaxation_time=float("nan"),
                extra=extras,
            )
        )
    return SweepResult(parameter_name="beta", records=tuple(records))


def dynamics_family_sweep(
    game: Game,
    dynamics_factories: Mapping[str, Callable[[Game], object]]
    | Sequence[tuple[str, Callable[[Game], object]]],
    reference: np.ndarray | None = None,
    num_replicas: int = 1024,
    epsilon: float = 0.25,
    max_time: int = 10**4,
    check_every: int | None = None,
    start: Sequence[int] | int | None = None,
    escape_states: Sequence[int] | np.ndarray | None = None,
    max_escape_steps: int = 10**5,
    rng: np.random.Generator | None = None,
    welfare_alpha: float = 0.05,
) -> SweepResult:
    """Compare dynamics families on one game via the batched engine.

    The sweep axis is a *dynamics factory*: each entry maps the game to a
    dynamics object exposing ``ensemble`` — the standard
    :class:`~repro.core.LogitDynamics` or any Section 6 variant (parallel,
    best response, annealed schedules, round-robin), at any ``beta`` or
    ``beta_t`` schedule.  For every family the sweep measures, on one
    engine-backed replica ensemble each:

    * the time for the ensemble's empirical distribution to come within
      ``epsilon`` TV of ``reference`` (per family when ``reference`` is
      ``None``: the family's own ``stationary_distribution()``; pass the
      Gibbs measure explicitly to diagnose *which* families do **not**
      converge to Gibbs — e.g. the parallel trap), reported as the record's
      ``mixing_time``;
    * when ``escape_states`` is given, the empirical escape time from that
      well (mean over escaped replicas, plus the escaped fraction), which
      is the metastability comparison across families.

    Every record's ``extra`` also carries ``welfare_lower`` /
    ``welfare_upper`` — a level-``welfare_alpha`` confidence interval for
    the settled ensemble's mean welfare (CLT-style normal-mixture
    boundary) — and an explicit ``converged`` flag next to the legacy
    ``capped`` one, so the sweep tables render error bars and
    non-convergence honestly.

    Records carry ``parameter = position in the sweep`` and the family name
    in ``extra["dynamics"]``; non-convergent families come back with
    ``extra["capped"] = True`` rather than an error (a best-response chain
    pinned at a Nash equilibrium is a result, not a failure).  Annealed
    families with a finite schedule are clamped to their horizon by the
    estimator and the engine's first-passage machinery, so running out of
    schedule is likewise reported as ``capped``, not raised.
    """
    if isinstance(dynamics_factories, Mapping):
        entries = list(dynamics_factories.items())
    else:
        entries = list(dynamics_factories)
    if not entries:
        raise ValueError("need at least one dynamics factory to sweep")
    rng = np.random.default_rng() if rng is None else rng
    records = []
    for position, (name, factory) in enumerate(entries):
        dynamics = factory(game)
        if reference is None:
            if not hasattr(dynamics, "stationary_distribution"):
                raise ValueError(
                    f"dynamics family {name!r} exposes no stationary_"
                    f"distribution(); pass an explicit reference distribution"
                )
            target = np.asarray(dynamics.stationary_distribution(), dtype=float)
        else:
            target = np.asarray(reference, dtype=float)
        estimate = estimate_tv_convergence(
            dynamics,
            target,
            num_replicas=num_replicas,
            epsilon=epsilon,
            start=start,
            max_time=max_time,
            check_every=check_every,
            rng=rng,
        )
        # utilitarian welfare of the settled ensemble: one batched
        # all-player utility gather over the final replica states, with a
        # CLT-style confidence interval for the mean (one-shot evaluation
        # of the time-uniform boundary — conservative, never invalid)
        welfare_samples = game.utility_profile_many(
            estimate.final_indices
        ).sum(axis=1)
        welfare_cs = NormalMixtureCS(alpha=welfare_alpha)
        welfare_cs.update(welfare_samples)
        welfare_lower, welfare_upper = welfare_cs.interval()
        extras: dict = {
            "dynamics": name,
            "tv_at_estimate": float(estimate.tv_curve[-1, 1]),
            "capped": estimate.capped,
            "converged": estimate.converged,
            "mean_welfare": float(welfare_samples.mean()),
            "welfare_lower": float(welfare_lower),
            "welfare_upper": float(welfare_upper),
        }
        if escape_states is not None:
            well = np.unique(np.asarray(escape_states, dtype=np.int64))
            sim = dynamics.ensemble(
                num_replicas,
                start_indices=rng.choice(well, size=num_replicas),
                rng=rng,
            )
            times = sim.exit_times(well, max_steps=max_escape_steps)
            escaped = times[times >= 0]
            extras["escape_fraction"] = float(escaped.size / times.size)
            extras["mean_escape_time"] = (
                float(escaped.mean()) if escaped.size else float("nan")
            )
        records.append(
            SweepRecord(
                parameter=float(position),
                mixing_time=float(estimate.mixing_time_estimate),
                relaxation_time=float("nan"),
                extra=extras,
            )
        )
    return SweepResult(parameter_name="dynamics_family", records=tuple(records))


def size_sweep(
    game_factory: Callable[[int], Game],
    sizes: Sequence[int],
    beta: float,
    epsilon: float = 0.25,
    max_time: int = 10**7,
    include_relaxation: bool = True,
    extra: Callable[[Game, int], dict] | None = None,
) -> SweepResult:
    """Measure mixing time of ``game_factory(n)`` over a grid of sizes ``n``."""
    records = []
    for n in sizes:
        game = game_factory(int(n))
        mix = measure_mixing_time(game, beta, epsilon=epsilon, max_time=max_time)
        relax = measure_relaxation_time(game, beta) if include_relaxation else float("nan")
        extras = extra(game, int(n)) if extra is not None else {}
        records.append(
            SweepRecord(
                parameter=float(n),
                mixing_time=float(mix.mixing_time),
                relaxation_time=float(relax),
                extra=extras,
            )
        )
    return SweepResult(parameter_name="n", records=tuple(records))


def hitting_time_size_sweep(
    game_factory: Callable[[int], Game],
    sizes: Sequence[int],
    beta: float,
    start_factory: Callable[[Game], np.ndarray],
    target_factory: Callable[[Game], Callable[[np.ndarray], np.ndarray]],
    num_replicas: int = 64,
    max_steps: int = 10**5,
    rng: np.random.Generator | None = None,
    dynamics_factory: Callable[[Game, float], object] | None = None,
    precision: float | None = None,
    alpha: float = 0.05,
    seed: int | np.random.SeedSequence | None = None,
    chunk_size: int = 64,
    max_replicas: int = 4096,
) -> SweepResult:
    """Monte-Carlo hitting-time scaling over system size, fully index-free.

    The size-scaling companion of :func:`size_sweep` for the regime where
    neither the dense pipeline nor profile indices exist: each grid point
    builds ``game_factory(n)`` (typically a
    :class:`~repro.games.local.LocalInteractionGame` on an ``n``-node
    graph), starts ``num_replicas`` engine replicas at
    ``start_factory(game)`` (an ``(n,)`` or ``(R, n)`` profile array) and
    measures first-hitting times of the *profile predicate* returned by
    ``target_factory(game)`` — e.g. a magnetization threshold.  Because
    targets are predicates and the engine auto-selects the matrix state
    backend past int64, the sweep runs unchanged from ``n = 10`` to
    ``n = 1000+``.

    Records carry ``parameter = n``; the hitting statistics live in
    ``extra`` (``mean_hitting_time`` over reached replicas,
    ``median_hitting_time``, ``reached_fraction``), and the mixing /
    relaxation columns are NaN (they are not measured here).  Replicas
    that never reach the target within ``max_steps`` are excluded from the
    mean — a ``reached_fraction`` well below 1 flags that the estimate is
    censored.

    ``precision`` switches every grid point to the adaptive chunked
    estimator (:func:`~repro.core.metastability.empirical_hitting_times`
    with ``precision=``): per size, replica chunks keep coming until the
    anytime-valid interval for the truncated mean ``E[min(tau,
    max_steps)]`` is at most ``precision * max_steps`` wide, and the
    ``extra`` dict instead carries the interval (``mean_hitting_time``,
    ``hitting_lower``, ``hitting_upper``), the replica count the point
    actually needed (``num_replicas_used``) and ``stopped_early``; instead
    of the legacy ``reached_fraction`` it reports ``truncated_fraction``
    — the fraction of samples clamped at the horizon, under whose
    convention a replica hitting exactly *at* ``max_steps`` is
    indistinguishable from a censored one (their contribution to the
    truncated mean is identical).  Grid points are seeded from one master
    ``seed`` (a spawned child per size), so the whole sweep is
    reproducible end to end.
    """
    rng = np.random.default_rng() if rng is None else rng
    records = []
    if precision is not None:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
    for n in sizes:
        game = game_factory(int(n))
        if dynamics_factory is None:
            from ..core.logit import LogitDynamics

            dynamics = LogitDynamics(game, float(beta))
        else:
            dynamics = dynamics_factory(game, float(beta))
        if precision is not None:
            from ..core.metastability import empirical_hitting_times

            estimate = empirical_hitting_times(
                game,
                float(beta),
                np.asarray(start_factory(game)),
                target_factory(game),
                max_steps=max_steps,
                dynamics=dynamics,
                precision=precision,
                alpha=alpha,
                chunk_size=chunk_size,
                max_replicas=max_replicas,
                seed=root.spawn(1)[0],
                keep_samples=True,
            )
            times = estimate.samples
            records.append(
                SweepRecord(
                    parameter=float(n),
                    mixing_time=float("nan"),
                    relaxation_time=float("nan"),
                    extra={
                        "mean_hitting_time": float(estimate.estimate),
                        "hitting_lower": float(estimate.lower),
                        "hitting_upper": float(estimate.upper),
                        "num_replicas_used": int(estimate.n),
                        "stopped_early": bool(estimate.stopped_early),
                        "truncated_fraction": float(
                            np.count_nonzero(times >= max_steps) / times.size
                        ),
                    },
                )
            )
            continue
        sim = dynamics.ensemble(
            num_replicas, start=np.asarray(start_factory(game)), rng=rng
        )
        times = sim.hitting_times(target_factory(game), max_steps=max_steps)
        reached = times[times >= 0]
        records.append(
            SweepRecord(
                parameter=float(n),
                mixing_time=float("nan"),
                relaxation_time=float("nan"),
                extra={
                    "mean_hitting_time": (
                        float(reached.mean()) if reached.size else float("nan")
                    ),
                    "median_hitting_time": (
                        float(np.median(reached)) if reached.size else float("nan")
                    ),
                    "reached_fraction": float(reached.size / times.size),
                },
            )
        )
    return SweepResult(parameter_name="n", records=tuple(records))


def exponential_growth_rate(parameters: np.ndarray, values: np.ndarray) -> float:
    """Least-squares slope of ``log(values)`` against ``parameters``.

    For a quantity growing like ``C * exp(rate * p)`` this recovers
    ``rate``; the benchmarks compare the fitted rate against the paper's
    predicted exponent (``DeltaPhi`` for Theorem 3.4/3.5, ``zeta`` for
    Theorem 3.8/3.9, ``2 delta`` for the ring).  Non-positive values are
    rejected because they have no logarithm.
    """
    p = np.asarray(parameters, dtype=float)
    v = np.asarray(values, dtype=float)
    if p.shape != v.shape or p.ndim != 1:
        raise ValueError("parameters and values must be 1-D arrays of equal length")
    if p.size < 2:
        raise ValueError("need at least two points to fit a growth rate")
    if np.any(v <= 0):
        raise ValueError("values must be positive to fit an exponential growth rate")
    slope, _intercept = np.polyfit(p, np.log(v), deg=1)
    return float(slope)
