"""Plain-text table rendering for experiment output.

The benchmark harness prints, for every theorem, a table with one row per
parameter setting: the measured quantity, the paper's bound, and whether
the bound is respected.  The renderer here is dependency-free (no pandas)
and produces aligned, monospace-friendly tables that are easy to diff and
to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..stats.accumulators import StreamingEstimate
from ..stats.quantile import QuantileEstimate

__all__ = [
    "format_value",
    "format_interval",
    "provenance_summary",
    "render_table",
    "render_experiment",
]


def provenance_summary(result) -> str | None:
    """One-line provenance note for a store-backed sweep, or ``None``.

    Sweeps run with ``store=`` tag every record's ``extra`` with
    ``provenance`` — ``"store"`` for cells loaded from the experiment
    store, ``"computed"`` for cells simulated in this run.  This renders
    the tally as a notes line for :func:`render_experiment`, so report
    tables state how much of the grid was actually re-simulated; sweeps
    run without a store (no provenance tags) return ``None``.
    """
    tags = [r.extra.get("provenance") for r in result.records]
    tags = [t for t in tags if t is not None]
    if not tags:
        return None
    loaded = sum(1 for t in tags if t == "store")
    computed = len(tags) - loaded
    return (
        f"{loaded} of {len(tags)} cells loaded from the experiment store, "
        f"{computed} computed this run."
    )


def format_interval(
    estimate: float, lower: float, upper: float, precision: int = 4
) -> str:
    """``estimate [lower, upper]`` — the error-bar cell of the sweep tables.

    The ensemble estimators report never-converged runs with the ``-1``
    sentinel; an all-``-1`` triple renders as ``n/c`` (not converged)
    rather than the misleading pseudo-interval ``-1.0 [-1.0, -1.0]``.
    """
    if estimate == -1 and lower == -1 and upper == -1:
        return "n/c"
    return (
        f"{format_value(float(estimate), precision)} "
        f"[{format_value(float(lower), precision)}, "
        f"{format_value(float(upper), precision)}]"
    )


def format_value(value: object, precision: int = 4) -> str:
    """Human-friendly formatting of table cells (floats, ints, bools, inf).

    Interval-carrying estimates
    (:class:`~repro.stats.accumulators.StreamingEstimate`,
    :class:`~repro.stats.quantile.QuantileEstimate`) render as
    ``estimate [lower, upper]`` — quantile cells with a ``P99:`` style
    prefix — so sweep tables propagate error bars by simply putting the
    estimate object in the cell; a ``-1`` sentinel triple renders as
    ``n/c``.
    """
    if isinstance(value, StreamingEstimate):
        return format_interval(value.estimate, value.lower, value.upper, precision)
    if isinstance(value, QuantileEstimate):
        return (
            f"P{100 * value.q:g}: "
            f"{format_interval(value.estimate, value.lower, value.upper, precision)}"
        )
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        v = float(value)
        if np.isnan(v):
            return "nan"
        if np.isinf(v):
            return "inf" if v > 0 else "-inf"
        if v != 0 and (abs(v) >= 10**6 or abs(v) < 10 ** -(precision - 1)):
            return f"{v:.{precision}g}"
        return f"{v:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table with the given headers and rows."""
    headers = [str(h) for h in headers]
    str_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines = [header_line, sep]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_experiment(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: str | None = None,
    precision: int = 4,
) -> str:
    """Render a titled experiment block (title, table, optional notes)."""
    parts = [f"== {title} =="]
    parts.append(render_table(headers, rows, precision=precision))
    if notes:
        parts.append(notes.strip())
    return "\n".join(parts) + "\n"
