"""Stationary expected social welfare of the logit dynamics.

The companion paper the authors cite ([4], "Mixing time and stationary
expected social welfare of logit dynamics", SAGT 2010) evaluates the logit
dynamics not only by how fast it converges but by *how good* the states it
visits are: the expected social welfare under the stationary distribution.
This module implements those observables so the package covers that
evaluation axis as well:

* :func:`social_welfare_vector` — utilitarian welfare (sum of utilities) of
  every profile;
* :func:`stationary_expected_welfare` — its expectation under the logit
  stationary distribution at a given beta;
* :func:`optimal_welfare` / :func:`worst_equilibrium_welfare` — the usual
  price-of-anarchy style reference points;
* :func:`logit_price_of_anarchy` — the ratio between the optimum and the
  stationary expectation, as a function of beta;
* :func:`welfare_vs_beta` — a sweep helper for the welfare-vs-noise curves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.logit import LogitDynamics
from ..games.base import Game, pure_nash_equilibria

__all__ = [
    "social_welfare_vector",
    "stationary_expected_welfare",
    "optimal_welfare",
    "worst_equilibrium_welfare",
    "logit_price_of_anarchy",
    "welfare_vs_beta",
]


def social_welfare_vector(game: Game) -> np.ndarray:
    """Utilitarian social welfare ``W(x) = sum_i u_i(x)`` for every profile."""
    welfare = np.zeros(game.space.size, dtype=float)
    for player in range(game.num_players):
        welfare += game.utility_matrix(player)
    return welfare


def stationary_expected_welfare(game: Game, beta: float) -> float:
    """``E_pi[W]`` under the logit stationary distribution at inverse noise beta."""
    pi = LogitDynamics(game, beta).stationary_distribution()
    return float(np.dot(pi, social_welfare_vector(game)))


def optimal_welfare(game: Game) -> float:
    """The maximum social welfare over all profiles (the social optimum)."""
    return float(np.max(social_welfare_vector(game)))


def worst_equilibrium_welfare(game: Game) -> float | None:
    """The minimum welfare over pure Nash equilibria (``None`` if there are none).

    This is the reference point of the classical price of anarchy; comparing
    it with :func:`stationary_expected_welfare` shows whether the logit
    dynamics spends its time in better or worse states than the worst PNE.
    """
    equilibria = pure_nash_equilibria(game)
    if not equilibria:
        return None
    welfare = social_welfare_vector(game)
    return float(np.min(welfare[equilibria]))


def logit_price_of_anarchy(game: Game, beta: float) -> float:
    """``optimal_welfare / stationary_expected_welfare`` at the given beta.

    Only meaningful for games with positive welfare everywhere (raises
    otherwise) — the convention used by the companion paper.  Values close
    to 1 mean the logit dynamics spends its time near socially optimal
    profiles.
    """
    expected = stationary_expected_welfare(game, beta)
    optimum = optimal_welfare(game)
    if expected <= 0:
        raise ValueError(
            "stationary expected welfare is not positive; the ratio is undefined "
            "(shift utilities to be positive if a ratio is required)"
        )
    return optimum / expected


def welfare_vs_beta(game: Game, betas: Sequence[float]) -> np.ndarray:
    """Sweep: rows ``(beta, E_pi[W], optimal W, ratio)`` for each beta."""
    optimum = optimal_welfare(game)
    rows = []
    for beta in betas:
        expected = stationary_expected_welfare(game, float(beta))
        ratio = optimum / expected if expected > 0 else float("nan")
        rows.append((float(beta), expected, optimum, ratio))
    return np.array(rows, dtype=float)
