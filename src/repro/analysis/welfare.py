"""Stationary expected social welfare of the logit dynamics.

The companion paper the authors cite ([4], "Mixing time and stationary
expected social welfare of logit dynamics", SAGT 2010) evaluates the logit
dynamics not only by how fast it converges but by *how good* the states it
visits are: the expected social welfare under the stationary distribution.
This module implements those observables so the package covers that
evaluation axis as well:

* :func:`social_welfare_vector` — utilitarian welfare (sum of utilities) of
  every profile;
* :func:`stationary_expected_welfare` — its expectation under the logit
  stationary distribution at a given beta;
* :func:`optimal_welfare` / :func:`worst_equilibrium_welfare` — the usual
  price-of-anarchy style reference points;
* :func:`logit_price_of_anarchy` — the ratio between the optimum and the
  stationary expectation, as a function of beta;
* :func:`welfare_vs_beta` — a sweep helper for the welfare-vs-noise curves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.logit import LogitDynamics
from ..core.samplers import BurnInWelfareSampler
from ..engine.kernels import require_sequential_dynamics
from ..games.base import Game, pure_nash_equilibria
from ..games.space import DENSE_PROFILE_CAP
from ..stats.accumulators import StreamingEstimate
from ..stats.adaptive import run_until_width
from ..stats.confseq import EmpiricalBernsteinCS, NormalMixtureCS
from ..stats.knobs import reject_quantile_knob_conflicts
from ..stats.quantile import QuantileEstimate

__all__ = [
    "social_welfare_vector",
    "stationary_expected_welfare",
    "estimate_stationary_welfare",
    "welfare_of_profiles",
    "optimal_welfare",
    "worst_equilibrium_welfare",
    "logit_price_of_anarchy",
    "welfare_vs_beta",
]


def social_welfare_vector(game: Game) -> np.ndarray:
    """Utilitarian social welfare ``W(x) = sum_i u_i(x)`` for every profile."""
    welfare = np.zeros(game.space.size, dtype=float)
    for player in range(game.num_players):
        welfare += game.utility_matrix(player)
    return welfare


def stationary_expected_welfare(game: Game, beta: float) -> float:
    """``E_pi[W]`` under the logit stationary distribution at inverse noise beta."""
    pi = LogitDynamics(game, beta).stationary_distribution()
    return float(np.dot(pi, social_welfare_vector(game)))


def welfare_of_profiles(game: Game, profiles: np.ndarray) -> np.ndarray:
    """Utilitarian welfare of ``(k, n)`` strategy-profile rows, index-free.

    ``u_i(x)`` is the ``x_i`` column of player ``i``'s deviation row, so
    the welfare of a batch of profiles costs one
    :meth:`~repro.games.Game.utility_deviations_profiles` call per player
    and never touches a profile index — the welfare observable that keeps
    working past the int64 profile-index ceiling.
    """
    profiles = np.asarray(profiles)
    welfare = np.zeros(profiles.shape[0], dtype=float)
    rows = np.arange(profiles.shape[0])
    for player in range(game.num_players):
        devs = game.utility_deviations_profiles(player, profiles)
        welfare += devs[rows, profiles[:, player]]
    return welfare


def estimate_stationary_welfare(
    game: Game,
    beta: float,
    num_steps: int | None = None,
    precision: float | None = None,
    alpha: float = 0.05,
    num_replicas: int = 256,
    chunk_size: int = 64,
    max_replicas: int = 4096,
    seed: int | np.random.SeedSequence | None = None,
    start: Sequence[int] | np.ndarray | int | None = None,
    dynamics=None,
    support: tuple[float, float] | str | None = "auto",
    executor=None,
    q: float | None = None,
    precision_quantile: float | None = None,
) -> StreamingEstimate:
    """Sampled ``E[W(X_T)]`` with an anytime-valid confidence interval.

    The Monte-Carlo counterpart of :func:`stationary_expected_welfare` for
    profile spaces beyond the dense pipeline: each replica runs ``T =
    num_steps`` steps of the logit dynamics (default ``100 * n``, i.e. one
    hundred player-sweeps) from ``start`` and contributes the welfare of
    its final profile.  The estimand is the burn-in-``T`` expectation
    ``E[W(X_T)]``, which approximates the stationary expectation once
    ``T`` dominates the mixing time — the burn-in choice is the caller's
    statement about mixing, not something this estimator can certify.

    Replicas are spawned in chunks under the ``SeedSequence.spawn``
    discipline (pooled samples independent of ``chunk_size``); with
    ``precision`` given, chunks keep coming until the confidence interval
    is at most ``precision`` wide — absolute welfare units — or
    ``max_replicas`` is reached, otherwise exactly ``num_replicas``
    replicas run and the interval is whatever they support.  ``support``
    selects the boundary: an explicit ``(lo, hi)`` welfare range uses the
    empirical-Bernstein CS, ``None`` the CLT-style normal-mixture CS, and
    ``"auto"`` (default) derives the exact range from
    :func:`social_welfare_vector` while the space is within the dense cap
    and falls back to the CLT-style boundary beyond it.

    Because the sampler always runs on per-replica seeded streams,
    ``dynamics`` must be sequential (the default logit chain or any rule
    advanced one random mover per step); parallel / round-robin / annealed
    overrides are rejected rather than silently simulated as a different
    chain.

    ``executor`` (``"serial"``, ``"process"``, or a
    :class:`repro.parallel.ShardedExecutor`) shards every replica chunk
    across processes; pooled welfare samples are bit-for-bit identical to
    the serial run for any shard count.

    ``q`` certifies a quantile of the burn-in welfare on the same sample
    stream (attached to the result's ``quantile`` field) and
    ``precision_quantile`` — absolute welfare units, like ``precision`` —
    makes the tail interval a stopping target as well; both need a
    bounded ``support``.
    """
    if dynamics is None:
        dynamics = LogitDynamics(game, beta)
    require_sequential_dynamics(dynamics)
    if precision is not None and precision <= 0:
        raise ValueError("precision must be positive (absolute welfare units)")
    if precision_quantile is not None and precision_quantile <= 0:
        raise ValueError(
            "precision_quantile must be positive (absolute welfare units)"
        )
    n = game.space.num_players
    if num_steps is None:
        num_steps = 100 * n
    if num_steps < 0:
        raise ValueError("num_steps must be non-negative")
    if support == "auto":
        if game.space.size <= DENSE_PROFILE_CAP:
            welfare = social_welfare_vector(game)
            support = (float(welfare.min()), float(welfare.max()))
        else:
            support = None
    reject_quantile_knob_conflicts(q, precision_quantile, support)
    if support is not None and support[0] == support[1]:
        # constant welfare: every sample equals the mean, no interval needed
        value = float(support[0])
        return StreamingEstimate(
            estimate=value, lower=value, upper=value, n=0,
            stopped_early=False, alpha=float(alpha),
            target_width=precision,
            quantile=(
                QuantileEstimate(
                    q=float(q), estimate=value, lower=value, upper=value,
                    n=0, alpha=float(alpha), target_width=precision_quantile,
                )
                if q is not None
                else None
            ),
        )

    if support is not None:
        cs = EmpiricalBernsteinCS(alpha=alpha, support=support)
    else:
        cs = NormalMixtureCS(alpha=alpha)
    adaptive = precision is not None or precision_quantile is not None
    return run_until_width(
        BurnInWelfareSampler(game, dynamics, start, int(num_steps)),
        target_width=float(precision) if precision is not None else 0.0,
        alpha=alpha,
        max_n=max_replicas if adaptive else num_replicas,
        chunk_size=chunk_size,
        seed=seed,
        cs=cs,
        executor=executor,
        support=support,
        q=q,
        precision_quantile=precision_quantile,
    )


def optimal_welfare(game: Game) -> float:
    """The maximum social welfare over all profiles (the social optimum)."""
    return float(np.max(social_welfare_vector(game)))


def worst_equilibrium_welfare(game: Game) -> float | None:
    """The minimum welfare over pure Nash equilibria (``None`` if there are none).

    This is the reference point of the classical price of anarchy; comparing
    it with :func:`stationary_expected_welfare` shows whether the logit
    dynamics spends its time in better or worse states than the worst PNE.
    """
    equilibria = pure_nash_equilibria(game)
    if not equilibria:
        return None
    welfare = social_welfare_vector(game)
    return float(np.min(welfare[equilibria]))


def logit_price_of_anarchy(game: Game, beta: float) -> float:
    """``optimal_welfare / stationary_expected_welfare`` at the given beta.

    Only meaningful for games with positive welfare everywhere (raises
    otherwise) — the convention used by the companion paper.  Values close
    to 1 mean the logit dynamics spends its time near socially optimal
    profiles.
    """
    expected = stationary_expected_welfare(game, beta)
    optimum = optimal_welfare(game)
    if expected <= 0:
        raise ValueError(
            "stationary expected welfare is not positive; the ratio is undefined "
            "(shift utilities to be positive if a ratio is required)"
        )
    return optimum / expected


def welfare_vs_beta(game: Game, betas: Sequence[float]) -> np.ndarray:
    """Sweep: rows ``(beta, E_pi[W], optimal W, ratio)`` for each beta."""
    optimum = optimal_welfare(game)
    rows = []
    for beta in betas:
        expected = stationary_expected_welfare(game, float(beta))
        ratio = optimum / expected if expected > 0 else float("nan")
        rows.append((float(beta), expected, optimum, ratio))
    return np.array(rows, dtype=float)
