"""Sparse / large-state-space support for logit chains.

The dense machinery in :mod:`repro.markov.chain` is exact but quadratic in
the number of profiles, which caps it at a few tens of thousands of states.
The logit transition matrix, however, is extremely sparse — every profile
has at most ``sum_i (m_i - 1) + 1`` successors — so all the quantities the
paper's experiments need remain computable far beyond the dense regime:

* :class:`SparseMarkovChain` — CSR-backed chain with distribution evolution,
  single-start TV convergence, and power-iteration stationary distributions;
* :func:`sparse_spectral_gap` — the spectral gap (and hence the relaxation
  time) of a reversible chain via ``scipy.sparse.linalg.eigsh`` on the
  symmetrised matrix, needing only matrix-vector products;
* :func:`sparse_mixing_time_from_state` — the smallest ``t`` with
  ``||P^t(x, .) - pi||_TV <= eps`` for a given start, computed with sparse
  matrix-vector products only (memory ``O(nnz)``).

Together with the Gibbs closed form for ``pi`` (potential games) this scales
the measurement pipeline to state spaces of ~10^6 profiles on a laptop,
which is how the benchmark ``bench_ablation_sparse.py`` cross-checks the
dense results.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .tv import total_variation

__all__ = [
    "SparseMarkovChain",
    "sparse_stationary_power_iteration",
    "sparse_spectral_gap",
    "sparse_relaxation_time",
    "sparse_mixing_time_from_state",
]


class SparseMarkovChain:
    """A finite Markov chain backed by a CSR sparse matrix.

    Parameters
    ----------
    transition_matrix:
        Any scipy sparse matrix (or dense array) with unit row sums; stored
        as CSR.
    stationary:
        Optional known stationary distribution (e.g. a Gibbs measure).
    validate:
        Check row sums and non-negativity on construction.
    """

    def __init__(
        self,
        transition_matrix,
        stationary: np.ndarray | None = None,
        validate: bool = True,
    ):
        P = sp.csr_matrix(transition_matrix, dtype=float)
        if P.shape[0] != P.shape[1]:
            raise ValueError("transition matrix must be square")
        if validate:
            if P.data.size and P.data.min() < -1e-12:
                raise ValueError("transition matrix has negative entries")
            row_sums = np.asarray(P.sum(axis=1)).ravel()
            if not np.allclose(row_sums, 1.0, atol=1e-9):
                raise ValueError("transition matrix rows must sum to 1")
        self._P = P
        self._pi: np.ndarray | None = None
        if stationary is not None:
            pi = np.asarray(stationary, dtype=float)
            if pi.shape != (P.shape[0],):
                raise ValueError("stationary distribution has wrong length")
            total = float(pi.sum())
            if total <= 0 or np.any(pi < -1e-12):
                raise ValueError("stationary vector must be a non-negative distribution")
            self._pi = pi / total

    @property
    def num_states(self) -> int:
        """Number of states."""
        return self._P.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) transition entries."""
        return self._P.nnz

    @property
    def transition_matrix(self) -> sp.csr_matrix:
        """The CSR transition matrix (do not mutate)."""
        return self._P

    @property
    def stationary(self) -> np.ndarray:
        """The stationary distribution (power iteration if not supplied)."""
        if self._pi is None:
            self._pi = sparse_stationary_power_iteration(self._P)
        return self._pi

    def step_distribution(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Evolve a distribution ``mu -> mu P^steps`` with sparse products."""
        mu = np.asarray(distribution, dtype=float)
        if mu.shape != (self.num_states,):
            raise ValueError("distribution has wrong length")
        for _ in range(int(steps)):
            mu = mu @ self._P
        return np.asarray(mu).ravel()

    def to_dense(self) -> np.ndarray:
        """Densify (only sensible for small chains, e.g. in tests)."""
        return self._P.toarray()


def sparse_stationary_power_iteration(
    P, tol: float = 1e-12, max_iterations: int = 100_000
) -> np.ndarray:
    """Stationary distribution by power iteration on ``mu -> mu P``.

    Converges for ergodic chains; the iteration count scales with the
    relaxation time, so prefer passing the Gibbs measure explicitly when the
    chain comes from a potential game.
    """
    P = sp.csr_matrix(P, dtype=float)
    n = P.shape[0]
    mu = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        new = np.asarray(mu @ P).ravel()
        if total_variation(new, mu) <= tol:
            return new / new.sum()
        mu = new
    raise RuntimeError(
        "power iteration did not converge; the chain may be periodic or extremely slow"
    )


def sparse_spectral_gap(chain: SparseMarkovChain, k: int = 2, tol: float = 0.0) -> float:
    """Spectral gap ``1 - lambda_2`` of a reversible chain via Lanczos.

    Builds the symmetrised operator ``A = D^{1/2} P D^{-1/2}`` as a sparse
    matrix (same sparsity as ``P``) and asks ``eigsh`` for its ``k`` largest
    eigenvalues; ``lambda_1 = 1`` and the second one gives the gap.  The
    caller is responsible for the chain actually being reversible (true for
    the logit dynamics of any potential game).
    """
    pi = chain.stationary
    if np.any(pi <= 0):
        raise ValueError("stationary distribution must be strictly positive")
    sqrt_pi = np.sqrt(pi)
    P = chain.transition_matrix
    D = sp.diags(sqrt_pi)
    D_inv = sp.diags(1.0 / sqrt_pi)
    A = D @ P @ D_inv
    A = (A + A.T) * 0.5
    k = min(max(k, 2), chain.num_states - 1)
    eigenvalues = spla.eigsh(A, k=k, which="LA", return_eigenvectors=False, tol=tol)
    eigenvalues = np.sort(eigenvalues)[::-1]
    lambda_2 = float(eigenvalues[1])
    return 1.0 - lambda_2


def sparse_relaxation_time(chain: SparseMarkovChain) -> float:
    """``1 / (1 - lambda_2)`` from :func:`sparse_spectral_gap`.

    For potential games Theorem 3.1 guarantees the spectrum is non-negative,
    so ``lambda_2`` alone determines the relaxation time and no smallest-
    eigenvalue computation is needed.
    """
    gap = sparse_spectral_gap(chain)
    if gap <= 0:
        return float("inf")
    return 1.0 / gap


def sparse_mixing_time_from_state(
    chain: SparseMarkovChain,
    start: int,
    epsilon: float = 0.25,
    max_time: int = 10**7,
) -> int:
    """Smallest ``t`` with ``||P^t(start, .) - pi||_TV <= eps`` (sparse products).

    This is the single-start mixing time; for reversible chains started at
    the worst state (e.g. a consensus profile of a coordination game) it
    matches the worst-case ``t_mix`` computed by the dense pipeline.
    """
    if not 0 <= start < chain.num_states:
        raise ValueError("start state out of range")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    pi = chain.stationary
    row = np.zeros(chain.num_states)
    row[start] = 1.0
    P = chain.transition_matrix
    for t in range(max_time + 1):
        if total_variation(row, pi) <= epsilon:
            return t
        row = np.asarray(row @ P).ravel()
    return max_time
