"""Total-variation distance and distribution utilities.

The paper measures convergence in total variation:
``||mu - nu||_TV = (1/2) * sum_x |mu(x) - nu(x)|``.  All helpers here are
vectorised and accept either a single distribution (1-D) or a batch of
distributions stacked as rows (2-D), in which case distances are computed
row-wise against a single reference distribution.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "total_variation",
    "total_variation_to_reference",
    "is_distribution",
    "normalize_distribution",
    "uniform_distribution",
]


def is_distribution(p: np.ndarray, tol: float = 1e-9) -> bool:
    """Whether ``p`` is a probability vector (non-negative, sums to 1)."""
    p = np.asarray(p, dtype=float)
    if p.ndim != 1:
        return False
    return bool(np.all(p >= -tol) and abs(float(np.sum(p)) - 1.0) <= tol)


def normalize_distribution(weights: np.ndarray) -> np.ndarray:
    """Normalise non-negative weights into a probability vector."""
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = float(np.sum(w))
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return w / total


def uniform_distribution(size: int) -> np.ndarray:
    """The uniform distribution on ``size`` states."""
    if size < 1:
        raise ValueError("size must be positive")
    return np.full(size, 1.0 / size)


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """``||p - q||_TV`` for two distributions on the same finite space."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(0.5 * np.sum(np.abs(p - q)))


def total_variation_to_reference(rows: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Row-wise TV distance of each row of ``rows`` to ``reference``.

    ``rows`` has shape ``(k, N)`` (e.g. the rows of ``P^t``) and
    ``reference`` shape ``(N,)`` (e.g. the stationary distribution); the
    result has shape ``(k,)``.  This is the inner loop of the exact
    mixing-time computation, so it is a single vectorised expression.
    """
    rows = np.asarray(rows, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if rows.ndim == 1:
        rows = rows[None, :]
    if rows.shape[1] != reference.shape[0]:
        raise ValueError(
            f"row length {rows.shape[1]} does not match reference length {reference.shape[0]}"
        )
    return 0.5 * np.sum(np.abs(rows - reference[None, :]), axis=1)
