"""Bottleneck-ratio lower bounds (Theorem 2.7 of the paper).

For a set of states ``R`` with ``pi(R) <= 1/2`` the bottleneck ratio is
``B(R) = Q(R, R^c) / pi(R)`` where ``Q(x, y) = pi(x) P(x, y)``, and the
mixing time satisfies ``t_mix(eps) >= (1 - 2 eps) / (2 B(R))``.  The
paper's lower bounds (Theorems 3.5, 3.9, 4.3, 5.7) are all instances of
this with hand-picked ``R``; this module computes ``B(R)`` exactly for any
``R`` and also searches for good bottleneck sets among the sub-level sets
of a potential, which is how the paper's constructions find them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .chain import MarkovChain

__all__ = [
    "bottleneck_ratio",
    "mixing_time_lower_bound",
    "BottleneckResult",
    "best_sublevel_bottleneck",
    "conductance",
]


def _as_index_array(states: Sequence[int] | np.ndarray, num_states: int) -> np.ndarray:
    idx = np.unique(np.asarray(states, dtype=np.int64))
    if idx.size == 0:
        raise ValueError("the bottleneck set must be non-empty")
    if idx.min() < 0 or idx.max() >= num_states:
        raise ValueError("bottleneck set contains out-of-range states")
    return idx


def bottleneck_ratio(chain: MarkovChain, states: Sequence[int] | np.ndarray) -> float:
    """Exact ``B(R) = Q(R, R^c) / pi(R)`` for the given set of states."""
    idx = _as_index_array(states, chain.num_states)
    pi = chain.stationary
    P = chain.transition_matrix
    mask = np.zeros(chain.num_states, dtype=bool)
    mask[idx] = True
    pi_R = float(np.sum(pi[idx]))
    if pi_R <= 0:
        raise ValueError("the bottleneck set has zero stationary mass")
    # Q(R, R^c) = sum_{x in R} pi(x) * sum_{y not in R} P(x, y)
    escape = P[idx][:, ~mask].sum(axis=1)
    q_out = float(np.sum(pi[idx] * escape))
    return q_out / pi_R


def conductance(chain: MarkovChain, states: Sequence[int] | np.ndarray) -> float:
    """The conductance-style ratio ``Q(R, R^c) / min(pi(R), pi(R^c))``."""
    idx = _as_index_array(states, chain.num_states)
    pi = chain.stationary
    P = chain.transition_matrix
    mask = np.zeros(chain.num_states, dtype=bool)
    mask[idx] = True
    pi_R = float(np.sum(pi[idx]))
    pi_Rc = 1.0 - pi_R
    if min(pi_R, pi_Rc) <= 0:
        raise ValueError("both R and its complement must have positive mass")
    escape = P[idx][:, ~mask].sum(axis=1)
    q_out = float(np.sum(pi[idx] * escape))
    return q_out / min(pi_R, pi_Rc)


def mixing_time_lower_bound(
    chain: MarkovChain, states: Sequence[int] | np.ndarray, epsilon: float = 0.25
) -> float:
    """Theorem 2.7 lower bound ``(1 - 2 eps) / (2 B(R))``.

    Requires ``pi(R) <= 1/2`` (raises otherwise), matching the theorem's
    hypothesis.
    """
    if not 0 < epsilon < 0.5:
        raise ValueError("epsilon must lie in (0, 1/2)")
    idx = _as_index_array(states, chain.num_states)
    pi_R = float(np.sum(chain.stationary[idx]))
    if pi_R > 0.5 + 1e-12:
        raise ValueError(
            f"Theorem 2.7 requires pi(R) <= 1/2, got pi(R) = {pi_R:.6f}; "
            "apply the bound to the complement instead"
        )
    B = bottleneck_ratio(chain, idx)
    if B <= 0:
        return float("inf")
    return (1.0 - 2.0 * epsilon) / (2.0 * B)


@dataclass(frozen=True)
class BottleneckResult:
    """A bottleneck set together with its ratio and the induced lower bound."""

    states: np.ndarray
    stationary_mass: float
    ratio: float
    lower_bound: float


def best_sublevel_bottleneck(
    chain: MarkovChain,
    ordering_values: np.ndarray,
    epsilon: float = 0.25,
) -> BottleneckResult:
    """Search the sub-level sets of a scalar ordering for the best bottleneck.

    ``ordering_values`` assigns a scalar to every state (e.g. the potential,
    or the Hamming weight); the candidate sets are
    ``R_c = { x : ordering_values[x] <= c }`` over all thresholds ``c``,
    restricted to those with ``pi(R_c) <= 1/2``.  The paper's lower-bound
    sets are of exactly this sub-level form (e.g. ``w(x) < c`` in Theorem
    3.5).  Returns the set with the largest Theorem-2.7 lower bound.
    """
    values = np.asarray(ordering_values, dtype=float)
    if values.shape != (chain.num_states,):
        raise ValueError("ordering_values must assign one value per state")
    order = np.argsort(values, kind="stable")
    pi = chain.stationary
    best: BottleneckResult | None = None
    sorted_vals = values[order]
    # candidate cut points: after every block of equal values
    cut_positions = np.flatnonzero(np.diff(sorted_vals) > 0) + 1
    for cut in cut_positions:
        members = order[:cut]
        mass = float(np.sum(pi[members]))
        if mass > 0.5 or mass <= 0.0:
            continue
        ratio = bottleneck_ratio(chain, members)
        bound = (1.0 - 2.0 * epsilon) / (2.0 * ratio) if ratio > 0 else float("inf")
        if best is None or bound > best.lower_bound:
            best = BottleneckResult(
                states=np.sort(members), stationary_mass=mass, ratio=ratio, lower_bound=bound
            )
    if best is None:
        raise ValueError(
            "no sub-level set with stationary mass in (0, 1/2]; "
            "try a different ordering or pass an explicit set to bottleneck_ratio"
        )
    return best
