"""Finite Markov chains: validation, structure checks, stationary distributions.

This is the generic substrate beneath the logit dynamics: a
:class:`MarkovChain` wraps a row-stochastic transition matrix and provides

* structural checks — irreducibility, aperiodicity, ergodicity,
  reversibility (detailed balance against a given or computed stationary
  distribution);
* the stationary distribution, computed either from a supplied Gibbs
  measure or from the leading left eigenvector;
* single-step and multi-step evolution of distributions, and sampling of
  trajectories;
* the edge stationary distribution ``Q(x, y) = pi(x) P(x, y)`` used by the
  canonical-path and bottleneck machinery of the paper (Section 2.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from .tv import is_distribution, normalize_distribution

__all__ = ["MarkovChain", "stationary_distribution", "is_stochastic_matrix"]


def is_stochastic_matrix(P: np.ndarray, tol: float = 1e-9) -> bool:
    """Whether ``P`` is square, non-negative and has unit row sums."""
    P = np.asarray(P, dtype=float)
    if P.ndim != 2 or P.shape[0] != P.shape[1]:
        return False
    if np.any(P < -tol):
        return False
    return bool(np.allclose(P.sum(axis=1), 1.0, atol=tol))


def stationary_distribution(P: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Stationary distribution of an ergodic chain via the leading eigenvector.

    Solves ``pi P = pi`` by computing the null space of ``(P^T - I)``
    augmented with the normalisation constraint, which is robust for the
    moderate state-space sizes this package targets.
    """
    P = np.asarray(P, dtype=float)
    n = P.shape[0]
    A = np.vstack([P.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(A, b, rcond=None)
    pi = np.clip(pi, 0.0, None)
    total = float(pi.sum())
    if total <= tol:
        raise np.linalg.LinAlgError("failed to compute a stationary distribution")
    return pi / total


class MarkovChain:
    """A finite Markov chain given by a dense row-stochastic matrix.

    Parameters
    ----------
    transition_matrix:
        ``(N, N)`` row-stochastic matrix.
    stationary:
        Optional known stationary distribution (e.g. a Gibbs measure); if
        omitted it is computed on first use.
    validate:
        If ``True`` (default) the matrix is checked to be stochastic.
    """

    def __init__(
        self,
        transition_matrix: np.ndarray,
        stationary: np.ndarray | None = None,
        validate: bool = True,
    ):
        P = np.asarray(transition_matrix, dtype=float)
        if validate and not is_stochastic_matrix(P):
            raise ValueError("transition matrix must be square, non-negative, row sums 1")
        self._P = P
        self._pi: np.ndarray | None = None
        if stationary is not None:
            pi = np.asarray(stationary, dtype=float)
            if pi.shape != (P.shape[0],):
                raise ValueError("stationary distribution has wrong length")
            if validate and not is_distribution(pi, tol=1e-6):
                raise ValueError("supplied stationary vector is not a distribution")
            self._pi = normalize_distribution(pi)

    # -- basic accessors ---------------------------------------------------

    @property
    def num_states(self) -> int:
        """Number of states ``N``."""
        return self._P.shape[0]

    @property
    def transition_matrix(self) -> np.ndarray:
        """Read-only view of the transition matrix."""
        view = self._P.view()
        view.flags.writeable = False
        return view

    @property
    def stationary(self) -> np.ndarray:
        """The stationary distribution (computed lazily if not supplied)."""
        if self._pi is None:
            self._pi = stationary_distribution(self._P)
        view = self._pi.view()
        view.flags.writeable = False
        return view

    # -- structure ----------------------------------------------------------

    def is_irreducible(self, tol: float = 0.0) -> bool:
        """Whether every state can reach every other state."""
        adjacency = sp.csr_matrix(self._P > tol)
        n_components, _ = csgraph.connected_components(adjacency, connection="strong")
        return n_components == 1

    def is_aperiodic(self, tol: float = 0.0) -> bool:
        """Whether the chain's period is 1.

        A sufficient-and-necessary check on a strongly connected chain: if
        any state has a self loop the chain is aperiodic; otherwise compute
        the gcd of cycle lengths via a BFS layering argument.
        """
        if np.any(np.diag(self._P) > tol):
            return True
        # gcd-of-cycles via BFS distance differences on the directed graph
        n = self.num_states
        adjacency = self._P > tol
        dist = np.full(n, -1, dtype=np.int64)
        dist[0] = 0
        frontier = [0]
        g = 0
        while frontier:
            new_frontier = []
            for u in frontier:
                for v in np.flatnonzero(adjacency[u]):
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        new_frontier.append(int(v))
                    else:
                        g = int(np.gcd(g, dist[u] + 1 - dist[v]))
            frontier = new_frontier
        # unreachable states make periodicity ill-defined; treat as periodic
        if np.any(dist < 0):
            return False
        return g == 1

    def is_ergodic(self) -> bool:
        """Irreducible and aperiodic."""
        return self.is_irreducible() and self.is_aperiodic()

    def is_reversible(self, tol: float = 1e-9) -> bool:
        """Detailed balance: ``pi(x) P(x, y) == pi(y) P(y, x)`` for all x, y."""
        pi = self.stationary
        flow = pi[:, None] * self._P
        return bool(np.allclose(flow, flow.T, atol=tol))

    # -- dynamics -----------------------------------------------------------

    def edge_stationary(self) -> np.ndarray:
        """The edge stationary distribution ``Q(x, y) = pi(x) P(x, y)``."""
        return self.stationary[:, None] * self._P

    def step_distribution(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Evolve a distribution ``mu`` forward: ``mu P^steps``."""
        mu = np.asarray(distribution, dtype=float)
        if mu.shape != (self.num_states,):
            raise ValueError("distribution has wrong length")
        for _ in range(int(steps)):
            mu = mu @ self._P
        return mu

    def t_step_matrix(self, steps: int) -> np.ndarray:
        """``P^steps`` computed by repeated squaring."""
        steps = int(steps)
        if steps < 0:
            raise ValueError("steps must be non-negative")
        result = np.eye(self.num_states)
        base = self._P.copy()
        while steps:
            if steps & 1:
                result = result @ base
            steps >>= 1
            if steps:
                base = base @ base
        return result

    def sample_path(
        self,
        start: int,
        length: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample a trajectory ``X_0 = start, X_1, ..., X_length``."""
        rng = np.random.default_rng() if rng is None else rng
        if not 0 <= start < self.num_states:
            raise ValueError("start state out of range")
        path = np.empty(length + 1, dtype=np.int64)
        path[0] = start
        cumulative = np.cumsum(self._P, axis=1)
        draws = rng.random(length)
        for t in range(length):
            path[t + 1] = np.searchsorted(cumulative[path[t]], draws[t], side="right")
        return path

    def expected_hitting_time(self, target: int | Sequence[int]) -> np.ndarray:
        """Expected hitting times ``E_x[tau_target]`` for every start ``x``.

        Solves the standard linear system: ``h(x) = 0`` on the target set,
        ``h(x) = 1 + sum_y P(x, y) h(y)`` elsewhere.
        """
        targets = np.atleast_1d(np.asarray(target, dtype=np.int64))
        n = self.num_states
        mask = np.zeros(n, dtype=bool)
        mask[targets] = True
        free = np.flatnonzero(~mask)
        if free.size == 0:
            return np.zeros(n)
        A = np.eye(free.size) - self._P[np.ix_(free, free)]
        b = np.ones(free.size)
        h_free = np.linalg.solve(A, b)
        h = np.zeros(n)
        h[free] = h_free
        return h
