"""Generic finite-Markov-chain toolkit used by the logit-dynamics core."""

from .bottleneck import (
    BottleneckResult,
    best_sublevel_bottleneck,
    bottleneck_ratio,
    conductance,
    mixing_time_lower_bound,
)
from .chain import MarkovChain, is_stochastic_matrix, stationary_distribution
from .coupling import (
    CouplingResult,
    coalescence_time_bound,
    maximal_coupling_update,
    simulate_grand_coupling,
)
from .mixing import (
    MixingTimeResult,
    mixing_time,
    mixing_time_from_state,
    tv_decay_curve,
    worst_case_tv,
)
from .paths import (
    PathFamily,
    canonical_paths_congestion,
    canonical_paths_relaxation_bound,
    comparison_congestion_ratio,
    path_edges,
)
from .sparse import (
    SparseMarkovChain,
    sparse_mixing_time_from_state,
    sparse_relaxation_time,
    sparse_spectral_gap,
    sparse_stationary_power_iteration,
)
from .spectral import (
    SpectralSummary,
    relaxation_mixing_bounds,
    relaxation_time,
    reversible_eigenvalues,
    spectral_gap,
    spectral_summary,
)
from .tv import (
    is_distribution,
    normalize_distribution,
    total_variation,
    total_variation_to_reference,
    uniform_distribution,
)

__all__ = [
    "SparseMarkovChain",
    "sparse_mixing_time_from_state",
    "sparse_relaxation_time",
    "sparse_spectral_gap",
    "sparse_stationary_power_iteration",
    "BottleneckResult",
    "best_sublevel_bottleneck",
    "bottleneck_ratio",
    "conductance",
    "mixing_time_lower_bound",
    "MarkovChain",
    "is_stochastic_matrix",
    "stationary_distribution",
    "CouplingResult",
    "coalescence_time_bound",
    "maximal_coupling_update",
    "simulate_grand_coupling",
    "MixingTimeResult",
    "mixing_time",
    "mixing_time_from_state",
    "tv_decay_curve",
    "worst_case_tv",
    "PathFamily",
    "canonical_paths_congestion",
    "canonical_paths_relaxation_bound",
    "comparison_congestion_ratio",
    "path_edges",
    "SpectralSummary",
    "relaxation_mixing_bounds",
    "relaxation_time",
    "reversible_eigenvalues",
    "spectral_gap",
    "spectral_summary",
    "is_distribution",
    "normalize_distribution",
    "total_variation",
    "total_variation_to_reference",
    "uniform_distribution",
]
