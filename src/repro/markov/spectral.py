"""Spectral analysis of reversible Markov chains.

The paper's upper bounds flow through the *relaxation time*
``t_rel = 1 / (1 - lambda*)`` where ``lambda*`` is the largest absolute
eigenvalue other than ``lambda_1 = 1`` (Theorem 2.3), and Theorem 3.1 shows
that for the logit dynamics of a potential game all eigenvalues are
non-negative, so ``t_rel = 1 / (1 - lambda_2)``.

For a reversible chain with stationary distribution ``pi``, the matrix
``A = D^{1/2} P D^{-1/2}`` (``D = diag(pi)``) is symmetric with the same
spectrum as ``P``, so we use ``numpy.linalg.eigvalsh`` on ``A`` — both
faster and numerically better-behaved than a general eigensolver on ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chain import MarkovChain

__all__ = [
    "SpectralSummary",
    "reversible_eigenvalues",
    "spectral_gap",
    "relaxation_time",
    "spectral_summary",
    "relaxation_mixing_bounds",
]


@dataclass(frozen=True)
class SpectralSummary:
    """Eigenvalue summary of a reversible ergodic chain."""

    eigenvalues: np.ndarray
    lambda_2: float
    lambda_min: float
    lambda_star: float
    spectral_gap: float
    absolute_spectral_gap: float
    relaxation_time: float

    @property
    def all_nonnegative(self) -> bool:
        """Whether the full spectrum is non-negative (Theorem 3.1 property)."""
        return bool(self.lambda_min >= -1e-9)


def reversible_eigenvalues(chain: MarkovChain, check_reversible: bool = True) -> np.ndarray:
    """All eigenvalues of a reversible chain, in non-increasing order.

    Uses the symmetrisation ``D^{1/2} P D^{-1/2}``; raises if the chain is
    not reversible (unless ``check_reversible=False``, in which case the
    symmetric part is diagonalised and the result is only meaningful when
    the caller knows the chain is reversible up to numerical noise).
    """
    if check_reversible and not chain.is_reversible(tol=1e-8):
        raise ValueError("chain is not reversible; spectral machinery needs detailed balance")
    pi = np.asarray(chain.stationary, dtype=float)
    if np.any(pi <= 0):
        raise ValueError("stationary distribution must be strictly positive")
    sqrt_pi = np.sqrt(pi)
    P = np.asarray(chain.transition_matrix, dtype=float)
    A = (sqrt_pi[:, None] * P) / sqrt_pi[None, :]
    A = 0.5 * (A + A.T)  # symmetrise away round-off
    eigs = np.linalg.eigvalsh(A)
    return eigs[::-1]


def spectral_gap(chain: MarkovChain) -> float:
    """``1 - lambda_2`` of a reversible ergodic chain."""
    eigs = reversible_eigenvalues(chain)
    return float(1.0 - eigs[1]) if eigs.size > 1 else 1.0


def relaxation_time(chain: MarkovChain) -> float:
    """``t_rel = 1 / (1 - lambda*)`` with ``lambda*`` the largest |eigenvalue| < 1."""
    return spectral_summary(chain).relaxation_time


def spectral_summary(chain: MarkovChain) -> SpectralSummary:
    """Compute the full eigenvalue summary of a reversible chain."""
    eigs = reversible_eigenvalues(chain)
    n = eigs.size
    lambda_2 = float(eigs[1]) if n > 1 else -1.0
    lambda_min = float(eigs[-1])
    lambda_star = max(abs(lambda_2), abs(lambda_min)) if n > 1 else 0.0
    gap = 1.0 - lambda_2 if n > 1 else 1.0
    abs_gap = 1.0 - lambda_star
    t_rel = np.inf if abs_gap <= 0 else 1.0 / abs_gap
    return SpectralSummary(
        eigenvalues=eigs,
        lambda_2=lambda_2,
        lambda_min=lambda_min,
        lambda_star=lambda_star,
        spectral_gap=float(gap),
        absolute_spectral_gap=float(abs_gap),
        relaxation_time=float(t_rel),
    )


def relaxation_mixing_bounds(
    chain: MarkovChain, epsilon: float = 0.25
) -> tuple[float, float]:
    """The Theorem 2.3 sandwich on the mixing time.

    Returns ``(lower, upper)`` with
    ``lower = (t_rel - 1) * log(1 / (2 eps))`` and
    ``upper = t_rel * log(1 / (eps * pi_min))``.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    summary = spectral_summary(chain)
    pi_min = float(np.min(chain.stationary))
    lower = (summary.relaxation_time - 1.0) * np.log(1.0 / (2.0 * epsilon))
    upper = summary.relaxation_time * np.log(1.0 / (epsilon * pi_min))
    return float(max(lower, 0.0)), float(upper)
