"""Canonical paths, congestion ratios and the path-comparison method.

Section 2.1 of the paper uses two path-based spectral tools:

* the *canonical paths* bound (Theorem 2.6 / Jerrum–Sinclair): for a set of
  paths ``Gamma = {Gamma_{x,y}}``, one per ordered pair of states, the
  congestion ``rho = max_e (1/Q(e)) * sum_{(x,y): e in Gamma_{x,y}}
  pi(x) pi(y) |Gamma_{x,y}|`` upper-bounds ``1/(1 - lambda_2)``;
* the *path comparison* theorem (Theorem 2.5): comparing a chain ``M``
  against a second chain ``M_hat`` on the same state space via a set of
  ``M``-paths, one per ``M_hat``-edge, with congestion ratio ``alpha``
  gives ``1/(1-lambda_2) <= alpha * gamma * 1/(1-lambda_hat_2)``.

Both are implemented against explicit path dictionaries so that the
benchmark for Lemma 3.3 can instantiate exactly the paths used in the
paper's proof (bit-fixing paths through the minimum-potential common
neighbor) and verify the claimed congestion numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .chain import MarkovChain

__all__ = [
    "PathFamily",
    "canonical_paths_congestion",
    "canonical_paths_relaxation_bound",
    "comparison_congestion_ratio",
    "path_edges",
]

Edge = tuple[int, int]
Path = Sequence[int]


def path_edges(path: Path) -> list[Edge]:
    """The list of directed edges traversed by a state path."""
    if len(path) < 1:
        raise ValueError("a path needs at least one state")
    return [(int(path[k]), int(path[k + 1])) for k in range(len(path) - 1)]


@dataclass
class PathFamily:
    """A set of paths indexed by ordered state pairs.

    ``paths[(x, y)]`` is a sequence of states starting at ``x`` and ending
    at ``y``; consecutive states must be joined by a transition of positive
    probability in the chain the family will be evaluated against.
    """

    paths: Mapping[tuple[int, int], Path]

    def validate(self, chain: MarkovChain, tol: float = 0.0) -> None:
        """Check every edge of every path is a transition of the chain."""
        P = chain.transition_matrix
        for (x, y), path in self.paths.items():
            if len(path) == 0 or path[0] != x or path[-1] != y:
                raise ValueError(f"path for pair ({x}, {y}) has wrong endpoints")
            for u, v in path_edges(path):
                if u != v and P[u, v] <= tol:
                    raise ValueError(
                        f"path for pair ({x}, {y}) uses edge ({u}, {v}) "
                        "which is not a transition of the chain"
                    )

    def items(self) -> Iterable[tuple[tuple[int, int], Path]]:
        """Iterate over (pair, path) items."""
        return self.paths.items()


def canonical_paths_congestion(chain: MarkovChain, family: PathFamily) -> float:
    """The Jerrum–Sinclair congestion ``rho`` of a path family (Theorem 2.6)."""
    pi = chain.stationary
    Q = chain.edge_stationary()
    load: dict[Edge, float] = {}
    for (x, y), path in family.items():
        weight = float(pi[x] * pi[y] * max(len(path) - 1, 1))
        for edge in path_edges(path):
            u, v = edge
            if u == v:
                continue
            load[edge] = load.get(edge, 0.0) + weight
    rho = 0.0
    for (u, v), total in load.items():
        q = float(Q[u, v])
        if q <= 0:
            raise ValueError(f"edge ({u}, {v}) carries path load but has Q = 0")
        rho = max(rho, total / q)
    return rho


def canonical_paths_relaxation_bound(chain: MarkovChain, family: PathFamily) -> float:
    """Upper bound ``1/(1 - lambda_2) <= rho`` from Theorem 2.6."""
    return canonical_paths_congestion(chain, family)


def comparison_congestion_ratio(
    chain: MarkovChain,
    reference: MarkovChain,
    family: PathFamily,
) -> tuple[float, float]:
    """Congestion ratio ``alpha`` and distortion ``gamma`` of Theorem 2.5.

    ``family`` must contain one ``chain``-path per edge of ``reference``
    (pairs ``(x, y)`` with ``P_hat(x, y) > 0`` and ``x != y``).  Returns the
    pair ``(alpha, gamma)``; the theorem then gives
    ``t_rel(chain) <= alpha * gamma * t_rel(reference)`` (for chains whose
    relaxation time is governed by ``lambda_2``, as guaranteed for the logit
    dynamics of potential games by Theorem 3.1).
    """
    Q = chain.edge_stationary()
    Q_hat = reference.edge_stationary()
    pi = chain.stationary
    pi_hat = reference.stationary
    # every reference edge must have a path
    P_hat = reference.transition_matrix
    ref_edges = {
        (int(x), int(y))
        for x, y in zip(*np.nonzero(P_hat))
        if x != y
    }
    missing = ref_edges - set(family.paths.keys())
    if missing:
        raise ValueError(f"path family is missing {len(missing)} reference edges, e.g. {next(iter(missing))}")
    load: dict[Edge, float] = {}
    for (x, y), path in family.items():
        if (x, y) not in ref_edges:
            continue
        weight = float(Q_hat[x, y] * max(len(path) - 1, 1))
        for edge in path_edges(path):
            u, v = edge
            if u == v:
                continue
            load[edge] = load.get(edge, 0.0) + weight
    alpha = 0.0
    for (u, v), total in load.items():
        q = float(Q[u, v])
        if q <= 0:
            raise ValueError(f"edge ({u}, {v}) carries comparison load but has Q = 0")
        alpha = max(alpha, total / q)
    gamma = float(np.max(pi / pi_hat))
    return alpha, gamma
