"""Monte-Carlo coupling machinery (Theorem 2.1 / 2.2 of the paper).

A *coupling* of a Markov chain runs two copies ``(X_t, Y_t)`` on a joint
probability space so that each copy is marginally the chain; the coupling
theorem bounds ``||P^t(x,.) - P^t(y,.)||_TV`` by the probability the copies
have not met by time ``t``.  The paper uses two specific couplings:

* the *grand coupling* for games (Theorem 3.6 / 4.2): both copies select
  the same player and the same uniform ``U in [0, 1]``, and each copy maps
  ``U`` through its own update distribution via the maximal-overlap interval
  construction described in the proof of Theorem 3.6;
* the simple *identity coupling* of Lemma 3.2 for ``beta = 0``.

This module provides a generic simulator of the grand coupling for any
single-site update chain expressed through per-site conditional update
distributions, plus estimators of the coalescence time and the induced
upper bound on the mixing time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "maximal_coupling_update",
    "CouplingResult",
    "simulate_grand_coupling",
    "coalescence_time_bound",
]


def maximal_coupling_update(
    probs_x: np.ndarray, probs_y: np.ndarray, u: float
) -> tuple[int, int]:
    """Map one uniform draw through the paper's interval coupling.

    Given the two single-site update distributions ``sigma_i(. | x)`` and
    ``sigma_i(. | y)`` and a uniform ``u``, return the pair of chosen
    strategies ``(s_x, s_y)``.  The construction follows the proof of
    Theorem 3.6: the interval ``[0, 1]`` is partitioned so that a prefix of
    total length ``sum_s min(sigma(s|x), sigma(s|y))`` yields the *same*
    strategy in both copies, and the suffix yields (in general) different
    strategies.  The marginals are exactly ``probs_x`` and ``probs_y``.
    """
    probs_x = np.asarray(probs_x, dtype=float)
    probs_y = np.asarray(probs_y, dtype=float)
    if probs_x.shape != probs_y.shape:
        raise ValueError("update distributions must have equal length")
    overlap = np.minimum(probs_x, probs_y)
    ell = float(np.sum(overlap))
    if u < ell:
        # same strategy in both chains, drawn from the overlap
        cum = np.cumsum(overlap)
        s = int(np.searchsorted(cum, u, side="right"))
        s = min(s, probs_x.size - 1)
        return s, s
    # residual mass: chains draw from their (normalised) excess parts
    excess_x = probs_x - overlap
    excess_y = probs_y - overlap
    rem = u - ell
    scale = 1.0 - ell
    if scale <= 0:
        # distributions identical up to round-off
        cum = np.cumsum(probs_x)
        s = int(np.searchsorted(cum, u, side="right"))
        s = min(s, probs_x.size - 1)
        return s, s
    cum_x = np.cumsum(excess_x)
    cum_y = np.cumsum(excess_y)
    s_x = int(np.searchsorted(cum_x, rem, side="right"))
    s_y = int(np.searchsorted(cum_y, rem, side="right"))
    s_x = min(s_x, probs_x.size - 1)
    s_y = min(s_y, probs_y.size - 1)
    return s_x, s_y


@dataclass(frozen=True)
class CouplingResult:
    """Summary of a batch of grand-coupling simulations."""

    coalescence_times: np.ndarray
    horizon: int
    num_coalesced: int

    @property
    def num_runs(self) -> int:
        """Number of simulated coupled trajectories."""
        return self.coalescence_times.size

    @property
    def fraction_coalesced(self) -> float:
        """Fraction of runs that met within the horizon."""
        return self.num_coalesced / max(self.num_runs, 1)

    def mean_coalescence_time(self) -> float:
        """Mean coalescence time over the runs that met (NaN if none did)."""
        met = self.coalescence_times[self.coalescence_times >= 0]
        return float(np.mean(met)) if met.size else float("nan")

    def quantile(self, q: float) -> float:
        """Quantile of the coalescence time, counting non-met runs as horizon."""
        times = np.where(self.coalescence_times < 0, self.horizon, self.coalescence_times)
        return float(np.quantile(times, q))


def simulate_grand_coupling(
    num_players: int,
    num_strategies: tuple[int, ...],
    update_distribution: Callable[[np.ndarray, int], np.ndarray],
    start_x: np.ndarray,
    start_y: np.ndarray,
    horizon: int,
    num_runs: int = 32,
    rng: np.random.Generator | None = None,
) -> CouplingResult:
    """Simulate the paper's grand coupling from two starting profiles.

    Parameters
    ----------
    update_distribution:
        ``update_distribution(profile, player)`` must return the single-site
        update distribution ``sigma_player(. | profile)`` (length
        ``num_strategies[player]``).  For the logit dynamics this is
        Equation (2); the simulator itself is dynamics-agnostic.
    start_x, start_y:
        Initial profiles of the two copies (as strategy tuples/arrays).
    horizon:
        Maximum number of steps per run.
    num_runs:
        Number of independent coupled trajectories.

    Returns
    -------
    CouplingResult
        Coalescence time per run (``-1`` when the copies never met).
    """
    rng = np.random.default_rng() if rng is None else rng
    start_x = np.asarray(start_x, dtype=np.int64)
    start_y = np.asarray(start_y, dtype=np.int64)
    if start_x.shape != (num_players,) or start_y.shape != (num_players,):
        raise ValueError("starting profiles must have length num_players")
    times = np.full(num_runs, -1, dtype=np.int64)
    for run in range(num_runs):
        x = start_x.copy()
        y = start_y.copy()
        if np.array_equal(x, y):
            times[run] = 0
            continue
        players = rng.integers(0, num_players, size=horizon)
        uniforms = rng.random(horizon)
        for t in range(horizon):
            i = int(players[t])
            probs_x = update_distribution(x, i)
            probs_y = update_distribution(y, i)
            s_x, s_y = maximal_coupling_update(probs_x, probs_y, float(uniforms[t]))
            x[i] = s_x
            y[i] = s_y
            if np.array_equal(x, y):
                times[run] = t + 1
                break
    return CouplingResult(
        coalescence_times=times,
        horizon=horizon,
        num_coalesced=int(np.count_nonzero(times >= 0)),
    )


def coalescence_time_bound(result: CouplingResult, epsilon: float = 0.25) -> float:
    """Mixing-time upper estimate from coalescence times (Theorem 2.1).

    ``P(tau_couple > t)`` upper-bounds the TV distance, so the empirical
    ``(1 - eps)``-quantile of the coalescence time is a Monte-Carlo estimate
    of an upper bound on ``t_mix(eps)`` for the specific starting pair that
    was simulated (for the worst-case bound, simulate from a maximising
    pair, e.g. the two consensus profiles of a coordination game).
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    return result.quantile(1.0 - epsilon)
