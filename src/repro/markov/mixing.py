"""Exact mixing-time computation for finite chains.

The mixing time is ``t_mix(eps) = min { t : d(t) <= eps }`` where
``d(t) = max_x || P^t(x, .) - pi ||_TV`` (Section 2 of the paper), with the
standard convention ``t_mix = t_mix(1/4)``.

For the state-space sizes this package targets (up to a few tens of
thousands of profiles) we can afford the exact computation: evolve all rows
of ``P^t`` simultaneously and evaluate the worst-case TV distance.  To keep
the number of dense matrix products at ``O(log t_mix)`` we use *geometric
doubling* to bracket the mixing time followed by bisection, exploiting the
monotonicity of ``d(t)`` (Levin–Peres–Wilmer, Lemma 4.11-4.12 — ``d̄(t)``
is submultiplicative and ``d(t)`` non-increasing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chain import MarkovChain
from .tv import total_variation_to_reference

__all__ = [
    "worst_case_tv",
    "tv_decay_curve",
    "MixingTimeResult",
    "mixing_time",
    "mixing_time_from_state",
]


def worst_case_tv(chain: MarkovChain, t: int) -> float:
    """``d(t) = max_x ||P^t(x, .) - pi||_TV`` computed exactly."""
    Pt = chain.t_step_matrix(t)
    distances = total_variation_to_reference(Pt, chain.stationary)
    return float(np.max(distances))


def tv_decay_curve(chain: MarkovChain, horizon: int, stride: int = 1) -> np.ndarray:
    """``d(t)`` for ``t = 0, stride, 2*stride, ..., <= horizon``.

    Returns an array of shape ``(k, 2)`` with columns ``(t, d(t))``; used by
    the examples to plot/print convergence profiles.
    """
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    stride = max(int(stride), 1)
    pi = chain.stationary
    P_stride = chain.t_step_matrix(stride)
    rows = np.eye(chain.num_states)
    out = []
    t = 0
    while t <= horizon:
        d_t = float(np.max(total_variation_to_reference(rows, pi)))
        out.append((t, d_t))
        t += stride
        if t <= horizon:
            rows = rows @ P_stride
    return np.array(out, dtype=float)


@dataclass(frozen=True)
class MixingTimeResult:
    """Result of an exact mixing-time computation."""

    mixing_time: int
    epsilon: float
    tv_at_mixing: float
    tv_before_mixing: float
    evaluations: int
    capped: bool

    def __int__(self) -> int:  # pragma: no cover - convenience
        return self.mixing_time


def _tv_at(chain: MarkovChain, t: int) -> float:
    return worst_case_tv(chain, t)


def mixing_time(
    chain: MarkovChain,
    epsilon: float = 0.25,
    max_time: int = 10**7,
) -> MixingTimeResult:
    """Exact ``t_mix(eps)`` via doubling + bisection on ``d(t)``.

    Parameters
    ----------
    chain:
        The (ergodic) chain; its stationary distribution is used as the
        reference.
    epsilon:
        The TV threshold; the paper's convention is ``1/4``.
    max_time:
        Safety cap; if ``d(max_time) > eps`` the result is flagged
        ``capped=True`` and ``mixing_time = max_time``.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    evaluations = 0

    d0 = _tv_at(chain, 0)
    evaluations += 1
    if d0 <= epsilon:
        return MixingTimeResult(0, epsilon, d0, d0, evaluations, False)

    # geometric doubling to find an upper bracket
    lo, d_lo = 0, d0
    hi = 1
    while True:
        d_hi = _tv_at(chain, hi)
        evaluations += 1
        if d_hi <= epsilon:
            break
        lo, d_lo = hi, d_hi
        if hi >= max_time:
            return MixingTimeResult(max_time, epsilon, d_hi, d_lo, evaluations, True)
        hi = min(hi * 2, max_time)

    # bisection: smallest t in (lo, hi] with d(t) <= epsilon
    d_at_hi = d_hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        d_mid = _tv_at(chain, mid)
        evaluations += 1
        if d_mid <= epsilon:
            hi, d_at_hi = mid, d_mid
        else:
            lo, d_lo = mid, d_mid
    return MixingTimeResult(hi, epsilon, d_at_hi, d_lo, evaluations, False)


def mixing_time_from_state(
    chain: MarkovChain,
    start: int,
    epsilon: float = 0.25,
    max_time: int = 10**7,
) -> int:
    """Smallest ``t`` with ``||P^t(start, .) - pi||_TV <= eps``.

    This is the *single-start* mixing time; the paper's ``t_mix`` is the
    maximum of this quantity over all starts, but lower-bound experiments
    (which start the chain inside a bottleneck set) use the single-start
    variant directly.
    """
    if not 0 <= start < chain.num_states:
        raise ValueError("start state out of range")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    pi = chain.stationary
    P = chain.transition_matrix
    row = np.zeros(chain.num_states)
    row[start] = 1.0
    t = 0
    while t <= max_time:
        tv = float(total_variation_to_reference(row, pi)[0])
        if tv <= epsilon:
            return t
        row = row @ P
        t += 1
    return max_time
