"""Pluggable update-rule kernels for the batched simulation engine.

The paper's standard logit dynamics and all of its Section 6 variants share
one shape: at every step some player (or set of players) revises her
strategy by drawing from a per-player move distribution.  A *kernel*
captures exactly that decomposition so the engine can advance ``R``
replicas of *any* of the variants with the same vectorised machinery:

* the **kernel** decides *who moves* at each step (a uniformly random
  player, every player at once, the next player in a cyclic order, ...) and
  *how the randomness is consumed*;
* the **rule** decides *how a mover picks her new strategy*: any object
  exposing ``game`` and ``update_distribution_many(player, profile_indices)
  -> (k, m_player)`` probability rows (plus ``player_update_matrix(player)``
  for the engine's gather mode, and ``update_distribution_profiles(player,
  profiles)`` for the matrix state backend, which hands the rule ``(k, n)``
  strategy rows instead of indices).  :class:`~repro.core.logit.LogitDynamics`
  and :class:`~repro.core.variants.BestResponseDynamics` are both rules —
  the best-response chain is just the sequential kernel under a different
  rule, which is the beta -> infinity limit the paper contrasts against.

Kernel contract
---------------
A kernel subclasses :class:`UpdateKernel` and implements:

``step(sim, where=None)``
    Advance the selected replicas of ``sim`` (an
    :class:`~repro.engine.ensemble.EnsembleSimulator`) by one step, drawing
    per-step randomness from ``sim.rng``.  ``where`` is an optional array of
    replica positions (first-passage runs retire replicas one by one).

``begin_run(sim, num_steps) -> draws | None`` and
``run_step(sim, t, draws)``
    Optional bulk-drawing hooks used by :meth:`EnsembleSimulator.run`.  The
    sequential kernels pre-draw every player selection and uniform for the
    whole run (players first, then uniforms) so that a single-replica run
    is bit-for-bit identical to the scalar reference loops; kernels that
    don't pre-draw inherit the default (``begin_run`` returns ``None`` and
    ``run_step`` falls through to :meth:`step`).

``init_state(sim) -> dict``
    Per-simulator mutable state, stored by the simulator and reset together
    with the replicas.  The round-robin kernel keeps its player cursor here
    and the annealed kernel its global step counter — on the simulator, not
    on the kernel, so one kernel object can serve several simulators.

``supports_gather``
    Whether the per-player update rows are time-invariant, i.e. whether the
    engine may precompute ``(|S|, m_i)`` cumulative update matrices once
    and simulate by indexed gathers.  Time-inhomogeneous kernels (annealed
    schedules) must say ``False``.

Randomness contracts (what the cross-validation tests pin down):

=============================  ===============================================
kernel                         per step consumes
=============================  ===============================================
:class:`SequentialKernel`      one player index, then one uniform, per replica
:class:`ParallelKernel`        ``n`` uniforms per replica, in player order
:class:`ProbabilisticKernel`   ``n`` mask uniforms then ``n`` move uniforms
                               per replica, player order (mask draw skipped
                               entirely at ``p = 1``, recovering the
                               :class:`ParallelKernel` stream bit-for-bit)
:class:`RoundRobinKernel`      one uniform per replica (the mover is the
                               cursor)
:class:`AnnealedKernel`        one player index, then one uniform, per replica
=============================  ===============================================

The seeded variants (:class:`SeededSequentialKernel`,
:class:`SeededParallelKernel`, :class:`SeededProbabilisticKernel`) consume
the same quantities per step, but from one independent generator per
replica instead of the simulator's shared stream — the contract that makes
pooled adaptive/sharded samples invariant to chunk size and shard count.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "UpdateKernel",
    "SequentialKernel",
    "SeededSequentialKernel",
    "ParallelKernel",
    "ProbabilisticKernel",
    "SeededParallelKernel",
    "SeededProbabilisticKernel",
    "RoundRobinKernel",
    "AnnealedKernel",
    "require_sequential_dynamics",
    "seeded_kernel_for",
]


def require_sequential_dynamics(dynamics) -> None:
    """Refuse dynamics the seeded per-replica streams cannot represent.

    Adaptive chunked estimation and the sharded executors rebuild a
    dynamics' kernel as its seeded counterpart (one independent random
    stream per replica, see :func:`seeded_kernel_for`).  That counterpart
    exists for the sequential kernel and for the concurrent schedules —
    :class:`SequentialKernel`, :class:`ParallelKernel` and
    :class:`ProbabilisticKernel` all support ``precision=`` / ``executor=``
    estimation — but not for the cyclic or time-inhomogeneous kernels,
    where a silent substitution would simulate a different Markov chain.
    Every adaptive entry point calls this before building a seeded
    ensemble.  (The name predates the concurrent kernels: the requirement
    is "has a seeded counterpart", no longer strictly "sequential".)
    """
    kernel = dynamics.kernel() if hasattr(dynamics, "kernel") else None
    if kernel is None or type(kernel) not in _SEEDABLE_KERNELS:
        supported = ", ".join(k.__name__ for k in _SEEDABLE_KERNELS)
        raise ValueError(
            f"adaptive (precision=) estimation runs on per-replica seeded "
            f"streams, which exist only for dynamics advancing via one of "
            f"{supported}; {type(dynamics).__name__} advances via "
            f"{type(kernel).__name__ if kernel is not None else 'no kernel'} "
            f"— run it with precision=None and a fixed replica count"
        )


class UpdateKernel(abc.ABC):
    """Decides which player(s) move per step and with what distribution.

    Parameters
    ----------
    rule:
        The move-distribution provider: exposes ``game`` and
        ``update_distribution_many(player, profile_indices)`` (and, for the
        gather mode, ``player_update_matrix(player)``).
    """

    #: whether per-player update rows are time-invariant (gather mode legal)
    supports_gather: bool = True

    def __init__(self, rule):
        self.rule = rule

    @property
    def game(self):
        """The game the rule plays on."""
        return self.rule.game

    def init_state(self, sim) -> dict:
        """Fresh per-simulator kernel state (cursor, step counter, ...)."""
        return {}

    def begin_run(self, sim, num_steps: int):
        """Pre-draw randomness for a bulk run; ``None`` means draw per step."""
        return None

    def run_step(self, sim, t: int, draws) -> None:
        """Advance all replicas at run step ``t`` (default: per-step draws)."""
        self.step(sim)

    def remaining_steps(self, sim) -> int | None:
        """How many more steps this kernel can take (``None`` = unbounded).

        Finite annealing schedules are the bounded case: first-passage runs
        clamp their ``max_steps`` to this budget so that replicas that have
        not hit by the end of the schedule report the ``-1`` sentinel
        instead of raising mid-flight.
        """
        return None

    @abc.abstractmethod
    def step(self, sim, where: np.ndarray | None = None) -> None:
        """Advance the selected replicas one step, drawing from ``sim.rng``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rule={self.rule!r})"


def _as_generators(seeds) -> list[np.random.Generator]:
    """Adopt ``Generator`` instances as-is, build one from anything else.

    Shared by every seeded kernel: ``SeedSequence`` children (or raw ints)
    replay their stream from scratch on each reset, while pre-built
    generators *continue* across resets — which is how the sharded drivers
    round-trip per-replica streams between checkpoints.
    """
    return [
        s if isinstance(s, np.random.Generator) else np.random.default_rng(s)
        for s in seeds
    ]


def _check_update_probability(p: float) -> float:
    p = float(p)
    if not 0.0 < p <= 1.0:
        raise ValueError("the update probability p must lie in (0, 1]")
    return p


def _concurrent_sweep(sim, where, old, mask, uniforms) -> None:
    """Apply one concurrent sweep from pre-drawn mask / move uniforms.

    ``old`` is the pre-step batch in the state backend's representation,
    ``mask`` the ``(k, n)`` boolean update mask (``None`` = every player
    updates, the ``p = 1`` case) and ``uniforms`` the ``(k, n)`` move
    uniforms in player order.  Shared by the probabilistic kernels so the
    unseeded and seeded variants advance the chain identically once their
    draws are fixed: every updating player's move distribution is evaluated
    against the *old* profile and all moves land at once.
    """
    state = sim.state
    n = sim.space.num_players
    beta = getattr(sim.dynamics, "beta", None)
    rows = sim._rows_all if where is None else where
    if mask is None:
        fused = getattr(sim, "_fused_parallel", None)
        if fused is not None and beta is not None:
            fused(state.matrix, rows, old, uniforms, beta)
            return
        new = old.copy()
        for player in range(n):
            chosen = sim._sample_moves(player, old, uniforms[:, player])
            new = state.set_strategies(new, player, chosen)
        state.put(where, new)
        return
    fused = getattr(sim, "_fused_probabilistic", None)
    if fused is not None and beta is not None:
        fused(state.matrix, rows, old, mask, uniforms, beta)
        return
    new = old.copy()
    for player in range(n):
        movers = np.flatnonzero(mask[:, player])
        if movers.size == 0:
            continue
        chosen = sim._sample_moves(player, old[movers], uniforms[movers, player])
        new[movers] = state.set_strategies(new[movers], player, chosen)
    state.put(where, new)


class SequentialKernel(UpdateKernel):
    """One uniformly random player revises per step (the paper's dynamics).

    With a :class:`~repro.core.logit.LogitDynamics` rule this is the
    standard logit chain (Equation 3); with a
    :class:`~repro.core.variants.BestResponseDynamics` rule it is the
    sequential best-response chain.  Bulk runs pre-draw all player
    selections and then all uniforms, which keeps single-replica engine
    trajectories bit-for-bit identical to the scalar reference loops.
    """

    def begin_run(self, sim, num_steps: int):
        n = sim.space.num_players
        players = sim.rng.integers(0, n, size=(num_steps, sim.num_replicas))
        uniforms = sim.rng.random((num_steps, sim.num_replicas))
        return players, uniforms

    def run_step(self, sim, t: int, draws) -> None:
        players, uniforms = draws
        sim._advance_batch(players[t], uniforms[t])

    def step(self, sim, where: np.ndarray | None = None) -> None:
        k = sim.num_replicas if where is None else where.size
        players = sim.rng.integers(0, sim.space.num_players, size=k)
        uniforms = sim.rng.random(k)
        sim._advance_batch(players, uniforms, where=where)


class SeededSequentialKernel(UpdateKernel):
    """Sequential kernel with one independent random stream *per replica*.

    The standard :class:`SequentialKernel` draws its randomness from the
    simulator's single generator in ``(steps, R)`` blocks, so the stream a
    replica sees depends on how many replicas share the ensemble.  That is
    the right (and fastest) contract for a fixed-size ensemble, but it
    makes chunked adaptive estimation non-reproducible: pooling 64+64
    replicas and pooling 128 give different samples.  This kernel instead
    gives replica ``r`` its own generator seeded from its own
    :class:`numpy.random.SeedSequence` child, so a replica's trajectory is
    a pure function of its seed — pooled first-passage samples are
    bit-for-bit identical no matter how the replica budget is chunked,
    which is the contract :func:`repro.stats.adaptive.run_until_width`
    builds on.

    Per replica, randomness is consumed in blocks of ``block_size`` steps
    (a players block, then a uniforms block, drawn with two vectorised
    generator calls); ``block_size`` is part of the stream definition, like
    the seed.  Every replica carries its own consumption cursor: blocks are
    refilled lazily, per replica, exactly when that replica has used its
    current block up, so a replica that hits its target early simply stops
    consuming its stream — first-passage retirement can neither perturb
    the other replicas nor desync the retired one.  Consecutive
    :meth:`~repro.engine.ensemble.EnsembleSimulator.run` / first-passage
    calls therefore continue every stream exactly where that replica
    stopped, even when the calls advanced different subsets of replicas,
    which is what makes seeded ensembles resumable.

    ``seeds`` may be ``SeedSequence`` instances (or raw ints) — then a
    reset replays the streams from scratch — or pre-built ``Generator``
    objects, which are adopted as-is and *continue* (not replay) across
    resets; the latter lets a caller draw per-replica start states from the
    same streams before handing them to the kernel.
    """

    def __init__(self, rule, seeds, block_size: int = 256):
        super().__init__(rule)
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = int(block_size)
        self.seeds = list(seeds)
        if not self.seeds:
            raise ValueError("need one seed (or generator) per replica")

    @staticmethod
    def spawn_block(
        root: np.random.SeedSequence, start: int, count: int
    ) -> list[np.random.SeedSequence]:
        """Children ``start .. start + count - 1`` of ``root``, shard-aware.

        Parameters
        ----------
        root:
            The master :class:`numpy.random.SeedSequence`.  Not mutated —
            in particular its ``n_children_spawned`` counter is left alone.
        start:
            Absolute index of the first child to construct, counted from a
            *fresh* root (``root.spawn`` called on a root that has never
            spawned produces child ``i`` at position ``i``).
        count:
            Number of consecutive children to construct.

        Returns
        -------
        list[numpy.random.SeedSequence]
            Bit-for-bit the children a fresh ``root.spawn(start + count)``
            would have produced at positions ``start .. start + count - 1``:
            ``numpy`` derives child ``i`` purely from ``(entropy,
            spawn_key + (i,))``, so a shard can construct its own block of
            per-replica seeds from ``(root, offset, count)`` alone — no
            shared mutable spawn cursor, no communication between shards.
            This is the seeding contract the sharded executors
            (:mod:`repro.parallel`) build on: per-sample streams are
            identical no matter how many shards the ensemble is split into.

        Example
        -------
        >>> import numpy as np
        >>> root = np.random.SeedSequence(7)
        >>> serial = np.random.SeedSequence(7).spawn(6)[2:5]
        >>> block = SeededSequentialKernel.spawn_block(root, 2, 3)
        >>> [c.spawn_key for c in block] == [c.spawn_key for c in serial]
        True
        >>> all(
        ...     np.random.default_rng(a).random() == np.random.default_rng(b).random()
        ...     for a, b in zip(block, serial)
        ... )
        True
        """
        if start < 0 or count < 0:
            raise ValueError("start and count must be non-negative")
        base = tuple(root.spawn_key)
        return [
            np.random.SeedSequence(entropy=root.entropy, spawn_key=base + (i,))
            for i in range(start, start + count)
        ]

    def _generators(self) -> list[np.random.Generator]:
        return _as_generators(self.seeds)

    def init_state(self, sim) -> dict:
        if len(self.seeds) != sim.num_replicas:
            raise ValueError(
                f"kernel carries {len(self.seeds)} per-replica streams but the "
                f"simulator has {sim.num_replicas} replicas"
            )
        R = sim.num_replicas
        return {
            "generators": self._generators(),
            # per-replica draws consumed / first draw of the current block;
            # -block_size forces a refill on each replica's first step
            "consumed": np.zeros(R, dtype=np.int64),
            "block_start": np.full(R, -self.block_size, dtype=np.int64),
            "players": np.empty((R, self.block_size), dtype=np.int64),
            "uniforms": np.empty((R, self.block_size), dtype=float),
        }

    def step(self, sim, where: np.ndarray | None = None) -> None:
        state = sim.kernel_state
        B = self.block_size
        n = sim.space.num_players
        sel = np.arange(sim.num_replicas) if where is None else where
        exhausted = sel[state["consumed"][sel] - state["block_start"][sel] >= B]
        for r in exhausted:
            g = state["generators"][r]
            state["players"][r] = g.integers(0, n, size=B)
            state["uniforms"][r] = g.random(B)
            state["block_start"][r] = state["consumed"][r]
        off = state["consumed"][sel] - state["block_start"][sel]
        players = state["players"][sel, off]
        uniforms = state["uniforms"][sel, off]
        sim._advance_batch(players, uniforms, where=where)
        state["consumed"][sel] += 1


class ParallelKernel(UpdateKernel):
    """Every player revises simultaneously from the pre-step profile.

    One step consumes ``n`` uniforms per replica (player order); every
    player's move distribution is evaluated against the *old* profile and
    all moves land at once, which is what makes the chain non-reversible
    and produces the coordination-game "parallel trap".
    """

    def step(self, sim, where: np.ndarray | None = None) -> None:
        state = sim.state
        n = sim.space.num_players
        fused = getattr(sim, "_fused_parallel", None)
        beta = getattr(sim.dynamics, "beta", None)
        if fused is not None and beta is not None:
            # one compiled pass: same uniform block (n per replica, player
            # order), same old-profile semantics, no per-player temporaries
            old = state.take(where)
            uniforms = sim.rng.random((old.shape[0], n))
            rows = sim._rows_all if where is None else where
            fused(state.matrix, rows, old, uniforms, beta)
            return
        old = state.take(where)
        uniforms = sim.rng.random((old.shape[0], n))
        new = old.copy()
        for player in range(n):
            chosen = sim._sample_moves(player, old, uniforms[:, player])
            new = state.set_strategies(new, player, chosen)
        state.put(where, new)


class ProbabilisticKernel(UpdateKernel):
    """Each player independently revises with probability ``p`` per step.

    The probabilistic ("all-logit") schedule of the concurrent-update
    follow-up work (arXiv 1207.2908): one step flips an independent
    ``p``-coin per player, and every selected player resamples from her
    move distribution *against the pre-step profile* — all moves land at
    once.  ``p = 1`` is exactly :class:`ParallelKernel` (the mask draw is
    skipped entirely, so even the random stream matches bit-for-bit);
    ``p -> 0`` approaches the sequential dynamics' one-expected-update-per-
    ``1/p``-steps intensity while keeping the concurrent (non-reversible)
    update semantics.

    Per step each replica consumes ``n`` mask uniforms (player order; a
    player updates iff her uniform is below ``p``) followed by ``n`` move
    uniforms — uniforms of unselected players are drawn and discarded, so
    the stream is independent of the realised mask.
    """

    def __init__(self, rule, p: float = 1.0):
        super().__init__(rule)
        self.p = _check_update_probability(p)

    def step(self, sim, where: np.ndarray | None = None) -> None:
        n = sim.space.num_players
        old = sim.state.take(where)
        k = old.shape[0]
        if self.p >= 1.0:
            mask = None
        else:
            mask = sim.rng.random((k, n)) < self.p
        uniforms = sim.rng.random((k, n))
        _concurrent_sweep(sim, where, old, mask, uniforms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rule={self.rule!r}, p={self.p})"


class SeededProbabilisticKernel(UpdateKernel):
    """Probabilistic-schedule kernel with one random stream *per replica*.

    The concurrent counterpart of :class:`SeededSequentialKernel`: replica
    ``r`` draws, per step and from its own generator, one ``(n,)`` row of
    mask uniforms (skipped entirely at ``p = 1``) followed by one ``(n,)``
    row of move uniforms.  Each replica's trajectory is therefore a pure
    function of its own seed — pooled concurrent first-passage and TV
    samples are bit-for-bit invariant to chunk size and shard count, which
    is what lets ``run_until_width``, ``empirical_hitting_times(precision=)``
    and ``estimate_tv_convergence(executor=)`` run concurrent dynamics.
    Unlike the sequential seeded kernel no block buffering is needed: one
    step already consumes a full ``(n,)`` row per draw, so the per-sweep
    generator call is itself the block.

    ``seeds`` follows the :class:`SeededSequentialKernel` contract:
    ``SeedSequence`` children or raw ints replay from scratch on reset,
    pre-built ``Generator`` objects are adopted as-is and continue.
    """

    def __init__(self, rule, seeds, p: float = 1.0):
        super().__init__(rule)
        self.p = _check_update_probability(p)
        self.seeds = list(seeds)
        if not self.seeds:
            raise ValueError("need one seed (or generator) per replica")

    def init_state(self, sim) -> dict:
        if len(self.seeds) != sim.num_replicas:
            raise ValueError(
                f"kernel carries {len(self.seeds)} per-replica streams but the "
                f"simulator has {sim.num_replicas} replicas"
            )
        return {"generators": _as_generators(self.seeds)}

    def step(self, sim, where: np.ndarray | None = None) -> None:
        generators = sim.kernel_state["generators"]
        sel = range(sim.num_replicas) if where is None else where
        n = sim.space.num_players
        k = sim.num_replicas if where is None else where.size
        old = sim.state.take(where)
        uniforms = np.empty((k, n), dtype=float)
        if self.p >= 1.0:
            mask = None
            for j, r in enumerate(sel):
                uniforms[j] = generators[r].random(n)
        else:
            mask_uniforms = np.empty((k, n), dtype=float)
            for j, r in enumerate(sel):
                g = generators[r]
                mask_uniforms[j] = g.random(n)
                uniforms[j] = g.random(n)
            mask = mask_uniforms < self.p
        _concurrent_sweep(sim, where, old, mask, uniforms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(rule={self.rule!r}, p={self.p}, "
            f"replicas={len(self.seeds)})"
        )


class SeededParallelKernel(SeededProbabilisticKernel):
    """Seeded all-players-at-once kernel (the ``p = 1`` schedule).

    Per step each replica consumes one ``(n,)`` row of move uniforms from
    its own generator — the :class:`ParallelKernel` contract on per-replica
    streams.
    """

    def __init__(self, rule, seeds):
        super().__init__(rule, seeds, p=1.0)


class RoundRobinKernel(UpdateKernel):
    """Players revise in the fixed cyclic order 0, 1, ..., n-1, 0, ...

    The cursor lives in the simulator's kernel state and advances exactly
    once per step — it is *never* touched by snapshot recording or by
    splitting a run into several :meth:`EnsembleSimulator.run` calls, so
    recording mid-round cannot desync the player order (the round-
    bookkeeping regression in ``tests/test_variant_kernels.py`` pins this).
    """

    def init_state(self, sim) -> dict:
        return {"cursor": 0}

    def step(self, sim, where: np.ndarray | None = None) -> None:
        state = sim.kernel_state
        player = state["cursor"]
        k = sim.num_replicas if where is None else where.size
        uniforms = sim.rng.random(k)
        sim._advance_batch(np.full(k, player, dtype=np.int64), uniforms, where=where)
        state["cursor"] = (player + 1) % sim.space.num_players


class AnnealedKernel(UpdateKernel):
    """Sequential revision under a time-varying ``beta_t`` schedule.

    ``rule`` must be an :class:`~repro.core.variants.AnnealedLogitDynamics`
    (exposing ``beta_at(t)`` and ``update_distribution_many_at(beta, player,
    idx)``).  The global step counter is shared by all replicas — every
    replica sees the same ``beta_t`` — and lives in the simulator's kernel
    state, so consecutive :meth:`run` calls continue the schedule where the
    previous one stopped.  Finite schedules shorter than a requested run
    raise up front rather than mid-flight; first-passage runs instead clamp
    to the remaining schedule (via :meth:`remaining_steps`) and report the
    ``-1`` not-reached sentinel at exhaustion.
    """

    supports_gather = False

    def init_state(self, sim) -> dict:
        return {"step": 0}

    def remaining_steps(self, sim) -> int | None:
        horizon = self.rule.horizon
        if horizon is None:
            return None
        return max(0, int(horizon) - sim.kernel_state["step"])

    def begin_run(self, sim, num_steps: int):
        start = sim.kernel_state["step"]
        if num_steps > 0:
            # fail before any replica moves, not at the step that exhausts a
            # finite schedule
            self.rule.validate_horizon(start, start + num_steps)
        n = sim.space.num_players
        players = sim.rng.integers(0, n, size=(num_steps, sim.num_replicas))
        uniforms = sim.rng.random((num_steps, sim.num_replicas))
        return players, uniforms

    def run_step(self, sim, t: int, draws) -> None:
        players, uniforms = draws
        state = sim.kernel_state
        # the engine routes the explicit beta through the state backend
        # (update_distribution_many_at on index batches, the _profiles_at /
        # _rowwise_at counterparts on strategy-row batches)
        beta = self.rule.beta_at(state["step"])
        sim._advance_batch(players[t], uniforms[t], at_beta=beta)
        state["step"] += 1

    def step(self, sim, where: np.ndarray | None = None) -> None:
        state = sim.kernel_state
        beta = self.rule.beta_at(state["step"])
        k = sim.num_replicas if where is None else where.size
        players = sim.rng.integers(0, sim.space.num_players, size=k)
        uniforms = sim.rng.random(k)
        sim._advance_batch(players, uniforms, where=where, at_beta=beta)
        state["step"] += 1


#: unseeded kernels that have a seeded per-replica-stream counterpart —
#: exactly the dynamics the adaptive (precision=) and sharded (executor=)
#: estimators accept (see require_sequential_dynamics / seeded_kernel_for)
_SEEDABLE_KERNELS: tuple[type, ...] = (
    SequentialKernel,
    ParallelKernel,
    ProbabilisticKernel,
)


def seeded_kernel_for(kernel: UpdateKernel, seeds, block_size: int = 256):
    """The per-replica-stream counterpart of an unseeded kernel.

    This is the dispatch :meth:`EnsembleSimulator.seeded
    <repro.engine.ensemble.EnsembleSimulator.seeded>` — and through it every
    adaptive and sharded estimator — uses to rebuild a dynamics' kernel
    around per-replica generators:

    * :class:`SequentialKernel` -> :class:`SeededSequentialKernel`
      (``block_size`` is part of that kernel's stream definition);
    * :class:`ParallelKernel` -> :class:`SeededParallelKernel`;
    * :class:`ProbabilisticKernel` -> :class:`SeededProbabilisticKernel`
      at the same update probability ``p``.

    Kernels without a seeded counterpart (round-robin, annealed) raise —
    silently substituting a different schedule would simulate a different
    Markov chain.
    """
    if type(kernel) is SequentialKernel:
        return SeededSequentialKernel(kernel.rule, seeds, block_size=block_size)
    if type(kernel) is ParallelKernel:
        return SeededParallelKernel(kernel.rule, seeds)
    if type(kernel) is ProbabilisticKernel:
        return SeededProbabilisticKernel(kernel.rule, seeds, p=kernel.p)
    supported = ", ".join(k.__name__ for k in _SEEDABLE_KERNELS)
    raise ValueError(
        f"no seeded per-replica-stream counterpart exists for "
        f"{type(kernel).__name__}; seeded ensembles support {supported}"
    )
