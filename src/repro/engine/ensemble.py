"""Batched, matrix-free simulation of update dynamics over replicas.

The Monte-Carlo entry points of the package used to advance one replica of
the chain one step at a time in pure Python, which caps experiments at toy
sizes exactly where the paper's claims are about *scaling*.
:class:`EnsembleSimulator` removes that cap: it holds ``R`` independent
replicas of the chain in a pluggable state backend
(:mod:`repro.engine.state`) and advances all of them per step with a
handful of numpy operations:

1. the update-rule *kernel* (:mod:`repro.engine.kernels`) draws the step's
   movers and uniforms in bulk — a uniformly random player per replica for
   the paper's dynamics, all players for the synchronous variant, the
   cursor player for round-robin scanning,
2. replicas are grouped by moving player (one stable argsort),
3. per player, the ``(k, m_i)`` move-distribution rows are produced with one
   batched rule evaluation (an indexed utility gather for
   :class:`~repro.engine.state.IndexState`, a profile-row utility
   computation for :class:`~repro.engine.state.MatrixState`) plus a
   row-wise softmax / argmax, and
4. the uniforms are mapped through the row-wise inverse CDF
   (:func:`repro.engine.sampling.sample_from_cumulative`).

Two state backends are supported (``state=`` argument):

* ``"index"`` — each replica is a flat int64 profile index
  (:class:`~repro.engine.state.IndexState`); the fastest representation
  for tabulated games, limited to profile spaces that fit in int64;
* ``"matrix"`` — each replica is a strategy row in an ``(R, n)``
  int8/int16 matrix (:class:`~repro.engine.state.MatrixState`); no index
  is ever computed on the stepping path, so graph-structured games with
  thousands of players (:class:`~repro.games.local.LocalInteractionGame`)
  simulate without ever touching ``|S|``.

and two execution modes:

* *matrix-free* — utilities are produced on demand per step; memory is
  ``O(R * m)`` (plus ``O(R * n)`` state) regardless of the profile-space
  size;
* *gather* (small-space mode, index state only) — each player's full
  update matrix ``sigma_i(. | x)`` over all profiles is precomputed once
  (cumulative sums included), after which a step is a pure indexed gather
  with no utility or softmax work at all.  Worth it whenever ``|S|`` fits
  in memory and many steps are simulated, which is the common
  benchmarking regime.  Only legal for kernels whose update rows are
  time-invariant (:attr:`~repro.engine.kernels.UpdateKernel.supports_gather`).

Replicas are statistically independent: grouping them by moving player
within a step is exact, not an approximation, because each replica receives
exactly the moves its kernel prescribes per step.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from ..games.space import DENSE_PROFILE_CAP
from ..obs import as_tracer
from .backend import ArrayBackend, resolve_backend
from .kernels import (
    SeededSequentialKernel,
    SequentialKernel,
    UpdateKernel,
    seeded_kernel_for,
)
from .sampling import sample_from_cumulative, sample_inverse_cdf
from .state import EngineState, IndexState, MatrixState

__all__ = ["EnsembleSimulator"]

#: Target predicate for first-passage observables: maps a ``(k, n)``
#: strategy-profile array to a ``(k,)`` boolean membership mask.
ProfilePredicate = Callable[[np.ndarray], np.ndarray]


class EnsembleSimulator:
    """Vectorised ensemble of replicas of a single-site update chain.

    Parameters
    ----------
    dynamics:
        The dynamics to simulate.  Any object exposing ``game`` (a
        :class:`~repro.games.Game`), ``update_distribution_many(player,
        profile_indices)`` and — for the matrix state backend —
        ``update_distribution_profiles(player, profiles)`` works;
        :class:`~repro.core.logit.LogitDynamics` is the canonical provider.
        Without an explicit ``kernel`` it is advanced one uniformly random
        player per step (:class:`~repro.engine.kernels.SequentialKernel`).
    num_replicas:
        Number of independent replicas ``R``.
    start:
        Initial state of the ensemble: ``None`` (all replicas at the
        all-zeros profile), a single profile index, an ``(n,)`` strategy
        profile broadcast to every replica, or an ``(R, n)`` array of
        per-replica profiles.  A 1-D array is *always* read as a strategy
        profile; to start each replica at its own profile index use
        ``start_indices`` (keeping the two channels separate avoids a
        silent ambiguity when ``R == n``).
    start_indices:
        ``(R,)`` array of per-replica profile indices; mutually exclusive
        with ``start``.
    rng:
        Numpy random generator (a fresh default generator if omitted).
    mode:
        ``"matrix_free"``, ``"gather"``, or ``"auto"`` (gather when the
        state is index-backed and the profile space has at most
        ``gather_cap`` profiles).
    gather_cap:
        Small-space threshold used by ``mode="auto"``.
    kernel:
        The :class:`~repro.engine.kernels.UpdateKernel` deciding who moves
        per step.  Defaults to ``SequentialKernel(dynamics)`` — the paper's
        one-uniformly-random-player-per-step rule.
    state:
        Replica-state backend: ``"index"``, ``"matrix"``, or ``"auto"``
        (index whenever the profile space fits in int64, matrix beyond —
        except that an array backend able to fuse this (game, rule) pair
        flips the auto choice to matrix so its compiled kernels engage).
        Small-space trajectories are bit-for-bit identical across the two
        backends under a fixed seed.
    backend:
        Array/compute backend for the per-step hot path
        (:mod:`repro.engine.backend`): ``"numpy"`` (default — the existing
        vectorised path, bit-for-bit identical to the pre-backend engine),
        ``"numba"`` (JIT-fused step kernels for local-interaction games
        under softmax rules; falls back to numpy with a one-line warning
        when numba is not installed), ``"auto"``, or an
        :class:`~repro.engine.backend.ArrayBackend` instance.
    tracer:
        Telemetry sink (:mod:`repro.obs`): ``None`` (default — the shared
        no-op tracer, zero hot-path cost), a
        :class:`~repro.obs.Tracer`, or a path for a JSONL trace file.
        When enabled the simulator counts ``engine.replica_steps``, times
        ``engine.run`` / ``engine.first_passage``, and emits an
        ``engine.backend_resolved`` event at construction.  Tracing never
        touches the random streams, so traced and untraced runs are
        bit-for-bit identical under the same seed.

    Example
    -------
    >>> import networkx as nx
    >>> import numpy as np
    >>> from repro.core import LogitDynamics
    >>> from repro.games import IsingGame
    >>> game = IsingGame(nx.cycle_graph(4), coupling=1.0)
    >>> dynamics = LogitDynamics(game, beta=0.8)
    >>> sim = dynamics.ensemble(32, start=(0, 0, 0, 0), rng=np.random.default_rng(0))
    >>> sim.run(500)
    >>> sim.profiles.shape
    (32, 4)
    >>> consensus = game.space.encode(np.ones(4, dtype=np.int64))
    >>> sim.reset(start=(0, 0, 0, 0))
    >>> times = sim.hitting_times(consensus, max_steps=10_000)
    >>> times.shape, bool(np.all(times >= 0))
    ((32,), True)
    """

    def __init__(
        self,
        dynamics,
        num_replicas: int,
        start: Sequence[int] | np.ndarray | int | None = None,
        rng: np.random.Generator | None = None,
        mode: str = "auto",
        gather_cap: int = 1 << 16,
        start_indices: np.ndarray | None = None,
        kernel: UpdateKernel | None = None,
        state: str = "auto",
        backend: str | ArrayBackend | None = "numpy",
        tracer=None,
    ):
        if num_replicas < 1:
            raise ValueError("need at least one replica")
        self.tracer = as_tracer(tracer)
        self.kernel = SequentialKernel(dynamics) if kernel is None else kernel
        if self.kernel.game is not dynamics.game:
            raise ValueError("kernel and dynamics must play the same game")
        # every move distribution comes from the kernel's rule, so that is
        # what this simulator truthfully reports as its dynamics (identical
        # to the `dynamics` argument unless an explicit kernel carrying its
        # own rule was supplied)
        self.dynamics = self.kernel.rule
        self.game = self.kernel.game
        self.space = self.game.space
        self.num_replicas = int(num_replicas)
        self.rng = np.random.default_rng() if rng is None else rng
        self.backend = resolve_backend(backend, tracer=self.tracer)
        if state == "auto":
            # fused backend kernels only exist over the strategy matrix, so
            # a backend that can fuse this (game, rule) pair flips the auto
            # choice; with the default numpy backend this is the historical
            # rule (index whenever the space fits int64)
            state = (
                "matrix"
                if (
                    not self.space.fits_int64
                    or self.backend.can_fuse(self.game, self.kernel.rule)
                )
                else "index"
            )
        if state == "index":
            self.state: EngineState = IndexState(self.space)
        elif state == "matrix":
            self.state = MatrixState(self.space, backend=self.backend)
        else:
            raise ValueError(f"unknown state backend {state!r}")
        if mode == "auto":
            mode = (
                "gather"
                if (
                    self.state.kind == "index"
                    and self.kernel.supports_gather
                    and self.space.size <= gather_cap
                )
                else "matrix_free"
            )
        if mode not in ("gather", "matrix_free"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "gather" and not self.kernel.supports_gather:
            raise ValueError(
                f"gather mode precomputes time-invariant update rows but "
                f"{type(self.kernel).__name__} is time-inhomogeneous; use "
                f"matrix_free"
            )
        if mode == "gather" and self.state.kind != "index":
            raise ValueError(
                "gather mode indexes precomputed (|S|, m) update matrices by "
                "profile index and therefore requires the index state "
                "backend; use matrix_free with state='matrix'"
            )
        if mode == "gather" and self.space.size > DENSE_PROFILE_CAP:
            raise ValueError(
                f"gather mode precomputes (|S|, m) update matrices but the "
                f"space has {self.space.size} profiles; use matrix_free"
            )
        self.mode = mode
        self._cum_cache: dict[int, np.ndarray] = {}
        # Row-wise fast path: on the matrix backend, games with uniform
        # strategy counts that expose utility_deviations_rowwise (local-
        # interaction games) let a step with k distinct movers run as ONE
        # vectorised rule call instead of ~k per-player groups.  Produces
        # float-identical move distributions, so trajectories are unchanged.
        rule = self.kernel.rule
        self._rowwise_rule = None
        if (
            self.mode == "matrix_free"
            and self.state.kind == "matrix"
            and getattr(self.game, "utility_deviations_rowwise", None) is not None
            and hasattr(rule, "update_distribution_rowwise")
        ):
            self._rowwise_rule = rule.update_distribution_rowwise
        self._rowwise_rule_at = None
        if (
            self.mode == "matrix_free"
            and self.state.kind == "matrix"
            and getattr(self.game, "utility_deviations_rowwise", None) is not None
            and hasattr(rule, "update_distribution_rowwise_at")
        ):
            self._rowwise_rule_at = rule.update_distribution_rowwise_at
        # Fused backend steppers: a non-numpy backend may compile the whole
        # gather -> deviation -> softmax -> sample -> write pipeline into a
        # single kernel over the live strategy matrix.  None (always, for
        # the numpy backend) means the generic paths above run unchanged.
        self._fused_rowwise = None
        self._fused_parallel = None
        self._fused_probabilistic = None
        if self.mode == "matrix_free" and self.state.kind == "matrix":
            self._fused_rowwise = self.backend.fused_rowwise_stepper(self.game, rule)
            self._fused_parallel = self.backend.fused_parallel_stepper(self.game, rule)
            self._fused_probabilistic = self.backend.fused_probabilistic_stepper(
                self.game, rule
            )
        self._rows_all = np.arange(self.num_replicas, dtype=np.int64)
        if self.tracer.enabled:
            self.tracer.event(
                "engine.backend_resolved",
                backend=type(self.backend).__name__,
                state=self.state.kind,
                mode=self.mode,
                replicas=self.num_replicas,
                fused=bool(
                    self._fused_rowwise is not None
                    or self._fused_parallel is not None
                    or self._fused_probabilistic is not None
                ),
            )
        self.reset(start, start_indices=start_indices)

    @classmethod
    def seeded(
        cls,
        dynamics,
        seeds,
        start: Sequence[int] | np.ndarray | int | None = None,
        start_indices: np.ndarray | None = None,
        mode: str = "auto",
        state: str = "auto",
        backend: str | ArrayBackend | None = "numpy",
        block_size: int = 256,
        tracer=None,
    ) -> "EnsembleSimulator":
        """An ensemble with one independent random stream per replica.

        Builds the simulator around the seeded counterpart of the
        dynamics' own kernel
        (:func:`~repro.engine.kernels.seeded_kernel_for`): sequential
        dynamics get a
        :class:`~repro.engine.kernels.SeededSequentialKernel`, concurrent
        (parallel / probabilistic-schedule) dynamics their
        :class:`~repro.engine.kernels.SeededParallelKernel` /
        :class:`~repro.engine.kernels.SeededProbabilisticKernel`; kernels
        without a seeded counterpart raise.  Replica ``r`` draws all of
        its randomness from ``seeds[r]`` (a
        :class:`numpy.random.SeedSequence` child, raw int, or pre-built
        generator), so its trajectory is a pure function of its own seed.
        This is the chunked/resumable run mode the adaptive estimators
        use: replica chunks of any size pool into bit-for-bit identical
        samples, and consecutive ``run`` / first-passage calls continue
        each stream where the previous call stopped.  ``block_size`` only
        affects the sequential seeded kernel (it is part of that kernel's
        stream definition); the concurrent kernels draw whole per-sweep
        rows instead.
        """
        seeds = list(seeds)
        kernel = dynamics.kernel() if hasattr(dynamics, "kernel") else None
        if kernel is None:
            seeded_kernel: UpdateKernel = SeededSequentialKernel(
                dynamics, seeds, block_size=block_size
            )
        else:
            seeded_kernel = seeded_kernel_for(kernel, seeds, block_size=block_size)
        return cls(
            dynamics,
            len(seeds),
            start=start,
            start_indices=start_indices,
            mode=mode,
            state=state,
            backend=backend,
            kernel=seeded_kernel,
            tracer=tracer,
        )

    # -- state ------------------------------------------------------------

    def reset(
        self,
        start: Sequence[int] | np.ndarray | int | None = None,
        *,
        start_indices: np.ndarray | None = None,
    ) -> None:
        """(Re-)initialise every replica from ``start`` (see class docs).

        Also resets the kernel's per-simulator state (round-robin cursor,
        annealed step counter) — a reset restarts the dynamics from time 0.
        """
        self.kernel_state = self.kernel.init_state(self)
        self.state.init(self.num_replicas, start, start_indices)

    @property
    def indices(self) -> np.ndarray:
        """Current profile indices of the replicas (``(R,)`` copy).

        Only available while the profile space fits in int64 (always for
        the index backend; for the matrix backend the rows are encoded on
        demand, and spaces beyond int64 raise with a pointer to the
        profile-row observables).
        """
        return np.array(self.state.indices_at(None), dtype=np.int64)

    @property
    def profiles(self) -> np.ndarray:
        """Current strategy profiles of the replicas (``(R, n)``)."""
        return self.state.profiles_at(None)

    def empirical_distribution(self) -> np.ndarray:
        """Occupation frequencies of the ensemble over profile indices."""
        if not self.space.fits_int64 or self.space.size > DENSE_PROFILE_CAP:
            count = (
                f"{self.space.size}" if self.space.fits_int64
                else "more than 2**63"
            )
            raise ValueError(
                "empirical_distribution materialises a (|S|,) histogram; the "
                f"profile space has {count} profiles — use "
                f"empirical_distribution_sparse (occupied indices + counts) "
                f"or empirical_profile_counts (occupied profiles + counts)"
            )
        counts = np.bincount(self.state.indices_at(None), minlength=self.space.size)
        return counts / self.num_replicas

    def empirical_distribution_sparse(self) -> tuple[np.ndarray, np.ndarray]:
        """Occupied profile indices and their replica counts.

        Returns ``(indices, counts)`` — the sorted unique profile indices
        currently occupied by at least one replica and the number of
        replicas at each.  Memory is ``O(R)`` regardless of ``|S|``, which
        is what occupation statistics on large spaces need; requires only
        that the space fits in int64 (beyond that, indices do not exist —
        use :meth:`empirical_profile_counts`).
        """
        unique, counts = np.unique(self.state.indices_at(None), return_counts=True)
        return unique, counts

    def empirical_profile_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Occupied strategy profiles and their replica counts.

        Returns ``(profiles, counts)`` with ``profiles`` of shape
        ``(u, n)``.  Works for every space size on both state backends —
        the index-free counterpart of :meth:`empirical_distribution_sparse`.
        """
        return np.unique(self.state.profiles_at(None), axis=0, return_counts=True)

    # -- stepping ---------------------------------------------------------

    def _cumulative_update_matrix(self, player: int) -> np.ndarray:
        """Cached ``(|S|, m_player)`` cumulative update probabilities."""
        cum = self._cum_cache.get(player)
        if cum is None:
            probs = self.kernel.rule.player_update_matrix(player)
            cum = np.cumsum(probs, axis=1)
            self._cum_cache[player] = cum
        return cum

    def _sample_moves(
        self, player: int, batch: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """New strategies of ``player`` for the replicas in ``batch``.

        The shared inner move of every kernel: produce the ``(k, m_player)``
        move-distribution rows (precomputed gather or on-demand rule call
        through the state backend) and map the uniforms through the
        row-wise inverse CDF.
        """
        if self.mode == "gather":
            cum = self._cumulative_update_matrix(player)[batch]
            return sample_from_cumulative(cum, uniforms)
        probs = self.state.rule_rows(self.kernel.rule, player, batch)
        return sample_inverse_cdf(probs, uniforms)

    def _advance_batch(
        self,
        players: np.ndarray,
        uniforms: np.ndarray,
        where: np.ndarray | None = None,
        at_beta: float | None = None,
    ) -> None:
        """Apply one single-site update to each selected replica.

        ``players`` and ``uniforms`` are ``(k,)`` arrays aligned with
        ``where`` (``(k,)`` replica positions; all replicas when ``None``).
        ``at_beta`` evaluates the rule at an explicit inverse noise instead
        of its own (the annealed kernel passes its current ``beta_t``).

        On the matrix state backend with a row-wise-capable game the whole
        batch advances as one vectorised call; otherwise replicas are
        grouped by moving player (one stable argsort) and each group gets
        one batched rule evaluation.  Both paths produce float-identical
        move distributions and consume the same uniforms per replica, so
        trajectories do not depend on which one ran.
        """
        state = self.state
        if players.size > 1:
            if self._fused_rowwise is not None:
                beta = (
                    getattr(self.dynamics, "beta", None) if at_beta is None else at_beta
                )
                if beta is not None:
                    rows = self._rows_all if where is None else where
                    self._fused_rowwise(state.matrix, rows, players, uniforms, beta)
                    return
            rowwise = self._rowwise_rule if at_beta is None else self._rowwise_rule_at
            if rowwise is not None:
                batch = state.rowwise_view(where)
                if at_beta is None:
                    probs = rowwise(players, batch)
                else:
                    probs = rowwise(at_beta, players, batch)
                chosen = sample_inverse_cdf(probs, uniforms)
                state.set_strategies_rowwise(where, players, chosen)
                return
            order = np.argsort(players, kind="stable")
            boundaries = np.flatnonzero(np.diff(players[order])) + 1
            groups = np.split(order, boundaries)
        else:
            # single-replica fast path: no grouping machinery
            groups = [np.zeros(1, dtype=np.int64)]
        for group in groups:
            player = int(players[group[0]])
            sel = group if where is None else where[group]
            batch = state.take(sel)
            if at_beta is None:
                chosen = self._sample_moves(player, batch, uniforms[group])
            else:
                probs = state.rule_rows_at(self.kernel.rule, at_beta, player, batch)
                chosen = sample_inverse_cdf(probs, uniforms[group])
            state.put(sel, state.set_strategies(batch, player, chosen))

    def step(self) -> None:
        """Advance every replica by one step of the dynamics."""
        self.kernel.step(self)

    def run(self, num_steps: int, record_every: int | None = None) -> np.ndarray | None:
        """Advance the ensemble ``num_steps`` steps, optionally recording.

        Randomness is drawn as the kernel prescribes — the sequential
        kernels pre-draw every player and uniform for the whole run (players
        first, then uniforms), so for ``R = 1`` the random stream — and
        hence the trajectory — is *identical* to the single-replica
        reference loop (:meth:`repro.core.logit.LogitDynamics.simulate_loop`
        and the variant ``simulate_loop`` methods) under the same generator
        state.  Recording only copies the state array; it never touches the
        kernel's bookkeeping (round-robin cursor, annealed step counter), so
        snapshots cannot desync the dynamics.

        Returns ``None`` when ``record_every`` is ``None``; otherwise the
        recorded snapshots as a ``(k, R, n)`` int array whose first entry is
        the state on entry and subsequent entries are snapshots every
        ``record_every`` steps.
        """
        if num_steps < 0:
            raise ValueError("num_steps must be non-negative")
        tracer = self.tracer
        tic = perf_counter() if tracer.enabled else 0.0
        draws = self.kernel.begin_run(self, num_steps)
        snapshots: list[np.ndarray] | None = None
        if record_every is not None:
            record_every = max(int(record_every), 1)
            snapshots = [self.state.snapshot()]
        for t in range(num_steps):
            self.kernel.run_step(self, t, draws)
            if snapshots is not None and (t + 1) % record_every == 0:
                snapshots.append(self.state.snapshot())
        if tracer.enabled:
            tracer.count("engine.replica_steps", int(num_steps) * self.num_replicas)
            tracer.timing(
                "engine.run",
                perf_counter() - tic,
                payload={"steps": int(num_steps), "replicas": self.num_replicas},
            )
        if snapshots is None:
            return None
        return self.state.stack_snapshots(snapshots)

    # -- first-passage observables ----------------------------------------

    def _first_times(
        self, in_target: Callable[[np.ndarray | None], np.ndarray], max_steps: int
    ) -> np.ndarray:
        """Per-replica first time ``in_target`` holds (``-1`` if never).

        ``in_target(sel)`` returns the membership mask of the selected
        replica positions (all replicas when ``sel`` is ``None``).
        Replicas that reach the target stop being advanced; the others keep
        their own independent randomness.  Mutates the ensemble state.  For
        kernels with a bounded horizon (finite annealing schedules) the
        search is clamped to the remaining schedule, so exhaustion reads as
        ``-1`` (not reached) rather than a mid-run error.
        """
        tracer = self.tracer
        tic = perf_counter() if tracer.enabled else 0.0
        advanced = 0
        times = np.full(self.num_replicas, -1, dtype=np.int64)
        inside = in_target(None)
        times[inside] = 0
        active = np.flatnonzero(~inside)
        budget = self.kernel.remaining_steps(self)
        if budget is not None:
            max_steps = min(int(max_steps), budget)
        for t in range(1, max_steps + 1):
            if active.size == 0:
                break
            advanced += active.size
            self.kernel.step(self, where=active)
            hit = in_target(active)
            times[active[hit]] = t
            active = active[~hit]
        if tracer.enabled:
            tracer.count("engine.replica_steps", int(advanced))
            tracer.timing(
                "engine.first_passage",
                perf_counter() - tic,
                payload={"replicas": self.num_replicas},
            )
        return times

    def _membership(
        self, targets: int | Sequence[int] | np.ndarray | ProfilePredicate
    ) -> Callable[[np.ndarray | None], np.ndarray]:
        """Membership evaluator for index targets or a profile predicate.

        A callable target is a *profile predicate*: it receives the
        ``(k, n)`` strategy profiles of the queried replicas and returns a
        ``(k,)`` boolean mask.  Predicates are the only target form that
        works past the int64 profile-index ceiling (e.g. a magnetization
        threshold on a 1000-player local-interaction game).
        """
        if callable(targets):
            predicate = targets
            return lambda sel: np.atleast_1d(
                np.asarray(predicate(self.state.profiles_at(sel)), dtype=bool)
            )
        target_arr = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        if target_arr.size == 1:
            target = int(target_arr[0])
            return lambda sel: self.state.indices_at(sel) == target
        return lambda sel: np.isin(self.state.indices_at(sel), target_arr)

    def hitting_times(
        self,
        targets: int | Sequence[int] | np.ndarray | ProfilePredicate,
        max_steps: int = 10**6,
    ) -> np.ndarray:
        """First time each replica hits a target set (``-1`` if never).

        ``targets`` is one profile index, an array of them (hitting any
        counts), or a *profile predicate* — a callable mapping the
        ``(k, n)`` strategy profiles of the queried replicas to a ``(k,)``
        boolean mask.  Predicates never touch profile indices, so they are
        the target form to use on spaces beyond int64.  Replicas already at
        a target report 0.
        """
        return self._first_times(self._membership(targets), max_steps)

    def exit_times(
        self,
        states: Sequence[int] | np.ndarray | ProfilePredicate,
        max_steps: int = 10**6,
    ) -> np.ndarray:
        """First time each replica leaves the profile set (``-1`` if never).

        ``states`` is an array of profile indices or a profile predicate
        describing membership of the set being escaped from.
        """
        if callable(states):
            inside = self._membership(states)
        else:
            inside = self._membership(np.unique(np.asarray(states, dtype=np.int64)))
        return self._first_times(lambda sel: ~inside(sel), max_steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnsembleSimulator(replicas={self.num_replicas}, mode={self.mode!r}, "
            f"state={self.state.kind!r}, kernel={type(self.kernel).__name__}, "
            f"game={self.game!r})"
        )
