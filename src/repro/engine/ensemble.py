"""Batched, matrix-free simulation of update dynamics over replicas.

The Monte-Carlo entry points of the package used to advance one replica of
the chain one step at a time in pure Python, which caps experiments at toy
sizes exactly where the paper's claims are about *scaling*.
:class:`EnsembleSimulator` removes that cap: it holds ``R`` independent
replicas of the chain as a single ``(R,)`` array of profile indices and
advances all of them per step with a handful of numpy operations:

1. the update-rule *kernel* (:mod:`repro.engine.kernels`) draws the step's
   movers and uniforms in bulk — a uniformly random player per replica for
   the paper's dynamics, all players for the synchronous variant, the
   cursor player for round-robin scanning,
2. replicas are grouped by moving player (one stable argsort),
3. per player, the ``(k, m_i)`` move-distribution rows are produced with one
   fancy-indexed utility lookup
   (:meth:`repro.games.Game.utility_deviations_many`) plus a row-wise
   softmax / argmax, and
4. the uniforms are mapped through the row-wise inverse CDF
   (:func:`repro.engine.sampling.sample_from_cumulative`).

Two execution modes are supported:

* *matrix-free* — utilities are produced on demand per step; memory is
  ``O(R * m)`` regardless of the profile-space size;
* *gather* (small-space mode) — each player's full update matrix
  ``sigma_i(. | x)`` over all profiles is precomputed once (cumulative sums
  included), after which a step is a pure indexed gather with no utility or
  softmax work at all.  Worth it whenever ``|S|`` fits in memory and many
  steps are simulated, which is the common benchmarking regime.  Only legal
  for kernels whose update rows are time-invariant
  (:attr:`~repro.engine.kernels.UpdateKernel.supports_gather`).

Replicas are statistically independent: grouping them by moving player
within a step is exact, not an approximation, because each replica receives
exactly the moves its kernel prescribes per step.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..games.space import DENSE_PROFILE_CAP
from .kernels import SequentialKernel, UpdateKernel
from .sampling import sample_from_cumulative, sample_inverse_cdf

__all__ = ["EnsembleSimulator"]


class EnsembleSimulator:
    """Vectorised ensemble of replicas of a single-site update chain.

    Parameters
    ----------
    dynamics:
        The dynamics to simulate.  Any object exposing ``game`` (a
        :class:`~repro.games.Game`), ``update_distribution_many(player,
        profile_indices)`` and — for the gather mode —
        ``player_update_matrix(player)`` works;
        :class:`~repro.core.logit.LogitDynamics` is the canonical provider.
        Without an explicit ``kernel`` it is advanced one uniformly random
        player per step (:class:`~repro.engine.kernels.SequentialKernel`).
    num_replicas:
        Number of independent replicas ``R``.
    start:
        Initial state of the ensemble: ``None`` (all replicas at profile
        index 0), a single profile index, an ``(n,)`` strategy profile
        broadcast to every replica, or an ``(R, n)`` array of per-replica
        profiles.  A 1-D array is *always* read as a strategy profile; to
        start each replica at its own profile index use ``start_indices``
        (keeping the two channels separate avoids a silent ambiguity when
        ``R == n``).
    start_indices:
        ``(R,)`` array of per-replica profile indices; mutually exclusive
        with ``start``.
    rng:
        Numpy random generator (a fresh default generator if omitted).
    mode:
        ``"matrix_free"``, ``"gather"``, or ``"auto"`` (gather when the
        profile space has at most ``gather_cap`` profiles).
    gather_cap:
        Small-space threshold used by ``mode="auto"``.
    kernel:
        The :class:`~repro.engine.kernels.UpdateKernel` deciding who moves
        per step.  Defaults to ``SequentialKernel(dynamics)`` — the paper's
        one-uniformly-random-player-per-step rule.
    """

    def __init__(
        self,
        dynamics,
        num_replicas: int,
        start: Sequence[int] | np.ndarray | int | None = None,
        rng: np.random.Generator | None = None,
        mode: str = "auto",
        gather_cap: int = 1 << 16,
        start_indices: np.ndarray | None = None,
        kernel: UpdateKernel | None = None,
    ):
        if num_replicas < 1:
            raise ValueError("need at least one replica")
        self.kernel = SequentialKernel(dynamics) if kernel is None else kernel
        if self.kernel.game is not dynamics.game:
            raise ValueError("kernel and dynamics must play the same game")
        # every move distribution comes from the kernel's rule, so that is
        # what this simulator truthfully reports as its dynamics (identical
        # to the `dynamics` argument unless an explicit kernel carrying its
        # own rule was supplied)
        self.dynamics = self.kernel.rule
        self.game = self.kernel.game
        self.space = self.game.space
        self.num_replicas = int(num_replicas)
        self.rng = np.random.default_rng() if rng is None else rng
        if mode == "auto":
            mode = (
                "gather"
                if self.kernel.supports_gather and self.space.size <= gather_cap
                else "matrix_free"
            )
        if mode not in ("gather", "matrix_free"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "gather" and not self.kernel.supports_gather:
            raise ValueError(
                f"gather mode precomputes time-invariant update rows but "
                f"{type(self.kernel).__name__} is time-inhomogeneous; use "
                f"matrix_free"
            )
        if mode == "gather" and self.space.size > DENSE_PROFILE_CAP:
            raise ValueError(
                f"gather mode precomputes (|S|, m) update matrices but the "
                f"space has {self.space.size} profiles; use matrix_free"
            )
        self.mode = mode
        self._cum_cache: dict[int, np.ndarray] = {}
        self.reset(start, start_indices=start_indices)

    # -- state ------------------------------------------------------------

    def reset(
        self,
        start: Sequence[int] | np.ndarray | int | None = None,
        *,
        start_indices: np.ndarray | None = None,
    ) -> None:
        """(Re-)initialise every replica from ``start`` (see class docs).

        Also resets the kernel's per-simulator state (round-robin cursor,
        annealed step counter) — a reset restarts the dynamics from time 0.
        """
        self.kernel_state = self.kernel.init_state(self)
        R = self.num_replicas
        n = self.space.num_players
        if start_indices is not None:
            if start is not None:
                raise ValueError("pass either start or start_indices, not both")
            arr = np.asarray(start_indices, dtype=np.int64)
            if arr.shape != (R,):
                raise ValueError(
                    f"start_indices must have shape ({R},), got {arr.shape}"
                )
            if arr.size and (arr.min() < 0 or arr.max() >= self.space.size):
                raise ValueError("start profile index out of range")
            self._indices = arr.copy()
            return
        if start is None:
            self._indices = np.zeros(R, dtype=np.int64)
            return
        if isinstance(start, (int, np.integer)):
            if not 0 <= int(start) < self.space.size:
                raise ValueError("start profile index out of range")
            self._indices = np.full(R, int(start), dtype=np.int64)
            return
        arr = np.asarray(start, dtype=np.int64)
        if arr.ndim == 1 and arr.shape == (n,):
            self._indices = np.full(R, self.space.encode(arr), dtype=np.int64)
        elif arr.ndim == 2 and arr.shape == (R, n):
            self._indices = self.space.encode_many(arr)
        else:
            raise ValueError(
                f"start must be None, a profile index, an ({n},) profile or an "
                f"({R}, {n}) profile array (per-replica indices go through "
                f"start_indices); got shape {arr.shape}"
            )

    @property
    def indices(self) -> np.ndarray:
        """Current profile indices of the replicas (``(R,)`` copy)."""
        return self._indices.copy()

    @property
    def profiles(self) -> np.ndarray:
        """Current strategy profiles of the replicas (``(R, n)``)."""
        return self.space.decode_many(self._indices)

    def empirical_distribution(self) -> np.ndarray:
        """Occupation frequencies of the ensemble over profile indices."""
        if self.space.size > DENSE_PROFILE_CAP:
            raise ValueError(
                "empirical_distribution materialises a (|S|,) histogram; the "
                f"profile space has {self.space.size} profiles"
            )
        counts = np.bincount(self._indices, minlength=self.space.size)
        return counts / self.num_replicas

    # -- stepping ---------------------------------------------------------

    def _cumulative_update_matrix(self, player: int) -> np.ndarray:
        """Cached ``(|S|, m_player)`` cumulative update probabilities."""
        cum = self._cum_cache.get(player)
        if cum is None:
            probs = self.kernel.rule.player_update_matrix(player)
            cum = np.cumsum(probs, axis=1)
            self._cum_cache[player] = cum
        return cum

    def _sample_moves(
        self, player: int, indices: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """New strategies of ``player`` for the profiles in ``indices``.

        The shared inner move of every kernel: produce the ``(k, m_player)``
        move-distribution rows (precomputed gather or on-demand rule call)
        and map the uniforms through the row-wise inverse CDF.
        """
        if self.mode == "gather":
            cum = self._cumulative_update_matrix(player)[indices]
            return sample_from_cumulative(cum, uniforms)
        probs = self.kernel.rule.update_distribution_many(player, indices)
        return sample_inverse_cdf(probs, uniforms)

    def _advance_batch(
        self,
        players: np.ndarray,
        uniforms: np.ndarray,
        where: np.ndarray | None = None,
        distribution: Callable[[int, np.ndarray], np.ndarray] | None = None,
    ) -> None:
        """Apply one single-site update to each selected replica.

        ``players`` and ``uniforms`` are ``(k,)`` arrays aligned with
        ``where`` (``(k,)`` replica positions; all replicas when ``None``).
        ``distribution`` overrides the kernel rule's move distribution for
        this step (the annealed kernel passes its current-``beta`` rule).
        """
        if players.size == 1:
            # single-replica fast path: no grouping machinery
            groups = [np.zeros(1, dtype=np.int64)]
        else:
            order = np.argsort(players, kind="stable")
            boundaries = np.flatnonzero(np.diff(players[order])) + 1
            groups = np.split(order, boundaries)
        for group in groups:
            player = int(players[group[0]])
            sel = group if where is None else where[group]
            idx = self._indices[sel]
            if distribution is None:
                chosen = self._sample_moves(player, idx, uniforms[group])
            else:
                probs = distribution(player, idx)
                chosen = sample_inverse_cdf(probs, uniforms[group])
            self._indices[sel] = self.space.set_strategy_many(idx, player, chosen)

    def step(self) -> None:
        """Advance every replica by one step of the dynamics."""
        self.kernel.step(self)

    def run(self, num_steps: int, record_every: int | None = None) -> np.ndarray | None:
        """Advance the ensemble ``num_steps`` steps, optionally recording.

        Randomness is drawn as the kernel prescribes — the sequential
        kernels pre-draw every player and uniform for the whole run (players
        first, then uniforms), so for ``R = 1`` the random stream — and
        hence the trajectory — is *identical* to the single-replica
        reference loop (:meth:`repro.core.logit.LogitDynamics.simulate_loop`
        and the variant ``simulate_loop`` methods) under the same generator
        state.  Recording only copies the state array; it never touches the
        kernel's bookkeeping (round-robin cursor, annealed step counter), so
        snapshots cannot desync the dynamics.

        Returns ``None`` when ``record_every`` is ``None``; otherwise the
        recorded snapshots as a ``(k, R, n)`` int array whose first entry is
        the state on entry and subsequent entries are snapshots every
        ``record_every`` steps.
        """
        if num_steps < 0:
            raise ValueError("num_steps must be non-negative")
        R = self.num_replicas
        draws = self.kernel.begin_run(self, num_steps)
        snapshots: list[np.ndarray] | None = None
        if record_every is not None:
            record_every = max(int(record_every), 1)
            snapshots = [self._indices.copy()]
        for t in range(num_steps):
            self.kernel.run_step(self, t, draws)
            if snapshots is not None and (t + 1) % record_every == 0:
                snapshots.append(self._indices.copy())
        if snapshots is None:
            return None
        # one vectorised decode for all recorded states: (k, R) -> (k, R, n)
        recorded = np.asarray(snapshots, dtype=np.int64)
        decoded = self.space.decode_many(recorded.ravel())
        return decoded.reshape(recorded.shape[0], R, self.space.num_players)

    # -- first-passage observables ----------------------------------------

    def _first_times(
        self, in_target: Callable[[np.ndarray], np.ndarray], max_steps: int
    ) -> np.ndarray:
        """Per-replica first time ``in_target`` holds (``-1`` if never).

        Replicas that reach the target stop being advanced; the others keep
        their own independent randomness.  Mutates the ensemble state.  For
        kernels with a bounded horizon (finite annealing schedules) the
        search is clamped to the remaining schedule, so exhaustion reads as
        ``-1`` (not reached) rather than a mid-run error.
        """
        times = np.full(self.num_replicas, -1, dtype=np.int64)
        inside = in_target(self._indices)
        times[inside] = 0
        active = np.flatnonzero(~inside)
        budget = self.kernel.remaining_steps(self)
        if budget is not None:
            max_steps = min(int(max_steps), budget)
        for t in range(1, max_steps + 1):
            if active.size == 0:
                break
            self.kernel.step(self, where=active)
            hit = in_target(self._indices[active])
            times[active[hit]] = t
            active = active[~hit]
        return times

    def hitting_times(
        self, targets: int | Sequence[int] | np.ndarray, max_steps: int = 10**6
    ) -> np.ndarray:
        """First time each replica hits a target profile (``-1`` if never).

        ``targets`` is one profile index or an array of them; hitting any of
        them counts.  Replicas already at a target report 0.
        """
        target_arr = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        if target_arr.size == 1:
            target = int(target_arr[0])
            return self._first_times(lambda idx: idx == target, max_steps)
        return self._first_times(lambda idx: np.isin(idx, target_arr), max_steps)

    def exit_times(
        self, states: Sequence[int] | np.ndarray, max_steps: int = 10**6
    ) -> np.ndarray:
        """First time each replica leaves the profile set (``-1`` if never)."""
        inside = np.unique(np.asarray(states, dtype=np.int64))
        return self._first_times(lambda idx: ~np.isin(idx, inside), max_steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnsembleSimulator(replicas={self.num_replicas}, mode={self.mode!r}, "
            f"kernel={type(self.kernel).__name__}, game={self.game!r})"
        )
