"""Inverse-CDF sampling shared by the loop and batched simulators.

The logit simulators all reduce a single-site update to the same primitive:
map a uniform draw ``u`` through the inverse CDF of a finite distribution
``(p_0, ..., p_{m-1})``, i.e. pick the smallest ``s`` with
``p_0 + ... + p_s > u`` (clamped to ``m - 1`` against round-off in the
cumulative sums).  Keeping the primitive in one place guarantees that the
single-replica reference loop, the batched ensemble engine and the coupled
engine make *bit-identical* choices from identical probability rows and
uniforms — which is what the fixed-seed equivalence tests assert.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_from_cumulative", "sample_inverse_cdf"]


def sample_from_cumulative(
    cumulative: np.ndarray,
    uniforms: np.ndarray | float,
    out: np.ndarray | None = None,
) -> np.ndarray | int:
    """Inverse-CDF sample(s) given precomputed cumulative sums.

    Parameters
    ----------
    cumulative:
        Either a 1-D array (one distribution's running sums) or a 2-D array
        with one distribution per row.
    uniforms:
        A scalar for the 1-D case, a ``(k,)`` array matched row-by-row for
        the 2-D case.
    out:
        Optional ``(k,)`` int64 buffer for the 2-D case — steady-state
        stepping loops pass a reused scratch array so sampling allocates
        nothing.  Ignored (and rejected) for the 1-D case.

    Returns
    -------
    The chosen category per distribution: an int for the 1-D case, an
    ``(k,)`` int64 array (``out`` if given) for the 2-D case.  Matches
    ``np.searchsorted(cumulative, u, side="right")`` clamped to the last
    category, which tolerates cumulative sums that fall short of 1.0 by
    round-off.
    """
    cum = np.asarray(cumulative, dtype=float)
    if cum.ndim == 1:
        if out is not None:
            raise ValueError("out= is only supported for the 2-D batched case")
        s = int(np.searchsorted(cum, float(uniforms), side="right"))
        return min(s, cum.size - 1)
    if cum.ndim != 2:
        raise ValueError(f"cumulative must be 1-D or 2-D, got shape {cum.shape}")
    u = np.asarray(uniforms, dtype=float)
    if u.shape != (cum.shape[0],):
        raise ValueError(
            f"uniforms must have shape ({cum.shape[0]},), got {u.shape}"
        )
    # Per-row count of entries <= u — identical to searchsorted side="right".
    if out is None:
        s = np.sum(cum <= u[:, None], axis=1)
        return np.minimum(s, cum.shape[1] - 1).astype(np.int64)
    if out.shape != (cum.shape[0],) or out.dtype != np.int64:
        raise ValueError(
            f"out must be an int64 array of shape ({cum.shape[0]},), got "
            f"{out.dtype} {out.shape}"
        )
    np.sum(cum <= u[:, None], axis=1, out=out)
    np.minimum(out, cum.shape[1] - 1, out=out)
    return out


def sample_inverse_cdf(
    probabilities: np.ndarray, uniforms: np.ndarray | float
) -> np.ndarray | int:
    """Inverse-CDF sample(s) from probability row(s).

    ``probabilities`` may be a single distribution (1-D, with a scalar
    uniform) or one distribution per row (2-D, with a ``(k,)`` array of
    uniforms).  Thin wrapper over :func:`sample_from_cumulative`.
    """
    probs = np.asarray(probabilities, dtype=float)
    return sample_from_cumulative(np.cumsum(probs, axis=-1), uniforms)
