"""Batched, matrix-free simulation engine for update dynamics.

This subsystem is the package's scaling layer: it advances ensembles of
replicas (and ensembles of coupled pairs) as flat numpy index arrays instead
of looping over single steps in Python, which is what lets the Monte-Carlo
estimators reach the regimes the paper's theorems are actually about.

The engine is factored as *kernel x rule* (see :mod:`repro.engine.kernels`
for the full contract):

* an **update-rule kernel** decides which player(s) move at each step and
  how the step's randomness is consumed — one uniformly random player
  (:class:`~repro.engine.kernels.SequentialKernel`, the paper's dynamics),
  every player simultaneously
  (:class:`~repro.engine.kernels.ParallelKernel`), each player
  independently with probability ``p`` per step
  (:class:`~repro.engine.kernels.ProbabilisticKernel`, the concurrent
  schedule of arXiv 1207.2908; ``p = 1`` recovers the parallel kernel
  bit-for-bit), a cyclic cursor
  (:class:`~repro.engine.kernels.RoundRobinKernel`), a sequential mover
  under a time-varying ``beta_t`` schedule
  (:class:`~repro.engine.kernels.AnnealedKernel`), or any of the seeded
  per-replica-stream variants
  (:class:`~repro.engine.kernels.SeededSequentialKernel`,
  :class:`~repro.engine.kernels.SeededParallelKernel`,
  :class:`~repro.engine.kernels.SeededProbabilisticKernel` — the
  chunk-size-invariant sampling modes behind the adaptive estimators,
  dispatched by :func:`~repro.engine.kernels.seeded_kernel_for`; see
  :meth:`EnsembleSimulator.seeded
  <repro.engine.ensemble.EnsembleSimulator.seeded>`);
* a **rule** supplies the mover's move distribution — the logit softmax
  (:class:`~repro.core.logit.LogitDynamics` and every variant class) or the
  uniform-over-argmax best response
  (:class:`~repro.core.variants.BestResponseDynamics`, which is just the
  sequential kernel under the beta -> infinity rule).

Components:

* :class:`~repro.engine.ensemble.EnsembleSimulator` — ``R`` independent
  replicas advanced in bulk under any kernel, with an optional small-space
  gather mode for time-invariant kernels;
* :mod:`~repro.engine.state` — pluggable replica-state backends:
  :class:`~repro.engine.state.IndexState` (flat int64 profile indices, the
  tabulated-game fast path) and :class:`~repro.engine.state.MatrixState`
  (``(R, n)`` strategy rows, index-free — lifts the ~62-binary-player
  int64 ceiling for local-interaction games);
* :func:`~repro.engine.coupled.simulate_grand_coupling_ensemble` — all
  coupled pairs of the paper's grand coupling advanced simultaneously;
* :mod:`~repro.engine.sampling` — the shared inverse-CDF primitive that
  keeps the loop references and the batched paths bit-identical;
* :mod:`~repro.engine.backend` — pluggable array/compute backends for the
  per-step hot path (``backend=`` knob): the default numpy backend is the
  pre-backend engine bit-for-bit, the numba backend JIT-fuses
  gather -> deviation -> softmax -> sample into one compiled kernel for
  local-interaction games (graceful numpy fallback when numba is absent).

Shard-aware seeding: :meth:`SeededSequentialKernel.spawn_block
<repro.engine.kernels.SeededSequentialKernel.spawn_block>` reconstructs
any block of a master seed's children from ``(root, offset, count)``
alone — no shared spawn cursor — which is the primitive the sharded
multi-process executors (:mod:`repro.parallel`) distribute replicas
with, and the reason pooled results are bit-for-bit invariant to the
shard count.
"""

from .backend import (
    ArrayBackend,
    NumbaBackend,
    NumpyBackend,
    numba_available,
    resolve_backend,
)
from .coupled import maximal_coupling_update_many, simulate_grand_coupling_ensemble
from .ensemble import EnsembleSimulator
from .kernels import (
    AnnealedKernel,
    ParallelKernel,
    ProbabilisticKernel,
    RoundRobinKernel,
    SeededParallelKernel,
    SeededProbabilisticKernel,
    SeededSequentialKernel,
    SequentialKernel,
    UpdateKernel,
    seeded_kernel_for,
)
from .sampling import sample_from_cumulative, sample_inverse_cdf
from .state import EngineState, IndexState, MatrixState, strategy_dtype

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "NumbaBackend",
    "numba_available",
    "resolve_backend",
    "EnsembleSimulator",
    "EngineState",
    "IndexState",
    "MatrixState",
    "strategy_dtype",
    "UpdateKernel",
    "SequentialKernel",
    "SeededSequentialKernel",
    "ParallelKernel",
    "ProbabilisticKernel",
    "SeededParallelKernel",
    "SeededProbabilisticKernel",
    "seeded_kernel_for",
    "RoundRobinKernel",
    "AnnealedKernel",
    "maximal_coupling_update_many",
    "simulate_grand_coupling_ensemble",
    "sample_from_cumulative",
    "sample_inverse_cdf",
]
