"""Batched, matrix-free simulation engine for single-site update dynamics.

This subsystem is the package's scaling layer: it advances ensembles of
replicas (and ensembles of coupled pairs) as flat numpy index arrays instead
of looping over single steps in Python, which is what lets the Monte-Carlo
estimators reach the regimes the paper's theorems are actually about.

* :class:`~repro.engine.ensemble.EnsembleSimulator` — ``R`` independent
  replicas advanced in bulk, with an optional small-space gather mode;
* :func:`~repro.engine.coupled.simulate_grand_coupling_ensemble` — all
  coupled pairs of the paper's grand coupling advanced simultaneously;
* :mod:`~repro.engine.sampling` — the shared inverse-CDF primitive that
  keeps the loop reference and the batched paths bit-identical.
"""

from .coupled import maximal_coupling_update_many, simulate_grand_coupling_ensemble
from .ensemble import EnsembleSimulator
from .sampling import sample_from_cumulative, sample_inverse_cdf

__all__ = [
    "EnsembleSimulator",
    "maximal_coupling_update_many",
    "simulate_grand_coupling_ensemble",
    "sample_from_cumulative",
    "sample_inverse_cdf",
]
