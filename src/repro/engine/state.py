"""Pluggable replica-state backends for the batched simulation engine.

The original :class:`~repro.engine.ensemble.EnsembleSimulator` stored every
replica as a flat *profile index* — one int64 per replica.  That is the
fastest representation for tabulated games (utility lookups are fancy-
indexed gathers) but it hard-caps the engine at profile spaces of at most
``2**63 - 1`` profiles, i.e. ~62 binary players, far below the graph-
structured games with hundreds or thousands of players that the follow-up
local-interaction literature studies.  This module factors the *state* of
the ensemble out of the simulator behind a small protocol with two
interchangeable backends:

* :class:`IndexState` — the original representation, an ``(R,)`` int64
  array of profile indices.  Wraps the pre-protocol behaviour bit-for-bit
  (same arrays, same copies, same random-stream interaction) and refuses
  up front to be built over a profile space that does not fit in int64.
* :class:`MatrixState` — an ``(R, n)`` strategy matrix with the smallest
  integer dtype that holds the per-player strategy counts (int8 for up to
  128 strategies).  No profile index is ever computed on the stepping
  path, so the representation works for *any* number of players; update
  rules are consulted through their profile-row methods
  (``update_distribution_profiles``) instead of the index-batch ones.

The simulator and the kernels only ever talk to the protocol: which
players move, how uniforms are consumed and how moves are sampled is
identical across backends, which is what makes small-space trajectories of
the two backends bit-for-bit equal under a fixed seed (pinned by
``tests/test_engine_state.py``).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..games.space import _INT64_MAX, ProfileSpace
from .backend import ArrayBackend, resolve_backend

__all__ = ["EngineState", "IndexState", "MatrixState", "strategy_dtype"]


def strategy_dtype(space: ProfileSpace) -> np.dtype:
    """Smallest signed integer dtype holding every stored strategy value.

    Strategies range over ``0 .. m-1``, so int8 covers up to 128 strategies
    (``top == 127``), int16 up to 32768, and so on.  The promotion is an
    explicit boundary walk with a final overflow guard — the matrix state
    must never rely on numpy's silent casting rules to decide whether a
    strategy value survives the round-trip through its storage dtype.
    """
    top = space.max_strategies - 1
    for candidate in (np.int8, np.int16, np.int32, np.int64):
        if top <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    raise ValueError(
        f"per-player strategy count {space.max_strategies} exceeds the int64 "
        f"strategy-matrix storage range"
    )


class EngineState(abc.ABC):
    """State of ``R`` replicas of a single-site update chain.

    A backend owns the storage of the replicas and translates between the
    engine's three needs:

    * *batch surgery* — :meth:`take` / :meth:`set_strategies` / :meth:`put`
      implement "read the selected replicas, change one player's strategy
      per replica, write them back", the inner move of every kernel;
    * *rule evaluation* — :meth:`rule_rows` / :meth:`rule_rows_at` hand a
      batch to an update rule in the representation the backend stores
      (profile indices or profile rows);
    * *observables* — :meth:`profiles_at` / :meth:`indices_at` /
      :meth:`snapshot` expose the current state for predicates, histograms
      and trajectory recording.

    ``kind`` is the string the simulator was configured with (``"index"``
    or ``"matrix"``).
    """

    kind: str

    def __init__(self, space: ProfileSpace):
        self.space = space
        self.num_replicas = 0

    # -- initialisation ----------------------------------------------------

    @abc.abstractmethod
    def init(
        self,
        num_replicas: int,
        start: Sequence[int] | np.ndarray | int | None,
        start_indices: np.ndarray | None,
    ) -> None:
        """(Re-)initialise every replica from the ``start`` specification."""

    def _parse_start(
        self,
        num_replicas: int,
        start: Sequence[int] | np.ndarray | int | None,
        start_indices: np.ndarray | None,
    ) -> tuple[str, object]:
        """Validate a start specification once for every backend.

        Returns one of ``("zero", None)``, ``("index", int)``,
        ``("indices", list[int])``, ``("profile", (n,) int64 array)`` or
        ``("profiles", (R, n) int64 array)``, with ranges fully checked —
        backends only convert the canonical form into their own storage, so
        both necessarily accept and reject exactly the same inputs.
        """
        R = int(num_replicas)
        n = self.space.num_players
        if start_indices is not None:
            if start is not None:
                raise ValueError("pass either start or start_indices, not both")
            if self.space.fits_int64:
                arr = np.asarray(start_indices, dtype=np.int64)
                if arr.shape != (R,):
                    raise ValueError(
                        f"start_indices must have shape ({R},), got {arr.shape}"
                    )
                if arr.size and (arr.min() < 0 or arr.max() >= self.space.size):
                    raise ValueError("start profile index out of range")
                return ("indices", arr)
            # object dtype: profile indices stay exact Python ints, so the
            # validation also works for spaces beyond int64
            arr = np.asarray(start_indices, dtype=object)
            if arr.shape != (R,):
                raise ValueError(
                    f"start_indices must have shape ({R},), got {arr.shape}"
                )
            values = [int(v) for v in arr]
            if any(not 0 <= v < self.space.size for v in values):
                raise ValueError("start profile index out of range")
            return ("indices", values)
        if start is None:
            return ("zero", None)
        if isinstance(start, (int, np.integer)):
            if not 0 <= int(start) < self.space.size:
                raise ValueError("start profile index out of range")
            return ("index", int(start))
        arr = np.asarray(start, dtype=np.int64)
        if arr.ndim == 1 and arr.shape == (n,):
            self._validate_profile_rows(arr[None, :])
            return ("profile", arr)
        if arr.ndim == 2 and arr.shape == (R, n):
            self._validate_profile_rows(arr)
            return ("profiles", arr)
        raise ValueError(
            f"start must be None, a profile index, an ({n},) profile or an "
            f"({R}, {n}) profile array (per-replica indices go through "
            f"start_indices); got shape {arr.shape}"
        )

    def _validate_profile_rows(self, rows: np.ndarray) -> None:
        ms = np.asarray(self.space.num_strategies, dtype=np.int64)
        if np.any(rows < 0) or np.any(rows >= ms[None, :]):
            raise ValueError(
                f"start profile out of range for strategy counts "
                f"{self.space.num_strategies}"
            )

    # -- batch surgery -----------------------------------------------------

    @abc.abstractmethod
    def take(self, where: np.ndarray | None) -> np.ndarray:
        """Detached copy of the selected replicas' raw state (all if ``None``)."""

    @abc.abstractmethod
    def put(self, where: np.ndarray | None, batch: np.ndarray) -> None:
        """Write a batch previously obtained from :meth:`take` back."""

    @abc.abstractmethod
    def set_strategies(
        self, batch: np.ndarray, player: int, strategies: np.ndarray
    ) -> np.ndarray:
        """Batch with ``player``'s strategy replaced per replica.

        May mutate ``batch`` in place and return it; callers must treat the
        input as consumed.
        """

    # -- rule evaluation ---------------------------------------------------

    @abc.abstractmethod
    def rule_rows(self, rule, player: int, batch: np.ndarray) -> np.ndarray:
        """``(k, m_player)`` move-distribution rows of ``rule`` for a batch."""

    @abc.abstractmethod
    def rule_rows_at(
        self, rule, beta: float, player: int, batch: np.ndarray
    ) -> np.ndarray:
        """Move-distribution rows at an explicit ``beta`` (annealed kernel)."""

    # -- observables -------------------------------------------------------

    @abc.abstractmethod
    def indices_at(self, where: np.ndarray | None) -> np.ndarray:
        """Profile indices of the selected replicas (all if ``None``).

        Only available when the profile space fits in int64; backends over
        larger spaces raise a clear error pointing at the profile-row
        observables instead.
        """

    @abc.abstractmethod
    def profiles_at(self, where: np.ndarray | None) -> np.ndarray:
        """``(k, n)`` strategy profiles of the selected replicas."""

    @abc.abstractmethod
    def snapshot(self) -> np.ndarray:
        """Detached copy of the full raw state, for trajectory recording."""

    @abc.abstractmethod
    def stack_snapshots(self, snapshots: list[np.ndarray]) -> np.ndarray:
        """Decode recorded snapshots into a ``(k, R, n)`` int64 array."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(replicas={self.num_replicas}, space={self.space.num_strategies})"


class IndexState(EngineState):
    """Flat profile-index representation — the engine's original state.

    One int64 profile index per replica; single-coordinate surgery is
    mixed-radix arithmetic (:meth:`~repro.games.space.ProfileSpace.
    set_strategy_many`) and rules are consulted through their index-batch
    methods.  Requires the profile space to fit in int64 and says so up
    front — the pre-protocol engine accepted oversized spaces at
    construction and then died mid-run inside numpy with a cryptic dtype
    error.
    """

    kind = "index"

    def __init__(self, space: ProfileSpace):
        super().__init__(space)
        if not space.fits_int64:
            raise ValueError(
                f"the profile space has more than 2**63 profiles, which does "
                f"not fit in an int64 profile index; the index state backend "
                f"cannot represent it — build the simulator with "
                f"state='matrix' (per-replica strategy rows, no profile "
                f"indices anywhere on the stepping path)"
            )
        self._indices = np.zeros(0, dtype=np.int64)

    def init(self, num_replicas, start, start_indices) -> None:
        kind, value = self._parse_start(num_replicas, start, start_indices)
        R = int(num_replicas)
        self.num_replicas = R
        if kind == "zero":
            self._indices = np.zeros(R, dtype=np.int64)
        elif kind == "index":
            self._indices = np.full(R, value, dtype=np.int64)
        elif kind == "indices":
            # np.array: always a detached copy, even when the parser already
            # produced an int64 array (which aliases the caller's input)
            self._indices = np.array(value, dtype=np.int64)
        elif kind == "profile":
            self._indices = np.full(R, self.space.encode(value), dtype=np.int64)
        else:  # "profiles"
            self._indices = self.space.encode_many(value)

    def take(self, where):
        return self._indices.copy() if where is None else self._indices[where]

    def put(self, where, batch):
        if where is None:
            self._indices = batch
        else:
            self._indices[where] = batch

    def set_strategies(self, batch, player, strategies):
        return self.space.set_strategy_many(batch, player, strategies)

    def rule_rows(self, rule, player, batch):
        return rule.update_distribution_many(player, batch)

    def rule_rows_at(self, rule, beta, player, batch):
        return rule.update_distribution_many_at(beta, player, batch)

    def indices_at(self, where):
        return self._indices if where is None else self._indices[where]

    def profiles_at(self, where):
        return self.space.decode_many(self.indices_at(where))

    def snapshot(self):
        return self._indices.copy()

    def stack_snapshots(self, snapshots):
        # one vectorised decode for all recorded states: (k, R) -> (k, R, n)
        recorded = np.asarray(snapshots, dtype=np.int64)
        decoded = self.space.decode_many(recorded.ravel())
        return decoded.reshape(
            recorded.shape[0], self.num_replicas, self.space.num_players
        )


class MatrixState(EngineState):
    """Strategy-matrix representation: one ``(R, n)`` row per replica.

    Surgery is a column write, rules are consulted through their profile-
    row methods, and nothing on the stepping path ever encodes a profile
    index — memory and time per step are ``O(R * n)`` regardless of
    ``|S|``, which is what lifts the engine's ~62-binary-player ceiling.
    Index-valued observables (:meth:`indices_at`, and with them
    ``empirical_distribution``) remain available whenever the space still
    fits int64, so small-space cross-validation against
    :class:`IndexState` needs no special casing.
    """

    kind = "matrix"

    def __init__(
        self, space: ProfileSpace, backend: str | ArrayBackend | None = "numpy"
    ):
        super().__init__(space)
        #: the array backend this state's hot path executes on; the numpy
        #: default is the pre-backend engine bit-for-bit (the simulator
        #: consults this when wiring its fused steppers)
        self.backend = resolve_backend(backend)
        self._dtype = strategy_dtype(space)
        self._matrix = np.zeros((0, space.num_players), dtype=self._dtype)

    @property
    def matrix(self) -> np.ndarray:
        """The live ``(R, n)`` strategy matrix (a view, not a copy).

        Fused backend kernels mutate this in place; everything else should
        go through :meth:`profiles_at` / :meth:`snapshot`, which copy.
        """
        return self._matrix

    def init(self, num_replicas, start, start_indices) -> None:
        kind, value = self._parse_start(num_replicas, start, start_indices)
        R = int(num_replicas)
        self.num_replicas = R
        n = self.space.num_players
        if kind == "zero":
            self._matrix = np.zeros((R, n), dtype=self._dtype)
        elif kind == "index":
            # scalar decode is pure-Python arithmetic: works past int64
            profile = np.asarray(self.space.decode(value), dtype=self._dtype)
            self._matrix = np.tile(profile, (R, 1))
        elif kind == "indices":
            rows = np.empty((R, n), dtype=self._dtype)
            for j, index in enumerate(value):
                rows[j] = self.space.decode(index)
            self._matrix = rows
        elif kind == "profile":
            self._matrix = np.tile(value.astype(self._dtype), (R, 1))
        else:  # "profiles"
            self._matrix = value.astype(self._dtype)

    def take(self, where):
        return self._matrix.copy() if where is None else self._matrix[where]

    def put(self, where, batch):
        if where is None:
            self._matrix = batch
        else:
            self._matrix[where] = batch

    def set_strategies(self, batch, player, strategies):
        batch[:, player] = strategies
        return batch

    def rule_rows(self, rule, player, batch):
        return rule.update_distribution_profiles(player, batch)

    def rule_rows_at(self, rule, beta, player, batch):
        return rule.update_distribution_profiles_at(beta, player, batch)

    # -- row-wise fast path ------------------------------------------------
    #
    # When every selected replica revises its *own* player (the sequential
    # kernels with R distinct movers), per-player grouping degenerates into
    # ~R groups of one replica each and Python overhead dominates.  These
    # two hooks let the simulator read the live rows without copying and
    # write each replica's mover column in one fancy assignment — a row
    # only ever writes itself, so no take/put round-trip is needed.

    def rowwise_view(self, where: np.ndarray | None) -> np.ndarray:
        """Rows of the selected replicas for read-only rule evaluation.

        A *view* of the live matrix when ``where`` is ``None`` (rules must
        not mutate it), a fancy-indexed copy otherwise.
        """
        return self._matrix if where is None else self._matrix[where]

    def set_strategies_rowwise(
        self, where: np.ndarray | None, players: np.ndarray, strategies: np.ndarray
    ) -> None:
        """Per-replica surgery: replica ``j`` sets ``players[j]`` to ``strategies[j]``."""
        if where is None:
            self._matrix[np.arange(self.num_replicas), players] = strategies
        else:
            self._matrix[where, players] = strategies

    def indices_at(self, where):
        if not self.space.fits_int64:
            raise ValueError(
                f"the profile space has more than 2**63 profiles, which does "
                f"not fit in int64, so profile *indices* do not exist for this "
                f"state; use profile-row observables instead (profiles, "
                f"profiles_at, empirical_profile_counts, or a profile "
                f"predicate for hitting/exit times)"
            )
        rows = self._matrix if where is None else self._matrix[where]
        return self.space.encode_many(rows.astype(np.int64, copy=False))

    def profiles_at(self, where):
        return self._matrix.copy() if where is None else self._matrix[where]

    def snapshot(self):
        return self._matrix.copy()

    def stack_snapshots(self, snapshots):
        return np.asarray(snapshots, dtype=np.int64)
