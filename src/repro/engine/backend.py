"""Pluggable array/compute backends for the engine's per-step hot path.

The matrix-state fast path of the engine spends essentially all of its time
in one shape of work per step: gather the neighbor strategies of each
replica's mover (padded/CSR adjacency), compute the mover's ``m`` deviation
utilities, softmax them in log space, and map one uniform through the
row-wise inverse CDF.  Pure vectorised numpy executes that as a pipeline of
``(k, pad, m)`` temporaries — correct, and 55-104x over scalar loops, but
memory traffic on the temporaries dominates once the graphs reach
10^5 .. 10^6 players.

This module factors the choice of *how* that pipeline executes behind a
small backend namespace:

* :class:`NumpyBackend` (``backend="numpy"``, the default) — no fused
  kernels: the simulator keeps using the existing vectorised numpy path,
  bit-for-bit identical to the pre-backend engine under fixed seeds.
* :class:`NumbaBackend` (``backend="numba"``) — compiles one fused
  per-step kernel (gather -> deviation utilities -> log-space softmax ->
  inverse-CDF sample -> in-place strategy write) over the ``(R, n)``
  strategy rows with :func:`numba.njit`, eliminating every intermediate
  array.  Kernels are compiled lazily on first use and cached on disk, and
  are only offered for (game, rule) pairs that can be fused: games exposing
  CSR local structure (:meth:`repro.games.local.LocalInteractionGame.
  csr_arrays`) under softmax move rules (``rule.softmax_rule``).  For
  every other combination the backend silently behaves like numpy.

Selection is by name through :func:`resolve_backend` (``"numpy"``,
``"numba"``, ``"auto"``); when numba is not installed, ``"numba"`` degrades
gracefully to the numpy backend with a one-line warning (``"auto"`` picks
numpy silently).  See ``docs/ARCHITECTURE.md`` for which guarantees are
bit-for-bit and which are statistical.

Float-identity contract: the fused kernels replay the numpy reference ops
in the same order — per-strategy payoff sums accumulate sequentially over
the CSR neighbor order (the numpy path reduces over a non-contiguous axis,
which numpy also accumulates sequentially), the external field is added
once after the payoff sum, and softmax/inverse-CDF mirror
:func:`repro.core.logit.logit_update_distribution` +
:func:`repro.engine.sampling.sample_from_cumulative` term by term.  The
remaining differences are ULP-level (``exp`` implementations, numpy's
pairwise summation once a row exceeds 8 terms), so trajectories agree
bit-for-bit on small-degree graphs with m <= 8 in practice, and the
compiled backend is certified *statistically* on large ones
(``tests/test_backend_equivalence.py``).
"""

from __future__ import annotations

import math
import warnings

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "NumbaBackend",
    "resolve_backend",
    "numba_available",
]

_UNSET = object()
#: cached numba module (``_UNSET`` = import not attempted yet, ``None`` =
#: attempted and failed) — tests monkeypatch this to simulate absence
_NUMBA = _UNSET
#: one-line fallback warning fires once per process, not per simulator
_warned_numba_fallback = False
#: lazily compiled fused kernels (shared by every NumbaBackend instance)
_KERNELS: dict | None = None


def _numba_module():
    global _NUMBA
    if _NUMBA is _UNSET:
        try:
            import numba  # type: ignore[import-not-found]

            _NUMBA = numba
        except Exception:
            _NUMBA = None
    return _NUMBA


def numba_available() -> bool:
    """Whether the numba JIT compiler is importable in this environment."""
    return _numba_module() is not None


class ArrayBackend:
    """How the engine executes its per-step hot path.

    A backend may offer *fused steppers* for a (game, rule) pair: callables
    that advance a batch of replicas through gather -> deviation utilities
    -> softmax -> inverse-CDF sample -> strategy write in one call,
    operating in place on the live ``(R, n)`` strategy matrix.  Returning
    ``None`` from the ``fused_*`` factories means "no acceleration for this
    combination" and the simulator falls back to the generic vectorised
    numpy path — so a backend only ever *adds* capability, never changes
    which dynamics are simulable.
    """

    name = "abstract"

    def can_fuse(self, game, rule) -> bool:
        """Whether this backend offers fused kernels for (game, rule)."""
        return False

    def fused_rowwise_stepper(self, game, rule):
        """Fused sequential-type stepper, or ``None``.

        The stepper signature is ``stepper(matrix, rows, players, uniforms,
        beta)``: replica row ``rows[j]`` of ``matrix`` has its player
        ``players[j]`` resample from the softmax at inverse noise ``beta``
        using ``uniforms[j]``, in place.
        """
        return None

    def fused_parallel_stepper(self, game, rule):
        """Fused all-players-at-once stepper, or ``None``.

        The stepper signature is ``stepper(matrix, rows, old, uniforms,
        beta)``: every player of replica row ``rows[j]`` resamples against
        the pre-step profile ``old[j]`` using ``uniforms[j, player]`` (the
        same ``(k, n)`` uniform block, in player order, that the numpy
        :class:`~repro.engine.kernels.ParallelKernel` consumes).
        """
        return None

    def fused_probabilistic_stepper(self, game, rule):
        """Fused probabilistic-schedule stepper, or ``None``.

        The stepper signature is ``stepper(matrix, rows, old, mask,
        uniforms, beta)``: player ``i`` of replica row ``rows[j]``
        resamples against the pre-step profile ``old[j]`` using
        ``uniforms[j, i]`` iff ``mask[j, i]``, and keeps ``old[j, i]``
        otherwise — the masked variant of the parallel stepper the
        :class:`~repro.engine.kernels.ProbabilisticKernel` consumes
        (masked-out players' uniforms are drawn by the kernel but unused,
        so the stream is mask-independent).
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(ArrayBackend):
    """The default backend: the existing vectorised numpy hot path.

    Offers no fused kernels, so the simulator's stepping code is exactly
    the pre-backend engine — bit-for-bit identical trajectories under
    fixed seeds (pinned by the loop-vs-engine regression tests).
    """

    name = "numpy"


def _fusable(game, rule) -> bool:
    """Fused kernels exist for CSR-structured games under softmax rules."""
    return bool(getattr(rule, "softmax_rule", False)) and callable(
        getattr(game, "csr_arrays", None)
    )


class NumbaBackend(ArrayBackend):
    """JIT backend: one compiled kernel per step, no intermediate arrays.

    Only constructed when numba imports (see :func:`resolve_backend`).
    Kernels compile lazily on the first fused step (with ``cache=True``,
    so repeat processes pay no compile time) and parallelise over replicas
    with ``prange``.
    """

    name = "numba"

    def can_fuse(self, game, rule) -> bool:
        return _fusable(game, rule)

    def fused_rowwise_stepper(self, game, rule):
        if not self.can_fuse(game, rule):
            return None
        offsets, nbr, nbr_edge, payoffs, field = game.csr_arrays()
        m = int(payoffs.shape[1])
        scratch: dict = {"k": -1, "util": None}

        def stepper(matrix, rows, players, uniforms, beta):
            k = rows.shape[0]
            if scratch["k"] != k:
                scratch["k"] = k
                scratch["util"] = np.empty((k, m), dtype=np.float64)
            _kernels()["rowwise"](
                matrix,
                rows,
                players,
                uniforms,
                float(beta),
                offsets,
                nbr,
                nbr_edge,
                payoffs,
                field,
                scratch["util"],
            )

        return stepper

    def fused_parallel_stepper(self, game, rule):
        if not self.can_fuse(game, rule):
            return None
        offsets, nbr, nbr_edge, payoffs, field = game.csr_arrays()
        m = int(payoffs.shape[1])
        scratch: dict = {"k": -1, "util": None}

        def stepper(matrix, rows, old, uniforms, beta):
            k = rows.shape[0]
            if scratch["k"] != k:
                scratch["k"] = k
                scratch["util"] = np.empty((k, m), dtype=np.float64)
            _kernels()["parallel"](
                matrix,
                rows,
                old,
                uniforms,
                float(beta),
                offsets,
                nbr,
                nbr_edge,
                payoffs,
                field,
                scratch["util"],
            )

        return stepper

    def fused_probabilistic_stepper(self, game, rule):
        if not self.can_fuse(game, rule):
            return None
        offsets, nbr, nbr_edge, payoffs, field = game.csr_arrays()
        m = int(payoffs.shape[1])
        scratch: dict = {"k": -1, "util": None}

        def stepper(matrix, rows, old, mask, uniforms, beta):
            k = rows.shape[0]
            if scratch["k"] != k:
                scratch["k"] = k
                scratch["util"] = np.empty((k, m), dtype=np.float64)
            _kernels()["probabilistic"](
                matrix,
                rows,
                old,
                mask,
                uniforms,
                float(beta),
                offsets,
                nbr,
                nbr_edge,
                payoffs,
                field,
                scratch["util"],
            )

        return stepper


def _kernels() -> dict:
    """Compile (once) and return the fused numba kernels."""
    global _KERNELS
    if _KERNELS is not None:
        return _KERNELS
    numba = _numba_module()
    if numba is None:  # pragma: no cover - steppers only exist with numba
        raise RuntimeError("numba kernels requested but numba is not importable")
    njit = numba.njit
    prange = numba.prange

    @njit(cache=True, parallel=True)
    def fused_rowwise(
        matrix, rows, players, uniforms, beta, offsets, nbr, nbr_edge, payoffs, field, util
    ):  # pragma: no cover - compiled
        k = rows.shape[0]
        m = payoffs.shape[1]
        for j in prange(k):
            r = rows[j]
            i = players[j]
            lo = offsets[i]
            hi = offsets[i + 1]
            # deviation utilities: sequential CSR accumulation per strategy
            # (same summation order as the numpy reference path)
            for s in range(m):
                util[j, s] = 0.0
            for d in range(lo, hi):
                e = nbr_edge[d]
                t = matrix[r, nbr[d]]
                for s in range(m):
                    util[j, s] += payoffs[e, s, t]
            # max-shifted softmax in log space, mirroring
            # logit_update_distribution term by term
            mx = -np.inf
            for s in range(m):
                v = beta * (util[j, s] + field[i, s])
                util[j, s] = v
                if v > mx:
                    mx = v
            total = 0.0
            for s in range(m):
                w = math.exp(util[j, s] - mx)
                util[j, s] = w
                total += w
            # inverse CDF: smallest s with cumulative > u, clamped to m-1
            u = uniforms[j]
            choice = m - 1
            c = 0.0
            for s in range(m - 1):
                c += util[j, s] / total
                if c > u:
                    choice = s
                    break
            matrix[r, i] = choice

    @njit(cache=True, parallel=True)
    def fused_parallel(
        matrix, rows, old, uniforms, beta, offsets, nbr, nbr_edge, payoffs, field, util
    ):  # pragma: no cover - compiled
        k = rows.shape[0]
        n = matrix.shape[1]
        m = payoffs.shape[1]
        for j in prange(k):
            r = rows[j]
            for i in range(n):
                lo = offsets[i]
                hi = offsets[i + 1]
                for s in range(m):
                    util[j, s] = 0.0
                for d in range(lo, hi):
                    e = nbr_edge[d]
                    t = old[j, nbr[d]]
                    for s in range(m):
                        util[j, s] += payoffs[e, s, t]
                mx = -np.inf
                for s in range(m):
                    v = beta * (util[j, s] + field[i, s])
                    util[j, s] = v
                    if v > mx:
                        mx = v
                total = 0.0
                for s in range(m):
                    w = math.exp(util[j, s] - mx)
                    util[j, s] = w
                    total += w
                u = uniforms[j, i]
                choice = m - 1
                c = 0.0
                for s in range(m - 1):
                    c += util[j, s] / total
                    if c > u:
                        choice = s
                        break
                matrix[r, i] = choice

    @njit(cache=True, parallel=True)
    def fused_probabilistic(
        matrix, rows, old, mask, uniforms, beta, offsets, nbr, nbr_edge, payoffs, field, util
    ):  # pragma: no cover - compiled
        k = rows.shape[0]
        n = matrix.shape[1]
        m = payoffs.shape[1]
        for j in prange(k):
            r = rows[j]
            for i in range(n):
                if not mask[j, i]:
                    matrix[r, i] = old[j, i]
                    continue
                lo = offsets[i]
                hi = offsets[i + 1]
                for s in range(m):
                    util[j, s] = 0.0
                for d in range(lo, hi):
                    e = nbr_edge[d]
                    t = old[j, nbr[d]]
                    for s in range(m):
                        util[j, s] += payoffs[e, s, t]
                mx = -np.inf
                for s in range(m):
                    v = beta * (util[j, s] + field[i, s])
                    util[j, s] = v
                    if v > mx:
                        mx = v
                total = 0.0
                for s in range(m):
                    w = math.exp(util[j, s] - mx)
                    util[j, s] = w
                    total += w
                u = uniforms[j, i]
                choice = m - 1
                c = 0.0
                for s in range(m - 1):
                    c += util[j, s] / total
                    if c > u:
                        choice = s
                        break
                matrix[r, i] = choice

    _KERNELS = {
        "rowwise": fused_rowwise,
        "parallel": fused_parallel,
        "probabilistic": fused_probabilistic,
    }
    return _KERNELS


_NUMPY_BACKEND = NumpyBackend()
_NUMBA_BACKEND: NumbaBackend | None = None


_FALLBACK_EVENT_RUNS: set = set()


def _record_numba_fallback(tracer) -> None:
    """Warn once per process and emit one structured event per traced run.

    Headless runs routinely swallow ``RuntimeWarning``; the
    ``engine.backend_fallback`` trace event makes the degradation durable.
    The event fires at most once per (process, run id) so a sharded run
    that resolves the backend in the coordinator records exactly one.
    """
    global _warned_numba_fallback
    if not _warned_numba_fallback:
        warnings.warn(
            "backend='numba' requested but numba is not installed — "
            "falling back to the numpy backend (same dynamics, no fused "
            "kernels)",
            RuntimeWarning,
            stacklevel=3,
        )
        _warned_numba_fallback = True
    if tracer is None or not getattr(tracer, "enabled", False):
        from ..obs import get_global_tracer

        tracer = get_global_tracer()
    if not tracer.enabled or tracer.run_id in _FALLBACK_EVENT_RUNS:
        return
    _FALLBACK_EVENT_RUNS.add(tracer.run_id)
    tracer.event(
        "engine.backend_fallback",
        backend="numba",
        reason="numba is not importable in this environment",
        fallback="numpy",
    )


def resolve_backend(
    backend: str | ArrayBackend | None, tracer=None
) -> ArrayBackend:
    """Resolve a ``backend=`` knob value to an :class:`ArrayBackend`.

    ``"numpy"`` (or ``None``) is the default vectorised path; ``"numba"``
    returns the JIT backend, degrading gracefully — with a one-line
    warning, once per process, plus a structured
    ``engine.backend_fallback`` event on ``tracer`` (or the global tracer)
    once per traced run — to numpy when numba is not installed; ``"auto"``
    silently picks numba when available and numpy otherwise.  An
    :class:`ArrayBackend` instance passes through unchanged.
    """
    global _NUMBA_BACKEND
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is None or backend == "numpy":
        return _NUMPY_BACKEND
    if backend in ("numba", "auto"):
        if numba_available():
            if _NUMBA_BACKEND is None:
                _NUMBA_BACKEND = NumbaBackend()
            return _NUMBA_BACKEND
        if backend == "numba":
            _record_numba_fallback(tracer)
        return _NUMPY_BACKEND
    raise ValueError(
        f"unknown array backend {backend!r}; available backends: "
        f"'numpy' (default), 'numba' (JIT-fused step kernels), 'auto'"
    )
