"""Vectorised grand coupling (batched version of Theorem 3.6's construction).

:func:`repro.markov.coupling.simulate_grand_coupling` runs the paper's grand
coupling one pair and one step at a time; for coalescence-time estimation
one typically wants dozens of independent coupled pairs, which makes the
run embarrassingly parallel across pairs.  This module advances *all*
coupled pairs simultaneously:

* :func:`maximal_coupling_update_many` — the batched maximal-overlap
  interval construction, mapping one uniform per pair through both update
  distributions at once.  It agrees *exactly* (per row) with the scalar
  :func:`~repro.markov.coupling.maximal_coupling_update`, so the marginal
  guarantees proved there carry over unchanged;
* :func:`simulate_grand_coupling_ensemble` — the ensemble driver: every
  pair shares its player selection and uniform between the X- and Y-copy
  (that is what makes it the *grand* coupling), pairs are grouped by
  selected player, and both sides' update rows are produced with one
  batched utility gather each.  Returns the same
  :class:`~repro.markov.coupling.CouplingResult` as the loop version.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..markov.coupling import CouplingResult
from .sampling import sample_from_cumulative

__all__ = ["maximal_coupling_update_many", "simulate_grand_coupling_ensemble"]


def maximal_coupling_update_many(
    probs_x: np.ndarray, probs_y: np.ndarray, uniforms: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Batched maximal-overlap coupling update.

    Parameters
    ----------
    probs_x, probs_y:
        ``(k, m)`` arrays of single-site update distributions, one coupled
        pair per row.
    uniforms:
        ``(k,)`` uniforms, one shared draw per pair.

    Returns
    -------
    ``(s_x, s_y)`` — two ``(k,)`` int64 arrays of chosen strategies.  Row
    ``j`` equals ``maximal_coupling_update(probs_x[j], probs_y[j],
    uniforms[j])`` exactly.
    """
    px = np.asarray(probs_x, dtype=float)
    py = np.asarray(probs_y, dtype=float)
    if px.shape != py.shape or px.ndim != 2:
        raise ValueError("update distributions must be 2-D and of identical shape")
    u = np.asarray(uniforms, dtype=float)
    if u.shape != (px.shape[0],):
        raise ValueError(f"uniforms must have shape ({px.shape[0]},), got {u.shape}")

    overlap = np.minimum(px, py)
    ell = overlap.sum(axis=1)
    same = u < ell
    # prefix of the interval: both copies draw the same strategy from the overlap
    s_same = sample_from_cumulative(np.cumsum(overlap, axis=1), u)
    # suffix: each copy draws from its own normalised excess mass
    rem = u - ell
    s_x = sample_from_cumulative(np.cumsum(px - overlap, axis=1), rem)
    s_y = sample_from_cumulative(np.cumsum(py - overlap, axis=1), rem)
    # identical-up-to-round-off rows have no residual mass to draw from
    degenerate = ~same & (1.0 - ell <= 0)
    s_degenerate = sample_from_cumulative(np.cumsum(px, axis=1), u)

    out_x = np.where(same, s_same, np.where(degenerate, s_degenerate, s_x))
    out_y = np.where(same, s_same, np.where(degenerate, s_degenerate, s_y))
    return out_x.astype(np.int64), out_y.astype(np.int64)


def simulate_grand_coupling_ensemble(
    dynamics,
    start_x: Sequence[int] | np.ndarray,
    start_y: Sequence[int] | np.ndarray,
    horizon: int,
    num_runs: int = 32,
    rng: np.random.Generator | None = None,
) -> CouplingResult:
    """Simulate ``num_runs`` independent grand-coupling pairs in parallel.

    Parameters
    ----------
    dynamics:
        The coupled dynamics; must expose ``game`` and
        ``update_distribution_many``
        (:class:`~repro.core.logit.LogitDynamics` is the canonical
        provider).
    start_x, start_y:
        ``(n,)`` integer strategy profiles the two coupled copies start
        from — for worst-case coalescence estimates, the two profiles
        expected to be hardest to couple.
    horizon:
        Maximum number of coupled steps per pair.
    num_runs:
        Number of independent coupled pairs advanced simultaneously.
    rng:
        Numpy generator (fresh default generator if omitted).

    Returns
    -------
    repro.markov.coupling.CouplingResult
        Per-pair coalescence times (``-1`` when a pair did not coalesce
        within the horizon) plus the horizon, from which
        ``fraction_coalesced`` and the Theorem 2.1 quantile bound are
        derived.

    ``dynamics`` must expose ``game`` and ``update_distribution_many`` (see
    :class:`~repro.engine.ensemble.EnsembleSimulator`); each pair evolves
    exactly as in :func:`repro.markov.coupling.simulate_grand_coupling` —
    same player, same uniform, maximal-overlap update — but all pairs share
    each step's batched utility lookups.  Pairs that have coalesced stop
    being advanced (the coupling is sticky: once merged, copies never
    separate, so this loses nothing).
    """
    rng = np.random.default_rng() if rng is None else rng
    space = dynamics.game.space
    if not space.fits_int64:
        raise ValueError(
            f"the profile space has more than 2**63 profiles (beyond int64); the "
            f"grand-coupling ensemble tracks pairs as profile indices and "
            f"cannot run at this size — use the matrix-state "
            f"EnsembleSimulator for large-space Monte Carlo instead"
        )
    n = space.num_players
    sx = np.asarray(start_x, dtype=np.int64)
    sy = np.asarray(start_y, dtype=np.int64)
    if sx.shape != (n,) or sy.shape != (n,):
        raise ValueError("starting profiles must have length num_players")
    X = np.full(num_runs, space.encode(sx), dtype=np.int64)
    Y = np.full(num_runs, space.encode(sy), dtype=np.int64)

    times = np.full(num_runs, -1, dtype=np.int64)
    if np.array_equal(sx, sy):
        times[:] = 0
        return CouplingResult(times, horizon, num_runs)

    active = np.arange(num_runs, dtype=np.int64)
    for t in range(1, horizon + 1):
        if active.size == 0:
            break
        players = rng.integers(0, n, size=active.size)
        uniforms = rng.random(active.size)
        order = np.argsort(players, kind="stable")
        boundaries = np.flatnonzero(np.diff(players[order])) + 1
        for group in np.split(order, boundaries):
            player = int(players[group[0]])
            sel = active[group]
            probs_x = dynamics.update_distribution_many(player, X[sel])
            probs_y = dynamics.update_distribution_many(player, Y[sel])
            chosen_x, chosen_y = maximal_coupling_update_many(
                probs_x, probs_y, uniforms[group]
            )
            X[sel] = space.set_strategy_many(X[sel], player, chosen_x)
            Y[sel] = space.set_strategy_many(Y[sel], player, chosen_y)
        met = X[active] == Y[active]
        times[active[met]] = t
        active = active[~met]
    return CouplingResult(
        coalescence_times=times,
        horizon=horizon,
        num_coalesced=int(np.count_nonzero(times >= 0)),
    )
