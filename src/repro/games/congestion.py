"""Congestion games (Rosenthal) — a canonical family of potential games.

The paper cites congestion games as the motivating class of potential games
studied by Asadpour and Saberi for hitting times.  We implement singleton
congestion games (each strategy is a single resource) and general
resource-subset congestion games with per-resource delay functions, and
expose the Rosenthal potential, which makes them exact potential games and
therefore in scope for Theorems 3.4, 3.6, 3.8 and 3.9.

Sign convention: players experience *costs* (delays), so their utility is
minus the total delay, and the Rosenthal potential is
``Phi(x) = sum_r sum_{k=1}^{n_r(x)} d_r(k)`` which *decreases* along
improving deviations, matching Equation (1) of the paper.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .potential import ExplicitPotentialGame
from .space import ProfileSpace

__all__ = ["CongestionGame", "SingletonCongestionGame", "linear_delays"]


def linear_delays(num_resources: int, slope: float = 1.0, offset: float = 0.0) -> list[Callable[[int], float]]:
    """Per-resource linear delay functions ``d_r(k) = slope * k + offset``."""
    return [lambda k, s=slope, o=offset: s * k + o for _ in range(num_resources)]


class CongestionGame(ExplicitPotentialGame):
    """General congestion game with resource subsets as strategies.

    Parameters
    ----------
    strategies:
        ``strategies[i][s]`` is the set (iterable) of resource indices used
        by player ``i`` when playing her ``s``-th strategy.
    delays:
        One callable per resource: ``delays[r](k)`` is the delay of resource
        ``r`` when ``k`` players use it.  Must be defined for
        ``k = 1..n``.
    """

    def __init__(
        self,
        strategies: Sequence[Sequence[Sequence[int]]],
        delays: Sequence[Callable[[int], float]],
    ):
        num_players = len(strategies)
        if num_players == 0:
            raise ValueError("need at least one player")
        num_resources = len(delays)
        self._strategy_resources = [
            [np.asarray(sorted(set(res)), dtype=np.int64) for res in player_strats]
            for player_strats in strategies
        ]
        for player_strats in self._strategy_resources:
            if len(player_strats) == 0:
                raise ValueError("every player needs at least one strategy")
            for res in player_strats:
                if res.size and (res.min() < 0 or res.max() >= num_resources):
                    raise ValueError("resource index out of range")
        self.num_resources = num_resources
        self.delays = list(delays)
        self.space = ProfileSpace(tuple(len(p) for p in self._strategy_resources))
        utilities, phi = self._tabulate()
        super().__init__(self.space, utilities, phi)

    # -- tabulation --------------------------------------------------------

    def _resource_loads(self, profile: tuple[int, ...]) -> np.ndarray:
        loads = np.zeros(self.num_resources, dtype=np.int64)
        for player, strategy in enumerate(profile):
            loads[self._strategy_resources[player][strategy]] += 1
        return loads

    def _tabulate(self) -> tuple[np.ndarray, np.ndarray]:
        n = self.num_players
        size = self.space.size
        utilities = np.zeros((n, size), dtype=float)
        phi = np.zeros(size, dtype=float)
        # Precompute cumulative delay sums D_r(k) = sum_{j<=k} d_r(j)
        max_load = n
        delay_table = np.zeros((self.num_resources, max_load + 1), dtype=float)
        for r, d in enumerate(self.delays):
            for k in range(1, max_load + 1):
                delay_table[r, k] = d(k)
        cumulative = np.cumsum(delay_table, axis=1)
        for x in range(size):
            profile = self.space.decode(x)
            loads = self._resource_loads(profile)
            phi[x] = float(np.sum(cumulative[np.arange(self.num_resources), loads]))
            for player, strategy in enumerate(profile):
                res = self._strategy_resources[player][strategy]
                cost = float(np.sum(delay_table[res, loads[res]]))
                utilities[player, x] = -cost
        return utilities, phi


class SingletonCongestionGame(CongestionGame):
    """Congestion game where every strategy is a single resource.

    Every player chooses one of ``num_resources`` resources; all players
    share the same strategy set.  This is the load-balancing game studied
    by Asadpour and Saberi (cited in the paper's related work).
    """

    def __init__(
        self,
        num_players: int,
        num_resources: int,
        delays: Sequence[Callable[[int], float]] | None = None,
    ):
        if delays is None:
            delays = linear_delays(num_resources)
        if len(delays) != num_resources:
            raise ValueError("need exactly one delay function per resource")
        strategies = [[[r] for r in range(num_resources)] for _ in range(num_players)]
        super().__init__(strategies, delays)
