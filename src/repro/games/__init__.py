"""Strategic-game substrate for the logit-dynamics reproduction.

Exports the profile-space machinery, the game base classes, potential
games, the paper's coordination / dominant-strategy / lower-bound
constructions, congestion games, the Ising model and finite opinion games.
"""

from .base import (
    CallableGame,
    Game,
    NormalFormGame,
    TableGame,
    best_responses,
    pure_nash_equilibria,
    random_game,
)
from .constructions import (
    BirthDeathPotentialGame,
    Theorem35Game,
    TwoWellGame,
    theorem35_potential,
    weight_potential_game,
)
from .coordination import (
    CoordinationParams,
    GraphicalCoordinationGame,
    TwoPlayerCoordinationGame,
    basic_coordination_payoffs,
)
from .congestion import CongestionGame, SingletonCongestionGame, linear_delays
from .dominant import (
    AnonymousDominantGame,
    dominant_profile,
    dominant_strategies,
    has_dominant_profile,
    random_dominant_game,
)
from .maxsolvable import (
    MaxSolvableResult,
    is_max_solvable,
    max_solve,
    never_best_response_strategies,
)
from .local import LocalInteractionGame, derive_edge_potential
from .opinion import FiniteOpinionGame, opinion_edge_payoffs, opinion_edge_potential
from .ising import (
    IsingGame,
    glauber_update_probability,
    ising_hamiltonian,
    profile_from_spins,
    spins_from_profile,
)
from .potential import (
    ExplicitPotentialGame,
    PotentialGame,
    is_potential_game,
    local_variations,
    max_global_variation,
    max_local_variation,
    minimax_barrier_matrix,
    potential_from_game,
    zeta_barrier,
    zeta_barrier_bruteforce,
)
from .space import ProfileSpace, hamming_distance

__all__ = [
    "MaxSolvableResult",
    "is_max_solvable",
    "max_solve",
    "never_best_response_strategies",
    "CallableGame",
    "Game",
    "NormalFormGame",
    "TableGame",
    "best_responses",
    "pure_nash_equilibria",
    "random_game",
    "BirthDeathPotentialGame",
    "Theorem35Game",
    "TwoWellGame",
    "theorem35_potential",
    "weight_potential_game",
    "CoordinationParams",
    "GraphicalCoordinationGame",
    "TwoPlayerCoordinationGame",
    "basic_coordination_payoffs",
    "CongestionGame",
    "SingletonCongestionGame",
    "linear_delays",
    "AnonymousDominantGame",
    "dominant_profile",
    "dominant_strategies",
    "has_dominant_profile",
    "random_dominant_game",
    "LocalInteractionGame",
    "derive_edge_potential",
    "FiniteOpinionGame",
    "opinion_edge_payoffs",
    "opinion_edge_potential",
    "IsingGame",
    "glauber_update_probability",
    "ising_hamiltonian",
    "profile_from_spins",
    "spins_from_profile",
    "ExplicitPotentialGame",
    "PotentialGame",
    "is_potential_game",
    "local_variations",
    "max_global_variation",
    "max_local_variation",
    "minimax_barrier_matrix",
    "potential_from_game",
    "zeta_barrier",
    "zeta_barrier_bruteforce",
    "ProfileSpace",
    "hamming_distance",
]
