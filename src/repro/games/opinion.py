"""Finite opinion games on social graphs (arXiv 1311.1610).

"Decentralized Dynamics for Finite Opinion Games" (Ferraioli, Goldberg,
Ventre) studies the discretised variant of the DeGroot/Friedkin–Johnsen
opinion-formation model of Bindel–Kleinberg–Oren: every player ``i`` of a
social graph holds an *internal belief* ``b_i in [0, 1]`` but must declare
one of finitely many public opinions.  Declaring opinion ``o`` costs the
quadratic disagreement with every neighbor's declared opinion plus the
quadratic distance from the own belief::

    c_i(x) = sum_{j ~ i} (o(x_i) - o(x_j))^2  +  (o(x_i) - b_i)^2

This is an exact potential game with potential (the paper's Eq. for ``Phi``)

    Phi(x) = sum_{(u,v) in E} (o(x_u) - o(x_v))^2 + sum_i (o(x_i) - b_i)^2,

which drops directly onto :class:`~repro.games.local.LocalInteractionGame`:
the disagreement term is a shared per-edge payoff matrix
``M[s, t] = -(o_s - o_t)^2`` (utilities are negated costs), the belief term
is a per-player external field ``field[i, s] = -(o_s - b_i)^2``, and the
per-edge potential ``P[s, t] = (o_s - o_t)^2`` is exactly what
:func:`~repro.games.local.derive_edge_potential` recovers from the payoffs
(Monderer–Shapley path integration normalises ``P[0, 0] = 0``, which the
opinion potential already satisfies).  The game therefore inherits every
scaling path of the local-interaction machinery — index-free deviation
utilities, matrix state rows, fused backends — while the dense accessors
stay available below the dense cap for exact cross-validation.

The paper's theory targets live in :mod:`repro.core.bounds` as the
``theorem1311_*`` / ``lemma1311_*`` callables: the cutwidth-driven mixing
upper bound for the opinion chain and the social-cost claims (the
potential/cost sandwich, the price-of-stability factor 2, and the
stationary expected social-cost bound for the logit dynamics).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from .local import LocalInteractionGame

__all__ = ["FiniteOpinionGame", "opinion_edge_payoffs", "opinion_edge_potential"]


def _opinion_values(num_opinions: int) -> np.ndarray:
    """The ``num_opinions`` admissible opinions, equally spaced in [0, 1]."""
    if num_opinions < 2:
        raise ValueError("finite opinion games need at least two opinions")
    return np.linspace(0.0, 1.0, int(num_opinions))


def opinion_edge_payoffs(num_opinions: int = 2) -> np.ndarray:
    """The shared ``(m, m)`` per-edge payoff matrix ``M[s, t] = -(o_s - o_t)^2``.

    Utilities are negated costs, so each endpoint of an edge *pays* the
    squared disagreement with the neighbor's declared opinion.  The matrix
    is symmetric (both endpoints read it with their own strategy as the
    row, the symmetric-role convention of
    :class:`~repro.games.local.LocalInteractionGame`).
    """
    o = _opinion_values(num_opinions)
    return -((o[:, None] - o[None, :]) ** 2)


def opinion_edge_potential(num_opinions: int = 2) -> np.ndarray:
    """The exact per-edge potential ``P[s, t] = (o_s - o_t)^2`` of the game.

    This is the matrix :func:`~repro.games.local.derive_edge_potential`
    recovers from :func:`opinion_edge_payoffs` — already normalised to
    ``P[0, 0] = 0`` — and the per-edge summand of the arXiv 1311.1610
    potential ``Phi``.
    """
    return -opinion_edge_payoffs(num_opinions)


class FiniteOpinionGame(LocalInteractionGame):
    """Discretised opinion formation on a social graph (arXiv 1311.1610).

    Parameters
    ----------
    graph:
        The social graph; nodes are relabelled to ``0..n-1`` in sorted
        order and become the players (the
        :class:`~repro.games.local.LocalInteractionGame` convention).
    beliefs:
        ``(n,)`` internal beliefs in ``[0, 1]``, indexed by the sorted node
        order.
    num_opinions:
        Number of admissible public opinions ``m >= 2``; the opinion
        values are equally spaced, ``o_s = s / (m - 1)``.  The paper's
        binary case is ``m = 2`` (opinions exactly 0 and 1).

    Player ``i``'s utility is the negated cost ``-c_i`` and the game is an
    exact potential game with ``Phi(x) = sum_e (o_u - o_v)^2 + sum_i
    (o_i - b_i)^2`` — the per-edge potentials are passed explicitly to pin
    the paper's normalisation (which coincides with the auto-derived one),
    so ``pi ∝ exp(-beta Phi)`` is the opinion chain's Gibbs measure and
    low-cost opinion profiles are the likely ones.
    """

    def __init__(
        self,
        graph: nx.Graph,
        beliefs: Sequence[float] | np.ndarray,
        num_opinions: int = 2,
    ):
        opinions = _opinion_values(num_opinions)
        b = np.asarray(beliefs, dtype=float)
        n = graph.number_of_nodes()
        if b.shape != (n,):
            raise ValueError(
                f"beliefs must have shape ({n},) — one belief per node of "
                f"the social graph — got {b.shape}"
            )
        if not np.all(np.isfinite(b)) or np.any(b < 0.0) or np.any(b > 1.0):
            raise ValueError("beliefs must be finite values in [0, 1]")
        # field[i, s] = -(o_s - b_i)^2: the belief term enters the utility
        # negatively and the potential positively
        field = -((opinions[None, :] - b[:, None]) ** 2)
        super().__init__(
            graph,
            opinion_edge_payoffs(num_opinions),
            edge_potentials=opinion_edge_potential(num_opinions),
            external_field=field,
            num_strategies=int(num_opinions),
        )
        self._opinions = opinions
        self._beliefs = b

    @classmethod
    def random(
        cls,
        graph: nx.Graph,
        num_opinions: int = 2,
        rng: np.random.Generator | None = None,
    ) -> "FiniteOpinionGame":
        """Opinion game with i.i.d. uniform beliefs drawn from ``rng``."""
        rng = np.random.default_rng() if rng is None else rng
        beliefs = rng.uniform(0.0, 1.0, size=graph.number_of_nodes())
        return cls(graph, beliefs, num_opinions=num_opinions)

    # -- model accessors ---------------------------------------------------

    @property
    def num_opinions(self) -> int:
        """Number of admissible public opinions ``m``."""
        return int(self._opinions.size)

    @property
    def opinion_values(self) -> np.ndarray:
        """The opinion values ``o_s = s / (m - 1)`` (copy)."""
        return self._opinions.copy()

    @property
    def beliefs(self) -> np.ndarray:
        """Per-player internal beliefs (copy, sorted node order)."""
        return self._beliefs.copy()

    def opinions_of_profiles(self, profiles: np.ndarray) -> np.ndarray:
        """``(k, n)`` declared opinion *values* of ``(k, n)`` strategy rows."""
        prof = np.asarray(profiles)
        return self._opinions[prof.astype(np.int64, copy=False)]

    # -- cost observables (index-free) -------------------------------------

    def disagreement_of_profiles(self, profiles: np.ndarray) -> np.ndarray:
        """``(k,)`` total edge disagreement ``sum_e (o_u - o_v)^2``.

        Counted once per edge — the social cost counts it twice (both
        endpoints pay it), which is exactly the gap in the arXiv 1311.1610
        sandwich ``Phi <= SC <= 2 Phi``.
        """
        op = self.opinions_of_profiles(profiles)
        if op.ndim != 2 or op.shape[1] != self.num_players:
            raise ValueError(
                f"profiles must have shape (k, {self.num_players}), got "
                f"{np.asarray(profiles).shape}"
            )
        if self.num_edges == 0:
            return np.zeros(op.shape[0], dtype=float)
        return ((op[:, self._edge_u] - op[:, self._edge_v]) ** 2).sum(axis=1)

    def belief_cost_of_profiles(self, profiles: np.ndarray) -> np.ndarray:
        """``(k,)`` total belief distance ``sum_i (o(x_i) - b_i)^2``."""
        op = self.opinions_of_profiles(profiles)
        return ((op - self._beliefs[None, :]) ** 2).sum(axis=1)

    def social_cost_of_profiles(self, profiles: np.ndarray) -> np.ndarray:
        """``(k,)`` social cost ``SC(x) = sum_i c_i(x)`` of profile rows.

        ``SC = 2 * disagreement + belief cost = Phi + disagreement`` —
        every edge is paid by both endpoints, every belief term once.
        Equal to minus the utilitarian welfare the sweeps report.
        """
        prof = np.asarray(profiles)
        return self.potential_of_profiles(prof) + self.disagreement_of_profiles(prof)

    def social_cost(self, profile_index: int) -> float:
        """Social cost of one profile index (small spaces)."""
        profile = np.asarray(self.space.decode(profile_index), dtype=np.int64)
        return float(self.social_cost_of_profiles(profile[None, :])[0])

    def social_cost_vector(self) -> np.ndarray:
        """Dense social-cost vector over the whole profile space (dense cap)."""
        return self.social_cost_of_profiles(self.space.all_profiles())

    def optimal_social_cost(self) -> float:
        """``min_x SC(x)`` by exhaustive evaluation (dense cap)."""
        return float(self.social_cost_vector().min())

    def consensus_index(self, opinion: int) -> int:
        """Profile index of the consensus profile (every player at ``opinion``)."""
        m = self.num_opinions
        if not 0 <= int(opinion) < m:
            raise ValueError(f"opinion must lie in 0..{m - 1}, got {opinion}")
        return int(self.space.encode((int(opinion),) * self.num_players))

    # -- store identity ----------------------------------------------------

    def store_spec(self) -> dict:
        """Content identity: the local-game spec plus beliefs and opinion count.

        The base spec (edges, payoff/potential stacks, field) already
        pins the game content; beliefs and the opinion count are added
        explicitly so the stored spec is self-describing and two opinion
        games hash identically iff graph, beliefs and discretisation all
        agree.
        """
        spec = super().store_spec()
        spec["beliefs"] = self._beliefs
        spec["num_opinions"] = self.num_opinions
        return spec
