"""Potential-game constructions used in the paper's lower bounds.

Three families are implemented:

* :func:`theorem35_potential` / :class:`Theorem35Game` — the family of
  Theorem 3.5: on ``{0, 1}^n``, ``Phi_n(x) = -l * min(c, |c - w(x)|)`` with
  ``c = g / l`` (``g`` = desired maximum global variation, ``l`` = desired
  maximum local variation, ``w(x)`` = number of ones).  The chain must cross
  the high-potential ridge ``w(x) = c`` to move between the two wells, which
  yields the ``e^{beta * DeltaPhi (1 - o(1))}`` lower bound.
* :class:`TwoWellGame` — the warm-up example preceding Theorem 3.5:
  ``Phi(0) = Phi(1) = 0`` and ``Phi(x) = L`` elsewhere, whose mixing time is
  ``Omega(e^{beta L})`` by a bottleneck argument.
* :class:`BirthDeathPotentialGame` — a single-player (or "anonymous spin")
  potential game whose potential depends only on the Hamming weight, handy
  for controlled experiments on the barrier quantity ``zeta`` (Theorems 3.8
  and 3.9).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .potential import ExplicitPotentialGame
from .space import ProfileSpace

__all__ = [
    "theorem35_potential",
    "Theorem35Game",
    "TwoWellGame",
    "BirthDeathPotentialGame",
    "weight_potential_game",
]


def theorem35_potential(
    num_players: int, global_variation: float, local_variation: float
) -> np.ndarray:
    """The potential vector of Theorem 3.5 on ``{0, 1}^num_players``.

    Parameters
    ----------
    num_players:
        ``n`` — the number of players (binary strategies).
    global_variation:
        ``g_n`` — the desired ``DeltaPhi``.
    local_variation:
        ``l_n`` — the desired ``deltaPhi``; the paper requires
        ``2 g_n / n <= l_n <= g_n`` so that ``c = g_n / l_n <= n / 2``.

    Returns
    -------
    numpy.ndarray
        The ``(2^n,)`` potential ``Phi(x) = -l * min(c, |c - w(x)|)``.
    """
    if num_players < 2:
        raise ValueError("Theorem 3.5 construction needs at least 2 players")
    g = float(global_variation)
    l = float(local_variation)
    if g <= 0 or l <= 0:
        raise ValueError("variations must be positive")
    if not (2.0 * g / num_players - 1e-12 <= l <= g + 1e-12):
        raise ValueError(
            "Theorem 3.5 requires 2*g/n <= l <= g; "
            f"got g={g}, l={l}, n={num_players}"
        )
    c = g / l
    space = ProfileSpace((2,) * num_players)
    w = space.weight(np.arange(space.size))
    return -l * np.minimum(c, np.abs(c - w))


class Theorem35Game(ExplicitPotentialGame):
    """Potential game realising the Theorem 3.5 lower-bound potential."""

    def __init__(self, num_players: int, global_variation: float, local_variation: float):
        phi = theorem35_potential(num_players, global_variation, local_variation)
        space_shape = (2,) * num_players
        utilities = np.tile(-phi, (num_players, 1))
        super().__init__(space_shape, utilities, phi)
        self.global_variation = float(global_variation)
        self.local_variation = float(local_variation)
        self.ridge_weight = global_variation / local_variation

    def bottleneck_set(self) -> np.ndarray:
        """The set ``R = { x : w(x) < c }`` used in the proof of Theorem 3.5."""
        w = self.space.weight(np.arange(self.space.size))
        return np.flatnonzero(w < self.ridge_weight)


class TwoWellGame(ExplicitPotentialGame):
    """Two potential wells at ``0`` and ``1`` separated by a flat ridge.

    ``Phi(0) = Phi(1) = 0`` and ``Phi(x) = barrier`` for every other
    profile.  Here ``DeltaPhi = deltaPhi = zeta = barrier`` and the mixing
    time grows as ``e^{beta * barrier}`` — the motivating example before
    Theorem 3.5 in the paper.
    """

    def __init__(self, num_players: int, barrier: float = 1.0, depth_ratio: float = 1.0):
        if num_players < 2:
            raise ValueError("need at least two players for two distinct wells")
        if barrier <= 0:
            raise ValueError("barrier must be positive")
        if not 0 < depth_ratio <= 1:
            raise ValueError("depth_ratio must lie in (0, 1]")
        space_shape = (2,) * num_players
        space = ProfileSpace(space_shape)
        phi = np.full(space.size, float(barrier))
        all0 = space.encode((0,) * num_players)
        all1 = space.encode((1,) * num_players)
        phi[all0] = 0.0
        # depth_ratio < 1 makes the second well shallower, which breaks the
        # symmetry between the two wells and lets experiments separate
        # DeltaPhi from zeta (zeta = barrier - (1 - depth_ratio) * barrier).
        phi[all1] = (1.0 - depth_ratio) * barrier
        utilities = np.tile(-phi, (num_players, 1))
        super().__init__(space_shape, utilities, phi)
        self.barrier = float(barrier)
        self.depth_ratio = float(depth_ratio)
        self.well_indices = (all0, all1)


def weight_potential_game(
    num_players: int, weight_potential: Sequence[float] | Callable[[int], float]
) -> ExplicitPotentialGame:
    """Binary-strategy potential game with ``Phi(x) = f(w(x))``.

    ``weight_potential`` is either a sequence of length ``n + 1`` or a
    callable on ``{0, ..., n}``.  All the "anonymous" constructions of the
    paper (Theorem 3.5, the clique coordination game of Section 5.2, the
    Curie–Weiss / mean-field Ising model) are of this form.
    """
    space = ProfileSpace((2,) * num_players)
    if callable(weight_potential):
        levels = np.array([weight_potential(k) for k in range(num_players + 1)], dtype=float)
    else:
        levels = np.asarray(weight_potential, dtype=float)
        if levels.shape != (num_players + 1,):
            raise ValueError(
                f"weight_potential must have length {num_players + 1}, got {levels.shape}"
            )
    w = space.weight(np.arange(space.size))
    phi = levels[w]
    return ExplicitPotentialGame((2,) * num_players, np.tile(-phi, (num_players, 1)), phi)


class BirthDeathPotentialGame(ExplicitPotentialGame):
    """Binary potential game whose potential is an arbitrary function of the weight.

    Thin convenience subclass over :func:`weight_potential_game` that also
    records the weight-level potential, which several benchmarks report.
    """

    def __init__(self, num_players: int, weight_potential: Sequence[float] | Callable[[int], float]):
        base = weight_potential_game(num_players, weight_potential)
        super().__init__(
            base.space.num_strategies,
            np.stack([base.utility_matrix(i) for i in range(base.num_players)]),
            base.potential_vector(),
        )
        w = self.space.weight(np.arange(self.space.size))
        levels = np.empty(num_players + 1, dtype=float)
        phi = self.potential_vector()
        for k in range(num_players + 1):
            members = np.flatnonzero(w == k)
            levels[k] = phi[members[0]]
        self.weight_levels = levels
