"""The Ising model as a graphical coordination game (Glauber dynamics).

Section 5 of the paper notes that the Ising model is the special graphical
coordination game *without* risk-dominant equilibria (``delta0 = delta1``),
and that the Glauber dynamics on the Ising model coincides with the logit
dynamics of that game.  This module makes the correspondence executable:

* :class:`IsingGame` — the graphical coordination game with
  ``delta0 = delta1 = 2 * J`` on an arbitrary interaction graph, plus an
  optional external field ``h`` (a per-player bonus for playing spin ``+1``)
  that maps to an extra linear term in the potential;
* :func:`ising_hamiltonian` — the usual physics Hamiltonian
  ``H(sigma) = -J sum_{(u,v)} sigma_u sigma_v - h sum_u sigma_u`` over spins
  ``sigma in {-1, +1}^n``;
* :func:`spins_from_profile` / :func:`profile_from_spins` — the 0/1 <-> ±1
  mapping;
* :func:`glauber_update_probability` — the heat-bath update rule, equal to
  the logit update probability of the corresponding game.

The correspondence (up to an additive constant in the potential, which the
Gibbs measure ignores) is ``Phi(x) = H(sigma(x)) / 1`` with
``delta = 2 * J``: flipping a spin changes ``H`` by ``2 J (#disagreeing -
#agreeing neighbors)`` and changes the game potential by exactly the same
amount.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .coordination import CoordinationParams, GraphicalCoordinationGame
from .potential import ExplicitPotentialGame
from .space import ProfileSpace

__all__ = [
    "IsingGame",
    "ising_hamiltonian",
    "spins_from_profile",
    "profile_from_spins",
    "glauber_update_probability",
]


def spins_from_profile(profile: np.ndarray) -> np.ndarray:
    """Map strategies in ``{0, 1}`` to spins in ``{-1, +1}`` (1 -> +1)."""
    arr = np.asarray(profile)
    return 2 * arr - 1


def profile_from_spins(spins: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spins_from_profile`."""
    arr = np.asarray(spins)
    return ((arr + 1) // 2).astype(np.int64)


def ising_hamiltonian(
    graph: nx.Graph, spins: np.ndarray, coupling: float = 1.0, field: float = 0.0
) -> float:
    """Ising energy ``H = -J * sum_edges s_u s_v - h * sum_u s_u``."""
    spins = np.asarray(spins, dtype=float)
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    pair_sum = sum(spins[index[u]] * spins[index[v]] for u, v in graph.edges())
    return float(-coupling * pair_sum - field * np.sum(spins))


def glauber_update_probability(
    local_field: float, beta: float
) -> float:
    """Heat-bath probability of setting a spin to ``+1``.

    ``local_field = J * sum_{v ~ u} sigma_v + h`` is the effective field at
    the updated site; the Glauber rule sets the spin to ``+1`` with
    probability ``1 / (1 + exp(-2 beta local_field))``, which coincides with
    the logit update probability of the corresponding coordination game.
    """
    return float(1.0 / (1.0 + np.exp(-2.0 * beta * local_field)))


class IsingGame(ExplicitPotentialGame):
    """Graphical coordination game equivalent to the Ising model.

    Parameters
    ----------
    graph:
        Interaction graph (players = nodes).
    coupling:
        Ferromagnetic coupling ``J > 0``; the equivalent coordination game
        has ``delta0 = delta1 = 2 J``.
    field:
        External field ``h``; ``h > 0`` favours strategy 1 (spin ``+1``),
        breaking the symmetry between the two consensus profiles the way a
        risk-dominant equilibrium would.

    Notes
    -----
    The potential used is exactly the Hamiltonian evaluated on the ±1 spins
    of each profile, so ``pi(x) ∝ exp(-beta H(sigma(x)))`` is the textbook
    Gibbs distribution of the Ising model and the logit dynamics is the
    single-site heat-bath (Glauber) dynamics.
    """

    def __init__(self, graph: nx.Graph, coupling: float = 1.0, field: float = 0.0):
        if coupling <= 0:
            raise ValueError("coupling J must be positive (ferromagnetic)")
        nodes = sorted(graph.nodes())
        relabel = {node: i for i, node in enumerate(nodes)}
        self.graph = nx.relabel_nodes(graph, relabel, copy=True)
        self.coupling = float(coupling)
        self.field = float(field)
        n = self.graph.number_of_nodes()
        space = ProfileSpace((2,) * n)
        profiles = space.all_profiles()
        spins = spins_from_profile(profiles).astype(float)  # (|S|, n)
        phi = np.zeros(space.size, dtype=float)
        for u, v in self.graph.edges():
            phi -= self.coupling * spins[:, u] * spins[:, v]
        phi -= self.field * spins.sum(axis=1)
        # Utilities: player u's utility is J * sum_{v~u} s_u s_v + h * s_u so
        # that a unilateral flip changes utility by minus the potential change.
        utilities = np.zeros((n, space.size), dtype=float)
        for u in range(n):
            neighbor_sum = np.zeros(space.size, dtype=float)
            for v in self.graph.neighbors(u):
                neighbor_sum += spins[:, v]
            utilities[u] = self.coupling * spins[:, u] * neighbor_sum + self.field * spins[:, u]
        super().__init__((2,) * n, utilities, phi)

    @classmethod
    def as_coordination_game(
        cls, graph: nx.Graph, coupling: float = 1.0
    ) -> GraphicalCoordinationGame:
        """The same model expressed as a :class:`GraphicalCoordinationGame`.

        The potential differs from the Ising Hamiltonian by an additive
        constant per edge (the coordination-game potential is 0 on
        disagreeing edges and ``-2J`` on agreeing ones, the Hamiltonian is
        ``+J`` / ``-J``), so both define the same Gibbs measure and the same
        logit dynamics.
        """
        params = CoordinationParams.ising(2.0 * coupling)
        return GraphicalCoordinationGame(graph, params)

    def magnetization(self, profile_index: int) -> float:
        """Average spin ``(1/n) sum_u sigma_u`` of the profile."""
        prof = np.asarray(self.space.decode(profile_index))
        return float(np.mean(spins_from_profile(prof)))

    def energy(self, profile_index: int) -> float:
        """Hamiltonian value of the profile (same as the game potential)."""
        return self.potential(profile_index)
