"""The Ising model as a graphical coordination game (Glauber dynamics).

Section 5 of the paper notes that the Ising model is the special graphical
coordination game *without* risk-dominant equilibria (``delta0 = delta1``),
and that the Glauber dynamics on the Ising model coincides with the logit
dynamics of that game.  This module makes the correspondence executable:

* :class:`IsingGame` — the local-interaction game with per-edge payoff
  ``J * sigma_u * sigma_v`` on an arbitrary interaction graph, plus an
  optional external field ``h`` (a per-player bonus for playing spin ``+1``)
  that maps to an extra linear term in the potential.  Built on
  :class:`~repro.games.local.LocalInteractionGame`, so utilities and the
  potential are computed from neighbor strategies only — the game (and the
  engine's matrix state backend with it) scales to thousands of spins,
  while the dense accessors (``potential_vector``, ``utility_matrix``)
  stay available below the dense cap;
* :func:`ising_hamiltonian` — the usual physics Hamiltonian
  ``H(sigma) = -J sum_{(u,v)} sigma_u sigma_v - h sum_u sigma_u`` over spins
  ``sigma in {-1, +1}^n``;
* :func:`spins_from_profile` / :func:`profile_from_spins` — the 0/1 <-> ±1
  mapping;
* :func:`glauber_update_probability` — the heat-bath update rule, equal to
  the logit update probability of the corresponding game.

The game potential *is* the Hamiltonian (the per-edge potentials are
passed explicitly rather than derived, pinning the physics normalisation),
so ``pi(x) ∝ exp(-beta H(sigma(x)))`` is the textbook Gibbs distribution
and the logit dynamics is single-site heat-bath (Glauber) dynamics:
flipping a spin changes ``H`` by ``2 J (#disagreeing - #agreeing
neighbors)`` and changes the game potential by exactly the same amount.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .coordination import CoordinationParams, GraphicalCoordinationGame
from .local import LocalInteractionGame

__all__ = [
    "IsingGame",
    "ising_hamiltonian",
    "spins_from_profile",
    "profile_from_spins",
    "glauber_update_probability",
]


def spins_from_profile(profile: np.ndarray) -> np.ndarray:
    """Map strategies in ``{0, 1}`` to spins in ``{-1, +1}`` (1 -> +1)."""
    arr = np.asarray(profile)
    return 2 * arr - 1


def profile_from_spins(spins: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spins_from_profile`."""
    arr = np.asarray(spins)
    return ((arr + 1) // 2).astype(np.int64)


def ising_hamiltonian(
    graph: nx.Graph, spins: np.ndarray, coupling: float = 1.0, field: float = 0.0
) -> float:
    """Ising energy ``H = -J * sum_edges s_u s_v - h * sum_u s_u``."""
    spins = np.asarray(spins, dtype=float)
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    pair_sum = sum(spins[index[u]] * spins[index[v]] for u, v in graph.edges())
    return float(-coupling * pair_sum - field * np.sum(spins))


def glauber_update_probability(
    local_field: float, beta: float
) -> float:
    """Heat-bath probability of setting a spin to ``+1``.

    ``local_field = J * sum_{v ~ u} sigma_v + h`` is the effective field at
    the updated site; the Glauber rule sets the spin to ``+1`` with
    probability ``1 / (1 + exp(-2 beta local_field))``, which coincides with
    the logit update probability of the corresponding coordination game.
    """
    return float(1.0 / (1.0 + np.exp(-2.0 * beta * local_field)))


class IsingGame(LocalInteractionGame):
    """Local-interaction game equivalent to the Ising model.

    Parameters
    ----------
    graph:
        Interaction graph (players = nodes).
    coupling:
        Ferromagnetic coupling ``J > 0``; the equivalent coordination game
        has ``delta0 = delta1 = 2 J``.
    field:
        External field ``h``; ``h > 0`` favours strategy 1 (spin ``+1``),
        breaking the symmetry between the two consensus profiles the way a
        risk-dominant equilibrium would.

    Notes
    -----
    Player ``u``'s utility is ``J * sum_{v~u} sigma_u sigma_v + h *
    sigma_u`` and the potential is exactly the Hamiltonian evaluated on the
    ±1 spins, so a unilateral flip changes utility by minus the potential
    change (Equation 1).  Everything is computed from neighbor spins only,
    so the game works far past the int64 profile-index ceiling.
    """

    def __init__(self, graph: nx.Graph, coupling: float = 1.0, field: float = 0.0):
        if coupling <= 0:
            raise ValueError("coupling J must be positive (ferromagnetic)")
        spins = np.array([-1.0, 1.0])
        edge_payoff = coupling * np.outer(spins, spins)  # u earns J*s_u*s_v
        # explicit edge potential -J*s_u*s_v: pins the Hamiltonian
        # normalisation (auto-derivation would shift each edge by -J)
        super().__init__(
            graph,
            edge_payoff,
            edge_potentials=-edge_payoff,
            external_field=field * spins,
        )
        self.coupling = float(coupling)
        self.field = float(field)

    @classmethod
    def as_coordination_game(
        cls, graph: nx.Graph, coupling: float = 1.0
    ) -> GraphicalCoordinationGame:
        """The same model expressed as a :class:`GraphicalCoordinationGame`.

        The potential differs from the Ising Hamiltonian by an additive
        constant per edge (the coordination-game potential is 0 on
        disagreeing edges and ``-2J`` on agreeing ones, the Hamiltonian is
        ``+J`` / ``-J``), so both define the same Gibbs measure and the same
        logit dynamics.
        """
        params = CoordinationParams.ising(2.0 * coupling)
        return GraphicalCoordinationGame(graph, params)

    def magnetization(self, profile_index: int) -> float:
        """Average spin ``(1/n) sum_u sigma_u`` of the profile."""
        prof = np.asarray(self.space.decode(profile_index))
        return float(np.mean(spins_from_profile(prof)))

    def magnetization_of_profiles(self, profiles: np.ndarray) -> np.ndarray:
        """``(k,)`` average spins of ``(k, n)`` profile rows.

        The index-free observable for large-``n`` runs — e.g. as a
        hitting-time *profile predicate*::

            sim.hitting_times(lambda prof: game.magnetization_of_profiles(prof) >= 0.9)
        """
        prof = np.asarray(profiles)
        return spins_from_profile(prof).mean(axis=-1)

    def energy(self, profile_index: int) -> float:
        """Hamiltonian value of the profile (same as the game potential)."""
        return self.potential(profile_index)

    def energy_of_profiles(self, profiles: np.ndarray) -> np.ndarray:
        """``(k,)`` Hamiltonian values of profile rows (index-free)."""
        return self.potential_of_profiles(profiles)
