"""Coordination games and graphical coordination games (Section 5).

The basic 2x2 coordination game of Equation (10) of the paper::

            0         1
      0   a, a      c, d
      1   d, c      b, b

with ``delta0 = a - d > 0`` and ``delta1 = b - c > 0`` so that both
``(0, 0)`` and ``(1, 1)`` are pure Nash equilibria.  If ``delta0 > delta1``
then ``(0, 0)`` is the *risk dominant* equilibrium, if ``delta0 < delta1``
then ``(1, 1)`` is, and if ``delta0 == delta1`` the game has no risk
dominant equilibrium (this last case is the Ising model).  The basic game
is a potential game with edge potential::

    phi(0, 0) = -delta0,  phi(1, 1) = -delta1,  phi(0, 1) = phi(1, 0) = 0.

A *graphical* coordination game puts ``n`` players on a social graph
``G = (V, E)``; every player picks one strategy which she plays against all
her neighbors, her utility is the sum over incident edges, and the game is
a potential game whose potential is the sum of edge potentials.  The
mixing-time of the logit dynamics for these games is the subject of
Section 5 of the paper (arbitrary graphs via the cutwidth, the clique, and
the ring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from .potential import ExplicitPotentialGame
from .space import ProfileSpace

__all__ = [
    "CoordinationParams",
    "basic_coordination_payoffs",
    "TwoPlayerCoordinationGame",
    "GraphicalCoordinationGame",
]


@dataclass(frozen=True)
class CoordinationParams:
    """Payoff parameters ``(a, b, c, d)`` of the basic coordination game.

    The derived quantities ``delta0 = a - d`` and ``delta1 = b - c`` are the
    only ones the paper's bounds depend on.
    """

    a: float
    b: float
    c: float = 0.0
    d: float = 0.0

    def __post_init__(self) -> None:
        if self.delta0 <= 0 or self.delta1 <= 0:
            raise ValueError(
                "coordination game requires delta0 = a - d > 0 and delta1 = b - c > 0; "
                f"got delta0={self.delta0}, delta1={self.delta1}"
            )

    @property
    def delta0(self) -> float:
        """Advantage of coordinating on strategy 0: ``a - d``."""
        return self.a - self.d

    @property
    def delta1(self) -> float:
        """Advantage of coordinating on strategy 1: ``b - c``."""
        return self.b - self.c

    @property
    def risk_dominant(self) -> int | None:
        """0 or 1 for the risk dominant equilibrium, ``None`` if there is none."""
        if self.delta0 > self.delta1:
            return 0
        if self.delta1 > self.delta0:
            return 1
        return None

    @classmethod
    def from_deltas(cls, delta0: float, delta1: float) -> "CoordinationParams":
        """Convenience constructor fixing ``c = d = 0``."""
        return cls(a=delta0, b=delta1, c=0.0, d=0.0)

    @classmethod
    def ising(cls, delta: float = 1.0) -> "CoordinationParams":
        """The symmetric (no risk dominant equilibrium) case ``delta0 = delta1``."""
        return cls.from_deltas(delta, delta)

    def edge_potential(self, s_u: int, s_v: int) -> float:
        """Edge potential ``phi`` of the basic game (paper, Section 5)."""
        if s_u == s_v == 0:
            return -self.delta0
        if s_u == s_v == 1:
            return -self.delta1
        return 0.0


def basic_coordination_payoffs(params: CoordinationParams) -> tuple[np.ndarray, np.ndarray]:
    """Row/column payoff matrices of the basic 2x2 coordination game."""
    row = np.array([[params.a, params.c], [params.d, params.b]], dtype=float)
    col = np.array([[params.a, params.d], [params.c, params.b]], dtype=float)
    return row, col


class TwoPlayerCoordinationGame(ExplicitPotentialGame):
    """The basic two-player coordination game of Equation (10).

    Backed by :class:`~repro.games.potential.ExplicitPotentialGame`, so the
    dense utility storage, the potential accessors and the batched
    ``utility_deviations_many`` fast path are all inherited.
    """

    def __init__(self, params: CoordinationParams):
        self.params = params
        space = ProfileSpace((2, 2))
        row, col = basic_coordination_payoffs(params)
        utilities = np.empty((2, 4), dtype=float)
        phi = np.empty(4, dtype=float)
        for x in range(4):
            s0, s1 = space.decode(x)
            utilities[0, x] = row[s0, s1]
            utilities[1, x] = col[s0, s1]
            phi[x] = params.edge_potential(s0, s1)
        super().__init__(space, utilities, phi)


class GraphicalCoordinationGame(ExplicitPotentialGame):
    """Graphical coordination game on an arbitrary social graph.

    Parameters
    ----------
    graph:
        The social graph; nodes are relabelled to ``0..n-1`` in sorted order
        and become the players.
    params:
        Payoffs of the basic coordination game played on every edge.

    Notes
    -----
    Utilities and the potential are computed *vectorised over the whole
    profile space*: for each edge ``(u, v)`` we extract the two strategy
    columns from the decoded profile array and accumulate the edge payoff /
    edge potential, so building a game on ``2^n`` profiles costs
    ``O(|E| * 2^n)`` numpy work with no per-profile Python loop.
    """

    def __init__(self, graph: nx.Graph, params: CoordinationParams):
        if graph.number_of_nodes() == 0:
            raise ValueError("the social graph must have at least one node")
        self.params = params
        nodes = sorted(graph.nodes())
        self._node_index = {node: i for i, node in enumerate(nodes)}
        self.graph = nx.relabel_nodes(graph, self._node_index, copy=True)
        n = self.graph.number_of_nodes()
        space = ProfileSpace((2,) * n)

        profiles = space.all_profiles()  # (|S|, n) of 0/1
        utilities = np.zeros((n, space.size), dtype=float)
        phi = np.zeros(space.size, dtype=float)
        row, _ = basic_coordination_payoffs(params)
        for u, v in self.graph.edges():
            su = profiles[:, u]
            sv = profiles[:, v]
            # payoff of the basic game for each endpoint, for every profile
            utilities[u] += row[su, sv]
            utilities[v] += row[sv, su]
            both0 = (su == 0) & (sv == 0)
            both1 = (su == 1) & (sv == 1)
            phi -= params.delta0 * both0 + params.delta1 * both1
        super().__init__(space, utilities, phi)

    # -- paper-specific structure -----------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of edges of the social graph."""
        return self.graph.number_of_edges()

    def consensus_profiles(self) -> tuple[int, int]:
        """Indices of the all-0 and all-1 profiles (the two consensus PNE)."""
        n = self.num_players
        return self.space.encode((0,) * n), self.space.encode((1,) * n)

    def risk_dominant_profile(self) -> int | None:
        """Index of the risk dominant consensus profile, if any."""
        rd = self.params.risk_dominant
        if rd is None:
            return None
        all0, all1 = self.consensus_profiles()
        return all0 if rd == 0 else all1

    def potential_by_ones_count(self) -> np.ndarray | None:
        """Potential as a function of ``k`` = number of players on strategy 1.

        Only meaningful when the social graph is a clique, where the
        potential depends on the profile only through ``k`` (Section 5.2):
        ``Phi = -[ C(n-k, 2) * delta0 + C(k, 2) * delta1 ]``.  Returns
        ``None`` for non-complete graphs.
        """
        n = self.num_players
        if self.graph.number_of_edges() != n * (n - 1) // 2:
            return None
        k = np.arange(n + 1, dtype=float)
        return -(
            (n - k) * (n - k - 1) / 2.0 * self.params.delta0
            + k * (k - 1) / 2.0 * self.params.delta1
        )


def _as_edge_list(edges: Iterable[Sequence[int]]) -> nx.Graph:
    g = nx.Graph()
    g.add_edges_from(edges)
    return g
