"""Games with dominant strategies (Section 4 of the paper).

A strategy ``s`` of player ``i`` is *dominant* if it maximises her utility
against every strategy sub-profile of the opponents.  A *dominant profile*
is a profile in which every player plays a dominant strategy.  Theorem 4.2
shows that for such games the mixing time of the logit dynamics is
``O(m^n n log n)`` — crucially *independent of beta* — and Theorem 4.3
exhibits a matching family whose mixing time is ``Omega(m^{n-1})``.

This module provides:

* :func:`has_dominant_profile` / :func:`dominant_strategies` — detection on
  arbitrary games;
* :class:`AnonymousDominantGame` — the Theorem 4.3 construction
  (``u_i(x) = 0`` if ``x = 0`` and ``-1`` otherwise), which is
  simultaneously a potential game and a dominant-strategy game;
* :func:`random_dominant_game` — a generator of random games that are
  guaranteed to have a dominant profile, used to fuzz Theorem 4.2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Game, TableGame
from .potential import PotentialGame
from .space import ProfileSpace

__all__ = [
    "dominant_strategies",
    "has_dominant_profile",
    "dominant_profile",
    "AnonymousDominantGame",
    "random_dominant_game",
]


def dominant_strategies(game: Game, player: int, tol: float = 1e-12) -> list[int]:
    """Strategies of ``player`` that are (weakly) dominant.

    A strategy ``s`` is weakly dominant if ``u_i(s, x_-i) >= u_i(s', x_-i)``
    for every alternative ``s'`` and every opponent sub-profile ``x_-i``.
    The check enumerates the opponents' sub-profiles through the full
    profile space, so it is exhaustive but only suitable for tabulated games.
    """
    space = game.space
    m = space.num_strategies[player]
    utils = game.utility_matrix(player)
    devs = space.deviation_matrix(player)  # (|S|, m)
    # Row x of `by_strategy` holds u_i over player i's strategies with the
    # opponents fixed as in x; rows with the same opponents repeat m times,
    # which does not affect the domination check.
    by_strategy = utils[devs]
    best = np.max(by_strategy, axis=1)
    dominant = []
    for s in range(m):
        if np.all(by_strategy[:, s] >= best - tol):
            dominant.append(s)
    return dominant


def dominant_profile(game: Game, tol: float = 1e-12) -> tuple[int, ...] | None:
    """A dominant profile of the game, or ``None`` if some player lacks one."""
    choice = []
    for player in range(game.num_players):
        doms = dominant_strategies(game, player, tol=tol)
        if not doms:
            return None
        choice.append(doms[0])
    return tuple(choice)


def has_dominant_profile(game: Game, tol: float = 1e-12) -> bool:
    """Whether every player has a (weakly) dominant strategy."""
    return dominant_profile(game, tol=tol) is not None


class AnonymousDominantGame(TableGame, PotentialGame):
    """The Theorem 4.3 lower-bound game.

    ``n`` players, strategies ``{0, ..., m-1}``, and every player has
    utility ``0`` at the all-zero profile and ``-1`` everywhere else.
    Strategy 0 is dominant for everyone, the game is a potential game with
    ``Phi(x) = -u_i(x)`` (i.e. ``Phi(0) = 0`` and ``Phi(x) = 1`` otherwise),
    and the bottleneck argument of Theorem 4.3 gives
    ``t_mix = Omega((m^n - 1)/(m - 1))`` for ``beta > log(m^n - 1)``.
    """

    def __init__(self, num_players: int, num_strategies_per_player: int = 2):
        if num_players < 1:
            raise ValueError("need at least one player")
        if num_strategies_per_player < 2:
            raise ValueError("need at least two strategies per player")
        shape = (num_strategies_per_player,) * num_players
        space = ProfileSpace(shape)
        phi = np.ones(space.size, dtype=float)
        phi[space.encode((0,) * num_players)] = 0.0
        utilities = np.tile(-phi, (num_players, 1))
        TableGame.__init__(self, shape, utilities)
        self._phi = phi

    def potential_vector(self) -> np.ndarray:
        return self._phi.copy()

    def mixing_time_lower_bound(self) -> float:
        """The ``(m^n - 1)/(4(m - 1))`` lower bound from Theorem 4.3."""
        m = self.max_strategies
        n = self.num_players
        return (m**n - 1) / (4.0 * (m - 1))


def random_dominant_game(
    num_strategies: Sequence[int],
    rng: np.random.Generator | None = None,
    advantage: float = 1.0,
) -> TableGame:
    """A random game in which strategy 0 is strictly dominant for everyone.

    Utilities are i.i.d. uniform on ``[0, 1)``; then for every player the
    utility of playing strategy 0 is lifted by ``advantage`` above the
    maximum utility of her alternatives against the same opponents, which
    makes 0 strictly dominant while keeping the rest of the game arbitrary.
    """
    rng = np.random.default_rng() if rng is None else rng
    space = ProfileSpace(num_strategies)
    utilities = rng.uniform(0.0, 1.0, size=(space.num_players, space.size))
    for player in range(space.num_players):
        devs = space.deviation_matrix(player)
        others = utilities[player][devs[:, 1:]]
        best_other = np.max(others, axis=1)
        zero_profiles = devs[:, 0]
        # lift u_i(0, x_-i) above every alternative for the same opponents
        utilities[player, zero_profiles] = np.maximum(
            utilities[player, zero_profiles], best_other + advantage
        )
    return TableGame(num_strategies, utilities)
