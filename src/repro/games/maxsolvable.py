"""Max-solvable games (Nisan, Schapira, Zohar — cited at the end of Section 4).

A game is *max-solvable* if iteratively deleting, for some player, every
strategy that is never a strict-best response to any remaining opponents'
sub-profile eventually leaves a single profile.  Games with dominant
strategies are the special case in which every player can be reduced in one
round.  The paper remarks (without proof) that the Theorem 4.2 technique
extends to max-solvable games with a mixing-time bound independent of beta.

This module provides

* :func:`never_best_response_strategies` — the per-player deletion step;
* :func:`max_solve` — the full iterated elimination procedure, returning the
  elimination order and the surviving strategy sets;
* :func:`is_max_solvable` — whether the procedure terminates with a single
  profile;
* :class:`MaxSolvableResult` — a record of the elimination run.

The elimination procedure used here deletes strategies that are never a
*weak* best response (never attain the maximum utility against any
surviving opponents' sub-profile), which keeps the procedure well-defined on
games with ties; on generic games the two notions coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from .base import Game

__all__ = [
    "never_best_response_strategies",
    "max_solve",
    "is_max_solvable",
    "MaxSolvableResult",
]


def _opponent_subprofiles(surviving: list[list[int]], player: int):
    """Iterate over all opponents' sub-profiles drawn from the surviving sets."""
    others = [surviving[j] for j in range(len(surviving)) if j != player]
    for combo in product(*others):
        full = list(combo)
        full.insert(player, 0)  # placeholder for the player's own entry
        yield full


def never_best_response_strategies(
    game: Game, surviving: list[list[int]], player: int, tol: float = 1e-12
) -> list[int]:
    """Strategies of ``player`` (among her surviving ones) that are never a best response.

    A strategy survives this check if there exists at least one surviving
    opponents' sub-profile against which it attains the maximum utility
    among the player's surviving strategies.
    """
    mine = surviving[player]
    if len(mine) <= 1:
        return []
    ever_best = {s: False for s in mine}
    space = game.space
    for template in _opponent_subprofiles(surviving, player):
        utilities = []
        for s in mine:
            template[player] = s
            utilities.append(game.utility(player, space.encode(template)))
        best = max(utilities)
        for s, u in zip(mine, utilities):
            if u >= best - tol:
                ever_best[s] = True
    return [s for s in mine if not ever_best[s]]


@dataclass(frozen=True)
class MaxSolvableResult:
    """Outcome of the iterated elimination of never-best-response strategies."""

    solvable: bool
    surviving: tuple[tuple[int, ...], ...]
    elimination_order: tuple[tuple[int, int], ...]  # (player, strategy) pairs

    @property
    def solution_profile(self) -> tuple[int, ...] | None:
        """The single surviving profile, if the game is max-solvable."""
        if not self.solvable:
            return None
        return tuple(s[0] for s in self.surviving)


def max_solve(game: Game, tol: float = 1e-12, max_rounds: int | None = None) -> MaxSolvableResult:
    """Run iterated elimination of never-best-response strategies to a fixed point."""
    surviving: list[list[int]] = [list(range(m)) for m in game.num_strategies]
    eliminated: list[tuple[int, int]] = []
    rounds = 0
    limit = max_rounds if max_rounds is not None else sum(game.num_strategies) + 1
    while rounds < limit:
        rounds += 1
        progress = False
        for player in range(game.num_players):
            removable = never_best_response_strategies(game, surviving, player, tol=tol)
            if removable:
                progress = True
                for s in removable:
                    surviving[player].remove(s)
                    eliminated.append((player, s))
        if not progress:
            break
    solvable = all(len(s) == 1 for s in surviving)
    return MaxSolvableResult(
        solvable=solvable,
        surviving=tuple(tuple(s) for s in surviving),
        elimination_order=tuple(eliminated),
    )


def is_max_solvable(game: Game, tol: float = 1e-12) -> bool:
    """Whether iterated elimination reduces the game to a single profile."""
    return max_solve(game, tol=tol).solvable
