"""Local-interaction games: graph-structured games that scale past |S|.

The follow-up work the reproduction cites — "Logit Dynamics with Concurrent
Updates for Local-Interaction Games" (Auletta et al.) and "Metastability of
Asymptotically Well-Behaved Potential Games" (Ferraioli–Ventre) — studies
logit dynamics on games whose players sit on a graph and interact only with
their neighbors.  Those are exactly the games whose profile spaces explode
(``m**n`` profiles for ``n`` players) while their *utilities* stay cheap:
a player's payoff is a sum of ``deg(i)`` per-edge terms, so a single-site
update touches ``O(deg)`` numbers no matter how large ``|S|`` is.

:class:`LocalInteractionGame` makes that structure first-class:

* every player has the same ``m`` strategies; every edge ``(u, v)`` of the
  social graph carries an ``(m, m)`` *payoff matrix* ``M_e``, read by both
  endpoints with their **own** strategy as the row index — endpoint ``u``
  earns ``M_e[s_u, s_v]`` and endpoint ``v`` earns ``M_e[s_v, s_u]`` (the
  symmetric-role convention of
  :class:`~repro.games.coordination.GraphicalCoordinationGame`);
* an optional per-player *external field* adds ``field[i, s_i]`` to player
  ``i``'s utility (the Ising magnetic field, a strategy bias, ...);
* the hot engine call :meth:`utility_deviations_profiles` computes
  deviation payoffs **from neighbor strategy columns only** — no profile
  index is encoded or decoded anywhere, so the game composes with the
  engine's matrix state backend at ``n`` in the thousands;
* when the per-edge games admit exact potentials the whole game is an
  exact potential game with ``Phi(x) = sum_e P_e[s_u, s_v] - sum_i
  field[i, s_i]`` — the potential is *derived automatically* whenever it
  exists (and can be supplied explicitly to pin a particular additive
  normalisation, e.g. the Ising Hamiltonian); dense accessors
  (:meth:`potential_vector`, :meth:`utility_matrix`) stay available below
  the dense cap so every small-space tool keeps working.

:class:`~repro.games.ising.IsingGame` is the canonical subclass.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import networkx as nx
import numpy as np

from .coordination import CoordinationParams
from .potential import PotentialGame
from .space import ProfileSpace

__all__ = ["LocalInteractionGame", "derive_edge_potential"]


def derive_edge_potential(payoff: np.ndarray, tol: float = 1e-9) -> np.ndarray | None:
    """Exact potential of the symmetric-role two-player game, or ``None``.

    ``payoff`` is the ``(m, m)`` matrix both endpoints read with their own
    strategy as the row.  The candidate is integrated along deviation paths
    from ``(0, 0)`` (the Monderer–Shapley construction specialised to two
    players)::

        P[s, t] = M[0, 0] - M[t, 0] + M[0, t] - M[s, t]

    then verified against Equation (1) of the paper for *both* endpoints —
    which forces ``P`` to be symmetric.  Returns the normalised potential
    (``P[0, 0] = 0``) or ``None`` when the edge game has no exact
    potential.
    """
    M = np.asarray(payoff, dtype=float)
    P = M[0, 0] - M[:, 0][np.newaxis, :] + M[0, :][np.newaxis, :] - M
    if _edge_potential_consistent(M, P, tol=tol):
        return P
    return None


def _edge_potential_consistent(
    payoff: np.ndarray, potential: np.ndarray, tol: float = 1e-9
) -> bool:
    """Equation (1) on one edge, for both endpoints: ``M[a,t] - M[b,t] =
    P[b,t] - P[a,t]`` for all ``a, b, t`` and ``P`` symmetric."""
    M = np.asarray(payoff, dtype=float)
    P = np.asarray(potential, dtype=float)
    if not np.allclose(P, P.T, atol=tol):
        return False
    du = M[:, None, :] - M[None, :, :]  # (a, b, t) -> M[a,t] - M[b,t]
    dp = P[None, :, :] - P[:, None, :]  # (a, b, t) -> P[b,t] - P[a,t]
    return bool(np.allclose(du, dp, atol=tol))


#: rtol of np.isclose — the stack helpers below replicate np.allclose
#: elementwise so that their per-edge verdicts match the scalar helpers
_ISCLOSE_RTOL = 1e-5


def _derive_edge_potential_stack(payoffs: np.ndarray) -> np.ndarray:
    """:func:`derive_edge_potential`'s candidate for a whole ``(E, m, m)`` stack.

    Same path integration, same float-op order per edge — one vectorised
    pass instead of an ``O(E)`` Python loop, which is what keeps
    construction of million-edge games in milliseconds.  Candidates are
    *not* verified here; pair with :func:`_edge_potential_consistent_stack`.
    """
    M = payoffs
    return M[:, 0, 0][:, None, None] - M[:, :, 0][:, None, :] + M[:, 0, :][:, None, :] - M


def _edge_potential_consistent_stack(
    payoffs: np.ndarray, potentials: np.ndarray, tol: float = 1e-9
) -> np.ndarray:
    """Per-edge Equation (1) verdicts for whole stacks: an ``(E,)`` bool array."""
    M = np.asarray(payoffs, dtype=float)
    P = np.asarray(potentials, dtype=float)

    def close(a, b):
        return np.abs(a - b) <= tol + _ISCLOSE_RTOL * np.abs(b)

    Pt = P.transpose(0, 2, 1)
    sym = np.all(close(P, Pt), axis=(1, 2))
    du = M[:, :, None, :] - M[:, None, :, :]  # (e, a, b, t) -> M[a,t] - M[b,t]
    dp = P[:, None, :, :] - P[:, :, None, :]  # (e, a, b, t) -> P[b,t] - P[a,t]
    return sym & np.all(close(du, dp), axis=(1, 2, 3))


class _RowwiseScratch:
    """Reusable buffers for one row-wise deviation batch of ``k`` movers.

    Steady-state stepping calls :meth:`LocalInteractionGame.
    utility_deviations_rowwise` once per step with the same batch size, so
    every intermediate of the padded gather lives here and is reused —
    the hot path allocates nothing after the first step.  Buffers are laid
    out slot-major (``(D, k)``: padding slot first) so that the per-slot
    gathers are contiguous writes and the final per-strategy reduction runs
    over the leading axis — numpy accumulates leading-axis reductions
    sequentially, which keeps the summation order (and hence the floats)
    identical to the pre-scratch implementation for every degree.
    """

    def __init__(self, k: int, D: int, n: int, m: int):
        self.k = k
        shape = (D, k)
        self.nbr = np.empty(shape, dtype=np.int64)
        self.eid = np.empty(shape, dtype=np.int64)
        self.base = np.empty(shape, dtype=np.int64)
        self.flat = np.empty(shape, dtype=np.int64)
        self.strat = np.empty(shape, dtype=np.int64)
        self.mask = np.empty(shape, dtype=float)
        self.pick = np.empty(shape, dtype=float)
        self.util = np.empty((k, m), dtype=float)
        self.field = np.empty((k, m), dtype=float)
        #: row start of each profile row in the flattened (k, n) matrix
        self.row_offsets = (np.arange(k, dtype=np.int64) * n)[None, :]
        self._strat_raw: dict[np.dtype, np.ndarray] = {}

    def strat_raw(self, dtype: np.dtype) -> np.ndarray:
        """Gather buffer matching the profile matrix dtype (int8/int16/...)."""
        buf = self._strat_raw.get(dtype)
        if buf is None:
            buf = np.empty(self.nbr.shape, dtype=dtype)
            self._strat_raw[dtype] = buf
        return buf


class LocalInteractionGame(PotentialGame):
    """Game on a social graph with per-edge payoff matrices.

    Parameters
    ----------
    graph:
        The social graph; nodes are relabelled to ``0..n-1`` in sorted
        order and become the players.
    edge_payoffs:
        Either one ``(m, m)`` payoff matrix shared by every edge, or a
        mapping from edges (either orientation) to per-edge ``(m, m)``
        matrices.  Endpoint ``u`` of edge ``(u, v)`` earns
        ``M_e[s_u, s_v]``; endpoint ``v`` earns ``M_e[s_v, s_u]``.
    edge_potentials:
        Optional explicit per-edge potential matrices in the same
        one-or-mapping format (useful to pin an additive normalisation,
        e.g. the Ising Hamiltonian).  Validated against Equation (1); when
        omitted, exact potentials are derived automatically whenever they
        exist (normalised to ``P_e[0, 0] = 0``), and the game simply has no
        potential otherwise (the potential accessors then raise).
    external_field:
        Optional per-strategy utility bonus: an ``(m,)`` vector applied to
        every player or an ``(n, m)`` per-player array.  Contributes
        ``field[i, s_i]`` to player ``i``'s utility and ``-field[i, s_i]``
        to the potential.
    num_strategies:
        Number of strategies per player (shared), default 2; must match
        the payoff-matrix shapes.
    """

    def __init__(
        self,
        graph: nx.Graph,
        edge_payoffs: np.ndarray | Mapping[tuple[int, int], np.ndarray],
        edge_potentials: np.ndarray | Mapping[tuple[int, int], np.ndarray] | None = None,
        external_field: np.ndarray | Sequence[float] | None = None,
        num_strategies: int = 2,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("the social graph must have at least one node")
        m = int(num_strategies)
        if m < 2:
            raise ValueError("local-interaction games need at least two strategies")
        nodes = sorted(graph.nodes())
        self._node_index = {node: i for i, node in enumerate(nodes)}
        self.graph = nx.relabel_nodes(graph, self._node_index, copy=True)
        n = self.graph.number_of_nodes()
        self.space = ProfileSpace((m,) * n)

        if self.graph.number_of_edges():
            edges = np.asarray(self.graph.edges(), dtype=np.int64)
        else:
            edges = np.zeros((0, 2), dtype=np.int64)
        self._edge_u = np.ascontiguousarray(edges[:, 0])
        self._edge_v = np.ascontiguousarray(edges[:, 1])
        self._edge_payoffs = self._edge_matrix_array(edge_payoffs, edges, m, "edge_payoffs")

        if edge_potentials is not None:
            pots = self._edge_matrix_array(edge_potentials, edges, m, "edge_potentials")
            ok = _edge_potential_consistent_stack(self._edge_payoffs, pots)
            if not ok.all():
                bad = int(np.flatnonzero(~ok)[0])
                raise ValueError(
                    f"edge_potentials for edge "
                    f"{(int(edges[bad, 0]), int(edges[bad, 1]))} do not satisfy "
                    f"Equation (1) against the edge payoffs (or are not "
                    f"symmetric)"
                )
            self._edge_potentials: np.ndarray | None = pots
        else:
            derived = _derive_edge_potential_stack(self._edge_payoffs)
            ok = _edge_potential_consistent_stack(self._edge_payoffs, derived)
            self._edge_potentials = derived if bool(ok.all()) else None

        field = np.zeros((n, m), dtype=float) if external_field is None else (
            np.asarray(external_field, dtype=float)
        )
        if field.ndim == 1:
            if field.shape != (m,):
                raise ValueError(f"external_field must have shape ({m},) or ({n}, {m})")
            field = np.tile(field, (n, 1))
        elif field.shape != (n, m):
            raise ValueError(f"external_field must have shape ({m},) or ({n}, {m})")
        self._field = field

        # CSR adjacency: per player, the neighbor ids and the row of the
        # edge-matrix stack to read (the symmetric-role convention means
        # both endpoints read the same matrix, own strategy as the row).
        # Built fully vectorised — graphs with 10^6 nodes construct in
        # milliseconds, not in a per-edge Python loop.  The stable lexsort
        # (endpoint first, edge id second) reproduces the cursor-fill order
        # exactly: within a player, CSR entries are ordered by edge id.
        E = len(edges)
        eids = np.concatenate([np.arange(E, dtype=np.int64)] * 2)
        endpoints = np.concatenate([self._edge_u, self._edge_v])
        partners = np.concatenate([self._edge_v, self._edge_u])
        degrees = np.bincount(endpoints, minlength=n)
        self._nbr_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(degrees)]
        )
        total = int(self._nbr_offsets[-1])
        order = np.lexsort((eids, endpoints))
        self._nbr = partners[order]
        self._nbr_edge = eids[order]
        # Padded (dense) adjacency for the row-wise engine fast path: row i
        # lists player i's neighbors / edge rows padded to the max degree,
        # with a 0/1 mask.  Padding entries point at node 0 / edge 0 and are
        # masked out after the gather.
        max_deg = int(degrees.max()) if n else 0
        D = max(max_deg, 1)
        self._pad_nbr = np.zeros((n, D), dtype=np.int64)
        self._pad_edge = np.zeros((n, D), dtype=np.int64)
        self._pad_mask = np.zeros((n, D), dtype=float)
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        pos = np.arange(total, dtype=np.int64) - np.repeat(
            self._nbr_offsets[:-1], degrees
        )
        self._pad_nbr[rows, pos] = self._nbr
        self._pad_edge[rows, pos] = self._nbr_edge
        self._pad_mask[rows, pos] = 1.0
        # Transposed (D, n) copies: the row-wise scratch path gathers per
        # padding slot, so slot-major layout keeps every np.take contiguous.
        self._pad_nbr_t = np.ascontiguousarray(self._pad_nbr.T)
        self._pad_edge_t = np.ascontiguousarray(self._pad_edge.T)
        self._pad_mask_t = np.ascontiguousarray(self._pad_mask.T)
        self._edge_payoffs_flat = self._edge_payoffs.reshape(-1)
        self._rowwise_scratch: _RowwiseScratch | None = None
        self._potential_cache: np.ndarray | None = None

    @staticmethod
    def _edge_matrix_array(
        spec, edges: np.ndarray, m: int, what: str
    ) -> np.ndarray:
        """Materialise the ``(E, m, m)`` per-edge matrix stack from a spec."""
        out = np.empty((len(edges), m, m), dtype=float)
        if isinstance(spec, Mapping):
            for e, (u, v) in enumerate(edges):
                u, v = int(u), int(v)
                if (u, v) in spec:
                    mat = spec[(u, v)]
                elif (v, u) in spec:
                    mat = spec[(v, u)]
                else:
                    raise ValueError(f"{what} mapping is missing edge {(u, v)}")
                mat = np.asarray(mat, dtype=float)
                if mat.shape != (m, m):
                    raise ValueError(
                        f"{what} for edge {(u, v)} must have shape ({m}, {m}), "
                        f"got {mat.shape}"
                    )
                out[e] = mat
        else:
            mat = np.asarray(spec, dtype=float)
            if mat.shape != (m, m):
                raise ValueError(f"{what} must have shape ({m}, {m}), got {mat.shape}")
            out[:] = mat
        if not np.all(np.isfinite(out)):
            raise ValueError(f"{what} must be finite")
        return out

    # -- constructors ------------------------------------------------------

    @classmethod
    def coordination(
        cls, graph: nx.Graph, params: CoordinationParams
    ) -> "LocalInteractionGame":
        """Graphical coordination game as a local-interaction game.

        Same utilities and same potential as
        :class:`~repro.games.coordination.GraphicalCoordinationGame` (which
        tabulates the whole profile space), but index-free — usable at any
        ``n``.
        """
        payoff = np.array(
            [[params.a, params.c], [params.d, params.b]], dtype=float
        )
        potential = np.array(
            [
                [params.edge_potential(0, 0), params.edge_potential(0, 1)],
                [params.edge_potential(1, 0), params.edge_potential(1, 1)],
            ],
            dtype=float,
        )
        game = cls(graph, payoff, edge_potentials=potential)
        game.params = params
        return game

    # -- graph structure ---------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of edges of the social graph."""
        return int(self._edge_u.size)

    def csr_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The game's CSR local structure, for fused backend kernels.

        Returns ``(offsets, neighbors, neighbor_edge, edge_payoffs, field)``:
        player ``i``'s neighbors are ``neighbors[offsets[i]:offsets[i+1]]``,
        each contributing ``edge_payoffs[neighbor_edge[d], s, t]`` to the
        deviation utility of strategy ``s`` when the neighbor plays ``t``,
        plus the per-player external field ``field[i, s]``.  This accessor
        *is* the contract that makes a game fusable by the engine's array
        backends (:mod:`repro.engine.backend`); the arrays are the live
        internals, not copies — callers must treat them as read-only.
        """
        return (
            self._nbr_offsets,
            self._nbr,
            self._nbr_edge,
            self._edge_payoffs,
            self._field,
        )

    def neighbors_of(self, player: int) -> np.ndarray:
        """Neighbor player ids of ``player`` (read-only view)."""
        self.space._check_player(player)
        view = self._nbr[self._nbr_offsets[player] : self._nbr_offsets[player + 1]]
        view = view.view()
        view.flags.writeable = False
        return view

    @property
    def has_potential(self) -> bool:
        """Whether the edge payoffs admit an exact potential."""
        return self._edge_potentials is not None

    def _require_potential(self) -> np.ndarray:
        if self._edge_potentials is None:
            raise ValueError(
                "the edge payoff matrices do not admit an exact potential "
                "(Equation 1 has no solution on at least one edge); this "
                "local-interaction game is not a potential game"
            )
        return self._edge_potentials

    # -- utilities (index-free hot path) -----------------------------------

    def utility_deviations_profiles(
        self, player: int, profiles: np.ndarray
    ) -> np.ndarray:
        """``(k, m)`` deviation utilities from ``(k, n)`` profile rows.

        Reads only the neighbor columns of ``profiles`` — ``O(deg(player))``
        work per row, no profile index anywhere — which is what lets the
        engine's matrix state backend run this game at ``n`` in the
        thousands.
        """
        self.space._check_player(player)
        prof = np.asarray(profiles)
        if prof.ndim != 2 or prof.shape[1] != self.space.num_players:
            raise ValueError(
                f"profiles must have shape (k, {self.space.num_players}), "
                f"got {prof.shape}"
            )
        k = prof.shape[0]
        m = self.space.num_strategies[player]
        lo, hi = self._nbr_offsets[player], self._nbr_offsets[player + 1]
        utilities = np.tile(self._field[player], (k, 1))
        if hi > lo:
            nbrs = self._nbr[lo:hi]
            mats = self._edge_payoffs[self._nbr_edge[lo:hi]]  # (deg, m, m)
            nb_strats = prof[:, nbrs].astype(np.int64, copy=False)  # (k, deg)
            # picked[j, d, s] = mats[d, s, nb_strats[j, d]]
            picked = mats[np.arange(hi - lo), :, nb_strats]  # (k, deg, m)
            utilities += picked.sum(axis=1)
        return utilities

    def utility_deviations_rowwise(
        self, players: np.ndarray, profiles: np.ndarray
    ) -> np.ndarray:
        """``(k, m)`` deviation utilities, a *different mover per row*.

        Row ``j`` is ``(u_{players[j]}(s, x_-i))_s`` at the profile
        ``profiles[j]`` — the fully vectorised form of
        :meth:`utility_deviations_profiles` for the sequential kernels,
        where every replica revises its own uniformly drawn player.  One
        padded gather over ``(k, max_deg)`` neighbor slots replaces ``k``
        per-player groups, which is what keeps the engine fast when the
        number of replicas is comparable to ``n`` (distinct movers almost
        everywhere).  Summation order per row matches the CSR order of
        :meth:`utility_deviations_profiles` (padding contributes exact
        zeros at the tail), so both paths produce identical floats.

        Only games with a uniform strategy count per player can offer this
        (all rows share the ``m`` axis) — which local-interaction games do
        by construction.

        The returned ``(k, m)`` array is a reusable per-game scratch buffer
        (:class:`_RowwiseScratch`) — steady-state stepping is allocation-
        free, and the values are only valid until the next call; copy them
        to keep them across steps.
        """
        p = np.asarray(players, dtype=np.int64)
        prof = np.asarray(profiles)
        k = p.shape[0]
        n = self.space.num_players
        if prof.shape != (k, n):
            raise ValueError(
                f"profiles must have shape ({k}, {n}), got {prof.shape}"
            )
        if self.num_edges == 0:
            # nothing to gather (padding would index an empty edge stack)
            return self._field[p]
        m = int(self.space.num_strategies[0])
        s = self._rowwise_scratch
        if s is None or s.k != k:
            s = self._rowwise_scratch = _RowwiseScratch(
                k, self._pad_nbr.shape[1], n, m
            )
        # slot-major gathers of the movers' padded adjacency rows
        np.take(self._pad_nbr_t, p, axis=1, out=s.nbr)
        np.take(self._pad_edge_t, p, axis=1, out=s.eid)
        np.take(self._pad_mask_t, p, axis=1, out=s.mask)
        # neighbor strategies: strat[d, j] = prof[j, nbr[d, j]], gathered
        # through the flattened profile matrix (upcast through a dtype-
        # matched raw buffer when the engine hands int8/int16 rows)
        np.add(s.nbr, s.row_offsets, out=s.flat)
        flat_prof = prof.ravel()
        if prof.dtype == np.int64:
            np.take(flat_prof, s.flat, out=s.strat)
        else:
            raw = s.strat_raw(prof.dtype)
            np.take(flat_prof, s.flat, out=raw)
            np.copyto(s.strat, raw)
        # flat payoff index of (edge, s, neighbor strategy) is
        # e*m*m + s*m + t; base holds the s = 0 plane
        np.multiply(s.eid, m * m, out=s.base)
        np.add(s.base, s.strat, out=s.base)
        for strategy in range(m):
            # pick[d, j] = edge_payoffs[eid[d, j], strategy, strat[d, j]]
            np.add(s.base, strategy * m, out=s.flat)
            np.take(self._edge_payoffs_flat, s.flat, out=s.pick)
            np.multiply(s.pick, s.mask, out=s.pick)
            np.sum(s.pick, axis=0, out=s.util[:, strategy])
        np.take(self._field, p, axis=0, out=s.field)
        np.add(s.util, s.field, out=s.util)
        # the returned buffer is reused by the next call — callers that keep
        # utilities across steps must copy (the engine consumes them
        # immediately into softmax rows, so the hot path never does)
        return s.util

    def utilities_of_profiles(self, player: int, profiles: np.ndarray) -> np.ndarray:
        """``(k,)`` realised utilities of ``player`` at ``(k, n)`` profile rows."""
        prof = np.asarray(profiles)
        devs = self.utility_deviations_profiles(player, prof)
        own = prof[:, player].astype(np.int64, copy=False)
        return devs[np.arange(prof.shape[0]), own]

    # -- Game interface ----------------------------------------------------

    def utility(self, player: int, profile_index: int) -> float:
        # scalar decode is pure-Python arithmetic: works past int64
        profile = np.asarray(self.space.decode(profile_index), dtype=np.int64)
        return float(self.utilities_of_profiles(player, profile[None, :])[0])

    def utility_deviations(self, player: int, profile_index: int) -> np.ndarray:
        profile = np.asarray(self.space.decode(profile_index), dtype=np.int64)
        return self.utility_deviations_profiles(player, profile[None, :])[0]

    def utility_deviations_many(
        self, player: int, profile_indices: np.ndarray
    ) -> np.ndarray:
        profiles = self.space.decode_many(np.asarray(profile_indices, dtype=np.int64))
        return self.utility_deviations_profiles(player, profiles)

    def utility_profile_many(self, profile_indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(profile_indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, self.num_players), dtype=float)
        profiles = self.space.decode_many(idx)
        return np.stack(
            [
                self.utilities_of_profiles(player, profiles)
                for player in range(self.num_players)
            ],
            axis=1,
        )

    def utility_matrix(self, player: int) -> np.ndarray:
        # dense accessor for the small-space exact machinery; all_profiles
        # enforces the dense cap with a clear error
        return self.utilities_of_profiles(player, self.space.all_profiles())

    # -- potential ---------------------------------------------------------

    def potential_of_profiles(self, profiles: np.ndarray) -> np.ndarray:
        """``(k,)`` potential values at ``(k, n)`` profile rows, index-free.

        ``Phi(x) = sum_e P_e[s_u, s_v] - sum_i field[i, s_i]`` — the
        matrix-free counterpart of :meth:`potential_vector`, usable at any
        ``n`` (and the building block for Gibbs-weight ratios on large
        spaces).
        """
        pots = self._require_potential()
        prof = np.asarray(profiles)
        if prof.ndim != 2 or prof.shape[1] != self.space.num_players:
            raise ValueError(
                f"profiles must have shape (k, {self.space.num_players}), "
                f"got {prof.shape}"
            )
        prof64 = prof.astype(np.int64, copy=False)
        phi = np.zeros(prof.shape[0], dtype=float)
        if self.num_edges:
            su = prof64[:, self._edge_u]  # (k, E)
            sv = prof64[:, self._edge_v]  # (k, E)
            phi += pots[np.arange(self.num_edges), su, sv].sum(axis=1)
        phi -= self._field[np.arange(self.num_players)[None, :], prof64].sum(axis=1)
        return phi

    def potential(self, profile_index: int) -> float:
        profile = np.asarray(self.space.decode(profile_index), dtype=np.int64)
        return float(self.potential_of_profiles(profile[None, :])[0])

    def potential_vector(self) -> np.ndarray:
        if self._potential_cache is None:
            self._require_potential()
            self._potential_cache = self.potential_of_profiles(
                self.space.all_profiles()
            )
        return self._potential_cache.copy()

    def store_spec(self) -> dict:
        """Content identity for :func:`repro.parallel.describe`.

        Class, strategy count, the full edge list and the per-edge payoff
        / potential / field content (digested when large) — so two
        local-interaction games hash identically iff they play the same
        game on the same graph.  In particular an
        :class:`~repro.games.ising.IsingGame`'s coupling, field and
        topology are all captured through the payoff matrices and edge
        arrays; the cosmetic ``__repr__`` (which only shows sizes) is
        deliberately not used.
        """
        return {
            "class": type(self).__qualname__,
            "num_players": self.num_players,
            "num_strategies": int(self.space.num_strategies[0]),
            "edges": np.stack([self._edge_u, self._edge_v], axis=1),
            "edge_payoffs": self._edge_payoffs,
            "edge_potentials": self._edge_potentials,
            "external_field": self._field,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(players={self.num_players}, "
            f"strategies={self.space.num_strategies[0]}, edges={self.num_edges})"
        )
