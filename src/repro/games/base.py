"""Strategic-game base classes.

The paper works with finite strategic games ``G = (N, (S_i), (u_i))``: a
finite set of players, a finite strategy set per player, and a utility
function per player mapping profiles to reals.  The classes here give the
package a uniform, array-oriented representation:

* :class:`Game` — the abstract interface every game implements.  The key
  method is :meth:`Game.utility_deviations`, which returns, for a profile
  ``x`` and a player ``i``, the vector ``(u_i(s, x_-i))_{s in S_i}``; this
  is exactly what the logit update rule (Equation 2 of the paper) needs.
* :class:`TableGame` — a dense normal-form game backed by per-player
  utility tensors, convenient for small examples and for random games.
* :class:`NormalFormGame` — alias of :class:`TableGame` with a
  two-player-friendly constructor.

All games expose a :class:`~repro.games.space.ProfileSpace` so downstream
code (transition matrices, stationary distributions, mixing measurement)
can operate on flat profile indices with vectorised numpy.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from .space import ProfileSpace

__all__ = [
    "Game",
    "TableGame",
    "NormalFormGame",
    "CallableGame",
    "random_game",
    "best_responses",
    "pure_nash_equilibria",
]


class Game(abc.ABC):
    """Abstract finite strategic game.

    Subclasses must provide :attr:`space` and :meth:`utility`.  The default
    implementations of the bulk methods (:meth:`utility_deviations`,
    :meth:`utility_matrix`) fall back to per-profile calls; performance
    sensitive subclasses override them with vectorised versions.
    """

    #: Profile space of the game (set by subclasses).
    space: ProfileSpace

    @property
    def num_players(self) -> int:
        """Number of players."""
        return self.space.num_players

    @property
    def num_strategies(self) -> tuple[int, ...]:
        """Tuple ``(m_1, ..., m_n)`` of per-player strategy counts."""
        return self.space.num_strategies

    @property
    def max_strategies(self) -> int:
        """``m`` — maximum number of strategies of any player."""
        return self.space.max_strategies

    # -- core interface ---------------------------------------------------

    @abc.abstractmethod
    def utility(self, player: int, profile_index: int) -> float:
        """Utility ``u_player(x)`` of the profile with the given index."""

    def utility_deviations(self, player: int, profile_index: int) -> np.ndarray:
        """Vector ``(u_player(s, x_-i))_s`` over the player's strategies."""
        devs = self.space.deviations(profile_index, player)
        return np.array([self.utility(player, int(d)) for d in devs], dtype=float)

    def utility_deviations_many(
        self, player: int, profile_indices: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`utility_deviations`: ``(k, m_player)`` utilities.

        Row ``j`` is ``(u_player(s, x_-i))_s`` for the profile
        ``profile_indices[j]``.  This is the hot call of the batched
        simulation engine (:mod:`repro.engine`): the generic fallback loops
        over the batch, performance-sensitive subclasses override it with a
        single vectorised gather.
        """
        idx = np.asarray(profile_indices, dtype=np.int64)
        m = self.space.num_strategies[player]
        if idx.size == 0:
            return np.empty((0, m), dtype=float)
        return np.stack(
            [self.utility_deviations(player, int(x)) for x in idx], axis=0
        )

    def utility_deviations_profiles(
        self, player: int, profiles: np.ndarray
    ) -> np.ndarray:
        """Deviation utilities from ``(k, n)`` strategy-profile rows.

        Row ``j`` is ``(u_player(s, x_-i))_s`` for the profile given by the
        strategy row ``profiles[j]`` — the index-free counterpart of
        :meth:`utility_deviations_many` and the hot call of the engine's
        matrix state backend.  The generic fallback encodes the rows to
        profile indices, which requires the space to fit in int64; games
        meant to run past that ceiling override this with a direct
        computation (:class:`repro.games.local.LocalInteractionGame`
        computes it from neighbor strategies only, in ``O(deg)`` per row).
        """
        arr = np.asarray(profiles)
        if arr.ndim != 2 or arr.shape[1] != self.space.num_players:
            raise ValueError(
                f"profiles must have shape (k, {self.space.num_players}), "
                f"got {arr.shape}"
            )
        if not self.space.fits_int64:
            raise ValueError(
                f"the generic utility_deviations_profiles fallback encodes "
                f"profile rows to indices, but the profile space has "
                f"more than 2**63 profiles (beyond int64); "
                f"{type(self).__name__} must override "
                f"utility_deviations_profiles with an index-free computation "
                f"to simulate at this size (see "
                f"repro.games.local.LocalInteractionGame)"
            )
        idx = self.space.encode_many(arr.astype(np.int64, copy=False))
        return self.utility_deviations_many(player, idx)

    def utility_matrix(self, player: int) -> np.ndarray:
        """Full utility vector of ``player`` indexed by profile index."""
        return np.array(
            [self.utility(player, x) for x in range(self.space.size)], dtype=float
        )

    def utility_profile(self, profile: Sequence[int]) -> np.ndarray:
        """Utilities of *all* players at a profile given as a tuple."""
        idx = self.space.encode(profile)
        return np.array([self.utility(i, idx) for i in range(self.num_players)])

    def utility_profile_many(self, profile_indices: np.ndarray) -> np.ndarray:
        """Batched all-player utilities: ``(k, n)`` for ``k`` profile indices.

        Row ``j`` is ``(u_1(x_j), ..., u_n(x_j))`` — what ensemble-level
        welfare measurements need for the current state of every replica.
        The generic fallback loops over the batch; :class:`TableGame` does
        it with one fancy-indexed gather.
        """
        idx = np.asarray(profile_indices, dtype=np.int64)
        n = self.num_players
        if idx.size == 0:
            return np.empty((0, n), dtype=float)
        return np.array(
            [[self.utility(i, int(x)) for i in range(n)] for x in idx], dtype=float
        )

    # -- convenience ------------------------------------------------------

    def is_best_response(self, player: int, profile_index: int) -> bool:
        """Whether ``player``'s strategy in the profile is a best response."""
        utils = self.utility_deviations(player, profile_index)
        current = self.space.strategy_of(profile_index, player)
        return bool(utils[current] >= np.max(utils) - 1e-12)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(players={self.num_players}, strategies={self.num_strategies})"


class TableGame(Game):
    """Normal-form game stored as dense per-player utility arrays.

    Parameters
    ----------
    num_strategies:
        Per-player strategy counts, or an existing :class:`ProfileSpace`
        (reused as-is, so subclasses that already built one for tabulation
        don't construct a second identical space).
    utilities:
        Array of shape ``(n, |S|)``; ``utilities[i, x]`` is ``u_i`` at the
        profile with index ``x`` (see :class:`~repro.games.space.ProfileSpace`
        for the indexing convention).
    """

    def __init__(self, num_strategies: Sequence[int] | ProfileSpace, utilities: np.ndarray):
        if isinstance(num_strategies, ProfileSpace):
            self.space = num_strategies
        else:
            self.space = ProfileSpace(num_strategies)
        utilities = np.asarray(utilities, dtype=float)
        expected = (self.space.num_players, self.space.size)
        if utilities.shape != expected:
            raise ValueError(
                f"utilities must have shape {expected}, got {utilities.shape}"
            )
        if not np.all(np.isfinite(utilities)):
            raise ValueError("utilities must be finite")
        self._utilities = utilities

    @classmethod
    def from_function(
        cls,
        num_strategies: Sequence[int],
        utility_fn: Callable[[int, tuple[int, ...]], float],
    ) -> "TableGame":
        """Tabulate a game from ``utility_fn(player, profile_tuple)``."""
        space = ProfileSpace(num_strategies)
        utilities = np.empty((space.num_players, space.size), dtype=float)
        for x in range(space.size):
            prof = space.decode(x)
            for i in range(space.num_players):
                utilities[i, x] = utility_fn(i, prof)
        return cls(num_strategies, utilities)

    def utility(self, player: int, profile_index: int) -> float:
        return float(self._utilities[player, profile_index])

    def utility_matrix(self, player: int) -> np.ndarray:
        return self._utilities[player].copy()

    def utility_deviations(self, player: int, profile_index: int) -> np.ndarray:
        devs = self.space.deviations(profile_index, player)
        return self._utilities[player, devs]

    def utility_deviations_many(
        self, player: int, profile_indices: np.ndarray
    ) -> np.ndarray:
        # One fancy-indexed gather for the whole batch: (k, m_player).
        devs = self.space.deviations_many(profile_indices, player)
        return self._utilities[player, devs]

    def utility_profile_many(self, profile_indices: np.ndarray) -> np.ndarray:
        # One transposed gather for the whole batch: (k, n).
        idx = np.asarray(profile_indices, dtype=np.int64)
        return self._utilities[:, idx].T.copy()

    @property
    def utilities(self) -> np.ndarray:
        """The full ``(n, |S|)`` utility array (read-only view)."""
        view = self._utilities.view()
        view.flags.writeable = False
        return view

    def store_spec(self) -> dict:
        """Content identity for :func:`repro.parallel.describe`.

        The class, the strategy counts and the *full utility content*
        (digested when large) — two tabulated games hash identically iff
        they are the same game, which is what the experiment store keys
        on.  ``__repr__`` is cosmetic and deliberately not used.
        """
        return {
            "class": type(self).__qualname__,
            "num_strategies": list(self.space.num_strategies),
            "utilities": self._utilities,
        }


class NormalFormGame(TableGame):
    """Two-player normal-form game built from a pair of payoff matrices.

    ``payoff_row[a, b]`` is the row player's utility when the row player
    plays ``a`` and the column player plays ``b``; ``payoff_col[a, b]`` is
    the column player's.  Player 0 is the row player.
    """

    def __init__(self, payoff_row: np.ndarray, payoff_col: np.ndarray):
        payoff_row = np.asarray(payoff_row, dtype=float)
        payoff_col = np.asarray(payoff_col, dtype=float)
        if payoff_row.shape != payoff_col.shape or payoff_row.ndim != 2:
            raise ValueError("payoff matrices must be 2-D and of identical shape")
        m_row, m_col = payoff_row.shape
        space = ProfileSpace((m_row, m_col))
        utilities = np.empty((2, space.size), dtype=float)
        for x in range(space.size):
            a, b = space.decode(x)
            utilities[0, x] = payoff_row[a, b]
            utilities[1, x] = payoff_col[a, b]
        super().__init__((m_row, m_col), utilities)
        self.payoff_row = payoff_row.copy()
        self.payoff_col = payoff_col.copy()


class CallableGame(Game):
    """Game whose utilities are computed on demand from a callable.

    Useful for games whose profile space is too large to tabulate but whose
    utilities have a cheap closed form (e.g. graphical games evaluated
    during Monte-Carlo simulation).  ``utility_fn(player, profile_tuple)``
    must be a pure function.
    """

    def __init__(
        self,
        num_strategies: Sequence[int],
        utility_fn: Callable[[int, tuple[int, ...]], float],
    ):
        self.space = ProfileSpace(num_strategies)
        self._fn = utility_fn

    def utility(self, player: int, profile_index: int) -> float:
        return float(self._fn(player, self.space.decode(profile_index)))


def random_game(
    num_strategies: Sequence[int],
    rng: np.random.Generator | None = None,
    low: float = -1.0,
    high: float = 1.0,
) -> TableGame:
    """A game with i.i.d. uniform utilities — useful for fuzzing the toolkit."""
    rng = np.random.default_rng() if rng is None else rng
    space = ProfileSpace(num_strategies)
    utilities = rng.uniform(low, high, size=(space.num_players, space.size))
    return TableGame(num_strategies, utilities)


def best_responses(game: Game, player: int, profile_index: int, tol: float = 1e-12) -> np.ndarray:
    """Strategies of ``player`` that are best responses to ``x_-i``."""
    utils = game.utility_deviations(player, profile_index)
    return np.flatnonzero(utils >= np.max(utils) - tol)


def pure_nash_equilibria(game: Game, tol: float = 1e-12) -> list[int]:
    """Profile indices of all pure Nash equilibria of the game.

    Exhaustive check — only sensible for tabulated games of modest size.
    """
    equilibria = []
    for x in range(game.space.size):
        if all(
            game.utility_deviations(i, x)[game.space.strategy_of(x, i)]
            >= np.max(game.utility_deviations(i, x)) - tol
            for i in range(game.num_players)
        ):
            equilibria.append(x)
    return equilibria
