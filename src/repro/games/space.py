"""Profile-space machinery: mixed-radix indexing of strategy profiles.

A strategic game with ``n`` players, player ``i`` having ``m_i`` strategies,
has a profile space ``S = S_1 x ... x S_n`` of size ``prod_i m_i``.  All
heavy code in this package works with *profile indices* (integers in
``range(|S|)``) rather than tuples, so that transition matrices, potentials
and stationary distributions are plain numpy arrays indexed by profile.

``ProfileSpace`` provides the vectorised encode/decode machinery plus the
Hamming-graph structure over profiles (neighbors differing in one
coordinate), which the paper uses both for the dynamics itself (a logit step
moves along a Hamming edge or stays put) and for proof constructions
(canonical paths, bottleneck separators, cutwidth orderings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["ProfileSpace", "hamming_distance", "DENSE_PROFILE_CAP"]

#: Largest profile index representable with int64 vectorised arithmetic.
_INT64_MAX = np.iinfo(np.int64).max

#: Cap on |S| for methods that materialise O(|S|)-sized arrays
#: (``all_profiles``, ``deviation_matrix``, ``hamming_edges``).  Beyond it a
#: clear error is raised instead of an opaque MemoryError deep inside numpy.
DENSE_PROFILE_CAP = 1 << 28


def hamming_distance(x: Sequence[int], y: Sequence[int]) -> int:
    """Number of coordinates in which the two profiles differ."""
    x_arr = np.asarray(x)
    y_arr = np.asarray(y)
    if x_arr.shape != y_arr.shape:
        raise ValueError(
            f"profiles must have equal length, got {x_arr.shape} and {y_arr.shape}"
        )
    return int(np.count_nonzero(x_arr != y_arr))


@dataclass(frozen=True)
class ProfileSpace:
    """Mixed-radix index space over strategy profiles.

    Parameters
    ----------
    num_strategies:
        Sequence ``(m_1, ..., m_n)`` with the number of strategies of each
        player.  Every ``m_i`` must be at least 1 (players with a single
        strategy are allowed; they simply never change anything).

    Notes
    -----
    Profiles are encoded in *little-endian* mixed radix: profile
    ``x = (x_1, ..., x_n)`` maps to ``sum_i x_i * radix_i`` where
    ``radix_1 = 1`` and ``radix_{i+1} = radix_i * m_i``.  The encoding is a
    bijection between tuples and ``range(size)``.
    """

    num_strategies: tuple[int, ...]
    _fits_int64: bool = field(init=False, repr=False, compare=False)
    _radices_cache: np.ndarray | None = field(init=False, repr=False, compare=False)
    _size_cache: int | None = field(init=False, repr=False, compare=False)

    def __init__(self, num_strategies: Iterable[int]):
        ms = tuple(int(m) for m in num_strategies)
        if len(ms) == 0:
            raise ValueError("a game needs at least one player")
        if any(m < 1 for m in ms):
            raise ValueError(f"every player needs at least one strategy, got {ms}")
        object.__setattr__(self, "num_strategies", ms)
        # Exact Python-int product, capped: np.prod would silently wrap
        # around int64 (e.g. 3**50), while the *full* exact product of a
        # million binary players is a million-bit integer whose radix
        # ladder costs quadratic bignum time and memory — so construction
        # only decides `fits_int64` (early exit at the first crossing) and
        # the exact big size/radices materialise lazily on first use.
        size = 1
        for m in ms:
            size *= m
            if size > _INT64_MAX:
                break
        fits = size <= _INT64_MAX
        object.__setattr__(self, "_fits_int64", fits)
        if fits:
            radices = np.ones(len(ms), dtype=np.int64)
            for i in range(1, len(ms)):
                radices[i] = radices[i - 1] * ms[i - 1]
            object.__setattr__(self, "_size_cache", size)
            object.__setattr__(self, "_radices_cache", radices)
        else:
            object.__setattr__(self, "_size_cache", None)
            object.__setattr__(self, "_radices_cache", None)

    @property
    def _size(self) -> int:
        if self._size_cache is None:
            object.__setattr__(self, "_size_cache", math.prod(self.num_strategies))
        return self._size_cache

    @property
    def _radices(self) -> np.ndarray:
        if self._radices_cache is None:
            # Exact Python-int radices: scalar encode/decode keep working,
            # the vectorised int64 paths raise a clear error instead.
            values: list[int] = [1]
            for m in self.num_strategies[:-1]:
                values.append(values[-1] * m)
            object.__setattr__(
                self, "_radices_cache", np.array(values, dtype=object)
            )
        return self._radices_cache

    # -- basic shape ------------------------------------------------------

    @property
    def num_players(self) -> int:
        """Number of players ``n``."""
        return len(self.num_strategies)

    @property
    def size(self) -> int:
        """Total number of strategy profiles ``|S|`` (an exact Python int)."""
        return self._size

    @property
    def max_strategies(self) -> int:
        """``m = max_i |S_i|`` as used in the paper's bounds."""
        return max(self.num_strategies)

    @property
    def fits_int64(self) -> bool:
        """Whether every profile index fits in an int64.

        The vectorised index machinery (``encode_many``, ``decode_many``,
        ``deviations_many``, ``set_strategy_many``, ...) is only available
        when this holds; beyond it, work with strategy-profile rows instead
        (the engine's matrix state backend and the profile-row game
        methods).
        """
        return self._fits_int64

    @property
    def radices(self) -> np.ndarray:
        """Read-only view of the mixed-radix place values."""
        r = self._radices.view()
        r.flags.writeable = False
        return r

    # -- encode / decode --------------------------------------------------

    def encode(self, profile: Sequence[int]) -> int:
        """Map a strategy profile (tuple of strategy indices) to its index."""
        arr = np.asarray(profile, dtype=np.int64)
        if arr.shape != (self.num_players,):
            raise ValueError(
                f"profile must have length {self.num_players}, got shape {arr.shape}"
            )
        ms = np.asarray(self.num_strategies, dtype=np.int64)
        if np.any(arr < 0) or np.any(arr >= ms):
            raise ValueError(f"profile {tuple(arr)} out of range for radices {self.num_strategies}")
        if self._radices.dtype == object:
            return sum(int(s) * int(r) for s, r in zip(arr, self._radices))
        return int(arr @ self._radices)

    def encode_many(self, profiles: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode` for an ``(k, n)`` array of profiles."""
        self._require_int64("encode_many")
        arr = np.asarray(profiles, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != self.num_players:
            raise ValueError(f"expected shape (k, {self.num_players}), got {arr.shape}")
        return arr @ self._radices

    def decode(self, index: int) -> tuple[int, ...]:
        """Map a profile index back to the tuple of strategy indices."""
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} out of range [0, {self.size})")
        out = []
        rem = int(index)
        for m in self.num_strategies:
            out.append(rem % m)
            rem //= m
        return tuple(out)

    def decode_many(self, indices: np.ndarray | Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`decode`: returns a ``(k, n)`` int array."""
        self._require_int64("decode_many")
        idx = np.asarray(indices, dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self.size):
            raise ValueError("profile index out of range")
        cols = []
        rem = idx.copy()
        for m in self.num_strategies:
            cols.append(rem % m)
            rem //= m
        return np.stack(cols, axis=-1)

    def all_profiles(self) -> np.ndarray:
        """Return the full ``(|S|, n)`` array of profiles in index order."""
        self._require_dense("all_profiles")
        return self.decode_many(np.arange(self.size, dtype=np.int64))

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for i in range(self.size):
            yield self.decode(i)

    def __len__(self) -> int:
        return self.size

    # -- single-coordinate surgery ---------------------------------------

    def strategy_of(self, indices: np.ndarray | int, player: int) -> np.ndarray | int:
        """Strategy of ``player`` in the profile(s) with the given index/indices."""
        self._check_player(player)
        if isinstance(indices, (int, np.integer)):
            # Pure-Python arithmetic so that spaces beyond int64 still work.
            return int((int(indices) // int(self._radices[player])) % self.num_strategies[player])
        self._require_int64("strategy_of on index arrays")
        idx = np.asarray(indices, dtype=np.int64)
        res = (idx // self._radices[player]) % self.num_strategies[player]
        if np.isscalar(indices) or getattr(indices, "ndim", 1) == 0:
            return int(res)
        return res

    def replace(self, index: int, player: int, strategy: int) -> int:
        """Index of the profile obtained by setting ``player``'s strategy."""
        self._check_player(player)
        if not 0 <= strategy < self.num_strategies[player]:
            raise ValueError(
                f"strategy {strategy} out of range for player {player} "
                f"(has {self.num_strategies[player]} strategies)"
            )
        current = self.strategy_of(index, player)
        return int(index + (strategy - current) * self._radices[player])

    def replace_many(self, indices: np.ndarray, player: int, strategy: int) -> np.ndarray:
        """Vectorised :meth:`replace` over an array of profile indices."""
        self._check_player(player)
        self._require_int64("replace_many")
        idx = np.asarray(indices, dtype=np.int64)
        current = (idx // self._radices[player]) % self.num_strategies[player]
        return idx + (strategy - current) * self._radices[player]

    def set_strategy_many(
        self, indices: np.ndarray, player: int, strategies: np.ndarray
    ) -> np.ndarray:
        """Per-profile strategy surgery: element ``k`` gets ``strategies[k]``.

        Unlike :meth:`replace_many` (one strategy for the whole batch) this
        sets a *different* strategy per profile — the inner update of the
        batched simulation engine.
        """
        self._check_player(player)
        self._require_int64("set_strategy_many")
        idx = np.asarray(indices, dtype=np.int64)
        new = np.asarray(strategies, dtype=np.int64)
        if new.shape != idx.shape:
            raise ValueError(
                f"strategies must match indices shape {idx.shape}, got {new.shape}"
            )
        m = self.num_strategies[player]
        if new.size and (new.min() < 0 or new.max() >= m):
            raise ValueError(f"strategy out of range for player {player} (has {m} strategies)")
        current = (idx // self._radices[player]) % m
        return idx + (new - current) * self._radices[player]

    def deviations(self, index: int, player: int) -> np.ndarray:
        """Indices of all profiles where only ``player``'s strategy varies.

        The returned array has length ``m_player`` and is ordered by the
        strategy chosen by ``player`` (the entry at position
        ``strategy_of(index, player)`` equals ``index`` itself).

        The dtype is explicit about the space size: int64 whenever the
        space fits in int64 (:attr:`fits_int64`), otherwise ``object`` with
        exact Python-int entries — object arrays must never reach the
        vectorised engine paths (those validate and raise), only scalar
        per-deviation consumers.
        """
        self._check_player(player)
        m = self.num_strategies[player]
        current = self.strategy_of(index, player)
        base = int(index) - current * int(self._radices[player])
        if self._radices.dtype == object:
            return np.array([base + s * int(self._radices[player]) for s in range(m)], dtype=object)
        return base + np.arange(m, dtype=np.int64) * self._radices[player]

    def deviations_many(self, indices: np.ndarray, player: int) -> np.ndarray:
        """Batched :meth:`deviations`: ``(k, m_player)`` indices for ``k`` profiles.

        Row ``j`` lists, in strategy order, the profiles reachable from
        ``indices[j]`` by changing only ``player``'s strategy; the column at
        ``strategy_of(indices[j], player)`` equals ``indices[j]`` itself.
        This is the batch surgery the ensemble engine builds its utility
        lookups from.
        """
        self._check_player(player)
        self._require_int64("deviations_many")
        idx = np.asarray(indices, dtype=np.int64)
        radix = self._radices[player]
        m = self.num_strategies[player]
        current = (idx // radix) % m
        base = idx - current * radix
        strategies = np.arange(m, dtype=np.int64)
        return base[..., None] + strategies * radix

    def deviation_matrix(self, player: int) -> np.ndarray:
        """``(|S|, m_player)`` array: row ``x`` lists :meth:`deviations` of ``x``.

        This is the vectorised workhorse used by the transition-matrix
        builder: column ``s`` holds, for every profile, the index of the
        profile where ``player`` switched to strategy ``s``.
        """
        self._check_player(player)
        self._require_dense("deviation_matrix")
        idx = np.arange(self.size, dtype=np.int64)
        current = (idx // self._radices[player]) % self.num_strategies[player]
        base = idx - current * self._radices[player]
        strategies = np.arange(self.num_strategies[player], dtype=np.int64)
        return base[:, None] + strategies[None, :] * self._radices[player]

    # -- Hamming graph ----------------------------------------------------

    def neighbors(self, index: int) -> np.ndarray:
        """Profile indices at Hamming distance exactly 1 from ``index``."""
        out = []
        for player in range(self.num_players):
            devs = self.deviations(index, player)
            out.append(devs[devs != index])
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)

    def hamming_edges(self) -> np.ndarray:
        """All undirected Hamming-graph edges as an ``(E, 2)`` array.

        Each edge ``(u, v)`` with ``u < v`` connects two profiles that differ
        in exactly one player's strategy.
        """
        self._require_dense("hamming_edges")
        edges = []
        idx = np.arange(self.size, dtype=np.int64)
        for player in range(self.num_players):
            devs = self.deviation_matrix(player)
            for s in range(self.num_strategies[player]):
                v = devs[:, s]
                mask = idx < v
                if np.any(mask):
                    edges.append(np.stack([idx[mask], v[mask]], axis=1))
        if not edges:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(edges, axis=0)

    def hamming_distance_between(self, index_a: int, index_b: int) -> int:
        """Hamming distance between two profiles given by index."""
        return hamming_distance(self.decode(index_a), self.decode(index_b))

    def bit_fixing_path(self, index_a: int, index_b: int) -> list[int]:
        """The canonical "bit-fixing" Hamming path from ``a`` to ``b``.

        Coordinates are fixed to their target value in increasing player
        order; this is exactly the path family used in the proofs of
        Lemma 3.3 and Theorem 5.1 of the paper.
        """
        a = list(self.decode(index_a))
        b = self.decode(index_b)
        path = [index_a]
        for player in range(self.num_players):
            if a[player] != b[player]:
                a[player] = b[player]
                path.append(self.encode(a))
        return path

    def weight(self, indices: np.ndarray | int, one_strategy: int = 1) -> np.ndarray | int:
        """Number of players playing ``one_strategy`` in the given profile(s).

        For two-strategy games this is the Hamming weight ``w(x)`` used
        throughout Section 3.2 and Section 5 of the paper.
        """
        self._require_int64("weight")
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        count = np.zeros(idx.shape, dtype=np.int64)
        for player in range(self.num_players):
            count += (self.strategy_of(idx, player) == one_strategy)
        if np.isscalar(indices) or getattr(indices, "ndim", 1) == 0:
            return int(count[0])
        return count

    # -- internals --------------------------------------------------------

    def _check_player(self, player: int) -> None:
        if not 0 <= player < self.num_players:
            raise ValueError(f"player {player} out of range [0, {self.num_players})")

    def _require_int64(self, what: str) -> None:
        # never materialise (or decimal-format) the exact big size here:
        # at 10^6 binary players it is a million-bit integer
        if not self._fits_int64:
            raise ValueError(
                f"profile space has more than 2**63 profiles, which does not "
                f"fit in int64; {what} needs vectorised int64 profile indices "
                f"— for spaces this large work with strategy-profile rows "
                f"instead (the engine's state='matrix' backend and the "
                f"profile-row game methods such as "
                f"utility_deviations_profiles), or use the scalar "
                f"encode/decode methods"
            )

    def _require_dense(self, what: str) -> None:
        if self._fits_int64 and self._size <= DENSE_PROFILE_CAP:
            return
        count = f"{self._size}" if self._fits_int64 else "more than 2**63"
        raise ValueError(
            f"profile space has {count} profiles; {what} materialises "
            f"O(|S|) arrays and is capped at {DENSE_PROFILE_CAP} profiles — "
            f"use the matrix-free simulation engine (repro.engine) instead"
        )
