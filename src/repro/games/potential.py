"""Potential games and the structural quantities used by the paper's bounds.

A game ``G`` is an (exact) potential game if there is a potential function
``Phi: S -> R`` such that, for every player ``i``, every pair of strategies
``a, b`` and every profile ``x`` (Equation 1 of the paper)::

    u_i(a, x_-i) - u_i(b, x_-i) = Phi(b, x_-i) - Phi(a, x_-i)

i.e. a unilateral deviation that *increases* utility *decreases* the
potential by the same amount.  With this sign convention the stationary
distribution of the logit dynamics is the Gibbs measure
``pi(x) = exp(-beta * Phi(x)) / Z`` (Equation 4 of the paper, written there
with the opposite sign of Phi; we follow the convention the paper uses in
all proofs from Lemma 3.3 onwards).

The bounds of Section 3 are stated in terms of three structural quantities
of the potential, all implemented here:

* ``DeltaPhi`` — maximum *global* variation, ``Phi_max - Phi_min``
  (Theorem 3.4 / 3.5);
* ``deltaPhi`` — maximum *local* variation over Hamming-adjacent profiles
  (Theorem 3.6);
* ``zeta`` — the maximum over profile pairs of the minimum "potential
  barrier" that any Hamming path between them must climb (Theorem 3.8 /
  3.9).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .base import Game, TableGame
from .space import ProfileSpace

__all__ = [
    "PotentialGame",
    "ExplicitPotentialGame",
    "potential_from_game",
    "is_potential_game",
    "max_global_variation",
    "max_local_variation",
    "local_variations",
    "zeta_barrier",
    "zeta_barrier_bruteforce",
    "minimax_barrier_matrix",
]


class PotentialGame(Game):
    """Abstract potential game: a :class:`Game` plus a potential vector.

    Subclasses must implement :meth:`potential_vector` returning the
    ``(|S|,)`` array of potential values indexed by profile index, in the
    Equation-(1) sign convention described in the module docstring.
    """

    def potential(self, profile_index: int) -> float:
        """Potential ``Phi(x)`` of a single profile."""
        return float(self.potential_vector()[profile_index])

    def potential_vector(self) -> np.ndarray:
        """Potential values for every profile (shape ``(|S|,)``)."""
        raise NotImplementedError

    # -- structural quantities -------------------------------------------

    def max_global_variation(self) -> float:
        """``DeltaPhi = Phi_max - Phi_min``."""
        return max_global_variation(self.potential_vector())

    def max_local_variation(self) -> float:
        """``deltaPhi`` — max potential difference across a Hamming edge."""
        return max_local_variation(self.potential_vector(), self.space)

    def zeta(self) -> float:
        """The barrier quantity ``zeta`` of Section 3.4 of the paper."""
        return zeta_barrier(self.potential_vector(), self.space)

    def potential_minimizers(self, tol: float = 1e-12) -> np.ndarray:
        """Profiles of minimum potential (the maximum-probability profiles)."""
        phi = self.potential_vector()
        return np.flatnonzero(phi <= np.min(phi) + tol)

    def verify_potential(self, tol: float = 1e-9) -> bool:
        """Check Equation (1) exhaustively; ``True`` iff consistent."""
        phi = self.potential_vector()
        for player in range(self.num_players):
            devs = self.space.deviation_matrix(player)
            # Utility and potential restricted to the deviation sets of this
            # player; Equation (1) says u_i(col a) - u_i(col b) must equal
            # phi(col b) - phi(col a), i.e. u + phi is constant along rows.
            util = np.stack(
                [self.utility_matrix(player)[devs[:, s]] for s in range(devs.shape[1])],
                axis=1,
            )
            pot = phi[devs]
            total = util + pot
            if np.max(np.abs(total - total[:, :1])) > tol:
                return False
        return True


class ExplicitPotentialGame(TableGame, PotentialGame):
    """Potential game given by explicit utility tensors and a potential vector."""

    def __init__(
        self,
        num_strategies: Sequence[int],
        utilities: np.ndarray,
        potential: np.ndarray,
    ):
        TableGame.__init__(self, num_strategies, utilities)
        potential = np.asarray(potential, dtype=float)
        if potential.shape != (self.space.size,):
            raise ValueError(
                f"potential must have shape ({self.space.size},), got {potential.shape}"
            )
        if not np.all(np.isfinite(potential)):
            raise ValueError("potential values must be finite")
        self._potential = potential

    @classmethod
    def from_potential(
        cls,
        num_strategies: Sequence[int],
        potential: np.ndarray | Callable[[tuple[int, ...]], float],
    ) -> "ExplicitPotentialGame":
        """Build the *identical-interest-style* game with ``u_i = -Phi``.

        Every potential function induces at least one potential game: give
        every player utility ``-Phi(x)``.  Equation (1) then holds with the
        given ``Phi``.  This is how the paper's lower-bound constructions
        (Theorem 3.5, Theorem 4.3) are specified — directly by a potential.
        """
        space = ProfileSpace(num_strategies)
        if callable(potential):
            phi = np.array(
                [potential(space.decode(x)) for x in range(space.size)], dtype=float
            )
        else:
            phi = np.asarray(potential, dtype=float)
        utilities = np.tile(-phi, (space.num_players, 1))
        return cls(num_strategies, utilities, phi)

    def potential_vector(self) -> np.ndarray:
        return self._potential.copy()

    def potential(self, profile_index: int) -> float:
        return float(self._potential[profile_index])

    def store_spec(self) -> dict:
        """Content identity (see :meth:`repro.games.base.TableGame.store_spec`):
        the tabulated utilities plus the explicit potential vector."""
        spec = super().store_spec()
        spec["potential"] = self._potential
        return spec


# ---------------------------------------------------------------------------
# Potential extraction / verification for arbitrary games
# ---------------------------------------------------------------------------


def potential_from_game(game: Game, tol: float = 1e-9) -> np.ndarray | None:
    """Recover an exact potential for ``game``, or ``None`` if none exists.

    The candidate potential is built by integrating utility differences
    along bit-fixing paths from profile 0 (the standard Monderer–Shapley
    construction), then verified exhaustively against Equation (1).  Runs in
    ``O(n * |S| * m)`` time.
    """
    space = game.space
    phi = np.zeros(space.size, dtype=float)
    visited = np.zeros(space.size, dtype=bool)
    visited[0] = True
    # Integrate along the canonical order: fix players one at a time.  A
    # profile x with first non-zero coordinate at player i is reached from
    # the profile with that coordinate zeroed, using player i's utility.
    for x in range(1, space.size):
        prof = space.decode(x)
        # first coordinate where prof differs from the all-zero profile
        player = next(i for i, s in enumerate(prof) if s != 0)
        prev = space.replace(x, player, 0)
        # Equation (1): Phi(x) - Phi(prev) = u_i(prev) - u_i(x)
        phi[x] = phi[prev] + game.utility(player, prev) - game.utility(player, x)
        visited[x] = True
    # verification
    candidate = ExplicitPotentialGame(
        space.num_strategies,
        np.stack([game.utility_matrix(i) for i in range(game.num_players)]),
        phi,
    )
    if candidate.verify_potential(tol=tol):
        return phi
    return None


def is_potential_game(game: Game, tol: float = 1e-9) -> bool:
    """Whether ``game`` admits an exact potential (Equation 1)."""
    if isinstance(game, PotentialGame):
        return True
    return potential_from_game(game, tol=tol) is not None


# ---------------------------------------------------------------------------
# Structural quantities of a potential
# ---------------------------------------------------------------------------


def max_global_variation(potential: np.ndarray) -> float:
    """``DeltaPhi = max Phi - min Phi``."""
    phi = np.asarray(potential, dtype=float)
    return float(np.max(phi) - np.min(phi))


def local_variations(potential: np.ndarray, space: ProfileSpace) -> np.ndarray:
    """Absolute potential differences over every Hamming edge."""
    phi = np.asarray(potential, dtype=float)
    edges = space.hamming_edges()
    if edges.shape[0] == 0:
        return np.zeros(0, dtype=float)
    return np.abs(phi[edges[:, 0]] - phi[edges[:, 1]])


def max_local_variation(potential: np.ndarray, space: ProfileSpace) -> float:
    """``deltaPhi`` — maximum potential change over a single deviation."""
    diffs = local_variations(potential, space)
    return float(np.max(diffs)) if diffs.size else 0.0


def _union_find_parent(parent: np.ndarray, x: int) -> int:
    root = x
    while parent[root] != root:
        root = parent[root]
    # path compression
    while parent[x] != root:
        parent[x], x = root, parent[x]
    return root


def zeta_barrier(potential: np.ndarray, space: ProfileSpace) -> float:
    """The quantity ``zeta`` of Section 3.4, via a union-find sweep.

    ``zeta(x, y)`` is the minimum over Hamming paths from ``x`` to ``y`` of
    the maximum potential *increase* above ``Phi(x)`` along the path (for
    ``Phi(x) >= Phi(y)``), and ``zeta = max_{x,y} zeta(x, y)``.

    Equivalently, if ``M(x, y)`` is the minimax potential level any path
    must reach, then ``zeta = max_{x,y} [ M(x, y) - max(Phi(x), Phi(y)) ]``.
    Adding profiles in increasing potential order and tracking, for each
    connected component, its minimum potential, the maximum is attained at a
    merge event: when a profile at level ``L`` merges components ``A`` and
    ``B``, the best candidate is ``L - max(min_A Phi, min_B Phi)``.  This is
    the classic energy-landscape "barrier" computation and runs in
    ``O(|S| log |S| + E alpha(E))``.
    """
    phi = np.asarray(potential, dtype=float)
    n = space.size
    if phi.shape != (n,):
        raise ValueError(f"potential must have shape ({n},), got {phi.shape}")
    order = np.argsort(phi, kind="stable")
    parent = np.arange(n, dtype=np.int64)
    comp_min = phi.copy()  # minimum potential of the component rooted here
    added = np.zeros(n, dtype=bool)
    zeta = 0.0
    for v in order:
        v = int(v)
        added[v] = True
        level = phi[v]
        for u in space.neighbors(v):
            u = int(u)
            if not added[u]:
                continue
            ru = _union_find_parent(parent, u)
            rv = _union_find_parent(parent, v)
            if ru == rv:
                continue
            # merging two distinct components at level `level`
            candidate = level - max(comp_min[ru], comp_min[rv])
            if candidate > zeta:
                zeta = candidate
            # union by attaching ru under rv (arbitrary), keep min potential
            parent[ru] = rv
            comp_min[rv] = min(comp_min[rv], comp_min[ru])
    return float(zeta)


def minimax_barrier_matrix(potential: np.ndarray, space: ProfileSpace) -> np.ndarray:
    """Matrix ``M[x, y]`` = minimum over paths of the max potential level.

    Brute-force (Floyd–Warshall-style) reference implementation; quadratic
    memory in ``|S|`` so only use for small spaces and tests.
    """
    phi = np.asarray(potential, dtype=float)
    n = space.size
    big = np.inf
    M = np.full((n, n), big, dtype=float)
    np.fill_diagonal(M, phi)
    for x in range(n):
        for y in space.neighbors(x):
            y = int(y)
            M[x, y] = max(phi[x], phi[y])
    # minimax path closure
    for k in range(n):
        via = np.maximum(M[:, k][:, None], M[k, :][None, :])
        np.minimum(M, via, out=M)
    return M


def zeta_barrier_bruteforce(potential: np.ndarray, space: ProfileSpace) -> float:
    """Quadratic reference implementation of :func:`zeta_barrier`."""
    phi = np.asarray(potential, dtype=float)
    M = minimax_barrier_matrix(potential, space)
    pairwise_floor = np.maximum(phi[:, None], phi[None, :])
    return float(np.max(M - pairwise_floor))
