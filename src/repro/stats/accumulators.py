"""Streaming moment accumulators and the interval-carrying result type.

Every adaptive estimator in the package reduces to the same loop: consume
replica samples in chunks, keep running moments, ask a confidence sequence
(:mod:`repro.stats.confseq`) how wide the current interval is, and stop as
soon as it is tight enough.  This module provides the two pieces that loop
shares:

* :class:`StreamingMoments` — Welford-style running mean/variance that
  accepts observation chunks (vectorised over many estimands at once) and
  merges exactly, so chunked accumulation is bit-for-bit independent of the
  chunk boundaries;
* :class:`StreamingEstimate` — the result every interval-returning
  estimator hands back: the point estimate together with its anytime-valid
  confidence bounds, the number of samples it took, and whether adaptive
  stopping fired before the replica budget ran out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["StreamingMoments", "StreamingEstimate"]


class StreamingMoments:
    """Welford running mean and variance over streamed observation chunks.

    Observations arrive as ``(c,)`` chunks for a single estimand or
    ``(c, K)`` chunks for ``K`` estimands tracked simultaneously; all state
    is vectorised over the trailing estimand axis.  The update is the
    standard parallel (Chan et al.) combine, so splitting a stream into
    chunks of any sizes produces exactly the same state as one big update.
    """

    def __init__(self) -> None:
        self.count: int = 0
        self.mean: np.ndarray | float = 0.0
        self._m2: np.ndarray | float = 0.0

    def update(self, chunk: np.ndarray) -> None:
        """Fold a chunk of observations into the running moments.

        Parameters
        ----------
        chunk:
            ``(c,)`` float observations for a single estimand, or
            ``(c, K)`` for ``K`` estimands advancing in lock-step.  Empty
            chunks are a no-op.

        Returns
        -------
        None — the accumulator state (``count``, ``mean``, ``variance``)
        is updated in place via the exact Chan parallel combine.
        """
        chunk = np.asarray(chunk, dtype=float)
        if chunk.ndim not in (1, 2):
            raise ValueError("chunks must be (c,) or (c, K) observation arrays")
        c = chunk.shape[0]
        if c == 0:
            return
        chunk_mean = chunk.mean(axis=0)
        chunk_m2 = ((chunk - chunk_mean) ** 2).sum(axis=0)
        if self.count == 0:
            self.mean = chunk_mean
            self._m2 = chunk_m2
            self.count = c
            return
        total = self.count + c
        delta = chunk_mean - self.mean
        self.mean = self.mean + delta * (c / total)
        self._m2 = self._m2 + chunk_m2 + delta**2 * (self.count * c / total)
        self.count = total

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator in (exact parallel combine).

        Parameters
        ----------
        other:
            A :class:`StreamingMoments` over the *same* estimand axis;
            not mutated.  The combine is the algebraically exact Chan
            fold — the fold operation the sharded executors use to merge
            per-shard accumulators
            (:func:`repro.parallel.merge_shard_moments`) — so splitting a
            stream into shards of any sizes produces the same moments as
            one big update, up to floating-point accumulation order.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = np.copy(other.mean)
            self._m2 = np.copy(other._m2)
            return
        total = self.count + other.count
        delta = np.asarray(other.mean, dtype=float) - self.mean
        self.mean = self.mean + delta * (other.count / total)
        self._m2 = (
            self._m2 + other._m2 + delta**2 * (self.count * other.count / total)
        )
        self.count = total

    @property
    def variance(self) -> np.ndarray | float:
        """Unbiased sample variance (``nan`` until two observations)."""
        if self.count < 2:
            return np.full_like(np.asarray(self.mean, dtype=float), np.nan)
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> np.ndarray | float:
        """Unbiased-variance standard deviation."""
        return np.sqrt(self.variance)

    @property
    def sem(self) -> np.ndarray | float:
        """Standard error of the running mean."""
        return np.sqrt(self.variance / max(self.count, 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamingMoments(count={self.count}, mean={self.mean!r})"


@dataclass(frozen=True)
class StreamingEstimate:
    """A Monte-Carlo estimate with its anytime-valid confidence interval.

    The replacement for the "naked float" returns of the fixed-replica
    estimators: the point estimate always travels with the interval that
    justifies it, how many samples produced it, and whether the adaptive
    driver stopped early because the interval got tight enough (as opposed
    to exhausting its replica budget).
    """

    #: Point estimate (the plain sample mean of the pooled samples).
    estimate: float
    #: Lower end of the (1 - alpha) confidence sequence at the stopping time.
    lower: float
    #: Upper end of the (1 - alpha) confidence sequence at the stopping time.
    upper: float
    #: Number of samples consumed.
    n: int
    #: True when the target width was reached before the sample budget.
    stopped_early: bool
    #: Significance level of the interval.
    alpha: float = 0.05
    #: The width the adaptive driver was asked for (``None`` = fixed n).
    target_width: float | None = None
    #: Pooled raw samples, in consumption order (``None`` when not kept).
    samples: np.ndarray | None = field(default=None, repr=False)
    #: Tail companion when the driver ran with ``q=`` — the
    #: :class:`~repro.stats.quantile.QuantileEstimate` certified on the
    #: same sample stream (``None`` otherwise).
    quantile: object | None = field(default=None, repr=False)

    @property
    def width(self) -> float:
        """Full width ``upper - lower`` of the interval."""
        return self.upper - self.lower

    def __float__(self) -> float:
        return float(self.estimate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingEstimate({self.estimate:.6g} in "
            f"[{self.lower:.6g}, {self.upper:.6g}], n={self.n}, "
            f"alpha={self.alpha:g}, stopped_early={self.stopped_early})"
        )
