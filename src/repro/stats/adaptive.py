"""Chunked adaptive-stopping driver for Monte-Carlo estimators.

:func:`run_until_width` is the loop every interval-returning estimator in
the package runs on: draw a chunk of independent replica samples, fold it
into a confidence sequence, peek at the interval (free — the CS is
time-uniform), and stop the moment it is tight enough.  The chunks come
from :meth:`numpy.random.SeedSequence.spawn`, one child *per sample*, so
the pooled sample stream is a pure function of the master seed: splitting
the same budget into chunks of 1, 7 or 64 produces bit-for-bit identical
pooled samples (``tests/test_adaptive_estimators.py`` pins this), and a
re-run with the same seed reproduces the published interval exactly.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .accumulators import StreamingEstimate, StreamingMoments
from .confseq import EmpiricalBernsteinCS, NormalMixtureCS

__all__ = ["run_until_width"]

#: A chunk sampler: receives one spawned :class:`numpy.random.SeedSequence`
#: per requested sample and returns that many samples, sample ``i`` derived
#: from child ``i`` only (the discipline that makes pooled samples
#: independent of the chunking).
ChunkSampler = Callable[[Sequence[np.random.SeedSequence]], np.ndarray]


def run_until_width(
    make_chunk: ChunkSampler,
    target_width: float,
    alpha: float = 0.05,
    max_n: int = 4096,
    chunk_size: int = 64,
    support: tuple[float, float] | None = None,
    seed: int | np.random.SeedSequence | None = None,
    cs=None,
    keep_samples: bool = True,
    executor=None,
) -> StreamingEstimate:
    """Sample in chunks until the confidence interval is ``target_width`` wide.

    Parameters
    ----------
    make_chunk:
        Callable receiving a list of spawned ``SeedSequence`` children, one
        per requested sample, and returning a ``(len(children),)`` float
        array of samples.  Sample ``i`` must be computed from child ``i``
        only — the SeedSequence.spawn discipline that makes the pooled
        samples identical for every chunk size.
    target_width:
        Stop as soon as ``upper - lower <= target_width`` (in the units of
        the samples).  ``0`` (or negative) disables early stopping and runs
        the full ``max_n`` budget.
    alpha:
        Significance level of the confidence sequence; coverage is
        time-uniform, so stopping at the first tight-enough chunk does not
        invalidate it.
    max_n:
        Hard sample budget; reaching it without hitting the target width
        comes back with ``stopped_early=False`` (and the honest, wider
        interval) rather than raising.
    chunk_size:
        Samples per chunk.  Purely a batching knob: the pooled sample
        stream is bit-for-bit identical for every chunk size, and the
        interval agrees up to floating-point accumulation order (only the
        stopping time is quantised to chunk boundaries).
    support:
        ``(lo, hi)`` bounds on the samples.  When given, the variance-
        adaptive :class:`~repro.stats.confseq.EmpiricalBernsteinCS` is
        used; otherwise the CLT-style
        :class:`~repro.stats.confseq.NormalMixtureCS` (asymptotic, for
        unbounded observables).
    seed:
        Master seed (int or ``SeedSequence``); a fresh entropy-seeded
        ``SeedSequence`` when omitted.
    cs:
        Explicit confidence-sequence instance overriding the
        ``support``-based choice (must expose ``update`` and ``interval``).
    keep_samples:
        Attach the pooled raw samples to the result (the chunking
        regression and the benchmarks read them); disable for huge runs.
    executor:
        ``None`` (default — the serial fast path), ``"serial"``,
        ``"process"``, or a :class:`repro.parallel.ShardedExecutor`: each
        chunk's children are split into contiguous shards, the shards are
        evaluated by the executor's backend, and the per-shard samples are
        pooled back in sample order.  Because sample ``i`` is a pure
        function of child ``i``, the pooled samples — and the interval —
        are **bit-for-bit identical for every shard count and backend**;
        sharding is purely a wall-clock knob.  The process backend
        requires a picklable ``make_chunk`` (a module-level function or
        class instance, not a lambda or closure).

    Returns
    -------
    StreamingEstimate
        The pooled sample mean with its time-uniform ``(1 - alpha)``
        interval at the stopping time, the sample count consumed, the
        ``stopped_early`` flag, and (``keep_samples``) the raw samples.

    Example
    -------
    >>> import numpy as np
    >>> def one_uniform(children):
    ...     return np.array([np.random.default_rng(c).random() for c in children])
    >>> est = run_until_width(
    ...     one_uniform, target_width=0.0, max_n=24, chunk_size=8,
    ...     support=(0.0, 1.0), seed=5,
    ... )
    >>> est.n
    24
    >>> rechunked = run_until_width(
    ...     one_uniform, target_width=0.0, max_n=24, chunk_size=1,
    ...     support=(0.0, 1.0), seed=5,
    ... )
    >>> bool(np.array_equal(est.samples, rechunked.samples))
    True
    >>> from repro.parallel import ShardedExecutor
    >>> with ShardedExecutor(num_shards=3) as ex:
    ...     sharded = run_until_width(
    ...         one_uniform, target_width=0.0, max_n=24, chunk_size=8,
    ...         support=(0.0, 1.0), seed=5, executor=ex,
    ...     )
    >>> bool(np.array_equal(est.samples, sharded.samples))
    True
    >>> (est.lower, est.upper) == (sharded.lower, sharded.upper)
    True
    """
    from ..parallel.sharding import claim_executor, pool_shard_samples

    if max_n < 1:
        raise ValueError("max_n must be positive")
    chunk_size = max(int(chunk_size), 1)
    sharder, owned = claim_executor(executor)
    if cs is None:
        if support is not None:
            cs = EmpiricalBernsteinCS(alpha=alpha, support=support)
        else:
            cs = NormalMixtureCS(alpha=alpha)
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    # absolute spawn position of the next child, so sharded chunks can
    # reconstruct their seed blocks without the root's mutable cursor
    base = root.n_children_spawned
    moments = StreamingMoments()
    pooled: list[np.ndarray] = []
    n = 0
    lower = -np.inf
    upper = np.inf
    try:
        while n < max_n:
            k = min(chunk_size, max_n - n)
            if sharder is None:
                children = root.spawn(k)
                samples = np.asarray(make_chunk(children), dtype=float)
            else:
                shards = sharder.map_chunk(make_chunk, root, base + n, k)
                samples = pool_shard_samples(shards)
                root.spawn(k)  # keep the root's cursor consistent with serial use
            if samples.shape != (k,):
                raise ValueError(
                    f"make_chunk returned shape {samples.shape} for {k} children; "
                    f"the driver needs exactly one sample per spawned child"
                )
            cs.update(samples)
            moments.update(samples)
            if keep_samples:
                pooled.append(samples)
            n += k
            lower, upper = (float(b) for b in cs.interval())
            if target_width > 0 and upper - lower <= target_width:
                break
    finally:
        if owned:
            sharder.close()
    width_reached = upper - lower <= target_width if target_width > 0 else False
    return StreamingEstimate(
        estimate=float(moments.mean),
        lower=lower,
        upper=upper,
        n=n,
        stopped_early=bool(width_reached and n < max_n),
        alpha=float(alpha),
        target_width=float(target_width) if target_width > 0 else None,
        samples=np.concatenate(pooled) if keep_samples and pooled else None,
    )
