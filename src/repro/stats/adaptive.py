"""Chunked adaptive-stopping driver for Monte-Carlo estimators.

:func:`run_until_width` is the loop every interval-returning estimator in
the package runs on: draw a chunk of independent replica samples, fold it
into a confidence sequence, peek at the interval (free — the CS is
time-uniform), and stop the moment it is tight enough.  The chunks come
from :meth:`numpy.random.SeedSequence.spawn`, one child *per sample*, so
the pooled sample stream is a pure function of the master seed: splitting
the same budget into chunks of 1, 7 or 64 produces bit-for-bit identical
pooled samples (``tests/test_adaptive_estimators.py`` pins this), and a
re-run with the same seed reproduces the published interval exactly.

The sampling loop itself lives in :class:`~repro.stats.stream.SampleDriver`
— one stream, many consumers — and this module is its estimator-facing
wrapper: it registers the standard consumers (mean CS, Welford moments,
and, with ``q=``, a :class:`~repro.stats.quantile.QuantileCS` tail
accumulator) plus the stopping rule, and packages the result.
"""

from __future__ import annotations

import numpy as np

from .accumulators import StreamingEstimate, StreamingMoments
from .confseq import EmpiricalBernsteinCS, NormalMixtureCS
from .knobs import reject_quantile_knob_conflicts
from .quantile import QuantileCS
from .stream import ChunkSampler, SampleDriver

__all__ = ["ChunkSampler", "run_until_width"]


def run_until_width(
    make_chunk: ChunkSampler,
    target_width: float,
    alpha: float = 0.05,
    max_n: int = 4096,
    chunk_size: int = 64,
    support: tuple[float, float] | None = None,
    seed: int | np.random.SeedSequence | None = None,
    cs=None,
    keep_samples: bool = True,
    executor=None,
    q: float | None = None,
    precision_quantile: float | None = None,
    quantile_grid: int = 512,
    tracer=None,
) -> StreamingEstimate:
    """Sample in chunks until the confidence interval is ``target_width`` wide.

    Parameters
    ----------
    make_chunk:
        Callable receiving a list of spawned ``SeedSequence`` children, one
        per requested sample, and returning a ``(len(children),)`` float
        array of samples.  Sample ``i`` must be computed from child ``i``
        only — the SeedSequence.spawn discipline that makes the pooled
        samples identical for every chunk size.
    target_width:
        Stop as soon as ``upper - lower <= target_width`` (in the units of
        the samples).  ``0`` (or negative) disables mean-width stopping;
        with no tail target either, the full ``max_n`` budget runs.
    alpha:
        Significance level of the confidence sequence; coverage is
        time-uniform, so stopping at the first tight-enough chunk does not
        invalidate it.
    max_n:
        Hard sample budget; reaching it without hitting the target width
        comes back with ``stopped_early=False`` (and the honest, wider
        interval) rather than raising.
    chunk_size:
        Samples per chunk.  Purely a batching knob: the pooled sample
        stream is bit-for-bit identical for every chunk size, and the
        interval agrees up to floating-point accumulation order (only the
        stopping time is quantised to chunk boundaries).
    support:
        ``(lo, hi)`` bounds on the samples.  When given, the variance-
        adaptive :class:`~repro.stats.confseq.EmpiricalBernsteinCS` is
        used; otherwise the CLT-style
        :class:`~repro.stats.confseq.NormalMixtureCS` (asymptotic, for
        unbounded observables).
    seed:
        Master seed (int or ``SeedSequence``); a fresh entropy-seeded
        ``SeedSequence`` when omitted.
    cs:
        Explicit confidence-sequence instance overriding the
        ``support``-based choice (must expose ``update`` and ``interval``).
    keep_samples:
        Attach the pooled raw samples to the result (the chunking
        regression and the benchmarks read them); disable for huge runs.
    executor:
        ``None`` (default — the serial fast path), ``"serial"``,
        ``"process"``, or a :class:`repro.parallel.ShardedExecutor`: each
        chunk's children are split into contiguous shards, the shards are
        evaluated by the executor's backend, and the per-shard samples are
        pooled back in sample order.  Because sample ``i`` is a pure
        function of child ``i``, the pooled samples — and the interval —
        are **bit-for-bit identical for every shard count and backend**;
        sharding is purely a wall-clock knob.  The process backend
        requires a picklable ``make_chunk`` (a module-level function or
        class instance, not a lambda or closure).
    q:
        Quantile level to certify alongside the mean (e.g. ``0.99`` for
        the P99): registers a time-uniform
        :class:`~repro.stats.quantile.QuantileCS` on the *same* sample
        stream and attaches its :class:`~repro.stats.quantile.QuantileEstimate`
        to the result's ``quantile`` field.  Requires ``support`` (the
        threshold grid spans it).
    precision_quantile:
        Target width for the quantile interval, in sample units: the run
        also stops once the ``q``-quantile interval is at most this wide.
        When both ``target_width`` and ``precision_quantile`` are active,
        *both* intervals must be tight before the driver stops.  Requires
        ``q``.
    quantile_grid:
        Threshold-grid resolution of the quantile CS (interval endpoints
        are quantised to grid values).
    tracer:
        Telemetry sink (:mod:`repro.obs`), forwarded to the underlying
        :class:`~repro.stats.stream.SampleDriver`: chunk counters/timers
        plus a ``driver.convergence`` CS-width-vs-n event per consumer
        per chunk.  ``None`` (default) is the no-op tracer; tracing never
        changes the sample stream.

    Returns
    -------
    StreamingEstimate
        The pooled sample mean with its time-uniform ``(1 - alpha)``
        interval at the stopping time, the sample count consumed, the
        ``stopped_early`` flag, (``keep_samples``) the raw samples, and
        (``q=``) the quantile estimate from the same stream.

    Example
    -------
    >>> import numpy as np
    >>> def one_uniform(children):
    ...     return np.array([np.random.default_rng(c).random() for c in children])
    >>> est = run_until_width(
    ...     one_uniform, target_width=0.0, max_n=24, chunk_size=8,
    ...     support=(0.0, 1.0), seed=5,
    ... )
    >>> est.n
    24
    >>> rechunked = run_until_width(
    ...     one_uniform, target_width=0.0, max_n=24, chunk_size=1,
    ...     support=(0.0, 1.0), seed=5,
    ... )
    >>> bool(np.array_equal(est.samples, rechunked.samples))
    True
    >>> from repro.parallel import ShardedExecutor
    >>> with ShardedExecutor(num_shards=3) as ex:
    ...     sharded = run_until_width(
    ...         one_uniform, target_width=0.0, max_n=24, chunk_size=8,
    ...         support=(0.0, 1.0), seed=5, executor=ex,
    ...     )
    >>> bool(np.array_equal(est.samples, sharded.samples))
    True
    >>> (est.lower, est.upper) == (sharded.lower, sharded.upper)
    True

    A tail estimate rides the same stream — the samples are unchanged:

    >>> tailed = run_until_width(
    ...     one_uniform, target_width=0.0, max_n=24, chunk_size=8,
    ...     support=(0.0, 1.0), seed=5, q=0.9,
    ... )
    >>> bool(np.array_equal(est.samples, tailed.samples))
    True
    >>> tailed.quantile.q
    0.9
    """
    reject_quantile_knob_conflicts(q, precision_quantile, support)
    if cs is None:
        if support is not None:
            cs = EmpiricalBernsteinCS(alpha=alpha, support=support)
        else:
            cs = NormalMixtureCS(alpha=alpha)
    driver = SampleDriver(
        make_chunk,
        seed=seed,
        chunk_size=chunk_size,
        max_n=max_n,
        executor=executor,
        keep_samples=keep_samples,
        tracer=tracer,
    )
    driver.register(cs)
    moments = driver.register(StreamingMoments())
    qcs = None
    if q is not None:
        qcs = driver.register(
            QuantileCS(q, alpha=alpha, support=support, grid_size=quantile_grid)
        )

    state = {"lower": -np.inf, "upper": np.inf}

    def tail_width() -> float:
        q_lower, q_upper = qcs.interval()
        return q_upper - q_lower

    def targets_met() -> list[bool]:
        met = []
        if target_width > 0:
            met.append(state["upper"] - state["lower"] <= target_width)
        if precision_quantile is not None:
            met.append(tail_width() <= precision_quantile)
        return met

    def stop() -> bool:
        state["lower"], state["upper"] = (float(b) for b in cs.interval())
        met = targets_met()
        return bool(met) and all(met)

    n = driver.run(stop)
    met = targets_met()
    width_reached = bool(met) and all(met)
    return StreamingEstimate(
        estimate=float(moments.mean),
        lower=state["lower"],
        upper=state["upper"],
        n=n,
        stopped_early=bool(width_reached and n < max_n),
        alpha=float(alpha),
        target_width=float(target_width) if target_width > 0 else None,
        samples=driver.samples,
        quantile=(
            qcs.result(
                float(precision_quantile) if precision_quantile is not None else None
            )
            if qcs is not None
            else None
        ),
    )
