"""Time-uniform quantile confidence sequences and CDF bands.

The package's first-passage estimands are heavy-tailed: the paper's
slow-mixing regimes put the *mean* hitting/escape time far from the P95 /
P99 values a "time-to-consensus" question actually asks about.  This
module certifies those tails with the same anytime-valid contract as the
mean estimators in :mod:`repro.stats.confseq` — peek after every replica
chunk, stop the moment the interval is tight enough:

* :func:`gamma_exponential_log_mixture` — the closed-form gamma-exponential
  mixture supermartingale for sub-exponential increment processes (Howard
  et al. 2021; the ``uniform_boundaries`` construction of the confseq
  reference implementation), the right one-sided boundary for nonnegative
  heavy-tailed estimands;
* :func:`gamma_exponential_boundary` — its level-``alpha`` time-uniform
  rejection boundary ``u(v)``, by monotone inversion;
* :class:`QuantileCS` — a confidence sequence for the ``q``-quantile of
  the sample distribution, via the predictable-mixture reduction: for each
  candidate threshold ``x`` the indicator ``1{X <= x}`` is a Bernoulli
  with mean ``F(x)``, and the centred indicator sums are sub-exponential
  with scale ``c = 1`` (Bennett), so the gamma-exponential mixture tests
  ``F(x) >= q`` / ``F(x) <= q`` uniformly over time.  Because the count
  process is monotone across thresholds, one supermartingale per side
  covers the *whole* grid — no union bound over thresholds is paid;
* :meth:`QuantileCS.cdf_band` — a CDF band uniform over thresholds *and*
  time (DKW at every integer ``t`` with ``alpha``-spending
  ``alpha / (t (t + 1))``), for ``P(tau > T)``-style survival questions;
* :class:`QuantileEstimate` — the interval-carrying tail result attached
  to :class:`~repro.stats.accumulators.StreamingEstimate` by the driver's
  ``q=`` / ``precision_quantile=`` knobs.

The quantile interval is a function of ``(t, threshold counts)`` only, so
it inherits the driver's chunk- and shard-count invariance for free: the
pooled sample stream determines the tail interval bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.special import gammainc, gammaln

__all__ = [
    "QuantileCS",
    "QuantileEstimate",
    "dkw_epsilon",
    "gamma_exponential_boundary",
    "gamma_exponential_log_mixture",
]


def _validate_alpha(alpha: float) -> float:
    if not 0 < alpha < 1:
        raise ValueError("alpha must lie in (0, 1)")
    return float(alpha)


def gamma_exponential_log_mixture(
    s: np.ndarray | float,
    v: np.ndarray | float,
    rho: float,
    c: float = 1.0,
) -> np.ndarray | float:
    """Log of the gamma-exponential mixture supermartingale ``m(s, v)``.

    For a process ``S_t`` with intrinsic time ``V_t`` that is
    sub-exponential with scale ``c`` — i.e. ``exp(lambda S_t -
    psi_E(lambda) V_t)`` is a supermartingale for every ``lambda in [0,
    1/c)``, where ``psi_E(lambda) = (-log(1 - c lambda) - c lambda) /
    c^2`` — mixing over ``lambda`` with the conjugate (truncated-gamma)
    density gives a closed form.  Substituting ``u = 1 - c lambda`` and
    mixing with a Gamma(shape ``rho/c^2``, rate ``rho/c^2``) density
    truncated to ``u in (0, 1]``:

    ``log m(s, v) = a + r log r - lgamma(r) - log P(r, r)
    + lgamma(b) + log P(b, a + r) - b log(a + r)``

    with ``a = (c s + v) / c^2``, ``r = rho / c^2``, ``b = (v + rho) /
    c^2`` and ``P`` the regularised lower incomplete gamma function.
    ``m(0, 0) = 1`` and ``m`` is nondecreasing in ``s``, so by Ville's
    inequality ``P(exists t: log m(S_t, V_t) >= log(1/alpha)) <= alpha``.
    ``rho > 0`` tunes where the implied boundary is tightest (around
    ``V_t ~ rho``); validity holds for every fixed ``rho``.

    Vectorised over ``s`` and ``v`` (broadcast together).  Requires
    ``c s + v > 0`` — the regime every boundary query lives in.
    """
    if rho <= 0:
        raise ValueError("rho must be positive")
    if c <= 0:
        raise ValueError("c must be positive")
    csq = c * c
    s = np.asarray(s, dtype=float)
    v = np.asarray(v, dtype=float)
    a = (c * s + v) / csq
    r = rho / csq
    b = (v + rho) / csq
    z = a + r
    if np.any(z <= 0):
        raise ValueError("the mixture needs c*s + v + rho > 0")
    out = (
        a
        + r * np.log(r)
        - gammaln(r)
        - np.log(gammainc(r, r))
        + gammaln(b)
        + np.log(gammainc(b, z))
        - b * np.log(z)
    )
    return float(out) if out.ndim == 0 else out


@lru_cache(maxsize=65536)
def gamma_exponential_boundary(
    v: float,
    alpha: float,
    rho: float,
    c: float = 1.0,
) -> float:
    """The level-``alpha`` time-uniform boundary ``u(v)`` of the mixture.

    The smallest ``s >= 0`` with ``gamma_exponential_log_mixture(s, v)
    >= log(1/alpha)``: by Ville, ``P(exists t: S_t >= u(V_t)) <= alpha``
    for any sub-exponential-with-scale-``c`` process.  Solved by monotone
    bisection (the log-mixture is nondecreasing in ``s``).  Memoised —
    the boundary is a pure function of its arguments and every peek of a
    :class:`QuantileCS` at the same sample count re-asks the same point.
    """
    _validate_alpha(alpha)
    if v < 0:
        raise ValueError("intrinsic time v must be non-negative")
    target = float(np.log(1.0 / alpha))
    # m(0, v) <= 1 < 1/alpha, so the root is positive; bracket by doubling
    # from a sub-Gaussian-flavoured guess
    hi = max(1.0, float(np.sqrt(2.0 * max(v, 1e-12) * target)) + c * target)
    while gamma_exponential_log_mixture(hi, v, rho, c) < target:
        hi *= 2.0
    lo = 0.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if gamma_exponential_log_mixture(mid, v, rho, c) < target:
            lo = mid
        else:
            hi = mid
    return hi


def tuned_rho(v_opt: float, alpha: float, c: float = 1.0) -> float:
    """``rho`` minimising the boundary at intrinsic time ``v_opt``.

    A coarse log-grid search is plenty: the boundary is flat in ``rho``
    near its optimum, and *any* fixed ``rho`` is valid — this is a tuning
    knob, not a correctness knob.
    """
    _validate_alpha(alpha)
    if v_opt <= 0:
        raise ValueError("v_opt must be positive")
    candidates = v_opt * np.logspace(-2.0, 2.0, 17)
    widths = [gamma_exponential_boundary(v_opt, alpha, float(r), c) for r in candidates]
    return float(candidates[int(np.argmin(widths))])


def dkw_epsilon(t: int, alpha: float) -> float:
    """Time-uniform DKW radius at sample count ``t``.

    Dvoretzky–Kiefer–Wolfowitz at each fixed integer ``t`` bounds
    ``sup_x |F_t(x) - F(x)|`` by ``sqrt(log(2/alpha_t) / (2t))`` with
    probability ``1 - alpha_t``; spending ``alpha_t = alpha / (t (t +
    1))`` and summing over all ``t`` gives a band valid uniformly over
    *every* sample count and *every* threshold simultaneously — peeking
    after any chunk is free.
    """
    _validate_alpha(alpha)
    if t < 1:
        raise ValueError("t must be a positive sample count")
    return float(np.sqrt(np.log(2.0 * t * (t + 1.0) / alpha) / (2.0 * t)))


@dataclass(frozen=True)
class QuantileEstimate:
    """A quantile estimate with its anytime-valid confidence interval.

    The tail companion of
    :class:`~repro.stats.accumulators.StreamingEstimate`: the empirical
    ``q``-quantile of the pooled samples together with the time-uniform
    interval certifying it, attached to adaptive results via the
    ``q=`` / ``precision_quantile=`` knobs.
    """

    #: The quantile level being estimated (e.g. ``0.99`` for the P99).
    q: float
    #: Empirical ``q``-quantile of the pooled samples (grid-quantised).
    estimate: float
    #: Lower end of the (1 - alpha) quantile confidence sequence.
    lower: float
    #: Upper end of the (1 - alpha) quantile confidence sequence.
    upper: float
    #: Number of samples consumed.
    n: int
    #: Significance level of the interval.
    alpha: float = 0.05
    #: The width the driver was asked for (``None`` = no tail stopping).
    target_width: float | None = None

    @property
    def width(self) -> float:
        """Full width ``upper - lower`` of the interval."""
        return self.upper - self.lower

    def __float__(self) -> float:
        return float(self.estimate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantileEstimate(P{100 * self.q:g} = {self.estimate:.6g} in "
            f"[{self.lower:.6g}, {self.upper:.6g}], n={self.n}, "
            f"alpha={self.alpha:g})"
        )


class QuantileCS:
    """Anytime-valid confidence sequence for a quantile of a bounded sample.

    Maintains, over a fixed threshold grid spanning ``support``, the
    running counts ``N_t(x) = #{X_i <= x}`` and tests, per side,

    * ``F(x) >= q`` via the process ``t q - N_t(x)`` (rejecting certifies
      the quantile lies *above* ``x``),
    * ``F(x) <= q`` via ``N_t(x) - t q`` (rejecting certifies it lies
      *below* ``x``),

    each against the :func:`gamma_exponential_boundary` at level
    ``alpha/2`` with deterministic intrinsic time ``t * v_side``, where
    ``v_side`` bounds the Bernoulli variance over the side's null
    (``max_{p in [q,1]} p(1-p)`` below, ``max_{p in [0,q]} p(1-p)``
    above).  Centred Bernoulli increments are sub-exponential with scale
    ``c = 1`` (Bennett, ``psi_P <= psi_E``), and the count process is
    monotone across thresholds, so the *single* worst true-null threshold
    per side carries the whole grid: coverage is ``1 - alpha`` uniformly
    over time with no union bound over thresholds.

    The state is a pure function of ``(t, counts)``, so the interval
    inherits the driver's chunk- and shard-invariance; updates cost one
    ``searchsorted`` + ``bincount`` per chunk and O(grid) memory.  The
    grid quantises the interval endpoints (and the point estimate) to
    grid values — for integer-valued first-passage times a grid at least
    as fine as the horizon loses nothing.
    """

    def __init__(
        self,
        q: float,
        alpha: float = 0.05,
        support: tuple[float, float] = (0.0, 1.0),
        grid_size: int = 512,
        rho: float | None = None,
        opt_n: int = 256,
    ):
        if not 0 < q < 1:
            raise ValueError("the quantile level q must lie in (0, 1)")
        self.q = float(q)
        self.alpha = _validate_alpha(alpha)
        lo, hi = float(support[0]), float(support[1])
        if not hi > lo:
            raise ValueError("support must be an interval (lo, hi) with hi > lo")
        self.support = (lo, hi)
        if grid_size < 2:
            raise ValueError("need at least 2 grid thresholds")
        self.thresholds = np.linspace(lo, hi, int(grid_size))
        self._counts = np.zeros(int(grid_size), dtype=np.int64)
        self._t = 0
        # per-side variance caps over the side's composite null
        self._v_lower = 0.25 if self.q <= 0.5 else self.q * (1.0 - self.q)
        self._v_upper = 0.25 if self.q >= 0.5 else self.q * (1.0 - self.q)
        if rho is None:
            v_opt = max(int(opt_n), 2) * max(self._v_lower, self._v_upper)
            rho = tuned_rho(v_opt, self.alpha / 2.0)
        if rho <= 0:
            raise ValueError("rho must be positive")
        self.rho = float(rho)

    def update(self, chunk: np.ndarray) -> None:
        """Fold a ``(c,)`` chunk of observations into the threshold counts."""
        x = np.asarray(chunk, dtype=float)
        if x.ndim != 1:
            raise ValueError("quantile chunks must be (c,) observation arrays")
        if x.size == 0:
            return
        lo, hi = self.support
        if np.min(x) < lo - 1e-12 or np.max(x) > hi + 1e-12:
            raise ValueError(
                f"observations outside the declared support {self.support}; "
                f"quantile confidence sequences require a correct bound"
            )
        # N_j counts samples with x <= thresholds[j]; a sample's first
        # covering threshold is its searchsorted('left') position
        pos = np.searchsorted(self.thresholds, x, side="left")
        per_pos = np.bincount(pos, minlength=self.thresholds.size + 1)
        self._counts += np.cumsum(per_pos[: self.thresholds.size])
        self._t += x.size

    @property
    def n(self) -> int:
        """Number of observations consumed."""
        return self._t

    def estimate(self) -> float:
        """Empirical ``q``-quantile of the pooled samples (grid-quantised)."""
        if self._t == 0:
            return float("nan")
        need = int(np.ceil(self.q * self._t))
        idx = int(np.searchsorted(self._counts, max(need, 1), side="left"))
        idx = min(idx, self.thresholds.size - 1)
        return float(self.thresholds[idx])

    def interval(self) -> tuple[float, float]:
        """Current ``(lower, upper)`` bounds on the ``q``-quantile."""
        if self._t == 0:
            return self.support
        t = float(self._t)
        half = self.alpha / 2.0
        u_lower = gamma_exponential_boundary(t * self._v_lower, half, self.rho)
        u_upper = gamma_exponential_boundary(t * self._v_upper, half, self.rho)
        # lower side: thresholds with N <= t q - u are rejected as below the
        # quantile; monotone counts make the rejected set a prefix
        rejected_below = self._counts <= t * self.q - u_lower
        lower = (
            float(self.thresholds[int(np.flatnonzero(rejected_below)[-1])])
            if rejected_below.any()
            else self.support[0]
        )
        # upper side: thresholds with N >= t q + u are rejected as above;
        # the rejected set is a suffix
        rejected_above = self._counts >= t * self.q + u_upper
        upper = (
            float(self.thresholds[int(np.argmax(rejected_above))])
            if rejected_above.any()
            else self.support[1]
        )
        return lower, upper

    def cdf_band(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Time-uniform CDF band ``(thresholds, F_lower, F_upper)``.

        Valid simultaneously over every threshold *and* every sample
        count (:func:`dkw_epsilon`); ``1 - F_upper[j]`` is a certified
        lower bound on the survival probability ``P(X > thresholds[j])``
        and ``1 - F_lower[j]`` the matching upper bound.
        """
        if self._t == 0:
            return (
                self.thresholds,
                np.zeros_like(self.thresholds),
                np.ones_like(self.thresholds),
            )
        emp = self._counts / float(self._t)
        eps = dkw_epsilon(self._t, self.alpha)
        return (
            self.thresholds,
            np.clip(emp - eps, 0.0, 1.0),
            np.clip(emp + eps, 0.0, 1.0),
        )

    def result(self, target_width: float | None = None) -> QuantileEstimate:
        """Snapshot the current state as a :class:`QuantileEstimate`."""
        lower, upper = self.interval()
        return QuantileEstimate(
            q=self.q,
            estimate=self.estimate(),
            lower=lower,
            upper=upper,
            n=self._t,
            alpha=self.alpha,
            target_width=target_width,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantileCS(q={self.q:g}, alpha={self.alpha:g}, "
            f"support={self.support}, n={self._t})"
        )
