"""The sample-stream driver every adaptive estimator runs on.

:class:`SampleDriver` is the single owner of the package's Monte-Carlo
sampling contract.  Its spec — a picklable chunk sampler, a master seed,
a chunk schedule, and an optional sharding executor — is resolved once at
construction; :meth:`SampleDriver.run` then draws replica chunks under
the ``SeedSequence.spawn`` discipline (one child per sample, sample ``i``
a pure function of child ``i``) and feeds **every registered consumer**
— mean confidence sequence, Welford moments, quantile/CDF tail
accumulators — from the *same* pooled stream.  Because the stream is a
pure function of the master seed, it is bit-for-bit invariant to the
chunk size and to the shard count of the executor; every consumer
therefore inherits that invariance for free, which is what lets one run
certify a mean, a variance and a P99 simultaneously without three
estimator loops drifting apart.

:func:`~repro.stats.adaptive.run_until_width` is the thin estimator-facing
wrapper: it registers the standard consumers and a stopping rule on a
driver and returns the pooled result.  Estimators that need a custom
consumer (a histogram, a trace) register it alongside the standard ones
instead of re-implementing the loop.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from ..obs import as_tracer

__all__ = ["ChunkSampler", "SampleDriver"]

#: A chunk sampler: receives one spawned :class:`numpy.random.SeedSequence`
#: per requested sample and returns that many samples, sample ``i`` derived
#: from child ``i`` only (the discipline that makes pooled samples
#: independent of the chunking).
ChunkSampler = Callable[[Sequence[np.random.SeedSequence]], np.ndarray]


class SampleDriver:
    """Chunked, seeded, optionally sharded sample stream with fan-out.

    Parameters
    ----------
    sampler:
        A :data:`ChunkSampler`; for process-backed executors it must be
        picklable (a module-level function or dataclass instance such as
        the ones in :mod:`repro.core.samplers`, not a lambda or closure).
    seed:
        Master seed (int or ``SeedSequence``); a fresh entropy-seeded
        ``SeedSequence`` when omitted.  The pooled stream is a pure
        function of this seed.
    chunk_size:
        Samples per chunk — purely a batching knob: pooled samples are
        bit-for-bit identical for every chunk size (only stopping times
        quantise to chunk boundaries).
    max_n:
        Hard sample budget for :meth:`run`.
    executor:
        ``None`` (serial fast path), ``"serial"``, ``"process"``, or a
        :class:`repro.parallel.ShardedExecutor`; resolved once here.  Each
        chunk's children are split into contiguous shards and the
        per-shard samples pooled back in sample order, so the stream is
        bit-for-bit identical for every shard count and backend.
    keep_samples:
        Keep the pooled raw samples (:attr:`samples`) for regression
        tests and benchmarks; disable for huge runs.
    tracer:
        Telemetry sink (:mod:`repro.obs`); ``None`` (default) is the
        shared no-op tracer.  When enabled the driver counts
        ``driver.chunks`` / ``driver.samples``, times ``driver.chunk``,
        and — after every chunk — emits one ``driver.convergence`` event
        per interval-bearing consumer (CS width as a function of ``n``),
        turning adaptive stopping into an inspectable curve.  Tracing
        never touches the seed stream: traced and untraced runs pool
        bit-for-bit identical samples.

    Example
    -------
    >>> import numpy as np
    >>> from repro.stats import StreamingMoments
    >>> def one_uniform(children):
    ...     return np.array([np.random.default_rng(c).random() for c in children])
    >>> driver = SampleDriver(one_uniform, seed=5, chunk_size=8, max_n=24)
    >>> moments = driver.register(StreamingMoments())
    >>> driver.run()
    24
    >>> rechunked = SampleDriver(one_uniform, seed=5, chunk_size=1, max_n=24)
    >>> _ = rechunked.register(StreamingMoments())
    >>> rechunked.run()
    24
    >>> bool(np.array_equal(driver.samples, rechunked.samples))
    True
    """

    def __init__(
        self,
        sampler: ChunkSampler,
        *,
        seed: int | np.random.SeedSequence | None = None,
        chunk_size: int = 64,
        max_n: int = 4096,
        executor=None,
        keep_samples: bool = True,
        tracer=None,
    ):
        from ..parallel.sharding import claim_executor

        if max_n < 1:
            raise ValueError("max_n must be positive")
        self._tracer = as_tracer(tracer)
        self._sampler = sampler
        self._chunk_size = max(int(chunk_size), 1)
        self._max_n = int(max_n)
        self._keep_samples = bool(keep_samples)
        self._sharder, self._owned = claim_executor(executor)
        self._root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        # absolute spawn position of the next child, so sharded chunks can
        # reconstruct their seed blocks without the root's mutable cursor
        self._base = self._root.n_children_spawned
        self._consumers: list = []
        self._pooled: list[np.ndarray] = []
        self._n = 0

    def register(self, consumer):
        """Attach a consumer (anything with ``update(samples)``) to the stream.

        Consumers are fed every chunk, in registration order, and the
        instance is returned so registration reads as assignment::

            cs = driver.register(EmpiricalBernsteinCS(alpha, support))
        """
        self._consumers.append(consumer)
        return consumer

    @property
    def n(self) -> int:
        """Samples drawn so far."""
        return self._n

    @property
    def max_n(self) -> int:
        """The hard sample budget."""
        return self._max_n

    @property
    def samples(self) -> np.ndarray | None:
        """Pooled raw samples (``None`` when ``keep_samples=False`` or empty)."""
        if not self._keep_samples or not self._pooled:
            return None
        return np.concatenate(self._pooled)

    def run(self, stop: Callable[[], bool] | None = None) -> int:
        """Drive the stream until ``stop()`` or the ``max_n`` budget.

        ``stop`` is evaluated once per chunk, *after* every consumer has
        folded the chunk — time-uniform consumers make this continuous
        peeking free.  Returns the total sample count.  An executor owned
        by the driver (created from a ``"serial"`` / ``"process"`` spec)
        is closed when the run finishes, so ``run`` is one-shot in that
        case; caller-owned executors stay open.
        """
        from ..parallel.sharding import pool_shard_samples

        tracer = self._tracer
        try:
            while self._n < self._max_n:
                k = min(self._chunk_size, self._max_n - self._n)
                tic = perf_counter() if tracer.enabled else 0.0
                if self._sharder is None:
                    children = self._root.spawn(k)
                    samples = np.asarray(self._sampler(children), dtype=float)
                else:
                    shards = self._sharder.map_chunk(
                        self._sampler, self._root, self._base + self._n, k,
                        tracer=tracer,
                    )
                    samples = pool_shard_samples(shards)
                    # keep the root's cursor consistent with serial use
                    self._root.spawn(k)
                if samples.shape != (k,):
                    raise ValueError(
                        f"make_chunk returned shape {samples.shape} for {k} "
                        f"children; the driver needs exactly one sample per "
                        f"spawned child"
                    )
                for consumer in self._consumers:
                    consumer.update(samples)
                if self._keep_samples:
                    self._pooled.append(samples)
                self._n += k
                if tracer.enabled:
                    tracer.count("driver.chunks", 1)
                    tracer.count("driver.samples", int(k))
                    tracer.timing(
                        "driver.chunk",
                        perf_counter() - tic,
                        payload={"samples": int(k)},
                    )
                    self._trace_convergence(tracer)
                if stop is not None and stop():
                    break
        finally:
            if self._owned:
                self._sharder.close()
        return self._n

    def _trace_convergence(self, tracer) -> None:
        """Emit one CS-width point per interval-bearing consumer."""
        for index, consumer in enumerate(self._consumers):
            interval = getattr(consumer, "interval", None)
            if not callable(interval):
                continue
            try:
                lower, upper = (float(bound) for bound in interval())
            except Exception:
                continue  # e.g. a quantile CS before it has enough mass
            tracer.event(
                "driver.convergence",
                consumer=f"{type(consumer).__name__}[{index}]",
                n=int(self._n),
                lower=lower,
                upper=upper,
                width=upper - lower,
            )
