"""Anytime-valid streaming statistics for every Monte-Carlo estimator.

The subsystem behind the ``precision=`` / ``alpha=`` knobs of the package's
Monte-Carlo entry points: confidence sequences whose coverage survives
peeking after every replica chunk (:mod:`repro.stats.confseq`), quantile
confidence sequences and CDF bands for the heavy-tailed first-passage
estimands (:mod:`repro.stats.quantile`), streaming moment accumulators and
the interval-carrying
:class:`~repro.stats.accumulators.StreamingEstimate` result type
(:mod:`repro.stats.accumulators`), shared knob validation
(:mod:`repro.stats.knobs`), and the sample-stream driver
(:mod:`repro.stats.stream`) with its estimator-facing wrapper
:func:`~repro.stats.adaptive.run_until_width` built on the
``SeedSequence.spawn`` discipline (:mod:`repro.stats.adaptive`).

The one-child-per-sample discipline is also what makes the driver
*shardable*: ``run_until_width(..., executor=...)`` splits every chunk
across a :class:`repro.parallel.ShardedExecutor` with pooled samples —
and hence every registered consumer's state — bit-for-bit identical for
any shard count.
"""

from .accumulators import StreamingEstimate, StreamingMoments
from .adaptive import run_until_width
from .confseq import (
    EmpiricalBernsteinCS,
    HedgedBettingCS,
    NormalMixtureCS,
    checkpoint_alpha,
    fixed_n_clt_interval,
    tv_distance_band,
)
from .quantile import (
    QuantileCS,
    QuantileEstimate,
    dkw_epsilon,
    gamma_exponential_boundary,
    gamma_exponential_log_mixture,
)
from .stream import SampleDriver

__all__ = [
    "EmpiricalBernsteinCS",
    "HedgedBettingCS",
    "NormalMixtureCS",
    "QuantileCS",
    "QuantileEstimate",
    "SampleDriver",
    "StreamingEstimate",
    "StreamingMoments",
    "checkpoint_alpha",
    "dkw_epsilon",
    "fixed_n_clt_interval",
    "gamma_exponential_boundary",
    "gamma_exponential_log_mixture",
    "run_until_width",
    "tv_distance_band",
]
