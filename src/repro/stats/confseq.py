"""Anytime-valid confidence sequences for streamed Monte-Carlo samples.

A *confidence sequence* (CS) is a sequence of intervals ``(L_t, U_t)`` with
time-uniform coverage: ``P(for all t: mean in [L_t, U_t]) >= 1 - alpha``.
Unlike a fixed-n confidence interval, a CS may be inspected after every
chunk of replicas and the run stopped the moment the interval is tight
enough — "peeking" costs nothing, which is what turns statistical rigor
into a wall-clock win for every Monte-Carlo estimator in the package.

Three boundaries are provided, all pure NumPy and vectorised over many
estimands at once (state arrays carry a trailing estimand axis):

* :class:`EmpiricalBernsteinCS` — the predictable-mixture empirical-
  Bernstein CS for means of ``[lo, hi]``-bounded observations (Waudby-Smith
  & Ramdas 2023, Howard et al. 2021).  Variance-adaptive: the width scales
  with the *empirical* standard deviation, so low-noise estimands stop
  early.  The workhorse for hitting/escape times truncated at a horizon.
* :class:`HedgedBettingCS` — the hedged capital-process (betting) CS for
  bounded means over a grid of candidate values.  Typically the tightest
  known practical CS for bounded means; costs a grid scan per update.
* :class:`NormalMixtureCS` — Robbins' two-sided normal-mixture boundary
  with plug-in variance: a time-uniform CLT-style CS for *unbounded*
  means (asymptotic coverage).  The boundary for welfare-style observables
  with no a-priori range.

Plus the two helpers the estimators share:

* :func:`fixed_n_clt_interval` — the naive fixed-``n`` CLT interval, which
  is exactly what a CS is *not*: peeking at it repeatedly inflates its
  miscoverage (the coverage test in ``tests/test_stats_confseq.py``
  measures this); kept as the comparison baseline.
* :func:`tv_distance_band` / :func:`checkpoint_alpha` — a time-uniform
  sampling band for the ensemble TV-distance estimator, via McDiarmid's
  inequality plus alpha-spending over checkpoints.

The empirical-Bernstein and betting constructions follow the predictable-
mixture recipes of the `confseq` reference implementations (WannabeSmith/
confseq), re-derived here in streaming form: all state is O(1) per
estimand (plus the candidate grid for the betting CS), chunks of any size
fold in exactly, and no per-observation Python loop is needed for the
empirical-Bernstein boundary.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

__all__ = [
    "EmpiricalBernsteinCS",
    "HedgedBettingCS",
    "NormalMixtureCS",
    "fixed_n_clt_interval",
    "checkpoint_alpha",
    "tv_distance_band",
]


def _validate_alpha(alpha: float) -> float:
    if not 0 < alpha < 1:
        raise ValueError("alpha must lie in (0, 1)")
    return float(alpha)


class _BoundedCS:
    """Shared support handling for CSs over ``[lo, hi]``-bounded means."""

    def __init__(self, alpha: float, support: tuple[float, float]):
        self.alpha = _validate_alpha(alpha)
        lo, hi = float(support[0]), float(support[1])
        if not hi > lo:
            raise ValueError("support must be an interval (lo, hi) with hi > lo")
        self.support = (lo, hi)
        self._scale = hi - lo

    def _to_unit(self, chunk: np.ndarray) -> np.ndarray:
        """Map a chunk into [0, 1], rejecting out-of-support observations."""
        x = (np.asarray(chunk, dtype=float) - self.support[0]) / self._scale
        if x.size and (np.min(x) < -1e-12 or np.max(x) > 1 + 1e-12):
            raise ValueError(
                f"observations outside the declared support {self.support}; "
                f"bounded-mean confidence sequences require a correct bound"
            )
        return np.clip(x, 0.0, 1.0)

    def _from_unit(self, lower: np.ndarray, upper: np.ndarray):
        lo, hi = self.support
        return lo + lower * self._scale, lo + upper * self._scale


class EmpiricalBernsteinCS(_BoundedCS):
    """Predictable-mixture empirical-Bernstein CS for a bounded mean.

    Maintains, per estimand, the running sums of the predictable-mixture
    martingale: bets ``lambda_t`` sized from the regularised running
    variance (``lambda_t ~ sqrt(2 log(2/alpha) / (sigma^2_{t-1} t
    log(1+t)))``, truncated), the bet-weighted sample mean, and the
    empirical-Bernstein penalty ``psi_t = (x_t - mu_{t-1})^2 (-log(1 -
    lambda_t) - lambda_t)``; the interval at time ``t`` is the weighted
    mean plus/minus ``(log(2/alpha) + sum psi) / sum lambda``.  The bounds
    are a function of the accumulated sums only, so the interval after
    ``n`` observations does not depend on how they were chunked (up to
    floating-point accumulation order).

    ``update`` accepts ``(c,)`` chunks (one estimand) or ``(c, K)`` chunks
    (``K`` estimands advancing in lock-step) and is fully vectorised —
    within-chunk sequential dependence is resolved with cumulative sums, so
    there is no per-observation Python loop.
    """

    def __init__(
        self,
        alpha: float = 0.05,
        support: tuple[float, float] = (0.0, 1.0),
        truncation: float = 0.5,
    ):
        super().__init__(alpha, support)
        if not 0 < truncation <= 1:
            raise ValueError("truncation must lie in (0, 1]")
        self.truncation = float(truncation)
        self._t = 0
        self._sum_x = 0.0  # plain running sum (psi centering + point estimate)
        self._acc_sq = 0.0  # sum of (x_i - regularised running mean_i)^2
        self._sum_lambda = 0.0
        self._sum_lambda_x = 0.0
        self._sum_psi = 0.0
        self._lower: np.ndarray | float = 0.0
        self._upper: np.ndarray | float = 1.0

    def update(self, chunk: np.ndarray) -> None:
        """Fold a chunk of observations into the confidence sequence."""
        # within-chunk sequential quantities (running means, bet sizes) are
        # resolved with prefix sums so the whole chunk folds in vectorised
        x = self._to_unit(chunk)
        if x.ndim not in (1, 2):
            raise ValueError("chunks must be (c,) or (c, K) observation arrays")
        c = x.shape[0]
        if c == 0:
            return
        log2a = np.log(2.0 / self.alpha)
        t = self._t + np.arange(1, c + 1, dtype=float)  # absolute times
        if x.ndim == 2:
            t = t[:, None]
        cum = np.cumsum(x, axis=0)
        s = self._sum_x + cum  # plain prefix sums S_t
        s_prev = s - x  # S_{t-1}
        # regularised running moments (one pseudo-observation at mean 1/2,
        # variance 1/4) feed the bet sizes; sigma^2_{t-1} enters lambda_t,
        # so shift by one observation
        mu_reg = (0.5 + s) / (t + 1.0)
        acc_sq = self._acc_sq + np.cumsum((x - mu_reg) ** 2, axis=0)
        sigma2_prev = np.empty_like(acc_sq)
        sigma2_prev[0] = (0.25 + self._acc_sq) / (self._t + 1.0)
        if c > 1:
            sigma2_prev[1:] = (0.25 + acc_sq[:-1]) / (t[:-1] + 1.0)
        lam = np.minimum(
            self.truncation,
            np.sqrt(2.0 * log2a / (sigma2_prev * t * np.log1p(t))),
        )
        # psi is centered at the *plain* running mean of the previous step
        with np.errstate(invalid="ignore", divide="ignore"):
            mu_prev = np.where(t > 1, s_prev / np.maximum(t - 1.0, 1.0), 0.0)
        psi = (x - mu_prev) ** 2 * (-np.log1p(-lam) - lam)
        self._sum_lambda = self._sum_lambda + lam.sum(axis=0)
        self._sum_lambda_x = self._sum_lambda_x + (lam * x).sum(axis=0)
        self._sum_psi = self._sum_psi + psi.sum(axis=0)
        self._sum_x = self._sum_x + x.sum(axis=0)
        self._acc_sq = acc_sq[-1] if x.ndim == 1 else acc_sq[-1].copy()
        self._t += c
        center = self._sum_lambda_x / self._sum_lambda
        margin = (log2a + self._sum_psi) / self._sum_lambda
        self._lower = np.clip(center - margin, 0.0, 1.0)
        self._upper = np.clip(center + margin, 0.0, 1.0)

    @property
    def n(self) -> int:
        """Number of observations consumed (per estimand)."""
        return self._t

    def mean(self) -> np.ndarray | float:
        """Plain sample mean on the original scale (the point estimate)."""
        if self._t == 0:
            raise ValueError("no observations yet")
        lo, hi = self.support
        return lo + (self._sum_x / self._t) * (hi - lo)

    def interval(self) -> tuple[np.ndarray | float, np.ndarray | float]:
        """Current ``(lower, upper)`` bounds on the original scale."""
        return self._from_unit(np.asarray(self._lower), np.asarray(self._upper))


class HedgedBettingCS(_BoundedCS):
    """Hedged capital-process (betting) CS for a bounded mean.

    For every candidate mean ``m`` on a grid over the support, two capital
    processes bet against ``m`` from opposite sides with predictable-
    mixture bet sizes (truncated at ``trunc_scale / m`` and ``trunc_scale /
    (1 - m)``); ``m`` stays in the confidence set while
    ``max(theta W^+_t(m), (1-theta) W^-_t(m)) < 1/alpha`` (Ville's
    inequality).  The interval is the grid hull of the surviving candidates
    (widened by one grid cell); the wealth state is a function of the
    observations only, so the interval after ``n`` observations does not
    depend on how they were chunked.

    Tighter than the empirical-Bernstein closed form at moderate ``n``, at
    the cost of a ``(breaks+1, K)`` state and a per-observation update over
    the grid.
    """

    def __init__(
        self,
        alpha: float = 0.05,
        support: tuple[float, float] = (0.0, 1.0),
        breaks: int = 128,
        theta: float = 0.5,
        trunc_scale: float = 0.5,
    ):
        super().__init__(alpha, support)
        if breaks < 2:
            raise ValueError("need at least 2 grid breaks")
        if not 0 < theta < 1:
            raise ValueError("theta must lie in (0, 1)")
        if not 0 < trunc_scale <= 1:
            raise ValueError("trunc_scale must lie in (0, 1]")
        self.breaks = int(breaks)
        self.theta = float(theta)
        self.trunc_scale = float(trunc_scale)
        self._grid = np.linspace(0.0, 1.0, self.breaks + 1)
        self._t = 0
        self._sum_x = 0.0
        self._acc_sq = 0.0
        self._log_wealth_pos: np.ndarray | None = None
        self._log_wealth_neg: np.ndarray | None = None
        self._lower: np.ndarray | float = 0.0
        self._upper: np.ndarray | float = 1.0

    def update(self, chunk: np.ndarray) -> None:
        """Fold a chunk of observations into every candidate's capital."""
        x = self._to_unit(chunk)
        if x.ndim not in (1, 2):
            raise ValueError("chunks must be (c,) or (c, K) observation arrays")
        c = x.shape[0]
        if c == 0:
            return
        grid = self._grid if x.ndim == 1 else self._grid[:, None]
        if self._log_wealth_pos is None:
            shape = grid.shape if x.ndim == 1 else (grid.shape[0], x.shape[1])
            self._log_wealth_pos = np.zeros(shape)
            self._log_wealth_neg = np.zeros(shape)
        log2a = np.log(2.0 / self.alpha)
        with np.errstate(divide="ignore"):
            cap_pos = self.trunc_scale / grid  # +inf at m = 0 (no truncation)
            cap_neg = self.trunc_scale / (1.0 - grid)
        for j in range(c):
            xj = x[j]
            t = self._t + 1
            sigma2_prev = (0.25 + self._acc_sq) / (self._t + 1.0)
            lam = np.sqrt(2.0 * log2a / (sigma2_prev * t * np.log1p(t)))
            self._log_wealth_pos += np.log1p(np.minimum(lam, cap_pos) * (xj - grid))
            self._log_wealth_neg += np.log1p(-np.minimum(lam, cap_neg) * (xj - grid))
            mu_reg = (0.5 + self._sum_x + xj) / (t + 1.0)
            self._acc_sq = self._acc_sq + (xj - mu_reg) ** 2
            self._sum_x = self._sum_x + xj
            self._t = t
        log_thresh_pos = np.log(1.0 / self.alpha) - np.log(self.theta)
        log_thresh_neg = np.log(1.0 / self.alpha) - np.log(1.0 - self.theta)
        in_cs = (self._log_wealth_pos < log_thresh_pos) & (
            self._log_wealth_neg < log_thresh_neg
        )
        any_in = in_cs.any(axis=0)
        first = np.argmax(in_cs, axis=0)
        last = in_cs.shape[0] - 1 - np.argmax(in_cs[::-1], axis=0)
        cell = 1.0 / self.breaks
        lower = np.clip(self._grid[first] - cell, 0.0, 1.0)
        upper = np.clip(self._grid[last] + cell, 0.0, 1.0)
        # an empty confidence set (numerical corner) keeps the previous hull
        self._lower = np.where(any_in, lower, np.broadcast_to(self._lower, lower.shape))
        self._upper = np.where(any_in, upper, np.broadcast_to(self._upper, upper.shape))

    @property
    def n(self) -> int:
        """Number of observations consumed (per estimand)."""
        return self._t

    def mean(self) -> np.ndarray | float:
        """Plain sample mean on the original scale (the point estimate)."""
        if self._t == 0:
            raise ValueError("no observations yet")
        lo, hi = self.support
        return lo + (self._sum_x / self._t) * (hi - lo)

    def interval(self) -> tuple[np.ndarray | float, np.ndarray | float]:
        """Current ``(lower, upper)`` bounds on the original scale."""
        return self._from_unit(np.asarray(self._lower), np.asarray(self._upper))


class NormalMixtureCS:
    """Robbins normal-mixture CS with plug-in variance (CLT-style, unbounded).

    For a running sum with intrinsic time ``V_t = t * sigma_hat^2_t`` the
    two-sided normal-mixture boundary ``sqrt((V + rho2) log((V + rho2) /
    (rho2 alpha^2)))`` is crossed with probability at most ``alpha`` by a
    Brownian motion, uniformly over all ``t``; dividing by ``t`` gives a
    time-uniform interval for the mean.  With the plug-in empirical
    variance the guarantee is asymptotic — the CLT-style boundary of the
    subsystem, for observables with no a-priori bound (welfare, utilities).

    ``rho2`` tunes where the boundary is tightest: small values favour
    early times, large values late ones.  :meth:`rho2_for_target` picks the
    value minimising the boundary at a target intrinsic time.
    """

    def __init__(self, alpha: float = 0.05, rho2: float = 1.0):
        self.alpha = _validate_alpha(alpha)
        if rho2 <= 0:
            raise ValueError("rho2 must be positive")
        self.rho2 = float(rho2)
        from .accumulators import StreamingMoments

        self._moments = StreamingMoments()
        self._lower: np.ndarray | float = -np.inf
        self._upper: np.ndarray | float = np.inf

    @staticmethod
    def rho2_for_target(v_target: float, alpha: float = 0.05) -> float:
        """``rho2`` minimising the boundary at intrinsic time ``v_target``.

        Setting the derivative of the squared boundary to zero gives
        ``rho2 = v / (W) `` with ``W`` solving ``W = log(W) - 2 log(alpha)
        + 1``; one fixed-point sweep is plenty for a tuning knob.
        """
        _validate_alpha(alpha)
        if v_target <= 0:
            raise ValueError("v_target must be positive")
        w = -2.0 * np.log(alpha) + 1.0
        for _ in range(60):
            w = -2.0 * np.log(alpha) + 1.0 + np.log(w)
        return float(v_target / w)

    def update(self, chunk: np.ndarray) -> None:
        """Fold a ``(c,)`` or ``(c, K)`` chunk of observations in."""
        self._moments.update(np.asarray(chunk, dtype=float))
        n = self._moments.count
        if n < 2:
            return
        variance = np.asarray(self._moments.variance, dtype=float)
        v = n * np.maximum(variance, np.finfo(float).eps)
        radius = (
            np.sqrt((v + self.rho2) * np.log((v + self.rho2) / (self.rho2 * self.alpha**2)))
            / n
        )
        mean = np.asarray(self._moments.mean, dtype=float)
        self._lower = mean - radius
        self._upper = mean + radius

    @property
    def n(self) -> int:
        """Number of observations consumed (per estimand)."""
        return self._moments.count

    def mean(self) -> np.ndarray | float:
        """Plain sample mean (the point estimate)."""
        if self._moments.count == 0:
            raise ValueError("no observations yet")
        return self._moments.mean

    def interval(self) -> tuple[np.ndarray | float, np.ndarray | float]:
        """Current ``(lower, upper)`` bounds (infinite until two samples)."""
        return np.asarray(self._lower), np.asarray(self._upper)


def fixed_n_clt_interval(
    mean: np.ndarray | float,
    variance: np.ndarray | float,
    n: int,
    alpha: float = 0.05,
) -> tuple[np.ndarray | float, np.ndarray | float]:
    """The naive fixed-``n`` CLT interval ``mean +- z_{1-alpha/2} s/sqrt(n)``.

    Valid only when ``n`` is fixed *before* looking at any data: peeking at
    this interval after every chunk and stopping when it looks good
    inflates the miscoverage well past ``alpha`` (the classic optional-
    stopping failure the confidence sequences above exist to fix).  Kept as
    the comparison baseline for the coverage tests and benchmarks.
    """
    _validate_alpha(alpha)
    if n < 1:
        raise ValueError("n must be positive")
    z = float(ndtri(1.0 - alpha / 2.0))
    half = z * np.sqrt(np.asarray(variance, dtype=float) / n)
    m = np.asarray(mean, dtype=float)
    return m - half, m + half


def checkpoint_alpha(checkpoint: int, alpha: float) -> float:
    """Alpha-spending schedule over an unbounded checkpoint stream.

    Spends ``alpha / (j (j + 1))`` on the ``j``-th checkpoint (1-based), so
    the total error over *any* number of checkpoints is at most ``alpha``
    — a union-bound confidence sequence over checkpoint indices, valid
    under adaptive stopping without fixing the number of peeks up front.
    """
    _validate_alpha(alpha)
    if checkpoint < 1:
        raise ValueError("checkpoint indices are 1-based")
    return alpha / (checkpoint * (checkpoint + 1))


def tv_distance_band(
    tv_hat: float,
    num_replicas: int,
    support_size: int,
    alpha_j: float,
) -> tuple[float, float]:
    """Sampling band for the ensemble TV-distance estimator at one checkpoint.

    With ``R`` iid replicas, ``|TV(emp, ref) - TV(law, ref)| <= TV(emp,
    law)``; the empirical-vs-true TV has mean at most ``sqrt(|S| / (4R))``
    and bounded differences ``1/R``, so McDiarmid gives ``TV(emp, law) <=
    sqrt(|S| / (4R)) + sqrt(log(1/alpha_j) / (2R))`` with probability at
    least ``1 - alpha_j``.  Combined with :func:`checkpoint_alpha` this
    yields a band that is simultaneously valid over every checkpoint — an
    upper endpoint below ``epsilon`` *certifies* convergence, which is what
    :func:`repro.core.mixing.estimate_tv_convergence` stops on when given
    an ``alpha``.  The bias term makes the band honest but conservative
    when ``|S|`` is large relative to ``R``.
    """
    if num_replicas < 1:
        raise ValueError("need at least one replica")
    _validate_alpha(alpha_j)
    bias = float(np.sqrt(support_size / (4.0 * num_replicas)))
    dev = float(np.sqrt(np.log(1.0 / alpha_j) / (2.0 * num_replicas)))
    radius = bias + dev
    return max(float(tv_hat) - radius, 0.0), min(float(tv_hat) + radius, 1.0)
