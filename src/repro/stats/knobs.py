"""Shared knob validation for the adaptive / fixed estimator modes.

Every estimator in the package exposes the same pair of mutually exclusive
modes — the legacy fixed-replica path (``num_replicas=`` sized, ``rng=``
seeded, one shared stream) and the adaptive path (``precision=`` stopped,
``seed=`` seeded, one ``SeedSequence`` child per sample) — and the same
failure mode: accepting a knob that belongs to the *other* mode and
silently ignoring it would change what the caller asked for.  The
rejections used to be re-implemented per module with drifting wording;
this module is the single definition site, with one uniform message per
conflict, used by :mod:`repro.core.metastability`,
:mod:`repro.core.mixing`, :mod:`repro.analysis.sweep` and the
:class:`~repro.stats.stream.SampleDriver` itself.
"""

from __future__ import annotations

__all__ = [
    "reject_fixed_mode_knobs",
    "reject_executor_without_precision",
    "reject_quantile_knob_conflicts",
    "reject_seed_rng_conflict",
    "reject_rng_with_sharded_driver",
    "reject_seed_without_sharded_driver",
    "require_store_seed",
    "require_executor_seed",
]


def reject_fixed_mode_knobs(num_replicas, rng) -> None:
    """Adaptive mode sizes and seeds the run itself; accepting-and-ignoring
    the fixed-mode knobs would silently change what the caller asked for."""
    if num_replicas is not None:
        raise ValueError(
            "num_replicas is the fixed-mode replica count; adaptive "
            "(precision=) mode chooses its own sample size — set the budget "
            "with max_replicas instead"
        )
    if rng is not None:
        raise ValueError(
            "rng seeds the fixed-mode run; adaptive (precision=) mode draws "
            "per-replica streams from SeedSequence children — pass seed= "
            "(an int or SeedSequence) for reproducibility"
        )


def reject_executor_without_precision(
    precision, executor, fixed_path: str = "runs one shared-rng ensemble"
) -> None:
    """``executor=`` only shards adaptive chunk samplers; refuse elsewhere.

    The fixed-replica path advances one ensemble from a single shared
    ``rng`` stream, which cannot be split across processes without
    changing the samples — accepting-and-ignoring the knob would silently
    run serial.  ``fixed_path`` names the caller's fixed path in the
    message (e.g. ``"runs one shared-rng ensemble per size"`` for the
    sweeps) without changing the uniform wording around it.
    """
    if precision is None and executor is not None:
        raise ValueError(
            "executor= shards the adaptive (precision=) chunk sampler; the "
            f"fixed-replica path {fixed_path} and cannot be "
            "sharded — pass precision= (and seed=) to use an executor"
        )


def reject_quantile_knob_conflicts(q, precision_quantile, support) -> None:
    """The tail knobs come as a pair, and the quantile grid needs bounds."""
    if precision_quantile is not None and q is None:
        raise ValueError(
            "precision_quantile= sets the tail interval's target width; pass "
            "q= (the quantile level, e.g. 0.99) to say which quantile to "
            "certify"
        )
    if q is not None and support is None:
        raise ValueError(
            "q= certifies a quantile over a fixed threshold grid, which "
            "needs bounded samples — pass support=(lo, hi)"
        )


def reject_seed_rng_conflict(seed, rng) -> None:
    """``seed=`` and ``rng=`` select different randomness contracts."""
    if seed is not None and rng is not None:
        raise ValueError("pass seed= or rng=, not both")


def reject_rng_with_sharded_driver(rng) -> None:
    """The sharded drivers run per-replica streams, never a shared ``rng``."""
    if rng is not None:
        raise ValueError(
            "rng drives the serial ensemble; the sharded (executor=) "
            "driver seeds one stream per replica — pass seed= instead"
        )


def reject_seed_without_sharded_driver(seed) -> None:
    """A dangling ``seed=`` on a serial ``rng=`` path is a mode confusion."""
    if seed is not None:
        raise ValueError(
            "seed= selects the sharded (executor=) driver's per-replica "
            "streams; the serial path is driven by rng= — pass one or the "
            "other, not a dangling seed"
        )


def require_store_seed(store, seed) -> None:
    """A stored cell must be a pure function of its spec — which needs a seed.

    Without an explicit master seed the cell's randomness is drawn from
    process entropy, so the content address would collide across runs that
    drew different samples; refuse rather than silently cache one draw.
    """
    if store is not None and seed is None:
        raise ValueError(
            "store= caches cells under a content address of their spec, "
            "which must pin the randomness: pass seed= (an int or "
            "SeedSequence) so every cell is a pure function of its spec"
        )


def require_executor_seed(executor, seed) -> None:
    """Sweep-level sharding is reproducible-by-construction — enforce it.

    The sharded drivers are seeded by per-cell master-seed children; a
    sweep run with ``executor=`` but no ``seed=`` would draw fresh
    entropy per cell, making the run irreproducible and (in the family
    sweep) colliding with the legacy shared-``rng`` plumbing.  Direct
    estimator calls may still run seedless; sweeps must not.
    """
    if executor is not None and seed is None:
        raise ValueError(
            "sweep-level executor= runs every cell on seeded per-replica "
            "streams; pass seed= (an int or SeedSequence) so the sharded "
            "sweep is reproducible"
        )
