"""Social-graph topology generators used in Section 5 experiments.

Thin wrappers around :mod:`networkx` generators with consistent 0-based
integer labelling, plus a couple of structured topologies (torus, caterpillar)
useful for exercising the cutwidth bound of Theorem 5.1 across a spectrum of
connectivities.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = [
    "ring_graph",
    "clique_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "binary_tree_graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "preferential_attachment_graph",
]


def _relabel(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 integers in sorted order."""
    mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def ring_graph(num_nodes: int) -> nx.Graph:
    """Cycle on ``num_nodes`` nodes (the paper's "ring", Section 5.3)."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least 3 nodes")
    return nx.cycle_graph(num_nodes)


def clique_graph(num_nodes: int) -> nx.Graph:
    """Complete graph on ``num_nodes`` nodes (Section 5.2)."""
    if num_nodes < 2:
        raise ValueError("a clique needs at least 2 nodes")
    return nx.complete_graph(num_nodes)


def path_graph(num_nodes: int) -> nx.Graph:
    """Path on ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise ValueError("a path needs at least 2 nodes")
    return nx.path_graph(num_nodes)


def star_graph(num_nodes: int) -> nx.Graph:
    """Star with one hub and ``num_nodes - 1`` leaves."""
    if num_nodes < 2:
        raise ValueError("a star needs at least 2 nodes")
    return nx.star_graph(num_nodes - 1)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2-D grid graph with ``rows * cols`` nodes, integer-labelled."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    g = nx.grid_2d_graph(rows, cols)
    return _relabel(g)


def torus_graph(rows: int, cols: int) -> nx.Graph:
    """2-D torus (grid with wrap-around), integer-labelled."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3")
    g = nx.grid_2d_graph(rows, cols, periodic=True)
    return _relabel(g)


def binary_tree_graph(depth: int) -> nx.Graph:
    """Complete binary tree of the given depth (root at node 0)."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    return nx.balanced_tree(2, depth)


def erdos_renyi_graph(
    num_nodes: int, edge_probability: float, rng: np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> nx.Graph:
    """Erdős–Rényi graph; optionally re-sampled until connected."""
    if not 0 <= edge_probability <= 1:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng
    for _ in range(1000):
        seed = int(rng.integers(0, 2**31 - 1))
        g = nx.gnp_random_graph(num_nodes, edge_probability, seed=seed)
        if not ensure_connected or nx.is_connected(g):
            return g
    raise RuntimeError(
        "failed to sample a connected Erdős–Rényi graph; increase edge_probability"
    )


def random_regular_graph(
    num_nodes: int, degree: int, rng: np.random.Generator | None = None
) -> nx.Graph:
    """Random ``degree``-regular graph on ``num_nodes`` nodes."""
    if degree >= num_nodes:
        raise ValueError("degree must be smaller than the number of nodes")
    if (num_nodes * degree) % 2 != 0:
        raise ValueError("num_nodes * degree must be even")
    rng = np.random.default_rng() if rng is None else rng
    seed = int(rng.integers(0, 2**31 - 1))
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def preferential_attachment_graph(
    num_nodes: int, attachments: int = 2, rng: np.random.Generator | None = None
) -> nx.Graph:
    """Barabási–Albert preferential-attachment graph (power-law degrees).

    Each arriving node attaches to ``attachments`` existing nodes with
    probability proportional to their degree — the standard generator for
    the heavy-tailed social graphs the local-interaction follow-up papers
    target ("millions of users").  Connected by construction.
    """
    if num_nodes < 2:
        raise ValueError("a preferential-attachment graph needs at least 2 nodes")
    if not 1 <= attachments < num_nodes:
        raise ValueError("attachments must satisfy 1 <= attachments < num_nodes")
    rng = np.random.default_rng() if rng is None else rng
    seed = int(rng.integers(0, 2**31 - 1))
    return nx.barabasi_albert_graph(num_nodes, attachments, seed=seed)
