"""Social-graph topology generators used in Section 5 experiments.

Thin wrappers around :mod:`networkx` generators with consistent 0-based
integer labelling, plus a couple of structured topologies (torus, caterpillar)
useful for exercising the cutwidth bound of Theorem 5.1 across a spectrum of
connectivities.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "ring_graph",
    "clique_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "binary_tree_graph",
    "caterpillar_graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "preferential_attachment_graph",
    "small_world_graph",
    "stochastic_block_model_graph",
    "load_graph",
]


def _relabel(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 integers in sorted order."""
    mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def ring_graph(num_nodes: int) -> nx.Graph:
    """Cycle on ``num_nodes`` nodes (the paper's "ring", Section 5.3)."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least 3 nodes")
    return nx.cycle_graph(num_nodes)


def clique_graph(num_nodes: int) -> nx.Graph:
    """Complete graph on ``num_nodes`` nodes (Section 5.2)."""
    if num_nodes < 2:
        raise ValueError("a clique needs at least 2 nodes")
    return nx.complete_graph(num_nodes)


def path_graph(num_nodes: int) -> nx.Graph:
    """Path on ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise ValueError("a path needs at least 2 nodes")
    return nx.path_graph(num_nodes)


def star_graph(num_nodes: int) -> nx.Graph:
    """Star with one hub and ``num_nodes - 1`` leaves."""
    if num_nodes < 2:
        raise ValueError("a star needs at least 2 nodes")
    return nx.star_graph(num_nodes - 1)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2-D grid graph with ``rows * cols`` nodes, integer-labelled."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    g = nx.grid_2d_graph(rows, cols)
    return _relabel(g)


def torus_graph(rows: int, cols: int) -> nx.Graph:
    """2-D torus (grid with wrap-around), integer-labelled."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3")
    g = nx.grid_2d_graph(rows, cols, periodic=True)
    return _relabel(g)


def binary_tree_graph(depth: int) -> nx.Graph:
    """Complete binary tree of the given depth (root at node 0)."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    return nx.balanced_tree(2, depth)


def caterpillar_graph(spine: int, legs: int) -> nx.Graph:
    """Caterpillar: a ``spine``-node path with ``legs`` leaves per spine node.

    Spine nodes are ``0..spine-1``; the leaves of spine node ``i`` follow
    at ``spine + i * legs .. spine + (i + 1) * legs - 1``.  Deterministic
    and integer-labelled by construction.  Caterpillars have cutwidth
    ``legs + 1``-ish independent of the spine length, which makes them the
    low-cutwidth/large-``n`` corner of the mixing-bound spectrum.
    """
    if spine < 2:
        raise ValueError("a caterpillar needs a spine of at least 2 nodes")
    if legs < 1:
        raise ValueError("a caterpillar needs at least 1 leg per spine node")
    g = nx.path_graph(spine)
    for i in range(spine):
        for k in range(legs):
            g.add_edge(i, spine + i * legs + k)
    return g


def erdos_renyi_graph(
    num_nodes: int, edge_probability: float, rng: np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> nx.Graph:
    """Erdős–Rényi graph; optionally re-sampled until connected."""
    if not 0 <= edge_probability <= 1:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng
    for _ in range(1000):
        seed = int(rng.integers(0, 2**31 - 1))
        g = nx.gnp_random_graph(num_nodes, edge_probability, seed=seed)
        if not ensure_connected or nx.is_connected(g):
            return g
    raise RuntimeError(
        "failed to sample a connected Erdős–Rényi graph; increase edge_probability"
    )


def random_regular_graph(
    num_nodes: int, degree: int, rng: np.random.Generator | None = None
) -> nx.Graph:
    """Random ``degree``-regular graph on ``num_nodes`` nodes."""
    if degree >= num_nodes:
        raise ValueError("degree must be smaller than the number of nodes")
    if (num_nodes * degree) % 2 != 0:
        raise ValueError("num_nodes * degree must be even")
    rng = np.random.default_rng() if rng is None else rng
    seed = int(rng.integers(0, 2**31 - 1))
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def preferential_attachment_graph(
    num_nodes: int, attachments: int = 2, rng: np.random.Generator | None = None
) -> nx.Graph:
    """Barabási–Albert preferential-attachment graph (power-law degrees).

    Each arriving node attaches to ``attachments`` existing nodes with
    probability proportional to their degree — the standard generator for
    the heavy-tailed social graphs the local-interaction follow-up papers
    target ("millions of users").  Connected by construction.
    """
    if num_nodes < 2:
        raise ValueError("a preferential-attachment graph needs at least 2 nodes")
    if not 1 <= attachments < num_nodes:
        raise ValueError("attachments must satisfy 1 <= attachments < num_nodes")
    rng = np.random.default_rng() if rng is None else rng
    seed = int(rng.integers(0, 2**31 - 1))
    return nx.barabasi_albert_graph(num_nodes, attachments, seed=seed)


def small_world_graph(
    num_nodes: int,
    nearest_neighbors: int = 4,
    rewire_probability: float = 0.1,
    rng: np.random.Generator | None = None,
) -> nx.Graph:
    """Watts–Strogatz small-world graph, re-sampled until connected.

    A ring lattice where every node is joined to its ``nearest_neighbors``
    nearest ring neighbors (``k/2`` on each side, so ``k`` must be even),
    with each edge rewired to a uniform endpoint with probability
    ``rewire_probability`` — the standard interpolation between the
    paper's ring (``p = 0``) and an expander-like random graph
    (``p = 1``).  Uses ``connected_watts_strogatz_graph``, which retries
    internally until the sample is connected.
    """
    if num_nodes < 3:
        raise ValueError("a small-world graph needs at least 3 nodes")
    if not 2 <= nearest_neighbors < num_nodes:
        raise ValueError(
            "nearest_neighbors must satisfy 2 <= nearest_neighbors < num_nodes"
        )
    if nearest_neighbors % 2 != 0:
        raise ValueError("nearest_neighbors must be even (k/2 per side)")
    if not 0 <= rewire_probability <= 1:
        raise ValueError("rewire_probability must lie in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng
    seed = int(rng.integers(0, 2**31 - 1))
    return nx.connected_watts_strogatz_graph(
        num_nodes, nearest_neighbors, rewire_probability, tries=1000, seed=seed
    )


def stochastic_block_model_graph(
    block_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> nx.Graph:
    """Stochastic block model: dense communities, sparse cross links.

    Nodes are grouped into ``len(block_sizes)`` communities (block ``b``
    owns the contiguous label range after the blocks before it); two nodes
    are joined with probability ``p_in`` inside a block and ``p_out``
    across blocks.  The assortative case ``p_in >> p_out`` is the
    standard model for the community structure where opinion games
    develop metastable local consensus.  Optionally re-sampled until
    connected (up to 1000 attempts, like :func:`erdos_renyi_graph`).
    """
    sizes = [int(s) for s in block_sizes]
    if len(sizes) < 1 or any(s < 1 for s in sizes):
        raise ValueError("block_sizes must be a non-empty list of positive ints")
    if not 0 <= p_in <= 1 or not 0 <= p_out <= 1:
        raise ValueError("p_in and p_out must lie in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng
    for _ in range(1000):
        seed = int(rng.integers(0, 2**31 - 1))
        probs = [
            [p_in if i == j else p_out for j in range(len(sizes))]
            for i in range(len(sizes))
        ]
        g = nx.stochastic_block_model(sizes, probs, seed=seed)
        # drop the generator's block metadata so graphs hash by structure
        g = nx.Graph(g.edges()) if g.number_of_edges() else nx.empty_graph(sum(sizes))
        g.add_nodes_from(range(sum(sizes)))
        if not ensure_connected or (len(g) > 0 and nx.is_connected(g)):
            return g
    raise RuntimeError(
        "failed to sample a connected stochastic block model; "
        "increase p_in/p_out or disable ensure_connected"
    )


def load_graph(source: str | Path | Iterable[str]) -> nx.Graph:
    """Load a real graph from edge-list text, relabelled to 0..n-1.

    ``source`` is a file path or an iterable of lines.  Each non-empty
    line names one undirected edge as two whitespace-separated labels;
    ``#`` starts a comment (whole-line or trailing) — the common format of
    SNAP/KONECT exports.  Labels may be arbitrary strings; integer-looking
    labels sort numerically.  Nodes are relabelled to ``0..n-1`` in sorted
    order so loaded graphs obey the same labelling contract as the
    generators.  Self-loops are rejected (the local-interaction machinery
    assumes simple graphs); duplicate edges collapse.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    edges: list[tuple[object, object]] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"edge-list line {lineno} must have exactly two labels, "
                f"got {len(parts)}: {raw!r}"
            )
        u, v = parts
        if u == v:
            raise ValueError(
                f"edge-list line {lineno} is a self-loop ({u!r}); "
                "local-interaction games assume simple graphs"
            )
        edges.append((u, v))
    if not edges:
        raise ValueError("edge list is empty — no edges to load")
    try:
        edges = [(int(u), int(v)) for u, v in edges]
    except ValueError:
        pass  # keep string labels; sorted() below still gives a stable order
    g = nx.Graph()
    g.add_edges_from(edges)
    return _relabel(g)
