"""Cutwidth of a graph — the structural quantity of Theorem 5.1.

For an ordering ``l`` of the vertices, the width of the cut after vertex
``i`` is the number of edges with one endpoint at position ``<= i`` and the
other at position ``> i``; the cutwidth of the ordering is the maximum such
width, and the cutwidth ``chi(G)`` of the graph is the minimum over all
orderings (Equations 12–13 of the paper).  Theorem 5.1 bounds the mixing
time of the logit dynamics for a graphical coordination game by
``2 n^3 exp(chi(G) (delta0 + delta1) beta) (n delta0 beta + 1)``.

Computing the cutwidth is NP-hard in general; we provide

* :func:`cutwidth_exact` — exact value via a Held–Karp-style dynamic program
  over vertex subsets, ``O(2^n * n)`` time / ``O(2^n)`` memory, practical up
  to ~20 vertices (more than enough for the game sizes whose chains we can
  analyse exactly);
* :func:`cutwidth_of_ordering` — evaluate a specific ordering;
* :func:`cutwidth_greedy` — a cheap heuristic upper bound for larger graphs;
* :func:`cutwidth_known` — closed forms for the standard topologies used in
  Section 5 (path, ring, star, complete graph).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

__all__ = [
    "cutwidth_of_ordering",
    "cutwidth_exact",
    "cutwidth_greedy",
    "cutwidth_known",
    "clique_cutwidth",
]


def _normalized_nodes(graph: nx.Graph) -> list:
    return sorted(graph.nodes())


def cutwidth_of_ordering(graph: nx.Graph, ordering: Sequence) -> int:
    """Cutwidth ``chi(l)`` of a specific vertex ordering ``l``."""
    nodes = list(ordering)
    if set(nodes) != set(graph.nodes()) or len(nodes) != graph.number_of_nodes():
        raise ValueError("ordering must be a permutation of the graph's nodes")
    position = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    # crossing[i] = number of edges (u, v) with pos(u) <= i < pos(v)
    crossing = np.zeros(n, dtype=np.int64)
    for u, v in graph.edges():
        lo, hi = sorted((position[u], position[v]))
        if lo < hi:
            crossing[lo:hi] += 1
    return int(crossing.max()) if n > 0 else 0


def cutwidth_exact(graph: nx.Graph) -> int:
    """Exact cutwidth via dynamic programming over vertex subsets.

    Recurrence: for a non-empty subset ``S`` of vertices placed as a prefix,
    ``cw(S) = max( cut(S), min_{v in S} cw(S \\ {v}) )`` where ``cut(S)`` is
    the number of edges between ``S`` and its complement.  ``cut`` is
    maintained incrementally: ``cut(S) = cut(S \\ {v}) + deg_out(v, S)``
    where ``deg_out(v, S)`` counts v's neighbors outside S minus those
    inside ``S \\ {v}``.
    """
    nodes = _normalized_nodes(graph)
    n = len(nodes)
    if n == 0:
        return 0
    if n > 24:
        raise ValueError(
            f"exact cutwidth DP is exponential in the node count (got {n} > 24); "
            "use cutwidth_greedy for an upper bound"
        )
    index = {node: i for i, node in enumerate(nodes)}
    neighbor_masks = np.zeros(n, dtype=np.int64)
    for u, v in graph.edges():
        iu, iv = index[u], index[v]
        if iu == iv:
            continue
        neighbor_masks[iu] |= 1 << iv
        neighbor_masks[iv] |= 1 << iu
    degrees = np.array([bin(int(m)).count("1") for m in neighbor_masks], dtype=np.int64)

    size = 1 << n
    INF = np.iinfo(np.int64).max // 4
    # cut[S] and cw[S] arrays; build cut incrementally by lowest set bit.
    cut = np.zeros(size, dtype=np.int64)
    cw = np.full(size, INF, dtype=np.int64)
    cw[0] = 0
    for S in range(1, size):
        lsb = S & (-S)
        v = lsb.bit_length() - 1
        prev = S & ~lsb
        inside_prev = bin(int(neighbor_masks[v]) & prev).count("1")
        # adding v: its edges to outside become crossing, its edges to prev stop crossing
        cut[S] = cut[prev] + degrees[v] - 2 * inside_prev
    for S in range(1, size):
        best = INF
        T = S
        while T:
            lsb = T & (-T)
            v = lsb.bit_length() - 1
            T &= ~lsb
            prev = S & ~(1 << v)
            if cw[prev] < best:
                best = cw[prev]
        cw[S] = max(best, cut[S])
    return int(cw[size - 1])


def cutwidth_greedy(graph: nx.Graph, restarts: int = 8, rng: np.random.Generator | None = None) -> int:
    """Heuristic cutwidth upper bound: greedy ordering with random restarts.

    At every step append the unplaced vertex that minimises the resulting
    cut; ties broken randomly.  Returns the best ordering width found across
    restarts — an upper bound on the true cutwidth, adequate for the bound
    of Theorem 5.1 (which only needs *some* ordering).
    """
    rng = np.random.default_rng(0) if rng is None else rng
    nodes = _normalized_nodes(graph)
    n = len(nodes)
    if n == 0:
        return 0
    best_width = None
    for _ in range(max(restarts, 1)):
        remaining = set(nodes)
        placed: set = set()
        width = 0
        current_cut = 0
        order = []
        while remaining:
            candidates = []
            for v in remaining:
                inside = sum(1 for u in graph.neighbors(v) if u in placed)
                outside = graph.degree(v) - inside
                candidates.append((current_cut + outside - inside, rng.random(), v))
            candidates.sort()
            new_cut, _, chosen = candidates[0]
            placed.add(chosen)
            remaining.discard(chosen)
            order.append(chosen)
            current_cut = new_cut
            width = max(width, current_cut)
        if best_width is None or width < best_width:
            best_width = width
    return int(best_width)


def clique_cutwidth(num_nodes: int) -> int:
    """Closed form ``floor(n/2) * ceil(n/2)`` for the complete graph."""
    if num_nodes < 1:
        raise ValueError("need at least one node")
    return (num_nodes // 2) * ((num_nodes + 1) // 2)


def cutwidth_known(graph: nx.Graph) -> int | None:
    """Closed-form cutwidth when the graph is a recognised standard topology.

    Recognises: edgeless graphs (0), paths (1), cycles (2), stars
    (``ceil((n-1)/2)``) and complete graphs (``floor(n/2) * ceil(n/2)``).
    Returns ``None`` for anything else.
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n == 0 or m == 0:
        return 0
    degrees = sorted(d for _, d in graph.degree())
    if m == n * (n - 1) // 2:
        return clique_cutwidth(n)
    if nx.is_connected(graph):
        if m == n - 1 and degrees[-1] <= 2:
            return 1  # path
        if m == n and all(d == 2 for d in degrees):
            return 2  # cycle / ring
        if m == n - 1 and degrees[-1] == n - 1:
            return (n - 1 + 1) // 2  # star: ceil((n-1)/2)
    return None
