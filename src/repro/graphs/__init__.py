"""Graph substrate: social-network topologies and cutwidth computation."""

from .cutwidth import (
    clique_cutwidth,
    cutwidth_exact,
    cutwidth_greedy,
    cutwidth_known,
    cutwidth_of_ordering,
)
from .topologies import (
    binary_tree_graph,
    caterpillar_graph,
    clique_graph,
    erdos_renyi_graph,
    grid_graph,
    load_graph,
    path_graph,
    preferential_attachment_graph,
    random_regular_graph,
    ring_graph,
    small_world_graph,
    star_graph,
    stochastic_block_model_graph,
    torus_graph,
)

__all__ = [
    "clique_cutwidth",
    "cutwidth_exact",
    "cutwidth_greedy",
    "cutwidth_known",
    "cutwidth_of_ordering",
    "binary_tree_graph",
    "caterpillar_graph",
    "clique_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "load_graph",
    "path_graph",
    "preferential_attachment_graph",
    "random_regular_graph",
    "ring_graph",
    "small_world_graph",
    "star_graph",
    "stochastic_block_model_graph",
    "torus_graph",
]
