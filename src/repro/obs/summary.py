"""Trace analysis: parse JSONL traces, lint structure, summarise runs.

This module backs ``tools/trace_summary.py``.  It parses trace files
*leniently* — malformed lines become reported anomalies instead of
exceptions — then reconstructs, per run: the manifest, final counter
totals, timer aggregates, throughput (replica-steps per engine-run
second), shard balance (per-shard wall-clock and load-imbalance ratios),
store hit rate, and the CS-width-vs-n convergence curve of every traced
consumer.

Structural lint (``exit 1`` from the CLI when any fire):

- unparsable / non-object lines, or lines missing the common fields
- events for a run id that never opened with a ``run.manifest`` event
- per (file, run): non-monotonic ``seq`` or decreasing wall-clock ``t``
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "RunSummary",
    "load_trace_files",
    "render_run_summary",
    "summarize_runs",
]

_COMMON_FIELDS = ("run", "seq", "t", "kind", "name")


@dataclass
class RunSummary:
    """Everything reconstructed from one run's trace events."""

    run_id: str
    manifest: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    # timer name -> [call count, total seconds]
    timers: dict = field(default_factory=dict)
    # consumer label -> list of (n, lower, upper, width)
    convergence: dict = field(default_factory=dict)
    # shard label -> [completions, total worker seconds]
    shard_seconds: dict = field(default_factory=dict)
    # per-dispatch imbalance ratios (max/mean shard seconds)
    imbalance: list = field(default_factory=list)
    # (cell, provenance) lifecycle tags from sweep.cell events
    cells: list = field(default_factory=list)
    events: int = 0

    @property
    def replica_steps(self) -> float:
        return float(self.counters.get("engine.replica_steps", 0))

    @property
    def throughput(self) -> float | None:
        """Replica-steps per second of engine wall-clock, if both traced."""
        seconds = sum(
            bucket[1]
            for name, bucket in self.timers.items()
            if name in ("engine.run", "engine.first_passage")
        )
        if seconds <= 0 or self.replica_steps <= 0:
            return None
        return self.replica_steps / seconds

    @property
    def store_hit_rate(self) -> float | None:
        hits = self.counters.get("store.hit")
        misses = self.counters.get("store.miss")
        if hits is None and misses is None:
            return None
        total = (hits or 0) + (misses or 0)
        return (hits or 0) / total if total else None


def load_trace_files(paths):
    """Parse trace files leniently.

    Returns ``(events, anomalies)`` where ``events`` is every
    structurally valid event (in file order, each tagged with its source
    file under the ``"_file"`` key) and ``anomalies`` is a list of
    human-readable structural problems.
    """
    events = []
    anomalies = []
    per_run_last = {}  # (file, run) -> (seq, t)
    for path in paths:
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            anomalies.append(f"{path}: unreadable trace file ({exc})")
            continue
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                anomalies.append(f"{path}:{lineno}: malformed JSON line")
                continue
            if not isinstance(event, dict):
                anomalies.append(f"{path}:{lineno}: trace line is not an object")
                continue
            missing = [f for f in _COMMON_FIELDS if f not in event]
            if missing:
                anomalies.append(
                    f"{path}:{lineno}: event missing fields {missing}"
                )
                continue
            key = (str(path), event["run"])
            last = per_run_last.get(key)
            if last is not None:
                last_seq, last_t = last
                if event["seq"] <= last_seq:
                    anomalies.append(
                        f"{path}:{lineno}: non-monotonic seq for run "
                        f"{event['run']} ({event['seq']} after {last_seq})"
                    )
                if event["t"] < last_t:
                    anomalies.append(
                        f"{path}:{lineno}: wall-clock went backwards for run "
                        f"{event['run']} ({event['t']} after {last_t})"
                    )
            per_run_last[key] = (event["seq"], event["t"])
            event["_file"] = str(path)
            events.append(event)

    known_runs = {e["run"] for e in events if e["kind"] == "manifest"}
    orphaned = sorted(
        {e["run"] for e in events if e["run"] not in known_runs}
    )
    for run_id in orphaned:
        count = sum(1 for e in events if e["run"] == run_id)
        anomalies.append(
            f"{count} event(s) for unknown run id {run_id!r} "
            "(no run.manifest opens this run)"
        )
    return events, anomalies


def summarize_runs(events) -> dict:
    """Fold parsed events into one :class:`RunSummary` per run id."""
    runs: dict[str, RunSummary] = {}
    for event in events:
        summary = runs.setdefault(event["run"], RunSummary(run_id=event["run"]))
        summary.events += 1
        kind = event["kind"]
        name = event["name"]
        payload = event.get("payload") or {}
        if kind == "manifest":
            summary.manifest.update(payload)
        elif kind == "annotate":
            summary.manifest.update(payload)
        elif kind == "counter":
            # later events carry the running total, so last-write wins
            summary.counters[name] = event.get("total", 0)
        elif kind == "timer":
            bucket = summary.timers.setdefault(name, [0, 0.0])
            bucket[0] += 1
            bucket[1] += float(event.get("seconds", 0.0))
        elif kind == "event":
            if name == "driver.convergence":
                curve = summary.convergence.setdefault(
                    payload.get("consumer", "?"), []
                )
                curve.append(
                    (
                        payload.get("n"),
                        payload.get("lower"),
                        payload.get("upper"),
                        payload.get("width"),
                    )
                )
            elif name == "shard.complete":
                label = payload.get("shard", payload.get("offset", "?"))
                bucket = summary.shard_seconds.setdefault(str(label), [0, 0.0])
                bucket[0] += 1
                bucket[1] += float(payload.get("seconds", 0.0))
            elif name in ("shard.chunk", "shard.dispatch"):
                ratio = payload.get("imbalance")
                if ratio is not None:
                    summary.imbalance.append(float(ratio))
            elif name == "sweep.cell":
                summary.cells.append(
                    (payload.get("cell"), payload.get("provenance"))
                )
    return runs


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds:.3f}s" if seconds >= 1e-3 else f"{seconds * 1e6:.0f}us"


def render_run_summary(summary: RunSummary) -> str:
    """Render one run's reconstruction as an aligned plain-text block."""
    from ..analysis.report import render_table  # deferred: avoid import cycle

    lines = [f"== run {summary.run_id} ({summary.events} events) =="]
    manifest_bits = [
        f"{key}={summary.manifest[key]}"
        for key in ("git_rev", "python", "numpy", "sweep", "bench")
        if key in summary.manifest
    ]
    if manifest_bits:
        lines.append("manifest: " + " ".join(manifest_bits))

    headline = []
    if summary.replica_steps:
        headline.append(f"replica-steps={summary.replica_steps:.0f}")
    throughput = summary.throughput
    if throughput is not None:
        headline.append(f"throughput={throughput:,.0f} replica-steps/s")
    hit_rate = summary.store_hit_rate
    if hit_rate is not None:
        headline.append(
            f"store hit rate={hit_rate:.0%} "
            f"({summary.counters.get('store.hit', 0):.0f} hit / "
            f"{summary.counters.get('store.miss', 0):.0f} miss)"
        )
    if headline:
        lines.append("  ".join(headline))

    if summary.counters:
        rows = [
            [name, value] for name, value in sorted(summary.counters.items())
        ]
        lines.append(render_table(["counter", "total"], rows))
    if summary.timers:
        rows = [
            [name, bucket[0], _fmt_seconds(bucket[1])]
            for name, bucket in sorted(summary.timers.items())
        ]
        lines.append(render_table(["timer", "calls", "total"], rows))
    if summary.shard_seconds:
        rows = [
            [label, bucket[0], _fmt_seconds(bucket[1])]
            for label, bucket in sorted(summary.shard_seconds.items())
        ]
        lines.append(render_table(["shard", "completions", "worker-time"], rows))
        if summary.imbalance:
            worst = max(summary.imbalance)
            mean = sum(summary.imbalance) / len(summary.imbalance)
            lines.append(
                f"load imbalance (max/mean shard seconds per dispatch): "
                f"worst={worst:.2f} mean={mean:.2f}"
            )
    if summary.cells:
        rows = [[cell, provenance or "fresh"] for cell, provenance in summary.cells]
        lines.append(render_table(["cell", "provenance"], rows))
    for consumer, curve in sorted(summary.convergence.items()):
        head = curve[0]
        tail = curve[-1]
        lines.append(
            f"convergence {consumer}: {len(curve)} points, "
            f"n {head[0]} -> {tail[0]}, width {head[3]:.4g} -> {tail[3]:.4g}"
        )
        rows = [
            [n, lower, upper, width] for n, lower, upper, width in curve
        ]
        lines.append(render_table(["n", "lower", "upper", "width"], rows))
    return "\n".join(lines)
